"""ScenarioSpec: typed coercion, dict round-trips, config bridging, hashing."""

from __future__ import annotations

import json

import pytest

from repro.fl.config import ExperimentConfig
from repro.scenarios import ScenarioSpec, coerce_field, config_overrides, config_to_dict


class TestCoerceField:
    def test_bool_words(self):
        assert coerce_field("include_downlink", "false") is False
        assert coerce_field("include_downlink", "true") is True
        assert coerce_field("time_varying_links", "0") is False
        assert coerce_field("time_varying_links", "ON") is True
        assert coerce_field("include_downlink", False) is False

    def test_bool_rejects_garbage(self):
        with pytest.raises(ValueError, match="boolean"):
            coerce_field("include_downlink", "maybe")

    def test_optional_none_words(self):
        assert coerce_field("deadline_s", "none") is None
        assert coerce_field("workers", None) is None
        assert coerce_field("buffer_size", "null") is None

    def test_non_optional_rejects_none(self):
        with pytest.raises(ValueError, match="does not accept None"):
            coerce_field("rounds", None)
        with pytest.raises(ValueError, match="expects an int"):
            coerce_field("rounds", "none")  # not a None-word here: bad int

    def test_none_word_is_a_value_for_plain_str_fields(self):
        # "none" is a real value of contention (CONTENTION_MODES), not null.
        assert coerce_field("contention", "none") == "none"
        assert coerce_field("contention", "fair") == "fair"

    def test_numeric(self):
        assert coerce_field("rounds", "12") == 12
        assert isinstance(coerce_field("rounds", "12"), int)
        assert coerce_field("gamma", "3") == 3.0
        assert isinstance(coerce_field("gamma", "3"), float)
        assert coerce_field("deadline_s", "2.5") == 2.5

    def test_int_rejects_fractional(self):
        with pytest.raises(ValueError, match="int"):
            coerce_field("rounds", "2.5")

    def test_unknown_field_names_candidates(self):
        with pytest.raises(ValueError, match="unknown config field"):
            coerce_field("gammma", "3")


class TestSpecRoundTrip:
    def test_dict_round_trip_through_json(self):
        spec = ScenarioSpec(
            name="t",
            description="d",
            expected="e",
            tags=("a", "b"),
            overrides={"gamma": 3.0, "include_downlink": True, "deadline_s": None},
            axes={"gamma": 3.0},
        )
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    def test_overrides_typed_at_construction(self):
        spec = ScenarioSpec(name="t", overrides={"rounds": "5", "include_downlink": "false"})
        assert spec.overrides == {"rounds": 5, "include_downlink": False}

    def test_bad_override_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="t", overrides={"nope": 1})

    def test_config_bridge(self):
        cfg = ExperimentConfig(rounds=7, algorithm="topk", compression_ratio=0.2)
        spec = ScenarioSpec.from_config(cfg, name="bridge")
        assert spec.overrides == {
            "rounds": 7, "algorithm": "topk", "compression_ratio": 0.2
        }
        assert spec.to_config() == cfg

    def test_config_overrides_empty_on_defaults(self):
        assert config_overrides(ExperimentConfig()) == {}

    def test_config_to_dict_covers_every_field(self):
        d = config_to_dict(ExperimentConfig())
        assert d["mode"] == "sync" and d["num_edges"] == 1 and "compressor" in d


class TestSpecHash:
    def test_same_resolved_config_same_hash(self):
        # Different names/prose, same experiment → one run-store cell.
        a = ScenarioSpec(name="a", description="x", overrides={"rounds": 5})
        b = ScenarioSpec(name="b", overrides={"rounds": 5, "mode": "sync"})
        assert a.spec_hash() == b.spec_hash()

    def test_any_field_change_changes_hash(self):
        a = ScenarioSpec(name="a", overrides={"rounds": 5})
        assert a.spec_hash() != a.with_overrides(seed=1).spec_hash()
        assert a.spec_hash() != a.with_overrides(rounds=6).spec_hash()

    def test_with_overrides_layers(self):
        a = ScenarioSpec(name="a", overrides={"rounds": 5, "gamma": 3.0})
        b = a.with_overrides(rounds=9)
        assert b.overrides == {"rounds": 9, "gamma": 3.0}
        assert a.overrides["rounds"] == 5  # original untouched
