"""Sweep contracts: parallel determinism, resume-after-interrupt, reporting."""

from __future__ import annotations

import json

import pytest

from repro.experiments.reporting import summarize_sweep
from repro.experiments.runner import run_grid, run_scenario
from repro.fl.config import ExperimentConfig
from repro.io.history_io import history_to_dict
from repro.scenarios import (
    RunStore,
    ScenarioSpec,
    SweepRunner,
    expand_grid,
)
from repro.viz.ascii import ascii_sweep_grid


def tiny_base(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="synth-cifar10", num_train=200, num_test=100, num_clients=4,
        participation=0.5, rounds=2, batch_size=32, algorithm="topk",
        compression_ratio=0.2, eval_every=1, seed=3,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def tiny_cells():
    return expand_grid(tiny_base(), {"gamma": [3.0, 5.0], "include_downlink": [False, True]})


def stripped(history) -> dict:
    """History dict minus the wall-clock fields (backend-dependent)."""
    d = history_to_dict(history)
    for rec in d["records"]:
        rec["train_seconds"] = rec["compress_seconds"] = 0.0
    return d


class TestParallelDeterminism:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_4_matches_parallel_1_bitwise(self, executor):
        """The determinism contract: same grid, any parallelism, same cells."""
        serial = SweepRunner(tiny_cells(), parallel=1).run()
        parallel = SweepRunner(tiny_cells(), parallel=4, executor=executor).run()
        assert len(serial) == len(parallel) == 4
        for (sa, ha), (sb, hb) in zip(serial.cells, parallel.cells):
            assert sa == sb  # cell order preserved
            assert stripped(ha) == stripped(hb)

    def test_duplicate_cells_refused(self):
        cells = tiny_cells()
        with pytest.raises(ValueError, match="duplicate"):
            SweepRunner(cells + cells[:1])

    def test_nested_pool_warning(self):
        cells = expand_grid(tiny_base(backend="thread"), {"gamma": [3.0, 5.0]})
        with pytest.warns(UserWarning, match="nested"):
            SweepRunner(cells, parallel=2, executor="process")


class TestResume:
    def test_interrupted_sweep_reruns_only_missing_cells(self, tmp_path):
        cells = tiny_cells()
        store = RunStore(tmp_path / "runs")

        # "Interrupt": only half the grid completed before the kill.
        first = SweepRunner(cells[:2], parallel=1, store=store).run()
        assert first.executed == 2 and first.reused == 0

        seen: list[tuple[str, bool]] = []
        full = SweepRunner(
            cells, parallel=2, store=store,
            progress=lambda spec, cached: seen.append((spec.name, cached)),
        ).run()
        assert full.executed == 2 and full.reused == 2
        cached_names = {name for name, cached in seen if cached}
        assert cached_names == {c.name for c in cells[:2]}

        # A third pass is a pure cache read, bit-identical to the second.
        again = SweepRunner(cells, parallel=1, store=store).run()
        assert again.executed == 0 and again.reused == 4
        for (_, ha), (_, hb) in zip(full.cells, again.cells):
            assert stripped(ha) == stripped(hb)

    def test_cached_cells_equal_fresh_cells_bitwise(self, tmp_path):
        cells = tiny_cells()[:2]
        fresh = SweepRunner(cells, parallel=1).run()
        store = RunStore(tmp_path / "runs")
        SweepRunner(cells, parallel=1, store=store).run()
        resumed = SweepRunner(cells, parallel=1, store=store).run()
        # JSON round-trips Python floats exactly, so even wall-clock fields
        # survive the store; fresh-vs-stored differs only in wall clock.
        for (_, hf), (_, hr) in zip(fresh.cells, resumed.cells):
            assert stripped(hf) == stripped(hr)

    def test_torn_store_file_is_rerun_not_crashed(self, tmp_path):
        cells = tiny_cells()[:1]
        store = RunStore(tmp_path / "runs")
        SweepRunner(cells, parallel=1, store=store).run()
        path = store.path_for(cells[0])
        path.write_text(path.read_text()[: 40])  # simulate a kill mid-write
        assert not store.completed(cells[0])
        report = SweepRunner(cells, parallel=1, store=store).run()
        assert report.executed == 1
        assert store.completed(cells[0])  # healed

    def test_foreign_json_in_store_dir_is_ignored(self, tmp_path):
        cells = tiny_cells()[:1]
        store = RunStore(tmp_path / "runs")
        SweepRunner(cells, parallel=1, store=store).run()
        (store.root / "notes.json").write_text("[]")  # non-object JSON
        store.path_for(cells[0]).write_text("[1, 2]")  # even a hash-named one
        assert not store.completed(cells[0])
        assert store.completed_hashes() == set()
        report = SweepRunner(cells, parallel=1, store=store).run()
        assert report.executed == 1  # healed, not crashed

    def test_store_file_carries_spec_and_history(self, tmp_path):
        cells = tiny_cells()[:1]
        store = RunStore(tmp_path / "runs")
        SweepRunner(cells, parallel=1, store=store).run()
        data = json.loads(store.path_for(cells[0]).read_text())
        assert data["completed"] is True
        assert data["spec"]["overrides"]["gamma"] == 3.0
        assert data["history"]["records"]
        assert store.completed_hashes() == {cells[0].spec_hash()}


class TestReport:
    def test_rankings_marginals_frontier(self):
        report = SweepRunner(tiny_cells(), parallel=1).run()
        ranked = report.best_cells(metric="final")
        assert len(ranked) == 4
        assert all(ranked[i][2] >= ranked[i + 1][2] for i in range(3))

        marg = report.marginals()
        assert set(marg) == {"gamma", "include_downlink"}
        assert all(stats["n"] == 2.0 for stats in marg["gamma"].values())

        frontier = report.time_to_accuracy_frontier(0.05)
        times = [t for _, t in frontier if t is not None]
        assert times == sorted(times)

        pareto = report.pareto_frontier()
        assert pareto
        accs = [acc for *_, acc in pareto]
        assert accs == sorted(accs)  # strictly improving along the frontier

    def test_summarize_and_ascii_grid(self):
        report = SweepRunner(tiny_cells(), parallel=1).run()
        text = summarize_sweep(report, target=0.05)
        assert "top cells" in text
        assert "marginal over gamma" in text
        assert "t_to_target" in text
        assert "4 cell(s) run" in text

        grid = ascii_sweep_grid(report, "gamma", "include_downlink")
        assert "include_downlink \\ gamma" in grid
        assert "mean final accuracy" in grid
        with pytest.raises(ValueError, match="no cells carry"):
            ascii_sweep_grid(report, "gamma", "nope")

    def test_to_dict_is_jsonable(self):
        report = SweepRunner(tiny_cells()[:1], parallel=1).run()
        data = json.loads(json.dumps(report.to_dict()))
        assert data["cells"][0]["final_accuracy"] is not None


class TestRunnerBridges:
    def test_run_grid_with_store(self, tmp_path):
        report = run_grid(
            tiny_base(), {"gamma": [3.0, 5.0]}, store=str(tmp_path / "runs")
        )
        assert len(report) == 2 and report.executed == 2
        again = run_grid(
            tiny_base(), {"gamma": [3.0, 5.0]}, store=str(tmp_path / "runs")
        )
        assert again.reused == 2

    def test_run_scenario_by_name_with_overrides(self):
        history = run_scenario(
            "paper-baseline", rounds=1, num_train=160, num_test=80,
            num_clients=4, eval_every=1,
        )
        assert len(history) == 1

    def test_run_scenario_accepts_spec(self):
        spec = ScenarioSpec.from_config(tiny_base(rounds=1), name="adhoc")
        assert len(run_scenario(spec)) == 1
