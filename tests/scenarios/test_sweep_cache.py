"""Tests for persistent sweep workers, the worker world cache, and the
nested-pool guard rail (ISSUE 9 satellites b/c)."""

import json
import warnings

import pytest

from repro.fl.config import ExperimentConfig
from repro.io.history_io import history_to_dict
from repro.scenarios.grid import expand_grid
from repro.scenarios.sweep import WORLD_CACHE, SweepRunner, run_cell


def base_config(**overrides):
    kw = dict(
        dataset="synth-cifar10", model="mlp", num_train=200, num_test=100,
        num_clients=4, rounds=2, seed=3, algorithm="topk",
        compression_ratio=0.2,
    )
    kw.update(overrides)
    return ExperimentConfig(**kw)


def canonical(report) -> str:
    """Report as JSON with wall-clock fields stripped, order-stable."""
    cells = []
    for spec, hist in report.cells:
        d = history_to_dict(hist)
        for rec in d["records"]:
            rec.pop("train_seconds", None)
            rec.pop("compress_seconds", None)
        cells.append((spec.name, d))
    return json.dumps(cells, sort_keys=True)


def two_world_grid():
    """A grid spanning two dataset keys (two betas) × three ratios."""
    return expand_grid(
        base_config(),
        {"beta": [0.5, 0.1], "compression_ratio": [0.1, 0.2, 0.3]},
    )


class TestCachedSweepBitIdentity:
    def test_cached_matches_uncached_across_two_worlds(self):
        specs = two_world_grid()
        cold = [
            run_cell(s.to_dict(), use_cache=False) for s in specs
        ]
        warm = [run_cell(s.to_dict()) for s in specs]
        for c, w in zip(cold, warm):
            for rec in c["records"] + w["records"]:
                rec.pop("train_seconds", None)
                rec.pop("compress_seconds", None)
        assert cold == warm

    def test_worker_cache_hits_within_one_process(self):
        WORLD_CACHE.clear()
        h0, m0 = WORLD_CACHE.stats()["hits"], WORLD_CACHE.stats()["misses"]
        specs = two_world_grid()
        for s in specs:
            run_cell(s.to_dict())
        stats = WORLD_CACHE.stats()
        assert stats["misses"] - m0 == 2  # one build per dataset key
        assert stats["hits"] - h0 == len(specs) - 2

    def test_process_executor_matches_serial(self):
        specs = two_world_grid()
        ref = SweepRunner(specs, parallel=1, executor="serial").run()
        got = SweepRunner(specs, parallel=2, executor="process").run()
        assert canonical(got) == canonical(ref)


class TestPersistentPool:
    def test_pool_survives_across_runs_when_entered(self):
        specs = two_world_grid()
        with SweepRunner(specs, parallel=2, executor="process") as runner:
            first = runner.run()
            pool = runner._pool
            assert pool is not None
            second = runner.run()
            assert runner._pool is pool  # same warm pool, not a new one
        assert runner._pool is None  # closed on exit
        assert canonical(first) == canonical(second)

    def test_pool_single_use_outside_with_block(self):
        specs = two_world_grid()[:2]
        runner = SweepRunner(specs, parallel=2, executor="process")
        runner.run()
        assert runner._pool is None  # historical behavior preserved

    def test_close_idempotent(self):
        runner = SweepRunner(two_world_grid()[:2], parallel=2, executor="process")
        runner.close()
        runner.close()


class TestNestedBackendGuardRail:
    def test_process_cells_forced_serial_with_one_warning(self):
        import repro.scenarios.sweep as sweep_mod

        spec = expand_grid(
            base_config(backend="process", workers=2),
            {"compression_ratio": [0.1, 0.2]},
        )
        ref = [run_cell(s.to_dict()) for s in expand_grid(
            base_config(), {"compression_ratio": [0.1, 0.2]},
        )]
        old = sweep_mod._warned_forced_serial
        sweep_mod._warned_forced_serial = False
        try:
            with pytest.warns(UserWarning, match="nested"):
                got0 = run_cell(spec[0].to_dict(), force_serial_backend=True)
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # second cell: no re-warn
                got1 = run_cell(spec[1].to_dict(), force_serial_backend=True)
        finally:
            sweep_mod._warned_forced_serial = old
        for d in (got0, got1, *ref):
            for rec in d["records"]:
                rec.pop("train_seconds", None)
                rec.pop("compress_seconds", None)
        assert [got0, got1] == ref

    def test_non_process_cells_untouched(self):
        spec = expand_grid(base_config(backend="thread", workers=2), {})[0]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_cell(spec.to_dict(), force_serial_backend=True)

    def test_runner_constructor_still_warns_on_busy_backends(self):
        specs = expand_grid(
            base_config(backend="process", workers=2),
            {"compression_ratio": [0.1, 0.2]},
        )
        with pytest.warns(UserWarning, match="nested"):
            SweepRunner(specs, parallel=2, executor="process")
