"""mega-fleet finally lives up to its name: a million clients, zero eager
materialization. The latent cap (the registry entry used to be sized to
what per-client construction survived: 40 clients) is gone; these tests pin
that constructing the spec — and even the full simulation — touches no
client objects, so the cap can never silently return."""

from __future__ import annotations

from repro.fl.simulation import Simulation
from repro.scenarios import get_scenario


def test_spec_is_fleet_scale_and_materializes_nothing():
    spec = get_scenario("mega-fleet")
    cfg = spec.to_config()  # config only — no dataset, clients, or model
    assert cfg.num_clients == 1_000_000
    assert cfg.clients_per_round == 10_000
    assert cfg.virtual_shards  # fleet dwarfs the corpus by design
    assert cfg.num_train < cfg.num_clients


def test_simulation_constructs_without_hydrating_a_single_client():
    cfg = get_scenario("mega-fleet").to_config()
    with Simulation(cfg) as sim:
        assert sim.population.num_clients == 1_000_000
        assert len(sim.clients) == 1_000_000
        assert sim.clients.hydrations == 0  # columns only, no Client objects
        assert sim.compressors.resident == 0
        assert sim.partition is None
        # The fleet's whole footprint is six numpy columns: 37 bytes/client.
        assert sim.population.memory_bytes() == 1_000_000 * 37
