"""SweepReport edge cases feeding the renderer: failed/empty/degenerate grids.

The happy-path grid analytics are covered in test_sweep.py; these pin the
paths a real sweep can produce — cells whose runs recorded nothing, runs
without evaluations, one-cell sweeps — end to end through ``best_cells``/
``marginals``/``pareto_frontier`` and the HTML sweep section they feed.
"""

from __future__ import annotations

from repro.fl.config import ExperimentConfig
from repro.fl.history import History, RoundRecord
from repro.network.metrics import RoundTimes
from repro.report import sweep_section
from repro.scenarios import ScenarioSpec, SweepReport, expand_grid


def record(i: int, acc: float | None) -> RoundRecord:
    return RoundRecord(
        round_index=i, selected=(0,), train_loss=1.0, test_accuracy=acc,
        times=RoundTimes(actual=1.0, maximum=1.0, minimum=1.0),
        ratios=(0.2,), weights=(1.0,), singleton_fraction=None,
        train_seconds=0.0, compress_seconds=0.0,
        sim_start=float(i), sim_end=float(i) + 1.0,
    )


def history(accs) -> History:
    h = History()
    for i, acc in enumerate(accs):
        h.append(record(i, acc))
    return h


def grid(axes: dict) -> list[ScenarioSpec]:
    cfg = ExperimentConfig(
        dataset="synth-cifar10", num_train=200, num_test=100, num_clients=4,
        rounds=2, algorithm="topk", compression_ratio=0.2, seed=3,
    )
    return expand_grid(cfg, axes)


class TestAllFailedCells:
    """Every cell's history is empty (e.g. all runs died before round 0)."""

    def report(self) -> SweepReport:
        specs = grid({"gamma": [3.0, 5.0]})
        return SweepReport(cells=[(s, History()) for s in specs], executed=2)

    def test_analytics_are_empty_not_errors(self):
        rep = self.report()
        assert rep.best_cells() == []
        assert rep.marginals() == {"gamma": {}}
        assert rep.pareto_frontier() == []
        assert rep.time_to_accuracy_frontier(0.5) == [
            (spec, None) for spec, _ in rep.cells
        ]

    def test_renderer_degrades_to_message(self):
        out = sweep_section(self.report(), target=0.5)
        assert "No evaluated cells" in out
        assert "never reached" in out


class TestMissingAccuracyMode:
    """Runs that trained but never evaluated (eval_every > rounds)."""

    def report(self) -> SweepReport:
        specs = grid({"gamma": [3.0, 5.0]})
        cells = [
            (specs[0], history([None, None])),  # trained, no evals
            (specs[1], history([0.2, 0.4])),
        ]
        return SweepReport(cells=cells, executed=2)

    def test_unevaluated_cells_drop_out_of_rankings(self):
        rep = self.report()
        ranked = rep.best_cells()
        assert [spec for spec, _, _ in ranked] == [rep.cells[1][0]]
        assert rep.best_cells(metric="best")[0][2] == 0.4

    def test_marginals_skip_unevaluated_cells(self):
        marg = self.report().marginals()["gamma"]
        assert list(marg) == [5.0]
        assert marg[5.0]["n"] == 1.0

    def test_pareto_frontier_skips_unevaluated_cells(self):
        frontier = self.report().pareto_frontier()
        assert len(frontier) == 1
        assert frontier[0][3] == 0.4

    def test_renderer_keeps_the_evaluated_cell(self):
        out = sweep_section(self.report())
        assert "Top cells" in out
        assert "gamma=5" in out


class TestSingleCellSweep:
    def report(self) -> SweepReport:
        (spec,) = grid({"gamma": [3.0]})
        return SweepReport(cells=[(spec, history([0.1, 0.3]))], executed=1)

    def test_one_cell_is_its_own_frontier(self):
        rep = self.report()
        assert len(rep.best_cells()) == 1
        assert len(rep.pareto_frontier()) == 1
        assert rep.marginals()["gamma"][3.0]["mean_final"] == 0.3

    def test_renderer_handles_single_value_axes(self):
        out = sweep_section(self.report(), target=0.2)
        assert "Marginal over gamma" in out
        assert "heatmap" not in out  # one axis → no grid


class TestEmptySweep:
    def test_zero_cells(self):
        rep = SweepReport()
        assert rep.best_cells() == []
        assert rep.marginals() == {}
        assert rep.pareto_frontier() == []
        assert "No evaluated cells" in sweep_section(rep)
