"""Grid expansion: typed axes, deterministic order, seed replication."""

from __future__ import annotations

import pytest

from repro.fl.config import ExperimentConfig
from repro.scenarios import ScenarioSpec, cell_label, expand_grid, parse_axis


class TestParseAxis:
    def test_typed_values(self):
        name, values = parse_axis("gamma=3,5,7")
        assert name == "gamma" and values == [3.0, 5.0, 7.0]

    def test_bool_axis_is_really_boolean(self):
        # The cli-sweep bug this parser fixes: bool("false") is True.
        _, values = parse_axis("include_downlink=false,true")
        assert values == [False, True]

    def test_noneable_axis(self):
        _, values = parse_axis("deadline_s=none,2.5")
        assert values == [None, 2.5]

    def test_malformed(self):
        with pytest.raises(ValueError, match="field=v1,v2"):
            parse_axis("gamma")
        with pytest.raises(ValueError, match="no values"):
            parse_axis("gamma=")
        with pytest.raises(ValueError, match="unknown config field"):
            parse_axis("gamme=3")


class TestExpandGrid:
    def test_cartesian_product_and_order(self):
        cells = expand_grid(
            ExperimentConfig(), {"gamma": [3, 5], "alpha": [0.1, 0.3]}
        )
        assert len(cells) == 4
        # Last axis varies fastest, deterministically.
        assert [c.axes for c in cells] == [
            {"gamma": 3.0, "alpha": 0.1},
            {"gamma": 3.0, "alpha": 0.3},
            {"gamma": 5.0, "alpha": 0.1},
            {"gamma": 5.0, "alpha": 0.3},
        ]
        assert cells[0].name == "grid[gamma=3.0,alpha=0.1]"
        assert cells[0].to_config().gamma == 3.0

    def test_seed_replication_from_base_seed(self):
        base = ScenarioSpec(name="b", overrides={"seed": 10})
        cells = expand_grid(base, {"gamma": [3]}, seeds=3)
        assert [c.to_config().seed for c in cells] == [10, 11, 12]
        assert all("seed" in c.axes for c in cells)

    def test_explicit_seed_sequence(self):
        cells = expand_grid(ExperimentConfig(), {}, seeds=[4, 9])
        assert [c.to_config().seed for c in cells] == [4, 9]

    def test_seed_axis_conflicts_with_seeds(self):
        with pytest.raises(ValueError, match="already a grid axis"):
            expand_grid(ExperimentConfig(), {"seed": [0, 1]}, seeds=2)

    def test_base_overrides_survive(self):
        base = ScenarioSpec(name="b", overrides={"algorithm": "topk", "rounds": 9})
        cells = expand_grid(base, {"compression_ratio": [0.1, 0.2]})
        for c in cells:
            cfg = c.to_config()
            assert cfg.algorithm == "topk" and cfg.rounds == 9

    def test_string_values_typed(self):
        cells = expand_grid(ExperimentConfig(), {"include_downlink": ["false", "true"]})
        assert [c.to_config().include_downlink for c in cells] == [False, True]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            expand_grid(ExperimentConfig(), {"gamma": []})

    def test_cell_label(self):
        assert cell_label({"gamma": 3.0, "seed": 1}) == "gamma=3.0,seed=1"
