"""The built-in scenario registry: validity, coverage, and the compressor override."""

from __future__ import annotations

import pytest

from repro.fl.config import MODES, ExperimentConfig
from repro.fl.simulation import Simulation
from repro.scenarios import (
    REGISTRY,
    ScenarioRegistry,
    ScenarioSpec,
    available_scenarios,
    get_scenario,
    scenarios_by_tag,
)


class TestBuiltins:
    def test_every_builtin_builds_a_valid_config(self):
        for spec in REGISTRY:
            cfg = spec.to_config()  # raises on any cross-field violation
            assert cfg.rounds >= 1

    def test_every_builtin_is_documented(self):
        for spec in REGISTRY:
            assert len(spec.description) > 40, spec.name
            assert len(spec.expected) > 20, spec.name
            assert spec.tags, spec.name

    def test_registry_covers_every_protocol_mode(self):
        modes = {spec.to_config().mode for spec in REGISTRY}
        assert modes == set(MODES)

    def test_at_least_ten_builtins_with_unique_hashes(self):
        assert len(REGISTRY) >= 10
        hashes = [s.spec_hash() for s in REGISTRY]
        assert len(set(hashes)) == len(hashes)

    def test_by_tag_and_get(self):
        assert get_scenario("straggler-storm").to_config().contention == "fair"
        assert {s.name for s in scenarios_by_tag("hier")} >= {
            "edge-quantized", "wan-hierarchy"
        }
        assert "paper-baseline" in available_scenarios()

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            get_scenario("nope")


class TestRegistryObject:
    def test_duplicate_name_refused(self):
        reg = ScenarioRegistry()
        reg.register(ScenarioSpec(name="x", overrides={"rounds": 2}))
        with pytest.raises(ValueError, match="already registered"):
            reg.register(ScenarioSpec(name="x"))

    def test_invalid_config_refused_at_registration(self):
        reg = ScenarioRegistry()
        with pytest.raises(ValueError):
            # contention='fair' without server_ingress_mbps is invalid.
            reg.register(ScenarioSpec(name="bad", overrides={"contention": "fair"}))


class TestCompressorOverride:
    def test_config_validates_registry_name(self):
        with pytest.raises(ValueError, match="compressor must be one of"):
            ExperimentConfig(algorithm="topk", compressor="nope")

    def test_fedavg_rejects_override(self):
        with pytest.raises(ValueError, match="compressing algorithm"):
            ExperimentConfig(algorithm="fedavg", compressor="qsgd8")

    def test_override_reaches_clients_and_prices_quantized(self):
        """8-bit quantized uplinks move ~4x fewer bits than 32-bit sparse-at-1.0."""
        base = dict(
            dataset="synth-cifar10", num_train=160, num_test=80, num_clients=4,
            participation=0.5, rounds=1, batch_size=32, algorithm="topk",
            compression_ratio=1.0, eval_every=1,
        )
        dense = Simulation(ExperimentConfig(**base))
        quant = Simulation(ExperimentConfig(**base, compressor="qsgd8"))
        assert type(quant.compressors[0]).__name__ == "QSGDQuantizer"
        hd = dense.run()
        hq = quant.run()
        dense_bits = hd.records[0].comm.uplink_bits
        quant_bits = hq.records[0].comm.uplink_bits
        # topk at ratio 1.0 ships (32-bit index, 32-bit value) pairs = 64 d
        # bits per client; qsgd8 ships 8 d bits — an exact 8x reduction.
        assert quant_bits == pytest.approx(dense_bits / 8.0)

    def test_run_comparison_drops_override_for_fedavg_baseline(self):
        """Comparing a compressor scenario against dense FedAvg must not
        trip fedavg's compressor-override rejection."""
        from repro.experiments.runner import run_comparison

        base = ExperimentConfig(
            dataset="synth-cifar10", num_train=160, num_test=80, num_clients=4,
            participation=0.5, rounds=1, batch_size=32, algorithm="topk",
            compressor="qsgd8", compression_ratio=0.5, eval_every=1,
        )
        results = run_comparison(base, ["fedavg", "topk"])
        assert set(results) == {"fedavg", "topk"}

    def test_edge_quantized_scenario_runs_hier_with_qsgd(self):
        spec = get_scenario("edge-quantized").with_overrides(
            rounds=1, num_train=160, num_test=80, num_clients=4, num_edges=2
        )
        from repro.simtime import make_simulation

        with make_simulation(spec.to_config()) as sim:
            history = sim.run()
        rec = history.records[0]
        assert rec.edge_breakdown is not None  # really hierarchical
        assert rec.comm.uplink_bits > 0
