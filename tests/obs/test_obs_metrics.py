"""MetricsRegistry instruments, snapshots, and both export formats."""

from __future__ import annotations

import json

import pytest

from repro.obs import NULL_METRICS, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("wire_bits", kind="sparse")
        c.inc(100.0)
        c.inc(50.0)
        assert reg.value("wire_bits", kind="sparse") == 150.0
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_labels_key_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("wire_bits", kind="dense").inc(1)
        reg.counter("wire_bits", kind="sparse").inc(2)
        assert reg.value("wire_bits", kind="dense") == 1
        assert reg.value("wire_bits", kind="sparse") == 2
        assert len(reg) == 2

    def test_gauge_tracks_peak(self):
        reg = MetricsRegistry()
        g = reg.gauge("ingress_depth")
        g.set(3)
        g.set(9)
        g.set(2)
        assert g.value == 2.0
        assert g.peak == 9.0

    def test_histogram_buckets_and_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.7, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.bucket_counts == [1, 2, 1]  # <=0.1, <=1.0, +inf
        assert h.min == 0.05 and h.max == 5.0
        assert abs(h.mean() - (0.05 + 0.5 + 0.7 + 5.0) / 4) < 1e-12

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_null_metrics_is_inert(self):
        NULL_METRICS.counter("a", k="v").inc(5)
        NULL_METRICS.gauge("b").set(1)
        NULL_METRICS.histogram("c").observe(2)
        NULL_METRICS.snapshot(0)
        assert NULL_METRICS.counter("a").current() == 0.0
        assert not NULL_METRICS.enabled


class TestSnapshotsAndExport:
    def test_snapshots_freeze_per_round_values(self):
        reg = MetricsRegistry()
        c = reg.counter("rounds_completed")
        c.inc()
        reg.snapshot(0)
        c.inc()
        reg.snapshot(1)
        assert [s["round"] for s in reg.snapshots] == [0, 1]
        assert reg.snapshots[0]["values"]["rounds_completed"] == 1.0
        assert reg.snapshots[1]["values"]["rounds_completed"] == 2.0

    def test_json_export(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("wire_bits", kind="sparse").inc(42)
        reg.histogram("t", buckets=(1.0,)).observe(0.5)
        reg.snapshot(0)
        path = tmp_path / "metrics.json"
        reg.export_json(path)
        doc = json.loads(path.read_text())
        assert doc["schema"] == 1
        by_name = {(m["name"], tuple(m["labels"].items())): m for m in doc["metrics"]}
        assert by_name[("wire_bits", (("kind", "sparse"),))]["value"] == 42
        hist = by_name[("t", ())]
        assert hist["count"] == 1 and hist["buckets"][0]["count"] == 1
        assert doc["snapshots"][0]["round"] == 0

    def test_prometheus_export(self):
        reg = MetricsRegistry()
        reg.counter("wire_bits", kind="sparse").inc(42)
        reg.gauge("ingress_depth").set(3)
        reg.histogram("task_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = reg.to_prometheus()
        assert '# TYPE wire_bits counter' in text
        assert 'wire_bits_total{kind="sparse"} 42' in text
        assert "ingress_depth 3" in text
        # Histogram buckets are cumulative, with +Inf closing the series.
        assert 'task_seconds_bucket{le="0.1"} 0' in text
        assert 'task_seconds_bucket{le="1"} 1' in text
        assert 'task_seconds_bucket{le="+Inf"} 1' in text
        assert "task_seconds_sum 0.5" in text
        assert "task_seconds_count 1" in text
