"""The observability determinism contract.

Tracing and metrics must never touch the seeded RNG streams or the
simulated timeline: a run with full instrumentation enabled is
bit-identical to the same run with the null observers, on every
execution backend and every protocol mode.
"""

from __future__ import annotations

import pytest

from repro.fl.config import ExperimentConfig
from repro.obs import NULL_OBS, MetricsRegistry, Obs, Tracer
from repro.simtime import make_simulation

BACKENDS = ("serial", "thread", "process")
MODES = ("sync", "semisync", "async", "hier")

#: Deterministic record fields; train/compress_seconds are wall clock.
RECORD_FIELDS = (
    "round_index",
    "selected",
    "train_loss",
    "test_accuracy",
    "times",
    "ratios",
    "weights",
    "singleton_fraction",
    "sim_start",
    "sim_end",
    "mean_staleness",
)


def small_config(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="synth-cifar10",
        model="mlp",
        num_train=240,
        num_test=120,
        num_clients=6,
        participation=0.5,
        rounds=3,
        batch_size=32,
        algorithm="bcrs_opwa",
        compression_ratio=0.1,
        seed=3,
        eval_every=1,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def run_history(config: ExperimentConfig, obs=None):
    with make_simulation(config, obs=obs) as sim:
        return sim.run()


def assert_histories_identical(a, b) -> None:
    assert len(a) == len(b)
    for ra, rb in zip(a.records, b.records):
        for field in RECORD_FIELDS:
            assert getattr(ra, field, None) == getattr(rb, field, None), field


class TestTracingDeterminism:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_traced_run_is_bit_identical(self, backend, mode):
        cfg = small_config(mode=mode, backend=backend, workers=2)
        plain = run_history(cfg)
        traced = run_history(cfg, obs=Obs(Tracer(), MetricsRegistry()))
        assert_histories_identical(plain, traced)

    def test_traced_run_actually_recorded_spans_and_metrics(self):
        obs = Obs(Tracer(), MetricsRegistry())
        run_history(small_config(), obs=obs)
        names = {s.name for s in obs.tracer.spans}
        assert {"round", "sample", "exec.round", "aggregate"} <= names
        assert obs.metrics.value("rounds_completed") == 3

    def test_metrics_only_obs_is_enabled(self):
        obs = Obs(metrics=MetricsRegistry())
        assert obs.enabled
        run_history(small_config(rounds=1), obs=obs)
        assert obs.metrics.value("tasks_executed") == 3  # 6 clients * 0.5

    def test_null_obs_records_nothing(self):
        assert not NULL_OBS.enabled
        run_history(small_config(rounds=1), obs=NULL_OBS)
        assert NULL_OBS.tracer.spans == ()
