"""SweepProgress live status line: counts, ETA, rendering."""

from __future__ import annotations

import io

from repro.obs import SweepProgress


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make(total=4, parallel=1):
    clock = FakeClock()
    stream = io.StringIO()
    prog = SweepProgress(total, parallel=parallel, stream=stream, clock=clock)
    return prog, clock, stream


class TestCounts:
    def test_lifecycle_counts(self):
        prog, clock, _ = make(total=3)
        prog.on_start("a")
        prog.on_start("b")
        assert prog.running == 2
        prog.on_result("a", {"ok": True})
        assert prog.done == 1 and prog.running == 1
        prog.on_result("b", None)
        assert prog.failed == 1 and prog.running == 0
        prog.on_result("c", {"ok": True}, cached=True)
        assert prog.cached == 1 and prog.done == 2

    def test_eta_uses_mean_cell_time_and_parallelism(self):
        prog, clock, _ = make(total=5, parallel=2)
        assert prog.eta_seconds() is None  # nothing finished yet
        prog.on_start("a")
        clock.now = 10.0
        prog.on_result("a", {"ok": True})
        # 4 cells left at 10 s/cell over 2 workers.
        assert abs(prog.eta_seconds() - 20.0) < 1e-9

    def test_cached_cells_do_not_skew_eta(self):
        prog, clock, _ = make(total=4)
        prog.on_start("a")
        clock.now = 8.0
        prog.on_result("a", {"ok": True})
        prog.on_result("b", {"ok": True}, cached=True)  # instant, never started
        assert abs(prog.eta_seconds() - 2 * 8.0) < 1e-9


class TestRendering:
    def test_line_contents(self):
        prog, clock, _ = make(total=4)
        prog.on_start("a")
        clock.now = 6.0
        prog.on_result("a", {"ok": True})
        prog.on_start("b")
        line = prog.line()
        assert "sweep 1/4" in line
        assert "1 running" in line
        assert "6.0s/cell" in line
        assert "eta" in line

    def test_render_is_carriage_return_line(self):
        prog, _, stream = make(total=2)
        prog.on_start("a")
        out = stream.getvalue()
        assert out.startswith("\r")
        assert "sweep 0/2" in out

    def test_close_ends_with_newline(self):
        prog, _, stream = make(total=1)
        prog.on_result("a", {"ok": True})
        prog.close()
        assert stream.getvalue().endswith("\n")

    def test_eta_formatting(self):
        prog, _, _ = make()
        assert prog._fmt_eta(75.0) == "1:15"
        assert prog._fmt_eta(3725.0) == "1:02:05"


class TestAllCachedSweep:
    """A fully-resumed sweep has zero live completions to average over."""

    def test_eta_is_zero_when_everything_was_cached(self):
        prog, _, _ = make(total=3)
        for name in ("a", "b", "c"):
            prog.on_result(name, {"ok": True}, cached=True)
        assert prog.eta_seconds() == 0.0

    def test_line_reports_cached_cells_without_rate(self):
        prog, _, stream = make(total=3)
        for name in ("a", "b", "c"):
            prog.on_result(name, {"ok": True}, cached=True)
        line = prog.line()
        assert "sweep 3/3" in line
        assert "3 cached" in line
        prog.close()
        assert stream.getvalue().endswith("\n")

    def test_eta_unknown_while_only_cached_cells_landed(self):
        prog, clock, _ = make(total=4)
        prog.on_result("a", {"ok": True}, cached=True)
        assert prog.eta_seconds() is None  # no timed completion yet
        prog.on_start("b")
        clock.now = 5.0
        prog.on_result("b", {"ok": True})
        assert prog.eta_seconds() is not None
