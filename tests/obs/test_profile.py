"""Hot-spot self-time profiling and lane utilization."""

from __future__ import annotations

from repro.obs import Span, format_profile, lane_utilization, profile_spans


def span(name, start, end, tid=0, cat="sim"):
    return Span(name=name, cat=cat, start=start, end=end, tid=tid)


class TestSelfTime:
    def test_nested_spans_attribute_self_time_to_children(self):
        spans = [
            span("round", 0.0, 10.0),
            span("train", 1.0, 4.0),
            span("aggregate", 5.0, 9.0),
        ]
        by_name = {h.name: h for h in profile_spans(spans)}
        assert by_name["round"].total_s == 10.0
        assert by_name["round"].self_s == 10.0 - 3.0 - 4.0
        assert by_name["train"].self_s == 3.0
        assert by_name["aggregate"].self_s == 4.0

    def test_grandchildren_subtract_from_immediate_parent_only(self):
        spans = [
            span("round", 0.0, 10.0),
            span("train", 1.0, 6.0),
            span("io", 2.0, 3.0),  # nested inside train
        ]
        by_name = {h.name: h for h in profile_spans(spans)}
        assert by_name["round"].self_s == 5.0  # 10 - train(5)
        assert by_name["train"].self_s == 4.0  # 5 - io(1)
        assert by_name["io"].self_s == 1.0

    def test_lanes_are_independent(self):
        spans = [
            span("task", 0.0, 4.0, tid=1),
            span("task", 0.0, 4.0, tid=2),  # same times, other lane: no nesting
        ]
        (hot,) = profile_spans(spans)
        assert hot.count == 2
        assert hot.self_s == 8.0

    def test_ranking_and_top(self):
        spans = [span("big", 0.0, 9.0), span("small", 10.0, 11.0)]
        ranked = profile_spans(spans)
        assert [h.name for h in ranked] == ["big", "small"]
        assert [h.name for h in profile_spans(spans, top=1)] == ["big"]


class TestUtilization:
    def test_busy_fraction_merges_overlaps(self):
        spans = [
            span("a", 0.0, 4.0, tid=1),
            span("b", 2.0, 6.0, tid=1),  # overlap 2-4 counted once
            span("c", 0.0, 10.0, tid=2),
        ]
        util = lane_utilization(spans)
        assert abs(util[1] - 0.6) < 1e-12  # 6s busy over 10s extent
        assert abs(util[2] - 1.0) < 1e-12

    def test_format_profile_renders_table(self):
        spans = [span("round", 0.0, 2.0), span("train", 0.5, 1.5)]
        text = format_profile(spans, top=5)
        assert "round" in text and "train" in text
        assert "lane" in text
        assert format_profile([]) == "trace contains no wall-clock spans"


class TestZeroDurationEdges:
    """Degenerate traces must yield well-defined values, not ZeroDivision."""

    def test_utilization_of_empty_trace_is_empty(self):
        assert lane_utilization([]) == {}

    def test_single_instant_span_is_zero_utilization(self):
        util = lane_utilization([span("tick", 1.0, 1.0)])
        assert util == {0: 0.0}

    def test_zero_extent_multi_lane_trace(self):
        spans = [span("a", 2.0, 2.0, tid=1), span("b", 2.0, 2.0, tid=2)]
        assert lane_utilization(spans) == {1: 0.0, 2: 0.0}

    def test_format_profile_on_single_instant_span(self):
        text = format_profile([span("tick", 1.0, 1.0)])
        assert "tick" in text
        assert "0.0%" in text  # share of a zero extent is defined as zero

    def test_profile_spans_on_zero_durations(self):
        (hot,) = profile_spans([span("tick", 1.0, 1.0)] * 3)
        assert hot.count == 3
        assert hot.total_s == hot.self_s == hot.mean_s == hot.max_s == 0.0
