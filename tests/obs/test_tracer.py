"""Tracer span recording, Chrome/JSONL export, and round-trip loading."""

from __future__ import annotations

import json

from repro.obs import NULL_TRACER, Span, Tracer, load_trace
from repro.obs.tracer import VIRTUAL_PID, WALL_PID


class TestTracer:
    def test_span_context_manager_records_interval(self):
        tracer = Tracer()
        with tracer.span("work", cat="test", round=3):
            pass
        assert len(tracer.spans) == 1
        s = tracer.spans[0]
        assert s.name == "work"
        assert s.cat == "test"
        assert s.args == {"round": 3}
        assert s.end >= s.start

    def test_add_span_and_instant(self):
        tracer = Tracer()
        tracer.add_span("task", 1.0, 2.5, cat="exec", tid=42, cid=7)
        tracer.instant("evict", cat="pop", cid=9)
        assert tracer.spans[0].dur == 1.5
        assert tracer.spans[0].tid == 42
        assert tracer.instants[0].name == "evict"

    def test_chrome_export_structure(self, tmp_path):
        tracer = Tracer()
        tracer.name_lane(42, "worker-42")
        tracer.add_span("task", tracer.epoch, tracer.epoch + 0.5, tid=42)
        with tracer.span("outer"):
            pass
        path = tmp_path / "trace.json"
        tracer.export_chrome(path)
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc
        phases = {ev["ph"] for ev in doc["traceEvents"]}
        assert "X" in phases and "M" in phases
        xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert all(ev["pid"] == WALL_PID for ev in xs)
        # ts/dur are microseconds relative to the tracer epoch.
        task = next(ev for ev in xs if ev["name"] == "task")
        assert task["ts"] == 0.0
        assert abs(task["dur"] - 5e5) < 1.0
        names = [
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        ]
        assert "worker-42" in names

    def test_virtual_spans_export_as_second_process(self, tmp_path):
        class FakeSpan:
            def __init__(self, cid, kind, start, end, tag):
                self.cid, self.kind, self.start, self.end, self.tag = (
                    cid, kind, start, end, tag,
                )

        class FakeLog:
            spans = [FakeSpan(1, "train", 0.0, 2.0, 0), FakeSpan(1, "upload", 2.0, 3.0, 0)]

        tracer = Tracer()
        tracer.add_virtual_spans(FakeLog())
        doc = tracer.to_chrome()
        virt = [ev for ev in doc["traceEvents"] if ev.get("pid") == VIRTUAL_PID]
        assert any(ev["ph"] == "X" and ev["name"] == "train" for ev in virt)

    def test_load_trace_round_trips_both_formats(self, tmp_path):
        tracer = Tracer()
        tracer.add_span("a", tracer.epoch + 0.1, tracer.epoch + 0.3, cat="c", tid=5)
        chrome, jsonl = tmp_path / "t.json", tmp_path / "t.jsonl"
        tracer.export_chrome(chrome)
        tracer.export_jsonl(jsonl)
        for path in (chrome, jsonl):
            spans = load_trace(path)
            assert len(spans) == 1
            s = spans[0]
            assert isinstance(s, Span)
            assert s.name == "a" and s.tid == 5
            assert abs(s.dur - 0.2) < 1e-6

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", cat="x", k=1) as cm:
            assert cm is not None
        NULL_TRACER.add_span("a", 0, 1)
        NULL_TRACER.instant("i")
        assert NULL_TRACER.spans == ()
        assert not NULL_TRACER.enabled
        # The disabled path hands out one shared context manager.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
