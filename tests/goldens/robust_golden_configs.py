"""The configs behind the robustness golden histories.

Every protocol mode × {honest, sign_flip, lossy}: the honest variants pin
the default path (no adversary, no faults, plain weighted mean), the
``sign_flip`` variants pin the byzantine + robust-aggregation machinery,
and the ``lossy`` variants pin transport fault injection — drop/truncate
for the flat modes, an edge crash for hier (where per-flow faults are
rejected by construction and loss means losing an aggregator).

Unlike the frozen pre-refactor traces in ``tests/population/goldens``,
these goldens are build products of the current tree: regenerate with
``scripts/regen_goldens.py`` (or ``REGEN_GOLDEN=1 pytest tests/goldens``)
after any *intentional* change to the trace.
"""

from __future__ import annotations

from repro.fl.config import ExperimentConfig

__all__ = ["ROBUST_GOLDEN_CONFIGS", "PARALLEL_REPRESENTATIVES", "golden_name"]


def _cfg(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="synth-cifar10",
        model="mlp",
        num_train=480,
        num_test=160,
        num_clients=12,
        participation=0.5,
        rounds=3,
        batch_size=32,
        lr=0.1,
        seed=11,
        eval_every=2,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


#: mode → protocol-shaping overrides (mirrors the population goldens).
_MODES: dict[str, dict] = {
    "sync": dict(algorithm="bcrs_opwa", compression_ratio=0.1),
    "semisync": dict(
        algorithm="eftopk",
        compression_ratio=0.2,
        mode="semisync",
        deadline_quantile=0.6,
        late_policy="carryover",
        rounds=4,
    ),
    "async": dict(
        algorithm="topk",
        compression_ratio=0.2,
        mode="async",
        concurrency=4,
        buffer_size=2,
        rounds=4,
    ),
    "hier": dict(
        algorithm="bcrs_opwa",
        compression_ratio=0.1,
        mode="hier",
        num_edges=3,
        edge_rounds=2,
        rounds=3,
    ),
}


def _variant(mode: str, variant: str) -> dict:
    if variant == "honest":
        return {}
    if variant == "sign_flip":
        return dict(
            adversary="sign_flip",
            adversary_fraction=0.25,
            aggregator="trimmed_mean",
            trim_beta=0.2,
        )
    assert variant == "lossy"
    if mode == "hier":
        # Hier rejects per-flow drop/truncate; its transport loss is a
        # crashing edge aggregator the cloud must recover from.
        return dict(edge_crash_prob=0.3)
    return dict(drop_prob=0.15, truncate_prob=0.25)


#: name → config. Names key the golden JSON files in this directory.
ROBUST_GOLDEN_CONFIGS: dict[str, ExperimentConfig] = {
    f"{mode}-{variant}": _cfg(**{**_MODES[mode], **_variant(mode, variant)})
    for mode in _MODES
    for variant in ("honest", "sign_flip", "lossy")
}

#: One non-honest golden per protocol mode for the (slower) parallel
#: backends; the serial pass covers every golden.
PARALLEL_REPRESENTATIVES = (
    "sync-sign_flip",
    "semisync-lossy",
    "async-sign_flip",
    "hier-lossy",
)


def golden_name(name: str) -> str:
    """Golden JSON filename for config ``name``."""
    return f"{name}.json"
