"""Robustness golden-history suite: adversarial and faulty runs, frozen.

Each ``*.json`` beside this file is the deterministic trace of one
``robust_golden_configs.ROBUST_GOLDEN_CONFIGS`` entry — every protocol
mode × {honest, sign_flip, lossy} — captured by
:mod:`repro.testing.goldens` and replayed here bit-for-bit: serially for
all twelve, and on the thread/process backends for one faulty
representative per mode (adversarial membership and fault fates are pure
functions of ``(seed, stream, counter)``, so the backend must not leak
into the trace).

Regenerate after an intentional trace change with
``scripts/regen_goldens.py`` or ``REGEN_GOLDEN=1 pytest tests/goldens``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from robust_golden_configs import (
    PARALLEL_REPRESENTATIVES,
    ROBUST_GOLDEN_CONFIGS,
    golden_name,
)
from repro.testing.goldens import check_golden, regen_requested, run_trace

GOLDEN_DIR = Path(__file__).parent


@pytest.mark.parametrize("name", sorted(ROBUST_GOLDEN_CONFIGS))
def test_serial_replays_golden(name):
    """Every mode × variant golden, bit-for-bit on the serial backend."""
    trace = run_trace(ROBUST_GOLDEN_CONFIGS[name].with_(backend="serial"))
    check_golden(GOLDEN_DIR / golden_name(name), trace, name=name)


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("name", PARALLEL_REPRESENTATIVES)
def test_parallel_backends_replay_golden(name, backend):
    """Adversarial/faulty traces are backend-invariant, bit-for-bit."""
    if regen_requested():
        pytest.skip("regenerating goldens (serial pass writes them)")
    trace = run_trace(
        ROBUST_GOLDEN_CONFIGS[name].with_(backend=backend, workers=3)
    )
    check_golden(GOLDEN_DIR / golden_name(name), trace, name=name)


def test_goldens_cover_all_modes_and_variants():
    """The suite spans every mode × variant cell (guards golden rot)."""
    cells = {tuple(name.rsplit("-", 1)) for name in ROBUST_GOLDEN_CONFIGS}
    assert cells == {
        (mode, variant)
        for mode in ("sync", "semisync", "async", "hier")
        for variant in ("honest", "sign_flip", "lossy")
    }
    if not regen_requested():
        missing = [
            n
            for n in ROBUST_GOLDEN_CONFIGS
            if not (GOLDEN_DIR / golden_name(n)).exists()
        ]
        assert not missing, f"goldens missing: {missing}"
