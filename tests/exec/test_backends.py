"""Backend equivalence: seeded runs are bit-identical on every backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression.base import SparseUpdate
from repro.core.overlap import overlap_counts
from repro.exec import (
    BACKENDS,
    ClientTask,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    TrainSpec,
    WorkerContext,
    make_backend,
    resolve_workers,
)
from repro.fl.config import ExperimentConfig
from repro.fl.decentralized import DecentralizedSimulation
from repro.fl.simulation import Simulation


def small_config(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="synth-cifar10",
        model="mlp",
        num_train=240,
        num_test=120,
        num_clients=6,
        participation=0.5,
        rounds=3,
        batch_size=32,
        algorithm="bcrs_opwa",
        compression_ratio=0.1,
        seed=3,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def run_history(config: ExperimentConfig):
    with Simulation(config) as sim:
        return sim.run()


def assert_histories_identical(a, b) -> None:
    """Field-by-field equality of the deterministic record fields.

    ``train_seconds``/``compress_seconds`` are wall clock and excluded.
    """
    assert len(a) == len(b)
    for ra, rb in zip(a.records, b.records):
        assert ra.round_index == rb.round_index
        assert ra.selected == rb.selected
        assert ra.train_loss == rb.train_loss
        assert ra.test_accuracy == rb.test_accuracy
        assert ra.times == rb.times
        assert ra.ratios == rb.ratios
        assert ra.weights == rb.weights
        assert ra.singleton_fraction == rb.singleton_fraction


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_bcrs_opwa_matches_serial(self, backend):
        serial = run_history(small_config())
        other = run_history(small_config(backend=backend, workers=2))
        assert_histories_identical(serial, other)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_stateful_ef_compressor_matches_serial(self, backend):
        """Error feedback keeps per-client residual state across rounds."""
        serial = run_history(small_config(algorithm="eftopk", rounds=4, seed=5))
        other = run_history(
            small_config(algorithm="eftopk", rounds=4, seed=5, backend=backend, workers=2)
        )
        assert_histories_identical(serial, other)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_bn_state_model_matches_serial(self, backend):
        """BatchNorm buffers travel through global_states on every backend."""
        cfg = small_config(
            model="small_cnn",
            algorithm="bcrs",
            compression_ratio=0.2,
            num_clients=4,
            num_train=120,
            num_test=60,
            rounds=2,
            batch_size=16,
            seed=1,
        )
        serial = run_history(cfg)
        other = run_history(cfg.with_(backend=backend, workers=2))
        assert_histories_identical(serial, other)

    def test_dense_fedavg_matches_serial(self):
        serial = run_history(small_config(algorithm="fedavg", compression_ratio=1.0))
        proc = run_history(
            small_config(
                algorithm="fedavg", compression_ratio=1.0, backend="process", workers=3
            )
        )
        assert_histories_identical(serial, proc)

    def test_decentralized_rejects_parallel_backend_with_bn_model(self):
        cfg = ExperimentConfig(
            dataset="synth-cifar10",
            model="small_cnn",  # carries BN running stats
            num_train=120,
            num_test=60,
            num_clients=4,
            rounds=2,
            backend="process",
            workers=2,
        )
        with pytest.raises(ValueError, match="persistent buffers"):
            DecentralizedSimulation(cfg)

    def test_decentralized_process_matches_serial(self):
        base = ExperimentConfig(
            dataset="synth-cifar10",
            model="mlp",
            num_train=160,
            num_test=80,
            num_clients=4,
            rounds=2,
            batch_size=32,
            compression_ratio=0.3,
            seed=2,
        )
        with DecentralizedSimulation(base) as a, DecentralizedSimulation(
            base.with_(backend="process", workers=2)
        ) as b:
            a.run()
            b.run()
            np.testing.assert_array_equal(a.params, b.params)
            assert [r.consensus_distance for r in a.history] == [
                r.consensus_distance for r in b.history
            ]


class TestBackendPlumbing:
    def test_make_backend_rejects_unknown_name(self):
        ctx = WorkerContext([], None, model=None)
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_backend("gpu", context=ctx, context_factory=lambda: ctx)

    def test_config_validates_backend_and_workers(self):
        with pytest.raises(ValueError, match="backend"):
            small_config(backend="bogus")
        with pytest.raises(ValueError, match="workers"):
            small_config(workers=0)
        assert small_config(backend="thread", workers=2).backend == "thread"

    def test_backend_class_names_match_registry(self):
        assert set(BACKENDS) == {
            SerialBackend.name,
            ThreadBackend.name,
            ProcessBackend.name,
        }

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)

    def test_close_is_idempotent_and_permanent(self):
        sim = Simulation(small_config(backend="process", workers=2))
        assert sim._backend is None  # created lazily
        sim.run_round()
        assert sim._backend is not None
        sim.close()
        sim.close()  # idempotent
        # Reuse after close would re-fork from stale parent-side client
        # state and silently diverge from serial — it must raise instead.
        with pytest.raises(RuntimeError, match="closed"):
            sim.run_round()

    def test_worker_error_propagates(self):
        cfg = small_config(backend="process", workers=2)
        sim = Simulation(cfg)
        try:
            backend = sim.backend
            bad = [ClientTask(position=0, cid=0, ratio=None, params=None)]
            spec = TrainSpec(lr=0.1, epochs=1)
            with pytest.raises(RuntimeError, match="worker"):
                backend.run_round(bad, None, None, spec)  # no params anywhere
            # A failed round may have advanced state on healthy workers;
            # the backend refuses further rounds instead of diverging.
            with pytest.raises(RuntimeError, match="previous round"):
                backend.run_round(bad, None, None, spec)
        finally:
            sim.close()


class TestOverlapCountsValidation:
    def test_mismatched_dense_size_raises_cleanly(self):
        a = SparseUpdate(
            dense_size=8,
            indices=np.array([0, 3], dtype=np.int64),
            values=np.ones(2, dtype=np.float32),
        )
        b = SparseUpdate(
            dense_size=9,
            indices=np.array([1, 2], dtype=np.int64),
            values=np.ones(2, dtype=np.float32),
        )
        with pytest.raises(ValueError, match="dense_size mismatch: 9 != 8"):
            overlap_counts([a, b])
