"""Tests for quantity-skew partitioning and feature-skew federations."""

import numpy as np
import pytest

from repro.data.federated import make_feature_skew_federation
from repro.data.partition import iid_partition, quantity_skew_partition
from repro.data.stats import mean_emd_to_global


class TestQuantitySkew:
    @pytest.fixture
    def labels(self, rng):
        return rng.integers(0, 10, size=4000)

    def test_covers_all_samples(self, labels):
        part = quantity_skew_partition(labels, 8, skew=0.5, seed=0)
        assert part.sizes().sum() == len(labels)
        allix = np.concatenate(part.client_indices)
        assert len(np.unique(allix)) == len(labels)

    def test_lower_skew_more_imbalanced(self, labels):
        def cv(part):
            s = part.sizes().astype(float)
            return s.std() / s.mean()

        heavy = quantity_skew_partition(labels, 8, skew=0.1, seed=0)
        light = quantity_skew_partition(labels, 8, skew=10.0, seed=0)
        assert cv(heavy) > cv(light)

    def test_labels_stay_near_global(self, labels):
        """Quantity skew must not secretly create label skew."""
        part = quantity_skew_partition(labels, 8, skew=0.5, seed=0, min_size=50)
        assert mean_emd_to_global(part) < 0.2

    def test_min_size_respected(self, labels):
        part = quantity_skew_partition(labels, 8, skew=0.1, seed=0, min_size=20)
        assert part.sizes().min() >= 20

    def test_validation(self, labels):
        with pytest.raises(ValueError):
            quantity_skew_partition(labels, 0, skew=1.0)
        with pytest.raises(ValueError):
            quantity_skew_partition(labels, 4, skew=0.0)
        with pytest.raises(ValueError):
            quantity_skew_partition(labels[:10], 4, skew=1.0, min_size=100)

    def test_determinism(self, labels):
        a = quantity_skew_partition(labels, 6, skew=0.5, seed=4)
        b = quantity_skew_partition(labels, 6, skew=0.5, seed=4)
        np.testing.assert_array_equal(a.sizes(), b.sizes())


class TestFeatureSkewFederation:
    def test_shapes(self):
        fed = make_feature_skew_federation("synth-cifar10", 4, 100, 200, seed=0)
        assert fed.num_clients == 4
        np.testing.assert_array_equal(fed.sizes(), 100)
        assert len(fed.test_set) == 200
        assert fed.client_datasets[0].x.shape[1:] == (3, 8, 8)

    def test_clients_differ_in_features_not_labels(self):
        fed = make_feature_skew_federation(
            "synth-cifar10", 3, 400, 100, skew_strength=1.0, seed=0
        )
        # Same label space everywhere.
        for d in fed.client_datasets:
            assert d.num_classes == 10
        # Class-0 means differ across clients (feature shift)...
        means = []
        for d in fed.client_datasets:
            sel = d.y == 0
            if sel.sum() > 5:
                means.append(d.x[sel].mean(axis=0).ravel())
        assert len(means) >= 2
        assert np.linalg.norm(means[0] - means[1]) > 0.1

    def test_zero_skew_clients_identical_distribution(self):
        fed = make_feature_skew_federation(
            "synth-cifar10", 2, 2000, 100, skew_strength=0.0, seed=0
        )
        m0 = fed.client_datasets[0].x.mean()
        m1 = fed.client_datasets[1].x.mean()
        assert abs(m0 - m1) < 0.05

    def test_determinism(self):
        a = make_feature_skew_federation("synth-svhn", 2, 50, 50, seed=9)
        b = make_feature_skew_federation("synth-svhn", 2, 50, 50, seed=9)
        np.testing.assert_array_equal(a.client_datasets[0].x, b.client_datasets[0].x)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_feature_skew_federation("synth-cifar10", 0, 10, 10)
        with pytest.raises(ValueError):
            make_feature_skew_federation("synth-cifar10", 2, 10, 10, skew_strength=-1)
