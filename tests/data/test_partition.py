"""Tests for partitioning strategies and heterogeneity stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.partition import Partition, dirichlet_partition, iid_partition, shard_partition
from repro.data.stats import (
    earth_movers_distance,
    heatmap_text,
    label_entropy,
    mean_emd_to_global,
    mean_label_entropy,
)


@pytest.fixture
def labels(rng):
    return rng.integers(0, 10, size=5000)


class TestPartitionInvariants:
    def test_no_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Partition([np.array([0, 1]), np.array([1, 2])], np.zeros(3, int), 1)

    @given(st.floats(0.05, 10.0), st.integers(2, 12))
    @settings(max_examples=15, deadline=None)
    def test_dirichlet_covers_all_samples_once(self, beta, num_clients):
        labels = np.random.default_rng(0).integers(0, 5, size=800)
        part = dirichlet_partition(labels, num_clients, beta, seed=1)
        allix = np.concatenate(part.client_indices)
        assert len(allix) == len(labels)
        assert len(np.unique(allix)) == len(labels)

    def test_sizes_sum(self, labels):
        part = dirichlet_partition(labels, 10, 0.5, seed=0)
        assert part.sizes().sum() == len(labels)

    def test_counts_matrix_totals(self, labels):
        part = dirichlet_partition(labels, 10, 0.5, seed=0)
        mat = part.counts_matrix()
        np.testing.assert_array_equal(mat.sum(axis=1), np.bincount(labels, minlength=10))

    def test_data_frequencies_sum_to_one(self, labels):
        part = dirichlet_partition(labels, 8, 0.1, seed=0)
        assert part.data_frequencies().sum() == pytest.approx(1.0)

    def test_min_size_enforced(self, labels):
        part = dirichlet_partition(labels, 10, 0.1, seed=0, min_size=10)
        assert part.sizes().min() >= 10


class TestHeterogeneityOrdering:
    def test_lower_beta_more_skew(self, labels):
        """The paper's premise: beta=0.1 is more severe than beta=0.5 than IID."""
        p01 = dirichlet_partition(labels, 10, 0.1, seed=0)
        p05 = dirichlet_partition(labels, 10, 0.5, seed=0)
        piid = iid_partition(labels, 10, seed=0)
        assert mean_emd_to_global(p01) > mean_emd_to_global(p05) > mean_emd_to_global(piid)
        assert mean_label_entropy(p01) < mean_label_entropy(p05) < mean_label_entropy(piid)

    def test_iid_entropy_near_log_k(self, labels):
        part = iid_partition(labels, 5, seed=0)
        assert mean_label_entropy(part) == pytest.approx(np.log(10), abs=0.05)

    def test_shard_partition_limits_classes(self, rng):
        labels = rng.integers(0, 10, size=4000)
        part = shard_partition(labels, 10, shards_per_client=2, seed=0)
        classes_per_client = [(part.counts_matrix()[:, c] > 0).sum() for c in range(10)]
        assert max(classes_per_client) <= 4  # 2 shards span at most ~2-3 classes


class TestBaselinePartitions:
    def test_iid_balanced_sizes(self, labels):
        part = iid_partition(labels, 7, seed=0)
        sizes = part.sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_shard_covers_everything(self, labels):
        part = shard_partition(labels, 10, 2, seed=0)
        assert part.sizes().sum() == len(labels)

    @pytest.mark.parametrize("fn,kwargs", [
        (dirichlet_partition, dict(num_clients=0, beta=0.5)),
        (dirichlet_partition, dict(num_clients=5, beta=0.0)),
        (iid_partition, dict(num_clients=0)),
    ])
    def test_invalid_args(self, labels, fn, kwargs):
        with pytest.raises(ValueError):
            fn(labels, **kwargs)

    def test_determinism(self, labels):
        a = dirichlet_partition(labels, 10, 0.5, seed=3)
        b = dirichlet_partition(labels, 10, 0.5, seed=3)
        for x, y in zip(a.client_indices, b.client_indices):
            np.testing.assert_array_equal(x, y)


class TestStats:
    def test_emd_bounds(self):
        assert earth_movers_distance(np.array([1, 0]), np.array([0, 1])) == 1.0
        assert earth_movers_distance(np.array([0.5, 0.5]), np.array([0.5, 0.5])) == 0.0

    def test_emd_shape_mismatch(self):
        with pytest.raises(ValueError):
            earth_movers_distance(np.ones(2), np.ones(3))

    def test_entropy_single_class_zero(self):
        labels = np.zeros(100, dtype=int)
        part = iid_partition(labels, 2, seed=0)
        np.testing.assert_allclose(label_entropy(part), 0.0, atol=1e-12)

    def test_heatmap_text_renders(self, labels):
        part = dirichlet_partition(labels, 4, 0.5, seed=0)
        text = heatmap_text(part)
        assert "class\\client" in text
        assert len(text.splitlines()) == 11
