"""Tests for synthetic dataset generation."""

import numpy as np
import pytest

from repro.data.datasets import DATASET_SPECS, Dataset, SyntheticSpec, make_dataset, train_test_split
from repro.nn.losses import cross_entropy
from repro.nn.models import build_mlp
from repro.nn.optim import SGD


class TestSpecs:
    def test_registry_names(self):
        assert set(DATASET_SPECS) == {"synth-cifar10", "synth-cifar100", "synth-svhn"}

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(name="x", num_classes=1)
        with pytest.raises(ValueError):
            SyntheticSpec(name="x", num_classes=3, class_priors=(0.5, 0.5))


class TestMakeDataset:
    def test_shapes_and_dtypes(self):
        ds = make_dataset("synth-cifar10", 100, seed=0)
        assert ds.x.shape == (100, 3, 8, 8)
        assert ds.x.dtype == np.float32
        assert ds.y.dtype == np.int64
        assert ds.num_classes == 10
        assert len(ds) == 100

    def test_determinism(self):
        a = make_dataset("synth-cifar10", 50, seed=7)
        b = make_dataset("synth-cifar10", 50, seed=7)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_seed_changes_data(self):
        a = make_dataset("synth-cifar10", 50, seed=1)
        b = make_dataset("synth-cifar10", 50, seed=2)
        assert not np.array_equal(a.x, b.x)

    def test_all_classes_present(self):
        ds = make_dataset("synth-cifar10", 2000, seed=0)
        assert set(np.unique(ds.y)) == set(range(10))

    def test_svhn_priors_skewed(self):
        ds = make_dataset("synth-svhn", 5000, seed=0)
        counts = np.bincount(ds.y, minlength=10)
        assert counts[1] > counts[9]  # class 1 most frequent, like real SVHN

    def test_cifar100_label_range(self):
        ds = make_dataset("synth-cifar100", 500, seed=0)
        assert ds.num_classes == 100
        assert ds.y.max() < 100

    def test_rejects_nonpositive_samples(self):
        with pytest.raises(ValueError):
            make_dataset("synth-cifar10", 0)

    def test_subset(self):
        ds = make_dataset("synth-cifar10", 20, seed=0)
        sub = ds.subset(np.array([0, 5, 7]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.y, ds.y[[0, 5, 7]])

    def test_mismatched_xy_rejected(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.zeros((3, 1, 2, 2), np.float32), np.zeros(4, np.int64), 2)


class TestLearnability:
    def test_classes_are_separable(self):
        """An MLP trained briefly must beat chance clearly — the datasets must
        carry signal, or every FL experiment degenerates to noise."""
        train, test = train_test_split("synth-cifar10", 1500, 400, seed=3)
        model = build_mlp(3 * 8 * 8, 10, hidden=(64,), seed=0)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        xf = train.x.reshape(len(train), -1)
        rng = np.random.default_rng(0)
        for _ in range(60):
            idx = rng.choice(len(train), size=64, replace=False)
            opt.zero_grad()
            _, g = cross_entropy(model(xf[idx]), train.y[idx])
            model.backward(g)
            opt.step()
        logits = model(test.x.reshape(len(test), -1), training=False)
        acc = float((logits.argmax(1) == test.y).mean())
        assert acc > 0.3, f"dataset not learnable: acc={acc}"

    def test_train_test_share_templates(self):
        """Same-class train/test images must be closer than cross-class."""
        train, test = train_test_split("synth-svhn", 500, 200, seed=1)
        # Compare class means: matching classes should correlate.
        for k in range(3):
            tr = train.x[train.y == k].mean(axis=0).ravel()
            te = test.x[test.y == k].mean(axis=0).ravel()
            other = test.x[test.y == (k + 1) % 10].mean(axis=0).ravel()
            same = np.dot(tr, te) / (np.linalg.norm(tr) * np.linalg.norm(te))
            diff = np.dot(tr, other) / (np.linalg.norm(tr) * np.linalg.norm(other))
            assert same > diff
