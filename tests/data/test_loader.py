"""Tests for BatchLoader."""

import numpy as np
import pytest

from repro.data.datasets import make_dataset
from repro.data.loader import BatchLoader


@pytest.fixture
def ds():
    return make_dataset("synth-cifar10", 37, seed=0)


class TestBatchLoader:
    def test_covers_all_samples(self, ds):
        loader = BatchLoader(ds, 8, rng=0)
        seen = sum(len(y) for _, y in loader)
        assert seen == 37

    def test_len_matches_iteration(self, ds):
        loader = BatchLoader(ds, 8, rng=0)
        assert len(list(loader)) == len(loader) == 5

    def test_drop_last(self, ds):
        loader = BatchLoader(ds, 8, rng=0, drop_last=True)
        batches = list(loader)
        assert len(batches) == 4
        assert all(len(y) == 8 for _, y in batches)

    def test_shuffle_changes_order_across_epochs(self, ds):
        loader = BatchLoader(ds, 37, rng=0)
        (x1, y1), = list(loader)
        (x2, y2), = list(loader)
        assert not np.array_equal(y1, y2)

    def test_no_shuffle_is_sequential(self, ds):
        loader = BatchLoader(ds, 10, rng=0, shuffle=False)
        _, y = next(iter(loader))
        np.testing.assert_array_equal(y, ds.y[:10])

    def test_same_seed_same_order(self, ds):
        l1 = BatchLoader(ds, 8, rng=42)
        l2 = BatchLoader(ds, 8, rng=42)
        for (_, y1), (_, y2) in zip(l1, l2):
            np.testing.assert_array_equal(y1, y2)

    def test_rejects_bad_batch_size(self, ds):
        with pytest.raises(ValueError):
            BatchLoader(ds, 0)
