"""Tests for RNG streams and validation helpers."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_generator, spawn_generators
from repro.utils.validation import check_fraction, check_positive, check_probability_vector


class TestAsGenerator:
    def test_from_int(self):
        g = as_generator(42)
        assert isinstance(g, np.random.Generator)

    def test_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_same_seed_same_stream(self):
        assert as_generator(7).random() == as_generator(7).random()


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_independence(self):
        a, b = spawn_generators(0, 2)
        assert a.random() != b.random()

    def test_reproducible(self):
        x = [g.random() for g in spawn_generators(3, 4)]
        y = [g.random() for g in spawn_generators(3, 4)]
        assert x == y

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestRngFactory:
    def test_named_streams_stable(self):
        f1, f2 = RngFactory(9), RngFactory(9)
        assert f1.stream("sampler").random() == f2.stream("sampler").random()

    def test_names_independent(self):
        f = RngFactory(9)
        assert f.stream("a").random() != f.stream("b").random()

    def test_order_independent(self):
        f1, f2 = RngFactory(1), RngFactory(1)
        a1 = f1.stream("x").random()
        f2.stream("y")  # request another stream first
        a2 = f2.stream("x").random()
        assert a1 == a2

    def test_children_indexed(self):
        f = RngFactory(2)
        assert f.child("client", 0).random() != f.child("client", 1).random()
        assert f.child("client", 3).random() == RngFactory(2).child("client", 3).random()

    def test_child_negative_index(self):
        with pytest.raises(ValueError):
            RngFactory(0).child("x", -1)

    def test_seed_property(self):
        assert RngFactory(11).seed == 11


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))

    def test_check_fraction(self):
        assert check_fraction("x", 1.0) == 1.0
        assert check_fraction("x", 0.0, allow_zero=True) == 0.0
        with pytest.raises(ValueError):
            check_fraction("x", 0.0)
        with pytest.raises(ValueError):
            check_fraction("x", 1.1)
        with pytest.raises(ValueError):
            check_fraction("x", float("inf"))

    def test_check_probability_vector(self):
        p = check_probability_vector("p", np.array([0.25, 0.75]))
        assert p.dtype == np.float64
        with pytest.raises(ValueError):
            check_probability_vector("p", np.array([0.5, 0.6]))
        with pytest.raises(ValueError):
            check_probability_vector("p", np.array([[0.5], [0.5]]))
        with pytest.raises(ValueError):
            check_probability_vector("p", np.array([1.5, -0.5]))
