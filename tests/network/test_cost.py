"""Tests for the Eq. 4 / Alg. 2 cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.cost import (
    SPARSE_VOLUME_FACTOR,
    LinkSpec,
    downlink_time,
    model_bits,
    sparse_uplink_time,
    uplink_time,
)


class TestLinkSpec:
    def test_valid(self):
        link = LinkSpec(bandwidth_bps=1e6, latency_s=0.1)
        assert link.bandwidth_bps == 1e6

    @pytest.mark.parametrize("bw,lat", [(0, 0.1), (-1, 0.1), (1e6, -0.1)])
    def test_invalid(self, bw, lat):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth_bps=bw, latency_s=lat)


class TestModelBits:
    def test_float32_default(self):
        assert model_bits(1000) == 32000.0

    def test_quantized(self):
        assert model_bits(1000, bits_per_value=8) == 8000.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            model_bits(-1)


class TestUplinkTime:
    def test_eq4_exact(self):
        # 1 Mbit over 1 Mbit/s plus 100 ms latency = 1.1 s.
        link = LinkSpec(bandwidth_bps=1e6, latency_s=0.1)
        assert uplink_time(link, 1e6) == pytest.approx(1.1)

    def test_latency_only_for_empty_message(self):
        link = LinkSpec(bandwidth_bps=1e6, latency_s=0.07)
        assert uplink_time(link, 0.0) == pytest.approx(0.07)

    @given(st.floats(1e3, 1e9), st.floats(0, 1), st.floats(1, 1e9))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_volume_and_bandwidth(self, bw, lat, vol):
        link = LinkSpec(bandwidth_bps=bw, latency_s=lat)
        assert uplink_time(link, vol) <= uplink_time(link, vol * 2)
        faster = LinkSpec(bandwidth_bps=bw * 2, latency_s=lat)
        assert uplink_time(faster, vol) <= uplink_time(link, vol)


class TestDownlinkTime:
    def test_symmetric_factor_one_equals_uplink(self):
        """At factor 1 the broadcast costs exactly the dense uplink (Eq. 4)."""
        link = LinkSpec(bandwidth_bps=1e6, latency_s=0.1)
        assert downlink_time(link, 1e6) == pytest.approx(uplink_time(link, 1e6))

    def test_asymmetric_bandwidth_scales_volume_term_only(self):
        """10× downlink bandwidth divides the V/B term; latency is unchanged."""
        link = LinkSpec(bandwidth_bps=1e6, latency_s=0.1)
        t = downlink_time(link, 1e6, bandwidth_factor=10.0)
        assert t == pytest.approx(0.1 + 1e6 / 1e7)

    def test_empty_broadcast_costs_latency(self):
        link = LinkSpec(bandwidth_bps=1e6, latency_s=0.07)
        assert downlink_time(link, 0.0, bandwidth_factor=10.0) == pytest.approx(0.07)

    def test_validation(self):
        link = LinkSpec(bandwidth_bps=1e6, latency_s=0.1)
        with pytest.raises(ValueError):
            downlink_time(link, -1.0)
        with pytest.raises(ValueError):
            downlink_time(link, 1e6, bandwidth_factor=0.0)

    @given(st.floats(1.0, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_more_downlink_bandwidth_never_slower(self, factor):
        link = LinkSpec(bandwidth_bps=1e6, latency_s=0.05)
        assert downlink_time(link, 1e7, bandwidth_factor=factor) <= downlink_time(link, 1e7)


class TestSparseUplinkTime:
    def test_alg2_line7_exact(self):
        """T = L + 2·V·CR/B with the paper's numbers."""
        link = LinkSpec(bandwidth_bps=1e6, latency_s=0.05)
        v = 32e6  # 1M params × 32 bits
        t = sparse_uplink_time(link, v, 0.01)
        assert t == pytest.approx(0.05 + 2 * 32e6 * 0.01 / 1e6)

    def test_factor_two_vs_dense(self):
        """At CR=1, sparse transfer costs twice the dense volume (index+value)."""
        link = LinkSpec(bandwidth_bps=1e6, latency_s=0.0)
        v = 1e6
        assert sparse_uplink_time(link, v, 1.0) == pytest.approx(
            SPARSE_VOLUME_FACTOR * uplink_time(link, v)
        )

    def test_cr_bounds(self):
        link = LinkSpec(bandwidth_bps=1e6, latency_s=0.0)
        with pytest.raises(ValueError):
            sparse_uplink_time(link, 1e6, 0.0)
        with pytest.raises(ValueError):
            sparse_uplink_time(link, 1e6, 1.5)

    @given(st.floats(0.001, 1.0), st.floats(0.001, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_cr(self, cr1, cr2):
        link = LinkSpec(bandwidth_bps=2e6, latency_s=0.05)
        lo, hi = sorted([cr1, cr2])
        assert sparse_uplink_time(link, 1e7, lo) <= sparse_uplink_time(link, 1e7, hi)


class TestAsymmetricDownlink:
    """Optional measured downlink (LinkSpec.downlink_bps) overrides the
    factor-based asymmetry assumption."""

    def test_default_none_keeps_factor_semantics(self):
        sym = LinkSpec(bandwidth_bps=1e6, latency_s=0.1)
        assert sym.downlink_bps is None
        assert downlink_time(sym, 1e6, bandwidth_factor=10.0) == pytest.approx(
            0.1 + 1e6 / 1e7
        )

    def test_explicit_downlink_bandwidth_wins(self):
        link = LinkSpec(bandwidth_bps=1e6, latency_s=0.1, downlink_bps=4e6)
        # The measured downlink is used as-is; the factor is the fallback
        # model and must not double-scale it.
        assert downlink_time(link, 1e6) == pytest.approx(0.1 + 1e6 / 4e6)
        assert downlink_time(link, 1e6, bandwidth_factor=10.0) == pytest.approx(
            0.1 + 1e6 / 4e6
        )

    def test_uplink_unaffected_by_downlink_field(self):
        a = LinkSpec(bandwidth_bps=1e6, latency_s=0.1)
        b = LinkSpec(bandwidth_bps=1e6, latency_s=0.1, downlink_bps=9e6)
        assert uplink_time(a, 1e6) == uplink_time(b, 1e6)
        assert sparse_uplink_time(a, 1e6, 0.1) == sparse_uplink_time(b, 1e6, 0.1)

    def test_invalid_downlink_rejected(self):
        with pytest.raises(ValueError, match="downlink_bps"):
            LinkSpec(bandwidth_bps=1e6, latency_s=0.1, downlink_bps=0.0)
        with pytest.raises(ValueError, match="downlink_bps"):
            LinkSpec(bandwidth_bps=1e6, latency_s=0.1, downlink_bps=-1.0)
