"""Unit + property tests for the unified transport layer.

Covers the payload-accurate pricing contract (exact emitted bits, including
the quantization regression: an 8-bit upload must be ~4× faster than the
32-bit dense one on the same link) and the fair-ingress water-filling
invariants: fair sharing never beats an exclusive link, per-flow rates never
exceed the last-mile rate, and the aggregate never exceeds the ingress
capacity.
"""

import numpy as np
import pytest

from repro.compression.base import DenseUpdate, SparseUpdate
from repro.compression.quantization import QSGDQuantizer
from repro.network.cost import SPARSE_VOLUME_FACTOR, LinkSpec, uplink_time
from repro.network.links import LinkModel, sample_links
from repro.network.transport import MBIT, IngressPipe, Payload, Transport

LINK = LinkSpec(bandwidth_bps=1e6, latency_s=0.1)


class TestPayload:
    def test_dense_bits_and_kind(self):
        p = Payload.dense(32e6)
        assert p.bits == 32e6 and p.kind == "dense"
        assert p.nbytes == 4e6

    def test_planned_none_is_dense(self):
        assert Payload.planned(32e6, None) == Payload.dense(32e6)

    def test_planned_ratio_uses_documented_factor(self):
        p = Payload.planned(32e6, 0.1)
        assert p.bits == pytest.approx(SPARSE_VOLUME_FACTOR * 32e6 * 0.1)
        assert p.kind == "sparse"

    def test_sparse_exact_wire_volume(self):
        assert Payload.sparse(100).bits == 100 * 64
        assert Payload.sparse(100, index_bits=16, value_bits=8).bits == 100 * 24

    def test_from_sparse_update_uses_index_plus_value_bits(self):
        """Satellite: sparse wire volume comes from the update's own
        index_bits + value_bits, not the hard-coded factor 2."""
        u = SparseUpdate(
            dense_size=1000,
            indices=np.arange(10, dtype=np.int64),
            values=np.ones(10, dtype=np.float32),
            index_bits=16,
            value_bits=8,
        )
        p = Payload.from_update(u)
        assert p.kind == "sparse"
        assert p.bits == 10 * (16 + 8)

    def test_from_quantized_update(self):
        u = DenseUpdate(dense_size=100, values=np.zeros(100, dtype=np.float32), value_bits=8)
        p = Payload.from_update(u)
        assert p.kind == "quantized"
        assert p.bits == 100 * 8

    def test_from_full_precision_dense_update(self):
        u = DenseUpdate(dense_size=100, values=np.zeros(100, dtype=np.float32))
        assert Payload.from_update(u) == Payload.dense(100 * 32)

    def test_validation(self):
        with pytest.raises(ValueError):
            Payload(bits=-1.0)
        with pytest.raises(ValueError):
            Payload(bits=1.0, kind="carrier-pigeon")


class TestQuantizationPricingRegression:
    """The historical bug: reduced value_bits contributed nothing to
    transfer time — an 8-bit QSGD upload was charged as 32-bit dense."""

    def test_8bit_upload_is_4x_faster_than_dense(self):
        transport = Transport()
        d = 100_000
        rng = np.random.default_rng(0)
        delta = rng.standard_normal(d).astype(np.float32)
        quantized = QSGDQuantizer(bits=8, seed=0).compress(delta)
        dense = DenseUpdate(dense_size=d, values=delta)
        # Compare transmission (volume) components; latency is additive.
        t_q = transport.uplink_seconds(LINK, Payload.from_update(quantized)) - LINK.latency_s
        t_d = transport.uplink_seconds(LINK, Payload.from_update(dense)) - LINK.latency_s
        assert t_q == pytest.approx(t_d / 4.0)
        assert t_q < t_d

    def test_quantized_total_time_beats_dense_on_same_link(self):
        u8 = DenseUpdate(dense_size=50_000, values=np.zeros(50_000, np.float32), value_bits=8)
        u32 = DenseUpdate(dense_size=50_000, values=np.zeros(50_000, np.float32))
        t = Transport()
        assert t.uplink_seconds(LINK, Payload.from_update(u8)) < t.uplink_seconds(
            LINK, Payload.from_update(u32)
        )


class TestExclusivePipe:
    def test_orders_by_finish_then_admission(self):
        pipe = IngressPipe(None)
        a = pipe.admit(8e5, LINK, 0.0)  # finishes 0.9
        b = pipe.admit(1e5, LINK, 0.0)  # finishes 0.2
        c = pipe.admit(1e5, LINK, 0.0, finish=0.2)  # tie with b → admission order
        order = [fid for _, fid in [pipe.pop_next(), pipe.pop_next(), pipe.pop_next()]]
        assert order == [b, c, a]

    def test_explicit_finish_is_preserved_bitwise(self):
        pipe = IngressPipe(None)
        finish = 0.1 + 1e6 / 3e6  # some non-representable sum
        fid = pipe.admit(1e6, LINK, 0.0, finish=finish)
        assert pipe.pop_next() == (finish, fid)

    def test_default_finish_matches_eq4(self):
        pipe = IngressPipe(None)
        fid = pipe.admit(1e6, LINK, 2.0)
        t, got = pipe.pop_next()
        assert got == fid
        assert t == pytest.approx(2.0 + uplink_time(LINK, 1e6))

    def test_pop_until_is_inclusive(self):
        pipe = IngressPipe(None)
        pipe.admit(0.0, LINK, 0.0, finish=1.0)
        pipe.admit(0.0, LINK, 0.0, finish=2.0)
        assert [t for t, _ in pipe.pop_until(1.0)] == [1.0]
        assert len(pipe) == 1

    def test_cancel_removes_flow(self):
        pipe = IngressPipe(None)
        a = pipe.admit(0.0, LINK, 0.0, finish=1.0)
        b = pipe.admit(0.0, LINK, 0.0, finish=2.0)
        pipe.cancel(a)
        assert pipe.pop_next() == (2.0, b)
        assert pipe.pop_next() is None


def random_flows(seed: int, n: int):
    """(bits, link, start) draws over the paper's link model."""
    rng = np.random.default_rng(seed)
    links = sample_links(n, LinkModel(), seed=rng)
    starts = np.sort(rng.uniform(0.0, 2.0, size=n))
    bits = rng.uniform(1e5, 4e6, size=n)
    return [(float(b), l, float(s)) for b, l, s in zip(bits, links, starts)]


class TestFairPipeProperties:
    """Water-filling invariants over random flow populations."""

    CAPACITY = 2.0 * MBIT

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("n", [1, 3, 8])
    def test_fair_never_beats_exclusive(self, seed, n):
        flows = random_flows(seed, n)
        pipe = IngressPipe(self.CAPACITY)
        fids = [pipe.admit(b, l, s) for b, l, s in flows]
        pipe.drain()
        for fid, (b, l, s) in zip(fids, flows):
            exclusive = s + l.latency_s + b / l.bandwidth_bps
            assert pipe.finish_time(fid) >= exclusive - 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_rates_respect_capacity_and_links(self, seed):
        flows = random_flows(seed, 8)
        pipe = IngressPipe(self.CAPACITY, trace=True)
        fids = [pipe.admit(b, l, s) for b, l, s in flows]
        pipe.drain()
        link_of = {fid: l for fid, (_, l, _) in zip(fids, flows)}
        assert pipe.segments  # the fluid sim actually ran
        for t0, t1, rates in pipe.segments:
            assert t1 > t0
            assert sum(r for _, r in rates) <= self.CAPACITY * (1 + 1e-12)
            for fid, r in rates:
                assert r <= link_of[fid].bandwidth_bps * (1 + 1e-12)

    @pytest.mark.parametrize("seed", range(8))
    def test_flows_transfer_exactly_their_bits(self, seed):
        flows = random_flows(seed, 6)
        pipe = IngressPipe(self.CAPACITY, trace=True)
        fids = [pipe.admit(b, l, s) for b, l, s in flows]
        pipe.drain()
        moved = {fid: 0.0 for fid in fids}
        for t0, t1, rates in pipe.segments:
            for fid, r in rates:
                moved[fid] += r * (t1 - t0)
        for fid, (b, _, _) in zip(fids, flows):
            assert moved[fid] == pytest.approx(b, rel=1e-6)

    def test_single_flow_matches_exclusive(self):
        pipe = IngressPipe(self.CAPACITY)
        fid = pipe.admit(1e6, LINK, 0.5)
        pipe.drain()
        assert pipe.finish_time(fid) == pytest.approx(0.5 + uplink_time(LINK, 1e6))

    def test_two_equal_flows_halve_the_capacity(self):
        fast = LinkSpec(bandwidth_bps=10 * MBIT, latency_s=0.0)
        pipe = IngressPipe(2.0 * MBIT)
        a = pipe.admit(2e6, fast, 0.0)
        b = pipe.admit(2e6, fast, 0.0)
        pipe.drain()
        # Both backlogged on the shared 2 Mbit/s pipe → 1 Mbit/s each → 2 s.
        assert pipe.finish_time(a) == pytest.approx(2.0)
        assert pipe.finish_time(b) == pytest.approx(2.0)

    def test_slow_link_flow_does_not_starve_fast_one(self):
        """Max-min: a flow bottlenecked by its own link frees capacity."""
        slow = LinkSpec(bandwidth_bps=0.2 * MBIT, latency_s=0.0)
        fast = LinkSpec(bandwidth_bps=10 * MBIT, latency_s=0.0)
        pipe = IngressPipe(2.0 * MBIT)
        a = pipe.admit(1e6, slow, 0.0)  # capped at 0.2 Mb/s → 5 s
        b = pipe.admit(1.8e6, fast, 0.0)  # gets the remaining 1.8 Mb/s → 1 s
        pipe.drain()
        assert pipe.finish_time(a) == pytest.approx(5.0)
        assert pipe.finish_time(b) == pytest.approx(1.0)

    def test_completion_frees_share_for_survivors(self):
        fast = LinkSpec(bandwidth_bps=10 * MBIT, latency_s=0.0)
        pipe = IngressPipe(2.0 * MBIT)
        a = pipe.admit(1e6, fast, 0.0)
        b = pipe.admit(3e6, fast, 0.0)
        pipe.drain()
        # Phase 1: both at 1 Mb/s until a completes at t=1 (1e6 bits).
        # Phase 2: b alone at 2 Mb/s for its remaining 2e6 bits → t=2.
        assert pipe.finish_time(a) == pytest.approx(1.0)
        assert pipe.finish_time(b) == pytest.approx(2.0)

    def test_cancel_frees_capacity(self):
        fast = LinkSpec(bandwidth_bps=10 * MBIT, latency_s=0.0)
        with_rival = IngressPipe(2.0 * MBIT)
        a1 = with_rival.admit(2e6, fast, 0.0)
        with_rival.admit(2e6, fast, 0.0)
        with_rival.drain()
        cancelled = IngressPipe(2.0 * MBIT)
        a2 = cancelled.admit(2e6, fast, 0.0)
        rival = cancelled.admit(2e6, fast, 0.0)
        cancelled.pop_until(0.5)  # resolve the frontier to the cancel point
        cancelled.cancel(rival)
        cancelled.drain()
        assert cancelled.finish_time(a2) < with_rival.finish_time(a1)

    def test_backward_pop_until_cannot_rewind_the_clock(self):
        """A pop_until earlier than the resolved frontier must not rewind
        the fluid clock and double-count drained bits (was: finish times
        came back too early)."""
        slow = LinkSpec(bandwidth_bps=1.0 * MBIT, latency_s=0.0)
        pipe = IngressPipe(2.0 * MBIT)
        a = pipe.admit(1e6, slow, 0.0)
        b = pipe.admit(1e6, slow, 0.0)
        assert pipe.pop_until(0.3) == []
        assert pipe.pop_until(0.1) == []  # behind the frontier: no-op
        pipe.drain()
        assert pipe.finish_time(a) == pytest.approx(1.0)
        assert pipe.finish_time(b) == pytest.approx(1.0)

    def test_retroactive_admission_rejected(self):
        pipe = IngressPipe(self.CAPACITY)
        pipe.admit(1e6, LINK, 1.0)
        pipe.drain()  # frontier moves past the completion
        with pytest.raises(RuntimeError, match="retroactive"):
            pipe.admit(1e6, LINK, 0.0)

    def test_untraced_pipe_stays_bounded(self):
        """No trace flag → no fluid-segment accumulation (long-lived
        protocol pipes must not grow with the event count), and streaming
        pops release the finish map."""
        pipe = IngressPipe(self.CAPACITY)
        for b, l, s in random_flows(0, 10):
            pipe.admit(b, l, s)
        while pipe.pop_next() is not None:
            pass
        assert pipe.segments == []
        assert pipe._finish == {}

    def test_deterministic_across_runs(self):
        runs = []
        for _ in range(2):
            pipe = IngressPipe(self.CAPACITY)
            fids = [pipe.admit(b, l, s) for b, l, s in random_flows(5, 10)]
            pipe.drain()
            runs.append([pipe.finish_time(f) for f in fids])
        assert runs[0] == runs[1]  # bitwise, not approx


class TestTransport:
    def test_contention_validation(self):
        with pytest.raises(ValueError, match="contention"):
            Transport(contention="lossy")
        with pytest.raises(ValueError, match="server_ingress_bps"):
            Transport(contention="fair")

    def test_exclusive_resolve_matches_eq4(self):
        t = Transport()
        [rec] = t.resolve_uploads([(Payload.dense(1e6), LINK, 3.0)])
        assert rec.seconds == uplink_time(LINK, 1e6)  # bitwise
        assert rec.end == 3.0 + rec.seconds
        assert not rec.contended

    def test_fair_batch_never_faster_and_flagged(self):
        flows = [(Payload.dense(1e6), LINK, 0.0), (Payload.dense(1e6), LINK, 0.0)]
        none = Transport().resolve_uploads(flows)
        fair = Transport("fair", 1.0 * MBIT).resolve_uploads(flows)
        for n, f in zip(none, fair):
            assert f.end >= n.end - 1e-9
            assert f.contended and not n.contended

    def test_named_pipe_is_persistent_and_scoped(self):
        t = Transport("fair", 1.0 * MBIT)
        assert t.pipe("server") is t.pipe("server")
        assert t.pipe("server") is not t.pipe("cloud")
        assert t.round_pipe() is not t.round_pipe()

    def test_broadcast_free_link_costs_nothing(self):
        t = Transport()
        assert t.broadcast_seconds(None, Payload.dense(1e9)) == 0.0
        assert t.broadcast_seconds(LINK, Payload.dense(1e6)) > 0.0
