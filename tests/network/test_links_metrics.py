"""Tests for link sampling, time-varying links, metrics, topology."""

import numpy as np
import pytest

from repro.network.cost import LinkSpec
from repro.network.links import MBIT, PAPER_LINK_MODEL, LinkModel, TimeVaryingLink, sample_links
from repro.network.metrics import RoundTimes, TimeAccumulator
from repro.network.topology import StarTopology


class TestLinkSampling:
    def test_paper_distribution_moments(self):
        links = sample_links(5000, PAPER_LINK_MODEL, seed=0)
        bws = np.array([l.bandwidth_bps for l in links])
        lats = np.array([l.latency_s for l in links])
        assert bws.mean() == pytest.approx(1.0 * MBIT, rel=0.02)
        assert bws.std() == pytest.approx(0.2 * MBIT, rel=0.05)
        assert lats.min() > 0.050 and lats.max() <= 0.200
        assert lats.mean() == pytest.approx(0.125, abs=0.005)

    def test_bandwidth_floor(self):
        model = LinkModel(bandwidth_mean_bps=0.1 * MBIT, bandwidth_std_bps=1.0 * MBIT)
        links = sample_links(200, model, seed=0)
        assert min(l.bandwidth_bps for l in links) >= model.bandwidth_floor_bps

    def test_determinism(self):
        a = sample_links(10, seed=5)
        b = sample_links(10, seed=5)
        assert a == b

    def test_rejects_zero_clients(self):
        with pytest.raises(ValueError):
            sample_links(0)

    def test_model_validation(self):
        with pytest.raises(ValueError):
            LinkModel(latency_low_s=0.3, latency_high_s=0.2)


class TestTimeVaryingLink:
    def test_stays_positive_and_reverts(self):
        base = LinkSpec(bandwidth_bps=1e6, latency_s=0.1)
        link = TimeVaryingLink(base, np.random.default_rng(0), volatility=0.2)
        bws = [link.step().bandwidth_bps for _ in range(500)]
        assert min(bws) > 0
        # Mean reversion keeps the long-run level near the base value.
        assert np.median(bws) == pytest.approx(1e6, rel=0.35)

    def test_zero_volatility_fixed(self):
        base = LinkSpec(bandwidth_bps=2e6, latency_s=0.1)
        link = TimeVaryingLink(base, np.random.default_rng(0), volatility=0.0, reversion=1.0)
        assert link.step().bandwidth_bps == pytest.approx(2e6)

    def test_rejects_bad_reversion(self):
        with pytest.raises(ValueError):
            TimeVaryingLink(LinkSpec(1e6, 0.1), np.random.default_rng(0), reversion=2.0)


class TestRoundTimes:
    def test_from_client_times(self):
        rt = RoundTimes.from_client_times(np.array([1.0, 3.0, 2.0]))
        assert rt.actual == rt.maximum == 3.0
        assert rt.minimum == 1.0

    def test_explicit_actual(self):
        rt = RoundTimes.from_client_times(np.array([1.0, 3.0]), actual=1.5)
        assert rt.actual == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundTimes(actual=1.0, maximum=1.0, minimum=2.0)
        with pytest.raises(ValueError):
            RoundTimes.from_client_times(np.array([]))


class TestTimeAccumulator:
    def test_accumulation(self):
        acc = TimeAccumulator()
        acc.update(RoundTimes(actual=1.0, maximum=2.0, minimum=0.5))
        acc.update(RoundTimes(actual=1.5, maximum=3.0, minimum=1.0))
        assert acc.actual_total == pytest.approx(2.5)
        assert acc.max_total == pytest.approx(5.0)
        assert acc.min_total == pytest.approx(1.5)
        assert acc.rounds == 2
        np.testing.assert_allclose(acc.actual_series, [1.0, 2.5])

    def test_straggler_gap(self):
        acc = TimeAccumulator()
        acc.update(RoundTimes(actual=2.0, maximum=2.0, minimum=0.5))
        assert acc.straggler_gap() == pytest.approx(1.5)


class TestStarTopology:
    @pytest.fixture
    def topo(self):
        return StarTopology(
            [LinkSpec(2e6, 0.1), LinkSpec(1e6, 0.05), LinkSpec(0.5e6, 0.2)]
        )

    def test_basic_accessors(self, topo):
        assert topo.num_clients == 3
        np.testing.assert_allclose(topo.bandwidths(), [2e6, 1e6, 0.5e6])
        np.testing.assert_allclose(topo.latencies(), [0.1, 0.05, 0.2])

    def test_uplink_times_ordering(self, topo):
        times = topo.uplink_times(1e6)
        assert times[2] > times[1]  # slowest link takes longest

    def test_sparse_uplink_times(self, topo):
        times = topo.sparse_uplink_times(1e6, np.array([0.1, 0.1]), [0, 2])
        assert times[1] > times[0]

    def test_sparse_times_length_mismatch(self, topo):
        with pytest.raises(ValueError):
            topo.sparse_uplink_times(1e6, np.array([0.1]), [0, 1])

    def test_networkx_export(self, topo):
        g = topo.to_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 3
        assert g["server"]["client0"]["bandwidth_bps"] == 2e6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StarTopology([])
