"""Generate the frozen golden histories for the population equivalence suite.

Run from the repo root with the **pre-refactor** tree checked out::

    PYTHONPATH=src:tests python tests/population/make_goldens.py

Each golden records the deterministic parts of a seeded serial run — the
full :func:`~repro.io.history_io.history_to_dict` payload with the two
wall-clock fields zeroed, plus the span log — for one of the
``golden_configs.GOLDEN_CONFIGS`` entries. The equivalence tests replay the
same configs through the population path on every execution backend and
require bitwise equality.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.io.history_io import history_to_dict
from repro.simtime import make_simulation

from golden_configs import GOLDEN_CONFIGS, golden_name

GOLDEN_DIR = Path(__file__).parent / "goldens"


def golden_payload(config) -> dict:
    """Run ``config`` serially and return its deterministic trace."""
    with make_simulation(config.with_(backend="serial")) as sim:
        history = sim.run()
        spans = [[s.cid, s.kind, s.start, s.end, s.tag] for s in sim.spans]
    payload = history_to_dict(history)
    for rec in payload["records"]:
        # Wall-clock fields are nondeterministic by nature; zero them so the
        # stored goldens are bitwise-comparable.
        rec["train_seconds"] = 0.0
        rec["compress_seconds"] = 0.0
    return {"history": payload, "spans": spans}


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, config in GOLDEN_CONFIGS.items():
        out = GOLDEN_DIR / golden_name(name)
        out.write_text(json.dumps(golden_payload(config)))
        print(f"wrote {out}")


if __name__ == "__main__":
    main()
