"""Memory regression guard: fleet size must not buy fleet-sized memory.

The population refactor's core promise is memory O(active cohort) +
O(columns). These tests compare traced allocation peaks of a 100K-client
fleet against a 1K-client fleet at the *same* 64-client cohort: if eager
per-client materialization (shard copies, loaders, compressors) ever
returns, the big fleet's peak explodes by orders of magnitude and the
bounds here fail long before CI's memory does.

tracemalloc sees numpy buffers (numpy routes allocations through
``PyTraceMalloc_Track``), so traced peaks are a faithful, RSS-independent
proxy that stays stable across machines.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.fl.config import ExperimentConfig
from repro.fl.simulation import Simulation

COHORT = 64

#: 100×-fleet overhead allowed beyond the small fleet's peak: the six
#: population columns at 100K clients are ~2.6 MB; 32 MB of slack absorbs
#: allocator noise while staying ~3 orders of magnitude below what eager
#: hydration of 100K shards would cost.
SLACK_BYTES = 32 * 1024 * 1024


def fleet_config(num_clients: int) -> ExperimentConfig:
    return ExperimentConfig(
        dataset="synth-cifar10",
        model="mlp",
        num_train=512,
        num_test=64,
        num_clients=num_clients,
        participation=COHORT / num_clients,
        virtual_shards=True,
        virtual_shard_min=8,
        virtual_shard_max=24,
        hydration_cache=COHORT,
        rounds=1,
        batch_size=8,
        eval_every=10,
        algorithm="eftopk",
        compression_ratio=0.25,
        seed=11,
    )


def traced_peak(num_clients: int) -> int:
    """Traced allocation peak (bytes) of construct + one round."""
    tracemalloc.start()
    tracemalloc.reset_peak()
    with Simulation(fleet_config(num_clients)) as sim:
        sim.run(1)
        assert len(sim.history.records[0].selected) == COHORT
        hydrated = sim.clients.hydrations
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert hydrated == COHORT  # only the cohort ever materialized
    return peak


@pytest.mark.slow
def test_peak_memory_is_cohort_bound_not_fleet_bound():
    small = traced_peak(1_000)
    large = traced_peak(100_000)
    # 100× the fleet must cost only the columns (plus slack), never 100×
    # the objects. An eager-materialization regression overshoots this by
    # ~3 orders of magnitude.
    assert large <= small + SLACK_BYTES, (
        f"100K-client peak {large / 1e6:.1f} MB vs 1K-client "
        f"{small / 1e6:.1f} MB — fleet-sized materialization is back"
    )


def test_population_columns_scale_linearly_and_small():
    cfg = fleet_config(100_000)
    from repro.population import Population

    pop = Population.from_config(cfg, partition=None)
    # 3 float64 + 1 int64 + 1 bool + 1 int32 column = 37 bytes/client.
    assert pop.memory_bytes() == 100_000 * 37
