"""The frozen configs behind the population-refactor golden histories.

One config per protocol mode, each ≤64 clients and a few rounds, chosen to
exercise the per-client state the lazy-hydration refactor must preserve:
seeded batch-loader streams (every config), stateful error-feedback
compressor residuals (``eftopk``), per-client compressor RNG (``qsgd8``),
and the BCRS/OPWA planning path.

``tests/population/goldens/*.json`` were generated from these configs by
``make_goldens.py`` **before** the struct-of-arrays population refactor
landed (PR 6), so matching them bit-for-bit proves the population path
reproduces the eager per-client-object construction exactly. Regenerating
them requires checking out the pre-refactor tree; they are frozen artifacts,
not build products.
"""

from __future__ import annotations

from repro.fl.config import ExperimentConfig

__all__ = ["GOLDEN_CONFIGS", "golden_name"]


def _cfg(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="synth-cifar10",
        model="mlp",
        num_train=480,
        num_test=160,
        num_clients=12,
        participation=0.5,
        rounds=4,
        batch_size=32,
        lr=0.1,
        seed=7,
        eval_every=2,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


#: name → config. Names key the golden JSON files.
GOLDEN_CONFIGS: dict[str, ExperimentConfig] = {
    # Lock-step sync with the paper's full machinery: BCRS ratios + OPWA.
    "sync-bcrs_opwa": _cfg(algorithm="bcrs_opwa", compression_ratio=0.1),
    # Sync with stateful error feedback — residuals must survive rounds.
    "sync-eftopk": _cfg(algorithm="eftopk", compression_ratio=0.2),
    # Sync with a seeded quantizer override — per-client compressor RNG.
    "sync-qsgd8": _cfg(algorithm="topk", compressor="qsgd8", compression_ratio=0.2),
    # Deadline semi-sync with carryover staleness (event-driven dispatch).
    "semisync-eftopk": _cfg(
        algorithm="eftopk",
        compression_ratio=0.2,
        mode="semisync",
        deadline_quantile=0.6,
        late_policy="carryover",
        rounds=5,
    ),
    # FedBuff async: deferred-training batches, staleness weights.
    "async-topk": _cfg(
        algorithm="topk",
        compression_ratio=0.2,
        mode="async",
        concurrency=4,
        buffer_size=2,
        rounds=5,
    ),
    # Hierarchical: three edges, two sub-rounds, costly backhaul.
    "hier-bcrs_opwa": _cfg(
        algorithm="bcrs_opwa",
        compression_ratio=0.1,
        mode="hier",
        num_edges=3,
        edge_rounds=2,
        backhaul_bandwidth_mbps=50.0,
        backhaul_latency_s=0.02,
        rounds=3,
    ),
    # Larger fleet at the satellite's 64-client ceiling, dense FedAvg.
    "sync-fedavg-64": _cfg(
        algorithm="fedavg",
        compression_ratio=1.0,
        num_clients=64,
        num_train=1280,
        participation=0.25,
        rounds=3,
    ),
}


def golden_name(name: str) -> str:
    """Golden JSON filename for config ``name``."""
    return f"{name}.json"
