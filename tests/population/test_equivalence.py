"""The population refactor's bit-for-bit contract, pinned against goldens.

``goldens/*.json`` are frozen pre-refactor traces (see ``make_goldens.py``):
full histories plus span logs from the eager ``list[Client]`` construction,
captured before the struct-of-arrays population landed. Every test here
replays a golden config through the population path via the shared
:mod:`repro.testing.goldens` harness and requires *bitwise* equality —
across all four protocol modes (sync, semisync, async, hier) and all three
execution backends, and under an LRU so small that clients are evicted and
rehydrated mid-run.

These goldens are frozen artifacts, not build products: ``check_golden`` is
called with ``regen=False`` so ``REGEN_GOLDEN=1`` (which rebuilds the
robustness goldens in ``tests/goldens``) can never overwrite them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from golden_configs import GOLDEN_CONFIGS, golden_name
from repro.testing.goldens import check_golden, run_trace

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: One golden per protocol mode for the (slower) parallel backends; the
#: serial pass covers every golden.
MODE_REPRESENTATIVES = (
    "sync-eftopk",
    "semisync-eftopk",
    "async-topk",
    "hier-bcrs_opwa",
)


def assert_matches(name: str, trace: dict) -> None:
    check_golden(GOLDEN_DIR / golden_name(name), trace, name=name, regen=False)


@pytest.mark.parametrize("name", sorted(GOLDEN_CONFIGS))
def test_serial_reproduces_pre_refactor_golden(name):
    """Every mode × algorithm golden, bit-for-bit on the serial backend."""
    trace = run_trace(GOLDEN_CONFIGS[name].with_(backend="serial"))
    assert_matches(name, trace)


@pytest.mark.parametrize("backend", ["thread", "process"])
@pytest.mark.parametrize("name", MODE_REPRESENTATIVES)
def test_parallel_backends_reproduce_golden(name, backend):
    """All four protocol modes, bit-for-bit on thread and process pools."""
    trace = run_trace(GOLDEN_CONFIGS[name].with_(backend=backend, workers=3))
    assert_matches(name, trace)


@pytest.mark.parametrize("name", ["sync-eftopk", "async-topk"])
def test_tiny_hydration_cache_is_invisible(name):
    """An LRU of 2 forces constant evict/rehydrate churn mid-run; loader
    streams and compressor state persist outside the cache, so the trace
    must stay bitwise identical to the eager construction's."""
    trace = run_trace(
        GOLDEN_CONFIGS[name].with_(backend="serial", hydration_cache=2)
    )
    assert_matches(name, trace)


def test_goldens_cover_all_modes():
    """The frozen suite spans every protocol mode (guards golden rot)."""
    modes = {cfg.mode for cfg in GOLDEN_CONFIGS.values()}
    assert modes == {"sync", "semisync", "async", "hier"}
    assert all((GOLDEN_DIR / golden_name(n)).exists() for n in GOLDEN_CONFIGS)
