"""ClientPool cache accounting: hits/misses/evictions/peak residency."""

from __future__ import annotations

from repro.data.datasets import DATASET_SPECS, train_test_split
from repro.fl.config import ExperimentConfig
from repro.obs import MetricsRegistry, Obs, Tracer
from repro.population import ClientPool, Population


def build_pool(cache_size: int = 4) -> ClientPool:
    cfg = ExperimentConfig(
        dataset="synth-cifar10",
        model="mlp",
        num_train=256,
        num_test=64,
        num_clients=50,
        participation=0.1,
        virtual_shards=True,
        virtual_shard_min=4,
        virtual_shard_max=8,
        batch_size=8,
        seed=7,
    )
    spec = DATASET_SPECS[cfg.dataset]
    train_set, _ = train_test_split(spec, cfg.num_train, cfg.num_test, seed=cfg.seed)
    pop = Population.from_config(cfg, partition=None)
    return ClientPool(
        pop, train_set, cfg.batch_size, flatten_inputs=True, cache_size=cache_size
    )


class TestStats:
    def test_fresh_pool_reports_zeros(self):
        stats = build_pool().stats()
        assert stats == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "hydrations": 0,
            "resident": 0,
            "peak_resident": 0,
            "cache_size": 4,
        }

    def test_hits_misses_and_evictions(self):
        pool = build_pool(cache_size=2)
        pool[0]  # miss
        pool[0]  # hit
        pool[1]  # miss
        pool[2]  # miss -> evicts cid 0
        pool[0]  # miss again (was evicted) -> evicts cid 1
        stats = pool.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 4
        assert stats["hydrations"] == 4
        assert stats["evictions"] == 2
        assert stats["resident"] == 2
        assert stats["peak_resident"] == 2

    def test_peak_tracks_high_water_mark_not_current(self):
        pool = build_pool(cache_size=8)
        for cid in range(5):
            pool[cid]
        assert pool.stats()["peak_resident"] == 5
        assert pool.stats()["resident"] == 5

    def test_observed_pool_mirrors_stats_into_metrics(self):
        obs = Obs(Tracer(), MetricsRegistry())
        pool = build_pool(cache_size=2)
        pool.observe(obs)
        pool[0], pool[0], pool[1], pool[2]
        assert obs.metrics.value("hydration", outcome="hit") == 1
        assert obs.metrics.value("hydration", outcome="miss") == 3
        assert obs.metrics.value("hydration", outcome="eviction") == 1
        assert obs.metrics.value("resident_clients") == 2
        hydrate_spans = [s for s in obs.tracer.spans if s.name == "hydrate"]
        assert len(hydrate_spans) == 3
        assert any(i.name == "evict" for i in obs.tracer.instants)

    def test_observe_with_null_obs_stays_detached(self):
        pool = build_pool()
        pool.observe(None)
        assert pool._obs is None
        pool.observe(Obs())  # disabled bundle
        assert pool._obs is None
        pool[0]
        assert pool.stats()["misses"] == 1  # plain accounting still on
