"""Property tests for the population's per-client randomness.

The whole lazy-hydration design rests on one invariant: a client's streams
are pure functions of ``(seed, stream name, cid)`` — independent of *when*,
*in what order*, *how many times*, or *in which process* they are built.
These tests pin that invariant for both derivation schemes (the legacy
SeedSequence ``child`` families and the counter-based Philox ``counter``
streams) and for the pools built on top of them.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.data.datasets import DATASET_SPECS, train_test_split
from repro.fl.config import ExperimentConfig
from repro.population import ClientPool, Population
from repro.utils.rng import RngFactory

SEED = 2024


def virtual_config(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="synth-cifar10",
        model="mlp",
        num_train=256,
        num_test=64,
        num_clients=500,
        participation=0.02,
        virtual_shards=True,
        virtual_shard_min=8,
        virtual_shard_max=24,
        batch_size=8,
        seed=SEED,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def draws(rng: np.random.Generator, n: int = 8) -> tuple:
    return tuple(rng.integers(0, 2**63, size=n).tolist())


# ------------------------------------------------------------- derivation


@pytest.mark.parametrize("scheme", ["child", "counter"])
def test_streams_are_order_independent(scheme):
    """Requesting cid streams in any order yields identical sequences."""
    make_a = getattr(RngFactory(SEED), scheme)
    make_b = getattr(RngFactory(SEED), scheme)
    ids = [17, 0, 499, 3, 17]  # shuffled, with a repeat
    forward = {cid: draws(make_a("client", cid)) for cid in sorted(set(ids))}
    for cid in ids:
        assert draws(make_b("client", cid)) == forward[cid]


@pytest.mark.parametrize("scheme", ["child", "counter"])
def test_rebuilding_a_stream_twice_is_identical(scheme):
    rngs = RngFactory(SEED)
    make = getattr(rngs, scheme)
    assert draws(make("client", 42)) == draws(make("client", 42))


def test_distinct_stream_cid_pairs_never_collide():
    """First words of every (stream, cid) pair are pairwise distinct."""
    rngs = RngFactory(SEED)
    seen: dict[tuple, tuple] = {}
    for name in ("client", "compressor", "virtual-shard"):
        for cid in list(range(64)) + [10_000, 999_999]:
            sig = draws(rngs.counter(name, cid), n=4)
            assert sig not in seen.values(), f"collision at ({name}, {cid})"
            seen[(name, cid)] = sig


def test_counter_keys_differ_across_seeds_and_names():
    a, b = RngFactory(1), RngFactory(2)
    assert a.counter_key("client") != b.counter_key("client")
    assert a.counter_key("client") != a.counter_key("compressor")
    assert draws(a.counter("client", 0)) != draws(b.counter("client", 0))


# -------------------------------------------------------------- hydration


def build_pool(cache_size: int = 64) -> ClientPool:
    cfg = virtual_config()
    spec = DATASET_SPECS[cfg.dataset]
    train_set, _ = train_test_split(spec, cfg.num_train, cfg.num_test, seed=cfg.seed)
    pop = Population.from_config(cfg, partition=None)
    return ClientPool(
        pop, train_set, cfg.batch_size, flatten_inputs=True, cache_size=cache_size
    )


def first_batch_signature(client) -> tuple:
    x, y = next(iter(client.loader))
    return (float(x.sum()), y.tolist(), client.num_samples)


def test_hydration_order_does_not_change_shards_or_streams():
    """Hydrating in ascending vs shuffled order gives identical clients."""
    ids = [0, 7, 133, 42, 499]
    a, b = build_pool(), build_pool()
    sig_a = {cid: first_batch_signature(a[cid]) for cid in sorted(ids)}
    sig_b = {cid: first_batch_signature(b[cid]) for cid in reversed(sorted(ids))}
    assert sig_a == sig_b


def test_eviction_resumes_the_same_loader_stream():
    """Evict a client mid-stream; the rehydrated one continues the exact
    sequence a never-evicted twin produces."""
    churn, steady = build_pool(cache_size=1), build_pool(cache_size=64)
    seq_steady = [first_batch_signature(steady[5]) for _ in range(2)]
    first = first_batch_signature(churn[5])
    churn[6]  # cache_size=1 → evicts client 5
    assert churn.resident == 1
    second = first_batch_signature(churn[5])  # rehydrated
    assert [first, second] == seq_steady
    assert churn.hydrations == 3  # 5, 6, then 5 again


def test_virtual_shards_are_stable_and_sized_from_columns():
    cfg = virtual_config()
    pop = Population.from_config(cfg, partition=None)
    for cid in (0, 250, 499):
        ix1, ix2 = pop.shard_indices(cid), pop.shard_indices(cid)
        assert np.array_equal(ix1, ix2)
        assert len(ix1) == int(pop.data_sizes[cid])
        assert cfg.virtual_shard_min <= len(ix1) <= cfg.virtual_shard_max
        assert ix1.min() >= 0 and ix1.max() < cfg.num_train


def _worker_signatures(ids):
    pool = build_pool()
    return {cid: first_batch_signature(pool[cid]) for cid in ids}


def test_process_workers_hydrate_identical_streams():
    """Different processes hydrating disjoint (and overlapping) slices see
    the same per-client shards and loader draws as the parent."""
    ids = [3, 77, 410]
    parent = _worker_signatures(ids)
    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
    with ctx.Pool(2) as pool:
        child_a, child_b = pool.map(_worker_signatures, [ids[:2], ids[1:]])
    assert child_a == {cid: parent[cid] for cid in ids[:2]}
    assert child_b == {cid: parent[cid] for cid in ids[1:]}
