"""Make the frozen golden configs importable from the test modules."""

from __future__ import annotations

import sys
from pathlib import Path

# golden_configs.py / make_goldens.py live beside the tests but are also a
# standalone generator script; import them by path rather than packaging.
sys.path.insert(0, str(Path(__file__).parent))
