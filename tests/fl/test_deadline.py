"""Tests for the deadline-drop straggler policy."""

import numpy as np
import pytest

from repro.fl.algorithms import make_algorithm
from repro.fl.config import ExperimentConfig
from repro.fl.simulation import run_experiment
from repro.network.cost import LinkSpec, sparse_uplink_time

LINKS = [LinkSpec(4e6, 0.05), LinkSpec(2e6, 0.08), LinkSpec(1e6, 0.1), LinkSpec(0.2e6, 0.15)]
FREQS = np.array([0.25, 0.25, 0.25, 0.25])
V = 32e5


def plan(**cfg_kwargs):
    cfg = ExperimentConfig(algorithm="deadline_topk", **cfg_kwargs)
    return make_algorithm(cfg).plan(LINKS, FREQS, V)


class TestDeadlinePlan:
    def test_straggler_dropped(self):
        p = plan(compression_ratio=0.1, deadline_quantile=0.5)
        assert p.weights[3] == 0.0  # the 0.2 Mbit/s straggler misses the deadline
        assert p.weights.sum() == pytest.approx(1.0)

    def test_surviving_weights_renormalized(self):
        p = plan(compression_ratio=0.1, deadline_quantile=0.5)
        survivors = p.weights[p.weights > 0]
        np.testing.assert_allclose(survivors, survivors[0])

    def test_actual_time_is_deadline(self):
        p = plan(compression_ratio=0.1, deadline_quantile=0.5)
        compressed = [sparse_uplink_time(l, V, 0.1) for l in LINKS]
        assert p.times.actual == pytest.approx(float(np.quantile(compressed, 0.5)))
        assert p.times.actual < max(compressed)

    def test_quantile_one_keeps_everyone(self):
        p = plan(compression_ratio=0.1, deadline_quantile=1.0)
        assert np.all(p.weights > 0)

    def test_small_quantile_keeps_at_least_fastest(self):
        p = plan(compression_ratio=0.1, deadline_quantile=0.01)
        assert (p.weights > 0).sum() >= 1
        assert p.weights.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(deadline_quantile=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(deadline_quantile=1.5)


class TestDeadlineEndToEnd:
    def test_runs_and_learns(self):
        cfg = ExperimentConfig(
            num_train=500, num_test=150, rounds=8, num_clients=6, participation=0.67,
            lr=0.1, model="mlp", eval_every=4,
            algorithm="deadline_topk", compression_ratio=0.2,
        )
        h = run_experiment(cfg)
        assert h.final_accuracy() > 0.15

    def test_cheaper_rounds_than_plain_topk(self):
        base = dict(
            num_train=400, num_test=100, rounds=5, num_clients=6, participation=0.67,
            lr=0.1, model="mlp", eval_every=5, compression_ratio=0.2,
        )
        h_topk = run_experiment(ExperimentConfig(**base, algorithm="topk"))
        h_dead = run_experiment(ExperimentConfig(**base, algorithm="deadline_topk"))
        assert h_dead.time.actual_total < h_topk.time.actual_total
