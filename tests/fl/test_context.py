"""Tests for cross-cell world caching (repro.fl.context).

Satellite (c): cached and cold runs are bit-identical, different non-IID
knobs never share a world, the LRU evicts, and the shared columns are
frozen against accidental writes.
"""

import dataclasses

import numpy as np
import pytest

from repro.fl.config import ExperimentConfig
from repro.fl.context import DATASET_KEY_FIELDS, SimulationContext, WorldCache, dataset_key
from repro.fl.simulation import run_experiment
from repro.io.history_io import history_to_dict

WALL_CLOCK_FIELDS = ("train_seconds", "compress_seconds")


def tiny(**overrides):
    base = dict(
        dataset="synth-cifar10", model="mlp", num_train=200, num_test=100,
        num_clients=4, rounds=2, seed=3, algorithm="topk",
        compression_ratio=0.2,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def stripped(history) -> dict:
    d = history_to_dict(history)
    for rec in d["records"]:
        for f in WALL_CLOCK_FIELDS:
            rec.pop(f, None)
    return d


class TestContextBitIdentity:
    def test_cached_matches_cold(self):
        cfg = tiny()
        ctx = SimulationContext.build(cfg)
        assert stripped(run_experiment(cfg, context=ctx)) == stripped(
            run_experiment(cfg)
        )

    def test_context_reused_across_cells_of_one_world(self):
        """Two cells sharing the key reuse one context; each matches cold."""
        cache = WorldCache()
        for ratio in (0.1, 0.3):
            cfg = tiny(compression_ratio=ratio)
            ctx = cache.get(cfg)
            assert stripped(run_experiment(cfg, context=ctx)) == stripped(
                run_experiment(cfg)
            )
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1

    @pytest.mark.parametrize("mode", ["semisync", "async"])
    def test_event_driven_protocols_accept_context(self, mode):
        cfg = tiny(mode=mode, rounds=2)
        ctx = SimulationContext.build(cfg)
        assert stripped(run_experiment(cfg, context=ctx)) == stripped(
            run_experiment(cfg)
        )

    def test_hier_accepts_context(self):
        cfg = tiny(mode="hier", num_edges=2, num_clients=6)
        ctx = SimulationContext.build(cfg)
        assert stripped(run_experiment(cfg, context=ctx)) == stripped(
            run_experiment(cfg)
        )

    def test_virtual_shard_world_cached(self):
        cfg = tiny(virtual_shards=True, num_clients=64, participation=0.1)
        ctx = SimulationContext.build(cfg)
        assert ctx.partition is None
        assert stripped(run_experiment(cfg, context=ctx)) == stripped(
            run_experiment(cfg)
        )


class TestKeying:
    def test_key_covers_every_declared_field(self):
        cfg = tiny()
        key = dataset_key(cfg)
        assert len(key) == len(DATASET_KEY_FIELDS)
        for i, name in enumerate(DATASET_KEY_FIELDS):
            assert key[i] == getattr(cfg, name)

    @pytest.mark.parametrize("field,value", [
        ("beta", 0.1),
        ("seed", 4),
        ("num_train", 300),
        ("num_clients", 5),
        ("partition", "iid"),
        ("compute_heterogeneity", 0.9),
        ("virtual_shard_min", 24),
    ])
    def test_non_iid_knobs_never_share(self, field, value):
        cache = WorldCache()
        a = cache.get(tiny())
        b = cache.get(tiny(**{field: value}))
        assert a is not b
        assert cache.stats()["misses"] == 2

    def test_training_knobs_do_share(self):
        cache = WorldCache()
        a = cache.get(tiny())
        b = cache.get(tiny(compression_ratio=0.5, lr=0.01, algorithm="bcrs_opwa"))
        assert a is b

    def test_context_refuses_foreign_config(self):
        ctx = SimulationContext.build(tiny())
        with pytest.raises(ValueError, match="dataset key"):
            run_experiment(tiny(beta=0.1), context=ctx)


class TestWorldCache:
    def test_lru_eviction(self):
        cache = WorldCache(max_entries=2)
        c1 = cache.get(tiny(seed=1))
        cache.get(tiny(seed=2))
        cache.get(tiny(seed=1))  # refresh 1 → 2 is now LRU
        cache.get(tiny(seed=3))  # evicts 2
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        assert cache.get(tiny(seed=1)) is c1  # still resident
        assert cache.stats()["misses"] == 3

    def test_clear(self):
        cache = WorldCache()
        cache.get(tiny())
        cache.clear()
        assert len(cache) == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            WorldCache(max_entries=0)

    def test_nbytes_positive(self):
        ctx = SimulationContext.build(tiny())
        assert ctx.nbytes() > 0


class TestColumnSharing:
    def test_shared_columns_frozen(self):
        ctx = SimulationContext.build(tiny())
        pop = ctx.make_population()
        assert pop.bandwidth_bps is ctx.template.bandwidth_bps
        with pytest.raises(ValueError):
            pop.bandwidth_bps[0] = 1.0

    def test_mutable_columns_fresh_per_population(self):
        ctx = SimulationContext.build(tiny())
        a, b = ctx.make_population(), ctx.make_population()
        assert a.available is not b.available
        a.available[0] = False
        assert bool(b.available[0])
