"""Tests for client local training (Alg. 1 LOCALTRAINING)."""

import numpy as np
import pytest

from repro.data.datasets import make_dataset
from repro.fl.client import Client
from repro.nn.models import build_mlp, build_small_cnn
from repro.nn.params import get_flat_params


@pytest.fixture
def shard():
    return make_dataset("synth-cifar10", 128, seed=0)


@pytest.fixture
def model():
    return build_mlp(3 * 8 * 8, 10, hidden=(32,), seed=0)


class TestClient:
    def test_delta_sign_convention(self, shard, model):
        """Δw = w_t − w_local: applying w_t − Δw must give the trained model."""
        client = Client(0, shard, 32, np.random.default_rng(0), flatten_inputs=True)
        w0 = get_flat_params(model)
        res = client.local_train(model, w0, lr=0.1, epochs=1)
        trained = get_flat_params(model)
        np.testing.assert_allclose(w0 - res.delta, trained, atol=1e-6)

    def test_training_changes_params(self, shard, model):
        client = Client(0, shard, 32, np.random.default_rng(0), flatten_inputs=True)
        res = client.local_train(model, get_flat_params(model), lr=0.1, epochs=1)
        assert np.linalg.norm(res.delta) > 0

    def test_more_epochs_more_batches(self, shard, model):
        client = Client(0, shard, 32, np.random.default_rng(0), flatten_inputs=True)
        w0 = get_flat_params(model)
        r1 = client.local_train(model, w0, lr=0.01, epochs=1)
        r3 = client.local_train(model, w0, lr=0.01, epochs=3)
        assert r3.num_batches == 3 * r1.num_batches

    def test_loss_decreases_over_epochs(self, shard, model):
        client = Client(0, shard, 32, np.random.default_rng(0), flatten_inputs=True)
        w0 = get_flat_params(model)
        res = client.local_train(model, w0, lr=0.2, epochs=8)
        # Mean loss across 8 epochs must beat a 1-epoch run's mean loss.
        res1 = client.local_train(model, w0, lr=0.2, epochs=1)
        assert res.mean_loss < res1.mean_loss

    def test_states_captured(self, shard):
        cnn = build_small_cnn(3, 8, 10, seed=0)
        client = Client(0, shard, 32, np.random.default_rng(0))
        res = client.local_train(cnn, get_flat_params(cnn), lr=0.05, epochs=1)
        assert len(res.state_arrays) == len(cnn.state_arrays())
        # Running stats must have moved away from init (mean 0).
        assert np.abs(res.state_arrays[0]).sum() > 0

    def test_empty_shard_rejected(self, shard):
        with pytest.raises(ValueError):
            Client(0, shard.subset(np.array([], dtype=int)), 8, np.random.default_rng(0))

    def test_num_samples(self, shard):
        client = Client(3, shard, 16, np.random.default_rng(0))
        assert client.num_samples == 128
        assert client.client_id == 3

    def test_deterministic_given_rng(self, shard, model):
        w0 = get_flat_params(model)
        c1 = Client(0, shard, 32, np.random.default_rng(5), flatten_inputs=True)
        r1 = c1.local_train(model, w0, lr=0.1, epochs=1)
        c2 = Client(0, shard, 32, np.random.default_rng(5), flatten_inputs=True)
        r2 = c2.local_train(model, w0, lr=0.1, epochs=1)
        np.testing.assert_array_equal(r1.delta, r2.delta)
