"""Tests for the decentralized gossip engine."""

import numpy as np
import pytest

from repro.fl.config import ExperimentConfig
from repro.fl.decentralized import (
    DecentralizedSimulation,
    mixing_matrix,
    random_regular_edges,
    ring_edges,
)

FAST = dict(num_train=400, num_test=120, rounds=4, num_clients=4,
            lr=0.1, model="mlp", eval_every=2, compression_ratio=0.2, beta=0.5)


class TestTopologies:
    def test_ring_edges(self):
        edges = ring_edges(4)
        assert len(edges) == 4
        assert (0, 1) in edges and (3, 0) in edges

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring_edges(1)

    def test_random_regular(self):
        edges = random_regular_edges(8, 3, seed=0)
        deg = np.zeros(8, int)
        for a, b in edges:
            deg[a] += 1
            deg[b] += 1
        np.testing.assert_array_equal(deg, 3)

    def test_random_regular_degree_bound(self):
        with pytest.raises(ValueError):
            random_regular_edges(4, 4)


class TestMixingMatrix:
    def test_doubly_stochastic(self):
        w = mixing_matrix(5, ring_edges(5))
        np.testing.assert_allclose(w.sum(axis=0), 1.0, atol=1e-12)
        np.testing.assert_allclose(w.sum(axis=1), 1.0, atol=1e-12)
        np.testing.assert_allclose(w, w.T, atol=1e-12)
        assert np.all(w >= -1e-12)

    def test_respects_topology(self):
        w = mixing_matrix(5, ring_edges(5))
        assert w[0, 2] == 0.0  # not neighbors on the ring
        assert w[0, 1] > 0.0

    def test_bad_edges(self):
        with pytest.raises(ValueError):
            mixing_matrix(3, [(0, 0)])
        with pytest.raises(ValueError):
            mixing_matrix(3, [(0, 5)])

    def test_spectral_gap_enables_consensus(self):
        """Second-largest eigenvalue modulus < 1 on a connected graph."""
        w = mixing_matrix(6, ring_edges(6))
        eigs = np.sort(np.abs(np.linalg.eigvals(w)))
        assert eigs[-1] == pytest.approx(1.0, abs=1e-9)
        assert eigs[-2] < 1.0


class TestGossipDynamics:
    def test_pure_gossip_reaches_consensus(self):
        """Without training, repeated mixing shrinks disagreement."""
        sim = DecentralizedSimulation(ExperimentConfig(**{**FAST, "compression_ratio": 1.0}))
        # Give clients different initial params.
        rng = np.random.default_rng(0)
        sim.params += rng.normal(0, 0.1, size=sim.params.shape).astype(np.float32)
        d0 = sim.consensus_distance()
        sim.run(8, train=False)
        assert sim.consensus_distance() < 0.3 * d0

    def test_training_improves_mean_accuracy(self):
        cfg = ExperimentConfig(**{**FAST, "rounds": 15, "eval_every": 15})
        sim = DecentralizedSimulation(cfg)
        first = sim.mean_accuracy()
        sim.run()
        assert sim.history[-1].mean_accuracy > first + 0.1

    def test_records_and_times(self):
        sim = DecentralizedSimulation(ExperimentConfig(**FAST))
        recs = sim.run()
        assert len(recs) == 4
        assert all(r.comm_time > 0 for r in recs)
        evals = [r.round_index for r in recs if r.mean_accuracy is not None]
        assert evals == [0, 2, 3]

    def test_determinism(self):
        cfg = ExperimentConfig(**FAST)
        a = DecentralizedSimulation(cfg)
        b = DecentralizedSimulation(cfg)
        a.run(2)
        b.run(2)
        np.testing.assert_array_equal(a.params, b.params)

    def test_custom_topology(self):
        edges = random_regular_edges(4, 3, seed=1)  # fully-connected K4
        sim = DecentralizedSimulation(ExperimentConfig(**FAST), edges=edges)
        sim.run(1)
        assert sim.mixing[0, 1] > 0
