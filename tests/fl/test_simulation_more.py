"""Additional engine coverage: volume override, evaluation batching,
realized-vs-scheduled ratios, straggler accounting across algorithms."""

import pytest

from repro.fl.config import ExperimentConfig
from repro.fl.simulation import Simulation

FAST = dict(num_train=400, num_test=130, rounds=3, num_clients=4, participation=0.5,
            lr=0.1, model="mlp", eval_every=3)


class TestVolumeOverride:
    def test_override_changes_times_not_training(self):
        a = Simulation(ExperimentConfig(**FAST, algorithm="topk", compression_ratio=0.1))
        b = Simulation(
            ExperimentConfig(
                **FAST, algorithm="topk", compression_ratio=0.1, volume_override_bits=1e9
            )
        )
        ra = a.run_round()
        rb = b.run_round()
        assert rb.times.actual > ra.times.actual * 10
        assert ra.test_accuracy == rb.test_accuracy  # learning unaffected

    def test_invalid_override(self):
        with pytest.raises(ValueError):
            ExperimentConfig(volume_override_bits=0)


class TestEvaluation:
    def test_batched_eval_matches_single_batch(self):
        sim = Simulation(ExperimentConfig(**FAST))
        sim.run_round()
        assert sim.evaluate(batch_size=7) == pytest.approx(sim.evaluate(batch_size=1000))

    def test_final_round_always_evaluated(self):
        cfg = ExperimentConfig(**{**FAST, "rounds": 5, "eval_every": 100})
        sim = Simulation(cfg)
        h = sim.run()
        evaluated = [r.round_index for r in h.records if r.test_accuracy is not None]
        assert evaluated == [0, 4]


class TestRealizedRatios:
    def test_bcrs_record_matches_schedule_magnitude(self):
        cfg = ExperimentConfig(**FAST, algorithm="bcrs", compression_ratio=0.02)
        sim = Simulation(cfg)
        rec = sim.run_round()
        # Realized densities come from actual TopK nnz, so they track the
        # scheduled ratios up to rounding.
        assert min(rec.ratios) >= 0.01
        assert max(rec.ratios) <= 1.0

    def test_weights_recorded(self):
        cfg = ExperimentConfig(**FAST, algorithm="bcrs", compression_ratio=0.05, alpha=0.3)
        sim = Simulation(cfg)
        rec = sim.run_round()
        assert all(0 < w <= 0.3 + 1e-9 for w in rec.weights)


class TestStragglerAccounting:
    def test_max_metric_identical_across_compressed_algorithms(self):
        """Max Time prices the same dense straggler regardless of algorithm,
        so FedAvg/TopK/BCRS accumulate identical max totals per round set."""
        results = {}
        for alg in ("topk", "bcrs"):
            cfg = ExperimentConfig(**FAST, algorithm=alg, compression_ratio=0.1)
            h = Simulation(cfg).run()
            results[alg] = h.time.max_total
        assert results["topk"] == pytest.approx(results["bcrs"])
