"""Tests for ExperimentConfig and client sampling."""

import numpy as np
import pytest

from repro.fl.config import ALGORITHMS, ExperimentConfig
from repro.fl.sampler import UniformSampler


class TestConfig:
    def test_defaults_valid(self):
        cfg = ExperimentConfig()
        assert cfg.algorithm == "fedavg"
        assert cfg.clients_per_round == 5  # N=10, C=0.5

    @pytest.mark.parametrize("field,value", [
        ("algorithm", "sgd"),
        ("participation", 0.0),
        ("participation", 1.5),
        ("compression_ratio", 0.0),
        ("beta", -1.0),
        ("rounds", 0),
        ("num_clients", 0),
        ("partition", "bogus"),
        ("gamma", 0.0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            ExperimentConfig(**{field: value})

    def test_with_override(self):
        cfg = ExperimentConfig().with_(algorithm="bcrs", compression_ratio=0.1)
        assert cfg.algorithm == "bcrs"
        assert cfg.compression_ratio == 0.1
        # original untouched
        assert ExperimentConfig().algorithm == "fedavg"

    def test_all_algorithms_accepted(self):
        for alg in ALGORITHMS:
            assert ExperimentConfig(algorithm=alg).algorithm == alg

    def test_clients_per_round_at_least_one(self):
        cfg = ExperimentConfig(num_clients=3, participation=0.1)
        assert cfg.clients_per_round == 1


class TestUniformSampler:
    def test_sample_size_and_uniqueness(self):
        s = UniformSampler(10, 5, seed=0)
        sel = s.sample()
        assert len(sel) == 5
        assert len(np.unique(sel)) == 5
        assert sel.min() >= 0 and sel.max() < 10

    def test_sorted_output(self):
        s = UniformSampler(20, 7, seed=1)
        sel = s.sample()
        assert np.all(np.diff(sel) > 0)

    def test_covers_all_clients_eventually(self):
        s = UniformSampler(10, 5, seed=2)
        seen = set()
        for _ in range(50):
            seen.update(int(i) for i in s.sample())
        assert seen == set(range(10))

    def test_determinism(self):
        a = [tuple(UniformSampler(10, 3, seed=7).sample()) for _ in range(1)]
        b = [tuple(UniformSampler(10, 3, seed=7).sample()) for _ in range(1)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformSampler(5, 6)
        with pytest.raises(ValueError):
            UniformSampler(5, 0)
