"""Integration tests for the simulation engine."""

import numpy as np
import pytest

from repro.fl.config import ExperimentConfig
from repro.fl.simulation import Simulation, run_experiment

FAST = dict(
    num_train=600,
    num_test=200,
    rounds=6,
    num_clients=6,
    participation=0.5,
    lr=0.1,
    model="mlp",
    eval_every=2,
)


class TestSimulationConstruction:
    def test_partition_covers_clients(self):
        sim = Simulation(ExperimentConfig(**FAST))
        assert len(sim.clients) == 6
        assert sum(c.num_samples for c in sim.clients) == 600

    def test_links_sampled(self):
        sim = Simulation(ExperimentConfig(**FAST))
        assert len(sim.links) == 6
        assert all(l.bandwidth_bps > 0 for l in sim.links)

    def test_volume_matches_model(self):
        sim = Simulation(ExperimentConfig(**FAST))
        from repro.nn.params import num_parameters

        assert sim.volume_bits == num_parameters(sim.model) * 32

    @pytest.mark.parametrize("partition", ["dirichlet", "iid", "shard"])
    def test_all_partitions_build(self, partition):
        Simulation(ExperimentConfig(**{**FAST, "partition": partition}))


class TestRoundExecution:
    def test_round_record_fields(self):
        sim = Simulation(ExperimentConfig(**FAST))
        rec = sim.run_round()
        assert rec.round_index == 0
        assert len(rec.selected) == 3
        assert rec.test_accuracy is not None  # round 0 evaluates
        assert rec.times.actual > 0
        assert rec.train_seconds > 0

    def test_eval_cadence(self):
        sim = Simulation(ExperimentConfig(**FAST))
        h = sim.run()
        evals = [r.round_index for r in h.records if r.test_accuracy is not None]
        assert evals == [0, 2, 4, 5]  # every 2 plus the final round

    def test_params_change_every_round(self):
        sim = Simulation(ExperimentConfig(**FAST))
        before = sim.global_params.copy()
        sim.run_round()
        assert not np.array_equal(before, sim.global_params)

    def test_training_improves_over_chance(self):
        cfg = ExperimentConfig(**{**FAST, "rounds": 25, "eval_every": 25})
        h = run_experiment(cfg)
        assert h.final_accuracy() > 0.3  # chance is 0.1

    def test_determinism_same_seed(self):
        cfg = ExperimentConfig(**FAST, algorithm="topk", compression_ratio=0.2)
        h1 = run_experiment(cfg)
        h2 = run_experiment(cfg)
        a1 = [r.test_accuracy for r in h1.records]
        a2 = [r.test_accuracy for r in h2.records]
        assert a1 == a2

    def test_different_seed_differs(self):
        cfg = ExperimentConfig(**FAST)
        h1 = run_experiment(cfg)
        h2 = run_experiment(cfg.with_(seed=99))
        assert [r.test_accuracy for r in h1.records] != [r.test_accuracy for r in h2.records]


class TestAlgorithmsEndToEnd:
    @pytest.mark.parametrize("alg", ["fedavg", "topk", "eftopk", "bcrs", "bcrs_opwa"])
    def test_all_algorithms_run(self, alg):
        cfg = ExperimentConfig(**FAST, algorithm=alg, compression_ratio=0.1)
        h = run_experiment(cfg)
        assert len(h) == 6
        assert 0.0 <= h.final_accuracy() <= 1.0

    def test_sparse_ratios_realized(self):
        cfg = ExperimentConfig(**FAST, algorithm="topk", compression_ratio=0.1)
        sim = Simulation(cfg)
        rec = sim.run_round()
        for r in rec.ratios:
            assert r == pytest.approx(0.1, rel=0.2)

    def test_bcrs_ratios_heterogeneous(self):
        cfg = ExperimentConfig(**FAST, algorithm="bcrs", compression_ratio=0.05)
        sim = Simulation(cfg)
        rec = sim.run_round()
        assert max(rec.ratios) > min(rec.ratios)

    def test_overlap_recorded_for_sparse(self):
        cfg = ExperimentConfig(**FAST, algorithm="topk", compression_ratio=0.05)
        sim = Simulation(cfg)
        rec = sim.run_round()
        assert rec.singleton_fraction is not None
        assert 0.0 <= rec.singleton_fraction <= 1.0

    def test_fedavg_no_singleton_metric(self):
        sim = Simulation(ExperimentConfig(**FAST))
        rec = sim.run_round()
        assert rec.singleton_fraction is None

    def test_time_accounting_monotone(self):
        cfg = ExperimentConfig(**FAST, algorithm="topk", compression_ratio=0.1)
        h = run_experiment(cfg)
        assert h.time.actual_total <= h.time.max_total
        assert h.time.min_total <= h.time.actual_total

    def test_time_varying_links(self):
        cfg = ExperimentConfig(**FAST, time_varying_links=True, link_volatility=0.3)
        sim = Simulation(cfg)
        bw0 = [l.bandwidth_bps for l in sim.links]
        sim.run_round()
        bw1 = [l.bandwidth_bps for l in sim.links]
        assert bw0 != bw1


class TestBatchNormModels:
    def test_cnn_with_bn_runs_and_evaluates(self):
        cfg = ExperimentConfig(
            **{**FAST, "model": "small_cnn", "rounds": 3, "num_train": 300, "num_test": 100}
        )
        h = run_experiment(cfg)
        assert h.final_accuracy() >= 0.0
        # Global BN stats must have been updated away from init.
        sim = Simulation(cfg)
        sim.run_round()
        assert any(np.abs(s).sum() > 0 for s in sim.global_states)
