"""End-to-end transport contract: payload-accurate pricing, fair-ingress
contention, and the flow-accounting ledger across all four protocols.

The companion unit/property suite lives in tests/network/test_transport.py;
this file checks the *integration* invariants: exclusive runs price exactly
Eq. 4 on the emitted bits, fair runs are never faster than exclusive ones,
contended histories stay bit-identical across execution backends, and the
per-round ledgers add up to what the compressors actually emitted.
"""

import numpy as np
import pytest

from repro.compression.base import DenseUpdate, SparseUpdate
from repro.fl.config import ExperimentConfig
from repro.network.cost import uplink_time
from repro.simtime import make_simulation

ALL_MODES = ["sync", "semisync", "async", "hier"]


def small_config(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="synth-cifar10",
        model="mlp",
        num_train=240,
        num_test=120,
        num_clients=6,
        participation=0.5,
        rounds=3,
        batch_size=32,
        algorithm="topk",
        compression_ratio=0.2,
        seed=3,
        eval_every=1,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def run_sim(config):
    with make_simulation(config) as sim:
        history = sim.run()
    return sim, history


class TestPayloadAccuratePricing:
    def test_dense_uploads_price_eq4_exactly(self):
        """No compressor → upload span = L + V/B, bitwise (the seed
        arithmetic the refactor must preserve)."""
        sim, h = run_sim(small_config(algorithm="fedavg", compression_ratio=1.0, rounds=2))
        for s in sim.spans:
            if s.kind != "upload":
                continue
            expected = uplink_time(sim.links[s.cid], sim.volume_bits)
            assert s.end - s.start == pytest.approx(expected, abs=0.0, rel=1e-15)

    def test_sparse_uploads_price_emitted_bits(self):
        """Compressed uploads are priced from nnz × (index+value bits), not
        the planned-ratio × factor-2 approximation."""
        sim, h = run_sim(small_config(rounds=2))
        rec = h.records[-1]
        updates = sim.last_round_updates
        spans = {
            s.cid: s.end - s.start
            for s in sim.spans
            if s.tag == rec.round_index and s.kind == "upload"
        }
        for cid, u in zip(rec.selected, updates):
            assert isinstance(u, SparseUpdate)
            link = sim.links[cid]
            assert spans[cid] == pytest.approx(
                link.latency_s + u.bits / link.bandwidth_bps
            )

    def test_volume_override_falls_back_to_planned_ratio(self):
        """Paper-scale volume simulation can't use the small model's emitted
        bits; the documented factor-2 fallback must price it."""
        from repro.network.cost import sparse_uplink_time

        sim, h = run_sim(small_config(rounds=1, volume_override_bits=32e6))
        rec = h.records[0]
        spans = {
            s.cid: s.end - s.start
            for s in sim.spans
            if s.tag == 0 and s.kind == "upload"
        }
        for cid in rec.selected:
            expected = sparse_uplink_time(
                sim.links[cid], 32e6, small_config().compression_ratio
            )
            assert spans[cid] == pytest.approx(expected)

    def test_emitted_update_outprices_every_plan(self):
        """An emitted update always wins over plan-based pricing — a
        quantized (8-bit) DenseUpdate is priced at d × 8 bits even when the
        plan says dense (ratio=None), not charged as 32-bit dense."""
        sim, _ = run_sim(small_config(rounds=1))
        d = sim.dense_size
        quant = DenseUpdate(dense_size=d, values=np.zeros(d, np.float32), value_bits=8)
        p = sim._payload_for(quant, None)
        assert p.kind == "quantized"
        assert p.bits == d * 8

    def test_async_predicted_bits_match_emitted_bits(self):
        """Deferred-training dispatches are priced from the predicted Top-K
        wire size — which must equal what the compressor then emits."""
        sim, h = run_sim(small_config(mode="async", rounds=3))
        for r in h.records:
            assert r.comm is not None
            emitted = {cid: 0.0 for cid in r.selected}
            # Realized density × dense size × 64 bits per retained entry.
            for cid, ratio in zip(r.selected, r.ratios):
                emitted[cid] += round(ratio * sim.dense_size) * 64.0
            assert dict(r.comm.uplink) == pytest.approx(emitted)


class TestFairContention:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_fair_never_faster_than_exclusive(self, mode):
        cfg = small_config(mode=mode, rounds=3)
        _, none_h = run_sim(cfg)
        _, fair_h = run_sim(cfg.with_(contention="fair", server_ingress_mbps=0.5))
        assert fair_h.records[-1].sim_end >= none_h.records[-1].sim_end - 1e-9

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_generous_ingress_changes_nothing_learning_wise(self, mode):
        """A huge ingress capacity removes all sharing: selections, losses,
        and weights match the exclusive run (timing may differ only by
        float-path, so compare the learning trajectory)."""
        cfg = small_config(mode=mode, rounds=3)
        _, none_h = run_sim(cfg)
        _, fair_h = run_sim(cfg.with_(contention="fair", server_ingress_mbps=1e6))
        for rn, rf in zip(none_h.records, fair_h.records):
            assert rn.selected == rf.selected
            assert rn.train_loss == rf.train_loss
            assert rn.weights == rf.weights
            assert rf.sim_end == pytest.approx(rn.sim_end)

    def test_tight_ingress_stretches_rounds(self):
        cfg = small_config(rounds=3)
        _, none_h = run_sim(cfg)
        _, fair_h = run_sim(cfg.with_(contention="fair", server_ingress_mbps=0.2))
        assert fair_h.records[-1].sim_end > none_h.records[-1].sim_end

    def test_config_requires_ingress_capacity(self):
        with pytest.raises(ValueError, match="server_ingress_mbps"):
            small_config(contention="fair")
        with pytest.raises(ValueError, match="contention"):
            small_config(contention="tdma")

    @pytest.mark.parametrize("mode", ALL_MODES)
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_contended_runs_bit_identical_across_backends(self, mode, backend):
        """The determinism contract extends to contended transfers."""
        cfg = small_config(
            mode=mode, algorithm="eftopk", rounds=3, seed=5,
            contention="fair", server_ingress_mbps=0.8,
        )
        serial_sim, serial_h = run_sim(cfg)
        other_sim, other_h = run_sim(cfg.with_(backend=backend, workers=2))
        assert len(serial_h) == len(other_h)
        for ra, rb in zip(serial_h.records, other_h.records):
            assert ra.selected == rb.selected
            assert ra.train_loss == rb.train_loss
            assert ra.times == rb.times
            assert ra.weights == rb.weights
            assert ra.sim_start == rb.sim_start
            assert ra.sim_end == rb.sim_end
            assert ra.comm == rb.comm
        assert serial_sim.spans.spans == other_sim.spans.spans

    def test_semisync_drop_frees_ingress(self):
        """late_policy='drop' cancels the straggler's flow; the run still
        terminates and never records a stale contribution."""
        cfg = small_config(
            mode="semisync", rounds=5, deadline_quantile=0.3,
            compute_heterogeneity=1.5, late_policy="drop",
            contention="fair", server_ingress_mbps=0.5,
        )
        _, h = run_sim(cfg)
        assert len(h) == 5
        assert all((r.mean_staleness or 0) == 0 for r in h.records)

    def test_hier_degenerate_fair_matches_flat_fair(self):
        """The degenerate-equivalence contract survives contention: one
        free-backhaul edge over everything == the flat sync protocol."""
        cfg = small_config(contention="fair", server_ingress_mbps=0.5)
        flat_sim, flat_h = run_sim(cfg)
        hier_sim, hier_h = run_sim(cfg.with_(mode="hier"))
        for rf, rh in zip(flat_h.records, hier_h.records):
            assert rf.selected == rh.selected
            assert rf.sim_start == rh.sim_start
            assert rf.sim_end == rh.sim_end
            assert rf.comm == rh.comm
        assert flat_sim.spans.spans == hier_sim.spans.spans


class TestFlowLedger:
    def test_sync_ledger_matches_emitted_updates(self):
        sim, h = run_sim(small_config(rounds=2))
        rec = h.records[-1]
        emitted = {}
        for cid, u in zip(rec.selected, sim.last_round_updates):
            emitted[cid] = emitted.get(cid, 0.0) + float(u.bits)
        assert dict(rec.comm.uplink) == emitted
        assert rec.comm.downlink == ()  # downlink accounting off
        assert rec.comm.backhaul == ()  # flat protocol

    def test_downlink_entries_appear_when_priced(self):
        _, h = run_sim(small_config(rounds=2, include_downlink=True))
        for r in h.records:
            assert r.comm.downlink_bits == len(r.selected) * h.records[0].comm.downlink[0][1]

    def test_hier_ledger_carries_backhaul_tier(self):
        cfg = small_config(
            mode="hier", num_edges=3, backhaul_bandwidth_mbps=50.0, rounds=2
        )
        sim, h = run_sim(cfg)
        for r in h.records:
            assert len(r.comm.backhaul) == 3  # one entry per billed edge
            assert all(bits == sim.volume_bits for _, bits in r.comm.backhaul)

    def test_free_backhaul_is_not_billed(self):
        _, h = run_sim(small_config(mode="hier", num_edges=2, rounds=1))
        assert h.records[0].comm.backhaul == ()

    def test_history_totals_and_per_client(self):
        _, h = run_sim(small_config(rounds=3))
        totals = h.comm_totals()
        assert totals["rounds"] == 3
        assert totals["total_bytes"] == pytest.approx(
            totals["uplink_bytes"] + totals["downlink_bytes"] + totals["backhaul_bytes"]
        )
        per_client = h.comm_per_client()
        assert sum(per_client.values()) == pytest.approx(totals["uplink_bytes"])

    def test_ledger_roundtrips_through_json(self):
        from repro.io.history_io import history_from_dict, history_to_dict

        _, h = run_sim(
            small_config(mode="hier", num_edges=2, backhaul_bandwidth_mbps=50.0, rounds=2)
        )
        back = history_from_dict(history_to_dict(h))
        for ra, rb in zip(h.records, back.records):
            assert ra.comm == rb.comm

    def test_legacy_history_loads_without_ledger(self):
        from repro.io.history_io import history_from_dict, history_to_dict

        _, h = run_sim(small_config(rounds=1))
        data = history_to_dict(h)
        for rec in data["records"]:
            del rec["comm"]  # pre-transport file
        back = history_from_dict(data)
        assert back.records[0].comm is None
        assert back.comm_totals()["rounds"] == 0
