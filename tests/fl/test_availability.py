"""Tests for availability models and the availability-aware sampler."""

import numpy as np
import pytest

from repro.fl.availability import (
    AvailabilityAwareSampler,
    BernoulliAvailability,
    MarkovAvailability,
)


class TestBernoulli:
    def test_rate_matches_p(self):
        av = BernoulliAvailability(200, 0.3, seed=0)
        rate = np.mean([av.step().mean() for _ in range(200)])
        assert rate == pytest.approx(0.3, abs=0.02)

    def test_p_one_always_available(self):
        av = BernoulliAvailability(10, 1.0, seed=0)
        assert av.step().all()

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliAvailability(0, 0.5)
        with pytest.raises(ValueError):
            BernoulliAvailability(5, 1.5)


class TestMarkov:
    def test_starts_online(self):
        av = MarkovAvailability(5, seed=0)
        assert av.state.all()

    @pytest.mark.parametrize(
        "p_on,p_off",
        [(0.9, 0.7), (0.95, 0.95), (0.5, 0.5), (0.8, 0.3)],
    )
    def test_stationary_rate_matches_closed_form(self, p_on, p_off):
        """Long-run online fraction approaches p_off→on / (p_on→off + p_off→on)."""
        av = MarkovAvailability(500, p_stay_on=p_on, p_stay_off=p_off, seed=0)
        for _ in range(100):  # burn-in past the all-online start state
            av.step()
        rate = np.mean([av.step().mean() for _ in range(300)])
        expected = (1 - p_off) / ((1 - p_on) + (1 - p_off))
        assert rate == pytest.approx(expected, abs=0.04)

    def test_burstiness(self):
        """High self-transition ⇒ long on/off runs: consecutive-round
        agreement beats the memoryless rate."""
        av = MarkovAvailability(300, p_stay_on=0.95, p_stay_off=0.95, seed=1)
        prev = av.step()
        agree = []
        for _ in range(100):
            cur = av.step()
            agree.append((cur == prev).mean())
            prev = cur
        assert np.mean(agree) > 0.85


class TestSampler:
    def test_samples_only_available(self):
        av = BernoulliAvailability(20, 0.5, seed=3)
        sampler = AvailabilityAwareSampler(av, 5, seed=0)
        # Track availability by stepping a twin process in lockstep.
        twin = BernoulliAvailability(20, 0.5, seed=3)
        for _ in range(20):
            chosen = sampler.sample()
            mask = twin.step()
            assert np.all(mask[chosen])

    def test_short_rounds_when_few_available(self):
        av = BernoulliAvailability(10, 0.15, seed=0)
        sampler = AvailabilityAwareSampler(av, 8, seed=0)
        sizes = [len(sampler.sample()) for _ in range(50)]
        assert min(sizes) >= 1
        assert max(sizes) <= 8
        assert np.mean(sizes) < 8  # churn really bites

    def test_waits_for_availability(self):
        av = BernoulliAvailability(4, 0.02, seed=0)
        sampler = AvailabilityAwareSampler(av, 2, seed=0)
        assert len(sampler.sample()) >= 1  # waits instead of failing

    def test_validation(self):
        av = BernoulliAvailability(4, 0.5)
        with pytest.raises(ValueError):
            AvailabilityAwareSampler(av, 0)
        with pytest.raises(ValueError):
            AvailabilityAwareSampler(av, 2, on_empty="retry-forever")


class TestZeroAvailableRound:
    """A round with zero available clients is well-defined, not an exception."""

    def test_skip_returns_empty_round(self):
        av = BernoulliAvailability(8, 0.0, seed=0)  # nobody, ever
        sampler = AvailabilityAwareSampler(av, 3, seed=0, on_empty="skip")
        chosen = sampler.sample()
        assert chosen.size == 0
        assert chosen.dtype == np.int64  # well-typed for downstream indexing

    def test_skip_consumes_one_availability_step(self):
        av = BernoulliAvailability(8, 0.0, seed=0)
        sampler = AvailabilityAwareSampler(av, 3, seed=0, on_empty="skip")
        twin = BernoulliAvailability(8, 0.0, seed=0)
        sampler.sample()
        twin.step()
        # Both processes advanced exactly once: their RNGs stay in lockstep.
        assert np.array_equal(av.rng.random(4), twin.rng.random(4))

    def test_skip_recovers_when_clients_return(self):
        av = MarkovAvailability(6, p_stay_on=0.0, p_stay_off=0.0, seed=0)  # alternates
        sampler = AvailabilityAwareSampler(av, 2, seed=0, on_empty="skip")
        sizes = [sampler.sample().size for _ in range(6)]
        assert 0 in sizes and 2 in sizes  # skipped rounds and full rounds

    def test_wait_raises_only_after_max_waits(self):
        av = BernoulliAvailability(4, 0.0, seed=0)
        sampler = AvailabilityAwareSampler(av, 2, seed=0, max_waits=10)
        with pytest.raises(RuntimeError, match="10 waits"):
            sampler.sample()
