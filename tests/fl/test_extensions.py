"""Tests for engine extensions: FedProx, server optimizers, downlink."""

import numpy as np
import pytest

from repro.data.datasets import make_dataset
from repro.fl.algorithms import make_algorithm
from repro.fl.client import Client
from repro.fl.config import ExperimentConfig
from repro.fl.simulation import Simulation, run_experiment
from repro.network.cost import LinkSpec
from repro.nn.models import build_mlp
from repro.nn.params import get_flat_params

FAST = dict(num_train=500, num_test=150, rounds=5, num_clients=5, participation=0.6,
            lr=0.1, model="mlp", eval_every=2)


class TestFedProx:
    def test_proximal_term_shrinks_drift(self):
        """Large mu keeps the local model closer to the global anchor."""
        shard = make_dataset("synth-cifar10", 256, seed=0)
        model = build_mlp(192, 10, hidden=(32,), seed=0)
        w0 = get_flat_params(model)
        client = Client(0, shard, 64, np.random.default_rng(0), flatten_inputs=True)
        plain = client.local_train(model, w0, lr=0.2, epochs=3, proximal_mu=0.0)
        client2 = Client(0, shard, 64, np.random.default_rng(0), flatten_inputs=True)
        prox = client2.local_train(model, w0, lr=0.2, epochs=3, proximal_mu=1.0)
        assert np.linalg.norm(prox.delta) < np.linalg.norm(plain.delta)

    def test_mu_zero_identical_to_plain(self):
        shard = make_dataset("synth-cifar10", 128, seed=0)
        model = build_mlp(192, 10, hidden=(16,), seed=0)
        w0 = get_flat_params(model)
        r1 = Client(0, shard, 64, np.random.default_rng(1), flatten_inputs=True).local_train(
            model, w0, lr=0.1, epochs=1
        )
        r2 = Client(0, shard, 64, np.random.default_rng(1), flatten_inputs=True).local_train(
            model, w0, lr=0.1, epochs=1, proximal_mu=0.0
        )
        np.testing.assert_array_equal(r1.delta, r2.delta)

    def test_fedprox_end_to_end(self):
        cfg = ExperimentConfig(**FAST, proximal_mu=0.1, beta=0.1)
        h = run_experiment(cfg)
        assert h.final_accuracy() > 0.1

    def test_negative_mu_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(proximal_mu=-0.1)


class TestServerOptimizerIntegration:
    def test_default_sgd_matches_previous_semantics(self):
        """server_optimizer='sgd', momentum=0 reproduces the plain engine."""
        cfg = ExperimentConfig(**FAST)
        h1 = run_experiment(cfg)
        h2 = run_experiment(cfg.with_(server_optimizer="sgd", server_momentum=0.0))
        assert [r.test_accuracy for r in h1.records] == [r.test_accuracy for r in h2.records]

    def test_fedavgm_runs(self):
        cfg = ExperimentConfig(**FAST, server_momentum=0.9)
        assert run_experiment(cfg).final_accuracy() > 0.1

    def test_fedadam_runs(self):
        cfg = ExperimentConfig(**FAST, server_optimizer="adam", server_step=0.03)
        assert run_experiment(cfg).final_accuracy() > 0.1

    def test_bad_server_opt_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(server_optimizer="lamb")
        with pytest.raises(ValueError):
            ExperimentConfig(server_momentum=1.0)

    def test_server_opt_composes_with_opwa(self):
        cfg = ExperimentConfig(
            **FAST, algorithm="bcrs_opwa", compression_ratio=0.1, server_momentum=0.5
        )
        assert run_experiment(cfg).final_accuracy() > 0.1


class TestDownlink:
    LINKS = [LinkSpec(1e6, 0.1), LinkSpec(2e6, 0.05)]
    FREQS = np.array([0.5, 0.5])
    V = 32e5

    def test_downlink_adds_time(self):
        base = ExperimentConfig(algorithm="topk", compression_ratio=0.1)
        with_dl = base.with_(include_downlink=True)
        t0 = make_algorithm(base).plan(self.LINKS, self.FREQS, self.V).times
        t1 = make_algorithm(with_dl).plan(self.LINKS, self.FREQS, self.V).times
        assert t1.actual > t0.actual
        assert t1.maximum > t0.maximum

    def test_downlink_factor_scales(self):
        slow = ExperimentConfig(include_downlink=True, downlink_factor=2.0)
        fast = ExperimentConfig(include_downlink=True, downlink_factor=100.0)
        t_slow = make_algorithm(slow).plan(self.LINKS, self.FREQS, self.V).times
        t_fast = make_algorithm(fast).plan(self.LINKS, self.FREQS, self.V).times
        assert t_slow.actual > t_fast.actual

    def test_downlink_applies_to_bcrs(self):
        base = ExperimentConfig(algorithm="bcrs", compression_ratio=0.1)
        with_dl = base.with_(include_downlink=True)
        t0 = make_algorithm(base).plan(self.LINKS, self.FREQS, self.V).times
        t1 = make_algorithm(with_dl).plan(self.LINKS, self.FREQS, self.V).times
        assert t1.actual > t0.actual

    def test_simulation_with_downlink(self):
        cfg = ExperimentConfig(**FAST, include_downlink=True)
        h = run_experiment(cfg)
        assert h.time.actual_total > 0

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            ExperimentConfig(downlink_factor=0.0)
