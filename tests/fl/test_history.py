"""Tests for History / RoundRecord bookkeeping."""

import numpy as np
import pytest

from repro.fl.history import History, RoundRecord
from repro.network.metrics import RoundTimes


def record(i, acc=None, actual=1.0, maximum=2.0, minimum=0.5, sim_start=None, sim_end=None):
    return RoundRecord(
        round_index=i,
        selected=(0, 1),
        train_loss=1.0,
        test_accuracy=acc,
        times=RoundTimes(actual=actual, maximum=maximum, minimum=minimum),
        ratios=(0.1, 0.1),
        weights=(0.5, 0.5),
        singleton_fraction=0.5,
        train_seconds=0.01,
        compress_seconds=0.001,
        sim_start=sim_start,
        sim_end=sim_end,
    )


class TestSeries:
    def test_accuracy_series_skips_unevaluated(self):
        h = History()
        h.append(record(0, acc=0.1))
        h.append(record(1))
        h.append(record(2, acc=0.3))
        rounds, accs = h.accuracy_series()
        np.testing.assert_array_equal(rounds, [0, 2])
        np.testing.assert_allclose(accs, [0.1, 0.3])

    def test_empty_series(self):
        h = History()
        rounds, accs = h.accuracy_series()
        assert rounds.size == accs.size == 0

    def test_accuracy_vs_time(self):
        h = History()
        h.append(record(0, acc=0.1, actual=1.0))
        h.append(record(1, acc=0.2, actual=2.0))
        t, accs = h.accuracy_vs_time()
        np.testing.assert_allclose(t, [1.0, 3.0])
        np.testing.assert_allclose(accs, [0.1, 0.2])

    def test_final_and_best(self):
        h = History()
        h.append(record(0, acc=0.5))
        h.append(record(1, acc=0.3))
        assert h.final_accuracy() == 0.3
        assert h.best_accuracy() == 0.5

    def test_final_raises_when_empty(self):
        with pytest.raises(ValueError):
            History().final_accuracy()


class TestSimtimeSeries:
    def test_uses_sim_spans_when_present(self):
        h = History()
        h.append(record(0, acc=0.1, sim_start=0.0, sim_end=4.0))
        h.append(record(1, acc=0.3, sim_start=4.0, sim_end=9.0))
        t, accs = h.accuracy_vs_simtime()
        np.testing.assert_allclose(t, [4.0, 9.0])
        np.testing.assert_allclose(accs, [0.1, 0.3])

    def test_falls_back_to_comm_axis_without_spans(self):
        h = History()
        h.append(record(0, acc=0.1, actual=1.0))
        h.append(record(1, acc=0.2, actual=2.0))
        t, _ = h.accuracy_vs_simtime()
        np.testing.assert_allclose(t, [1.0, 3.0])  # cumulative comm actual

    def test_simtime_to_accuracy(self):
        h = History()
        h.append(record(0, acc=0.1, sim_start=0.0, sim_end=4.0))
        h.append(record(1, acc=0.3, sim_start=4.0, sim_end=9.0))
        assert h.simtime_to_accuracy(0.2) == pytest.approx(9.0)
        assert h.simtime_to_accuracy(0.9) is None


class TestTimeToAccuracy:
    def test_reaches_target(self):
        h = History()
        h.append(record(0, acc=0.2, actual=1.0, maximum=3.0, minimum=0.5))
        h.append(record(1, acc=0.5, actual=1.0, maximum=3.0, minimum=0.5))
        out = h.time_to_accuracy(0.4)
        assert out["actual"] == pytest.approx(2.0)
        assert out["max"] == pytest.approx(6.0)
        assert out["min"] == pytest.approx(1.0)
        assert h.rounds_to_accuracy(0.4) == 1

    def test_never_reached(self):
        h = History()
        h.append(record(0, acc=0.1))
        assert h.time_to_accuracy(0.9) == {"actual": None, "max": None, "min": None}
        assert h.rounds_to_accuracy(0.9) is None

    def test_counts_unevaluated_round_times(self):
        """Communication cost accrues even on rounds without evaluation."""
        h = History()
        h.append(record(0, actual=5.0))
        h.append(record(1, acc=0.9, actual=1.0))
        assert h.time_to_accuracy(0.5)["actual"] == pytest.approx(6.0)


class TestBreakdown:
    def test_mean_breakdown(self):
        h = History()
        h.append(record(0))
        h.append(record(1))
        b = h.mean_breakdown()
        assert b["train_s"] == pytest.approx(0.01)
        assert b["comm_uncompressed_s"] == pytest.approx(2.0)
        assert b["comm_actual_s"] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            History().mean_breakdown()
