"""Tests for the algorithm presets' round plans."""

import numpy as np
import pytest

from repro.fl.algorithms import make_algorithm
from repro.fl.config import ExperimentConfig
from repro.network.cost import LinkSpec, sparse_uplink_time, uplink_time

V = 32e5
LINKS = [LinkSpec(2e6, 0.05), LinkSpec(1e6, 0.10), LinkSpec(0.5e6, 0.15)]
FREQS = np.array([0.5, 0.3, 0.2])


def plan_for(algorithm, **cfg_kwargs):
    cfg = ExperimentConfig(algorithm=algorithm, **cfg_kwargs)
    return make_algorithm(cfg).plan(LINKS, FREQS, V)


class TestFedAvgPlan:
    def test_dense_and_fweighted(self):
        plan = plan_for("fedavg")
        assert plan.ratios is None
        np.testing.assert_allclose(plan.weights, FREQS)
        assert not plan.use_opwa

    def test_actual_is_dense_straggler(self):
        plan = plan_for("fedavg")
        expected = max(uplink_time(l, V) for l in LINKS)
        assert plan.times.actual == pytest.approx(expected)
        assert plan.times.maximum == plan.times.actual


class TestTopKPlan:
    def test_uniform_ratios(self):
        plan = plan_for("topk", compression_ratio=0.1)
        np.testing.assert_allclose(plan.ratios, 0.1)
        np.testing.assert_allclose(plan.weights, FREQS)

    def test_actual_is_compressed_straggler(self):
        plan = plan_for("topk", compression_ratio=0.1)
        expected = max(sparse_uplink_time(l, V, 0.1) for l in LINKS)
        assert plan.times.actual == pytest.approx(expected)

    def test_maximum_is_uncompressed_straggler(self):
        """Sec. 5.2: Max Time accumulates FedAvg's (dense) transmission cost."""
        plan = plan_for("topk", compression_ratio=0.01)
        expected = max(uplink_time(l, V) for l in LINKS)
        assert plan.times.maximum == pytest.approx(expected)
        assert plan.times.actual < plan.times.maximum

    def test_eftopk_uses_ef_compressor(self):
        cfg = ExperimentConfig(algorithm="eftopk", compression_ratio=0.1)
        assert make_algorithm(cfg).compressor_name == "ef_topk"


class TestBCRSPlan:
    def test_ratios_scheduled_not_uniform(self):
        plan = plan_for("bcrs", compression_ratio=0.01)
        assert plan.ratios is not None
        assert plan.ratios[0] > plan.ratios[2]  # faster link, higher ratio

    def test_weights_bounded_by_alpha(self):
        plan = plan_for("bcrs", compression_ratio=0.01, alpha=0.3)
        assert np.all(plan.weights <= 0.3 + 1e-12)

    def test_actual_equals_topk_straggler(self):
        """BCRS's benchmark equals the slowest client's uniform-CR time, so
        its per-round actual time matches TopK's — the win is in information
        per round, not per-round time."""
        bcrs = plan_for("bcrs", compression_ratio=0.1)
        topk = plan_for("topk", compression_ratio=0.1)
        assert bcrs.times.actual == pytest.approx(topk.times.actual)

    def test_opwa_flag(self):
        assert not plan_for("bcrs", compression_ratio=0.1).use_opwa
        assert plan_for("bcrs_opwa", compression_ratio=0.1).use_opwa

    def test_median_benchmark_propagates(self):
        plan = plan_for("bcrs", compression_ratio=0.1, benchmark="median")
        # With a median benchmark, the slowest client is clipped at CR*.
        assert plan.ratios[2] == pytest.approx(0.1)
