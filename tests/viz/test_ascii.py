"""Tests for ASCII plotting."""

import numpy as np
import pytest

from repro.simtime.events import ClientSpan, SpanLog
from repro.viz.ascii import ascii_bars, ascii_plot, ascii_timeline


class TestAsciiPlot:
    def test_markers_and_legend(self):
        x = np.arange(10)
        out = ascii_plot({"one": (x, x), "two": (x, x[::-1])})
        assert "a = one" in out
        assert "b = two" in out
        assert "a" in out.splitlines()[0] + out.splitlines()[1]

    def test_monotone_series_occupies_diagonal(self):
        x = np.arange(20)
        out = ascii_plot({"lin": (x, x)}, width=20, height=10)
        rows = [l for l in out.splitlines() if "a" in l]
        # first 'a' row (top) has marker far right; last has it far left
        first = rows[0].rindex("a")
        last = rows[-1].rindex("a")
        assert first > last

    def test_constant_series_no_crash(self):
        x = np.arange(5)
        out = ascii_plot({"flat": (x, np.ones(5))})
        assert "flat" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"x": (np.arange(3), np.arange(4))})
        with pytest.raises(ValueError):
            ascii_plot({"x": (np.arange(3), np.arange(3))}, width=5)

    def test_axis_labels_shown(self):
        out = ascii_plot({"s": (np.arange(3), np.arange(3))}, x_label="round", y_label="acc")
        assert "acc vs round" in out


class TestAsciiTimeline:
    @staticmethod
    def spans():
        return [
            ClientSpan(cid=0, kind="train", start=0.0, end=4.0),
            ClientSpan(cid=0, kind="upload", start=4.0, end=10.0),
            ClientSpan(cid=2, kind="train", start=0.0, end=1.0),
            ClientSpan(cid=2, kind="upload", start=1.0, end=2.0),
        ]

    def test_one_row_per_client_with_glyphs(self):
        out = ascii_timeline(self.spans(), width=20)
        lines = out.splitlines()
        assert lines[0].startswith("c0")
        assert lines[1].startswith("c2")
        assert "█" in lines[0] and "░" in lines[0]
        assert "█ train" in out and "░ upload" in out

    def test_proportions_roughly_match_durations(self):
        out = ascii_timeline(self.spans(), width=20)
        row0 = out.splitlines()[0]
        # c0 trains 4s of a 10s window on 20 cells ⇒ ~8 train cells, ~12 upload.
        assert 6 <= row0.count("█") <= 10
        assert 10 <= row0.count("░") <= 14
        # c2 finished at t=2: nothing drawn in the right half of its row.
        row2 = out.splitlines()[1]
        assert set(row2[row2.index("│") + 11 : row2.rindex("│")]) <= {" "}

    def test_window_crop(self):
        out = ascii_timeline(self.spans(), t0=0.0, t1=2.0, width=20)
        # Window ends at 2s: c0 is still training (no upload glyph visible).
        row0 = out.splitlines()[0]
        assert "░" not in row0

    def test_accepts_span_log(self):
        log = SpanLog()
        log.add(1, "train", 0.0, 1.0)
        out = ascii_timeline(log, width=12)
        assert out.splitlines()[0].startswith("c1")

    def test_sub_cell_span_still_visible(self):
        spans = [
            ClientSpan(cid=0, kind="train", start=0.0, end=0.001),
            ClientSpan(cid=1, kind="train", start=0.0, end=100.0),
        ]
        out = ascii_timeline(spans, width=20)
        assert "█" in out.splitlines()[0]

    def test_axis_labels_show_window(self):
        out = ascii_timeline(self.spans(), width=20)
        assert "0s" in out and "10s" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_timeline([])
        with pytest.raises(ValueError):
            ascii_timeline(self.spans(), width=5)


class TestAsciiBars:
    def test_longest_bar_is_peak(self):
        out = ascii_bars({"small": 1.0, "big": 10.0}, width=10)
        lines = out.splitlines()
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 1

    def test_unit_suffix(self):
        out = ascii_bars({"t": 2.0}, unit="s")
        assert "2s" in out

    def test_zero_values_ok(self):
        out = ascii_bars({"z": 0.0, "one": 1.0})
        assert "z" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bars({})
        with pytest.raises(ValueError):
            ascii_bars({"neg": -1.0})
