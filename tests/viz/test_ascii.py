"""Tests for ASCII plotting."""

import numpy as np
import pytest

from repro.simtime.events import ClientSpan, SpanLog
from repro.viz.ascii import (
    ascii_bars,
    ascii_comm_table,
    ascii_plot,
    ascii_tier_tree,
    ascii_timeline,
)


class TestAsciiPlot:
    def test_markers_and_legend(self):
        x = np.arange(10)
        out = ascii_plot({"one": (x, x), "two": (x, x[::-1])})
        assert "a = one" in out
        assert "b = two" in out
        assert "a" in out.splitlines()[0] + out.splitlines()[1]

    def test_monotone_series_occupies_diagonal(self):
        x = np.arange(20)
        out = ascii_plot({"lin": (x, x)}, width=20, height=10)
        rows = [l for l in out.splitlines() if "a" in l]
        # first 'a' row (top) has marker far right; last has it far left
        first = rows[0].rindex("a")
        last = rows[-1].rindex("a")
        assert first > last

    def test_constant_series_no_crash(self):
        x = np.arange(5)
        out = ascii_plot({"flat": (x, np.ones(5))})
        assert "flat" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"x": (np.arange(3), np.arange(4))})
        with pytest.raises(ValueError):
            ascii_plot({"x": (np.arange(3), np.arange(3))}, width=5)

    def test_axis_labels_shown(self):
        out = ascii_plot({"s": (np.arange(3), np.arange(3))}, x_label="round", y_label="acc")
        assert "acc vs round" in out


class TestAsciiTimeline:
    @staticmethod
    def spans():
        return [
            ClientSpan(cid=0, kind="train", start=0.0, end=4.0),
            ClientSpan(cid=0, kind="upload", start=4.0, end=10.0),
            ClientSpan(cid=2, kind="train", start=0.0, end=1.0),
            ClientSpan(cid=2, kind="upload", start=1.0, end=2.0),
        ]

    def test_one_row_per_client_with_glyphs(self):
        out = ascii_timeline(self.spans(), width=20)
        lines = out.splitlines()
        assert lines[0].startswith("c0")
        assert lines[1].startswith("c2")
        assert "█" in lines[0] and "░" in lines[0]
        assert "█ train" in out and "░ upload" in out

    def test_proportions_roughly_match_durations(self):
        out = ascii_timeline(self.spans(), width=20)
        row0 = out.splitlines()[0]
        # c0 trains 4s of a 10s window on 20 cells ⇒ ~8 train cells, ~12 upload.
        assert 6 <= row0.count("█") <= 10
        assert 10 <= row0.count("░") <= 14
        # c2 finished at t=2: nothing drawn in the right half of its row.
        row2 = out.splitlines()[1]
        assert set(row2[row2.index("│") + 11 : row2.rindex("│")]) <= {" "}

    def test_window_crop(self):
        out = ascii_timeline(self.spans(), t0=0.0, t1=2.0, width=20)
        # Window ends at 2s: c0 is still training (no upload glyph visible).
        row0 = out.splitlines()[0]
        assert "░" not in row0

    def test_accepts_span_log(self):
        log = SpanLog()
        log.add(1, "train", 0.0, 1.0)
        out = ascii_timeline(log, width=12)
        assert out.splitlines()[0].startswith("c1")

    def test_sub_cell_span_still_visible(self):
        spans = [
            ClientSpan(cid=0, kind="train", start=0.0, end=0.001),
            ClientSpan(cid=1, kind="train", start=0.0, end=100.0),
        ]
        out = ascii_timeline(spans, width=20)
        assert "█" in out.splitlines()[0]

    def test_axis_labels_show_window(self):
        out = ascii_timeline(self.spans(), width=20)
        assert "0s" in out and "10s" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_timeline([])
        with pytest.raises(ValueError):
            ascii_timeline(self.spans(), width=5)


class TestAsciiBars:
    def test_longest_bar_is_peak(self):
        out = ascii_bars({"small": 1.0, "big": 10.0}, width=10)
        lines = out.splitlines()
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 1

    def test_unit_suffix(self):
        out = ascii_bars({"t": 2.0}, unit="s")
        assert "2s" in out

    def test_zero_values_ok(self):
        out = ascii_bars({"z": 0.0, "one": 1.0})
        assert "z" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bars({})
        with pytest.raises(ValueError):
            ascii_bars({"neg": -1.0})


class TestAsciiTierTree:
    def topology(self, backhaul_mbps=100.0):
        from repro.hier.topology import TierTopology, assign_edges, sample_backhaul_links
        from repro.network.links import sample_links

        links = sample_links(5, seed=0)
        return TierTopology(
            groups=assign_edges(5, 2, "contiguous"),
            client_links=tuple(links),
            backhaul_links=sample_backhaul_links(
                2, bandwidth_mbps=backhaul_mbps, latency_s=0.01, seed=1
            ),
        )

    def test_renders_every_tier(self):
        text = ascii_tier_tree(self.topology())
        lines = text.splitlines()
        assert lines[0] == "cloud"
        assert sum("edge" in l for l in lines) == 2
        for cid in range(5):
            assert f"c{cid}" in text
        assert "backhaul" in text and "Mb/s" in text

    def test_free_backhaul_labelled(self):
        text = ascii_tier_tree(self.topology(backhaul_mbps=None))
        assert "free backhaul" in text

    def test_breakdown_adds_timings(self):
        from repro.fl.history import EdgeRecord

        breakdown = (
            EdgeRecord(edge=0, selected=(0, 1), sub_spans=(1.5, 2.0),
                       backhaul_s=0.25, start=0.0, end=3.75),
            EdgeRecord(edge=1, selected=(3,), sub_spans=(2.5,),
                       backhaul_s=0.5, start=0.0, end=3.0),
        )
        text = ascii_tier_tree(self.topology(), breakdown)
        assert "sub-rounds [1.5s 2s]" in text
        assert "backhaul 0.25s" in text
        assert "done 3.75s" in text

    def test_round_record_breakdown_renders(self):
        """The tree consumes a hierarchical run's breakdown directly."""
        from repro.fl.config import ExperimentConfig
        from repro.simtime import make_simulation

        cfg = ExperimentConfig(
            dataset="synth-cifar10", model="mlp", num_train=160, num_test=80,
            num_clients=4, rounds=1, batch_size=32, algorithm="topk",
            compression_ratio=0.2, mode="hier", num_edges=2,
            backhaul_bandwidth_mbps=50.0,
        )
        with make_simulation(cfg) as sim:
            record = sim.run_round()
        text = ascii_tier_tree(sim.topology, record.edge_breakdown)
        assert "sub-rounds" in text and "done" in text


class TestCommTable:
    @staticmethod
    def history(with_backhaul=False):
        from repro.fl.history import History, RoundComm, RoundRecord
        from repro.network.metrics import RoundTimes

        h = History()
        for i in range(2):
            h.append(
                RoundRecord(
                    round_index=i,
                    selected=(0, 1),
                    train_loss=1.0,
                    test_accuracy=None,
                    times=RoundTimes(actual=1.0, maximum=2.0, minimum=0.5),
                    ratios=(1.0, 1.0),
                    weights=(0.5, 0.5),
                    singleton_fraction=None,
                    train_seconds=0.0,
                    compress_seconds=0.0,
                    comm=RoundComm(
                        uplink=((0, 8e6), (1, 16e6)),
                        downlink=((0, 32e6),) if with_backhaul else (),
                        backhaul=((0, 64e6),) if with_backhaul else (),
                    ),
                )
            )
        return h

    def test_renders_directions_and_totals(self):
        out = ascii_comm_table(self.history())
        assert "uplink" in out and "downlink" in out and "backhaul" in out
        assert "total" in out
        assert "6MB" in out  # 2 rounds × 24e6 bits = 6 MB uplink

    def test_top_talkers_listed(self):
        out = ascii_comm_table(self.history(), top=1)
        assert "top uplink clients: c1 4MB" in out

    def test_backhaul_share_nonzero(self):
        out = ascii_comm_table(self.history(with_backhaul=True))
        line = [l for l in out.splitlines() if l.startswith("backhaul")][0]
        assert "0.0%" not in line

    def test_empty_history_safe(self):
        from repro.fl.history import History

        assert "no flow ledgers" in ascii_comm_table(History())

    def test_summarize_comm_adds_throughput(self):
        from repro.experiments.reporting import summarize_comm
        from dataclasses import replace

        h = self.history()
        h.records = [replace(r, sim_start=0.0, sim_end=4.0 + i) for i, r in enumerate(h.records)]
        out = summarize_comm(h)
        assert "Mbit/s" in out and "direction" in out
