"""Tests for ASCII plotting."""

import numpy as np
import pytest

from repro.viz.ascii import ascii_bars, ascii_plot


class TestAsciiPlot:
    def test_markers_and_legend(self):
        x = np.arange(10)
        out = ascii_plot({"one": (x, x), "two": (x, x[::-1])})
        assert "a = one" in out
        assert "b = two" in out
        assert "a" in out.splitlines()[0] + out.splitlines()[1]

    def test_monotone_series_occupies_diagonal(self):
        x = np.arange(20)
        out = ascii_plot({"lin": (x, x)}, width=20, height=10)
        rows = [l for l in out.splitlines() if "a" in l]
        # first 'a' row (top) has marker far right; last has it far left
        first = rows[0].rindex("a")
        last = rows[-1].rindex("a")
        assert first > last

    def test_constant_series_no_crash(self):
        x = np.arange(5)
        out = ascii_plot({"flat": (x, np.ones(5))})
        assert "flat" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"x": (np.arange(3), np.arange(4))})
        with pytest.raises(ValueError):
            ascii_plot({"x": (np.arange(3), np.arange(3))}, width=5)

    def test_axis_labels_shown(self):
        out = ascii_plot({"s": (np.arange(3), np.arange(3))}, x_label="round", y_label="acc")
        assert "acc vs round" in out


class TestAsciiBars:
    def test_longest_bar_is_peak(self):
        out = ascii_bars({"small": 1.0, "big": 10.0}, width=10)
        lines = out.splitlines()
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 1

    def test_unit_suffix(self):
        out = ascii_bars({"t": 2.0}, unit="s")
        assert "2s" in out

    def test_zero_values_ok(self):
        out = ascii_bars({"z": 0.0, "one": 1.0})
        assert "z" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bars({})
        with pytest.raises(ValueError):
            ascii_bars({"neg": -1.0})
