"""Shared test fixtures and numerical-gradient helpers."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def numeric_grad(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` w.r.t. array ``x``."""
    g = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        g[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


def layer_loss(layer, x: np.ndarray, w: np.ndarray) -> float:
    """Scalar probe loss sum(out * w) for checking layer gradients."""
    out = layer.forward(x.astype(np.float32), training=True)
    return float(np.sum(out.astype(np.float64) * w))


def check_layer_gradients(layer, x: np.ndarray, *, atol: float = 1e-2, rtol: float = 5e-2) -> None:
    """Verify input and parameter gradients of ``layer`` at point ``x``.

    Uses the probe loss L = sum(out * w) with fixed random w, so
    dL/dout = w feeds backward directly.
    """
    rng = np.random.default_rng(0)
    out = layer.forward(x.astype(np.float32), training=True)
    w = rng.normal(size=out.shape).astype(np.float64)

    # Analytic gradients.
    for p in layer.parameters():
        p.zero_grad()
    grad_in = layer.backward(w.astype(np.float32))

    # Numeric input gradient.
    xf = x.astype(np.float64)
    num_gx = numeric_grad(lambda: layer_loss(layer, xf, w), xf)
    np.testing.assert_allclose(grad_in, num_gx, atol=atol, rtol=rtol)

    # Numeric parameter gradients.
    for p in layer.parameters():
        analytic = p.grad.copy()
        pdata = p.data.astype(np.float64)

        def probe(p=p, pdata=pdata):
            p.data = pdata.astype(np.float32)
            return layer_loss(layer, xf, w)

        num_gp = numeric_grad(probe, pdata)
        p.data = pdata.astype(np.float32)
        np.testing.assert_allclose(analytic, num_gp, atol=atol, rtol=rtol, err_msg=p.name)
