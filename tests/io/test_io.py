"""Tests for history persistence and model checkpoints."""

import csv

import numpy as np
import pytest

from repro.fl.config import ExperimentConfig
from repro.fl.simulation import Simulation
from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.io.history_io import (
    export_curves_csv,
    history_from_dict,
    history_to_dict,
    load_history,
    save_history,
)

FAST = dict(num_train=400, num_test=100, rounds=4, num_clients=4, participation=0.5,
            lr=0.1, model="mlp", eval_every=2)


@pytest.fixture
def sim():
    s = Simulation(ExperimentConfig(**FAST, algorithm="topk", compression_ratio=0.2))
    s.run()
    return s


class TestHistoryIO:
    def test_dict_roundtrip(self, sim):
        data = history_to_dict(sim.history)
        back = history_from_dict(data)
        assert len(back) == len(sim.history)
        for a, b in zip(sim.history.records, back.records):
            assert a.round_index == b.round_index
            assert a.test_accuracy == b.test_accuracy
            assert a.times.actual == b.times.actual
            assert a.ratios == b.ratios
        assert back.time.actual_total == pytest.approx(sim.history.time.actual_total)

    def test_file_roundtrip(self, sim, tmp_path):
        p = tmp_path / "h.json"
        save_history(sim.history, p)
        back = load_history(p)
        assert back.final_accuracy() == sim.history.final_accuracy()
        assert back.time_to_accuracy(0.2) == sim.history.time_to_accuracy(0.2)

    def test_csv_export(self, sim, tmp_path):
        p = tmp_path / "curve.csv"
        export_curves_csv(sim.history, p)
        with open(p) as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["round", "cumulative_actual_time_s", "virtual_time_s", "test_accuracy"]
        assert len(rows) == 1 + len(sim.history)
        # Both time columns are non-decreasing.
        times = [float(r[1]) for r in rows[1:]]
        assert times == sorted(times)
        virt = [float(r[2]) for r in rows[1:]]
        assert virt == sorted(virt)

    def test_sim_span_fields_roundtrip(self, sim, tmp_path):
        p = tmp_path / "h.json"
        save_history(sim.history, p)
        back = load_history(p)
        for a, b in zip(sim.history.records, back.records):
            assert a.sim_start == b.sim_start
            assert a.sim_end == b.sim_end
            assert a.mean_staleness == b.mean_staleness
            assert a.times.downlink == b.times.downlink

    def test_pre_scheduler_files_load(self, sim, tmp_path):
        """JSON written before the virtual clock existed still loads."""
        data = history_to_dict(sim.history)
        for rec in data["records"]:
            del rec["sim_start"], rec["sim_end"], rec["mean_staleness"]
            del rec["times"]["downlink"]
        back = history_from_dict(data)
        assert back.records[0].sim_start is None
        assert back.records[0].times.downlink == 0.0
        # accuracy_vs_simtime falls back to the comm axis on old files.
        t, acc = back.accuracy_vs_simtime()
        t2, acc2 = back.accuracy_vs_time()
        np.testing.assert_array_equal(t, t2)


class TestCheckpoint:
    def test_roundtrip(self, sim, tmp_path):
        p = tmp_path / "ckpt.npz"
        save_checkpoint(sim, p)
        fresh = Simulation(ExperimentConfig(**FAST, algorithm="topk", compression_ratio=0.2))
        assert not np.array_equal(fresh.global_params, sim.global_params)
        load_checkpoint(fresh, p)
        np.testing.assert_array_equal(fresh.global_params, sim.global_params)
        assert fresh.round_index == sim.round_index

    def test_resume_training(self, sim, tmp_path):
        p = tmp_path / "ckpt.npz"
        save_checkpoint(sim, p)
        fresh = Simulation(ExperimentConfig(**FAST, algorithm="topk", compression_ratio=0.2))
        load_checkpoint(fresh, p)
        rec = fresh.run_round()
        assert rec.round_index == sim.round_index

    def test_shape_mismatch_rejected(self, sim, tmp_path):
        p = tmp_path / "ckpt.npz"
        save_checkpoint(sim, p)
        other = Simulation(ExperimentConfig(**{**FAST, "model": "small_cnn"}))
        with pytest.raises(ValueError):
            load_checkpoint(other, p)
