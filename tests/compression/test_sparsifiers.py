"""Tests for Top-K / Random-K / threshold sparsification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression.base import SparseUpdate, compression_error
from repro.compression.sparsifiers import RandomK, ThresholdSparsifier, TopK, k_from_ratio


class TestKFromRatio:
    @pytest.mark.parametrize("d,r,expected", [(100, 0.1, 10), (100, 0.01, 1), (100, 1.0, 100), (7, 0.5, 4)])
    def test_known(self, d, r, expected):
        assert k_from_ratio(d, r) == expected

    def test_at_least_one(self):
        assert k_from_ratio(1000, 0.0001) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            k_from_ratio(0, 0.5)
        with pytest.raises(ValueError):
            k_from_ratio(10, 0.0)


class TestSparseUpdate:
    def test_roundtrip(self):
        s = SparseUpdate(dense_size=5, indices=np.array([1, 3]), values=np.array([2.0, -1.0], np.float32))
        np.testing.assert_array_equal(s.to_dense(), [0, 2, 0, -1, 0])
        assert s.nnz == 2
        assert s.density == pytest.approx(0.4)
        assert s.bits == 2 * 64

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            SparseUpdate(dense_size=5, indices=np.array([3, 1]), values=np.zeros(2, np.float32))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SparseUpdate(dense_size=2, indices=np.array([0, 2]), values=np.zeros(2, np.float32))

    def test_to_dense_with_out(self):
        s = SparseUpdate(dense_size=3, indices=np.array([0]), values=np.array([1.0], np.float32))
        buf = np.full(3, 9.0, dtype=np.float32)
        out = s.to_dense(out=buf)
        assert out is buf
        np.testing.assert_array_equal(out, [1, 0, 0])


class TestTopK:
    def test_keeps_largest_magnitudes(self):
        u = np.array([0.1, -5.0, 0.2, 3.0, -0.05], dtype=np.float32)
        s = TopK().compress(u, 0.4)
        np.testing.assert_array_equal(s.indices, [1, 3])
        np.testing.assert_array_equal(s.values, [-5.0, 3.0])

    def test_full_ratio_identity(self, rng):
        u = rng.normal(size=50).astype(np.float32)
        s = TopK().compress(u, 1.0)
        np.testing.assert_array_equal(s.to_dense(), u)

    def test_density_matches_ratio(self, rng):
        u = rng.normal(size=1000).astype(np.float32)
        s = TopK().compress(u, 0.1)
        assert s.nnz == 100

    @given(arrays(np.float32, st.integers(5, 200), elements=st.floats(-10, 10, width=32)),
           st.floats(0.01, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_optimality_property(self, u, ratio):
        """Top-K is the best k-sparse L2 approximation: every kept magnitude
        >= every dropped magnitude."""
        s = TopK().compress(u, ratio)
        kept = np.zeros(u.shape[0], dtype=bool)
        kept[s.indices] = True
        if kept.all():
            return
        min_kept = np.abs(u[kept]).min()
        max_dropped = np.abs(u[~kept]).max()
        assert min_kept >= max_dropped

    def test_error_decreases_with_ratio(self, rng):
        u = rng.normal(size=500).astype(np.float32)
        errs = [compression_error(u, TopK().compress(u, r)) for r in (0.01, 0.1, 0.5, 1.0)]
        assert errs == sorted(errs, reverse=True)
        assert errs[-1] == 0.0


class TestRandomK:
    def test_unbiasedness(self):
        u = np.ones(200, dtype=np.float32)
        comp = RandomK(seed=0)
        dense_mean = np.mean(
            [comp.compress(u, 0.25).to_dense() for _ in range(400)], axis=0
        )
        # Per-trial, per-coordinate variance is p(1-p)(1/p)^2 = 3, so the
        # 400-trial mean has std ~0.087; allow ~4 sigma for the max over 200
        # coordinates and check the global mean tightly.
        assert float(dense_mean.mean()) == pytest.approx(1.0, abs=0.02)
        np.testing.assert_allclose(dense_mean, 1.0, atol=0.35)

    def test_biased_mode_no_scaling(self):
        u = np.full(100, 2.0, dtype=np.float32)
        s = RandomK(seed=0, unbiased=False).compress(u, 0.1)
        np.testing.assert_array_equal(s.values, 2.0)

    def test_determinism_per_seed(self):
        u = np.arange(50, dtype=np.float32)
        a = RandomK(seed=9).compress(u, 0.2)
        b = RandomK(seed=9).compress(u, 0.2)
        np.testing.assert_array_equal(a.indices, b.indices)


class TestThreshold:
    def test_keeps_above_threshold(self):
        u = np.array([0.5, 0.01, -0.7, 0.02], dtype=np.float32)
        s = ThresholdSparsifier(0.1).compress(u, 1.0)
        np.testing.assert_array_equal(s.indices, [0, 2])

    def test_ratio_caps_count(self):
        u = np.arange(1, 101, dtype=np.float32)
        s = ThresholdSparsifier(0.5).compress(u, 0.1)
        assert s.nnz == 10
        assert 100 in s.indices + 1  # keeps the largest

    def test_never_empty(self):
        u = np.full(10, 1e-9, dtype=np.float32)
        s = ThresholdSparsifier(1.0).compress(u, 0.5)
        assert s.nnz == 1

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            ThresholdSparsifier(0.0)
