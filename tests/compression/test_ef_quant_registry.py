"""Tests for error feedback, quantizers and the registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import compression_error
from repro.compression.ef import ErrorFeedback
from repro.compression.quantization import QSGDQuantizer, UniformQuantizer
from repro.compression.registry import available_compressors, make_compressor
from repro.compression.sparsifiers import TopK


class TestErrorFeedback:
    def test_residual_is_dropped_mass(self, rng):
        u = rng.normal(size=100).astype(np.float32)
        ef = ErrorFeedback(TopK())
        s = ef.compress(u, 0.1)
        np.testing.assert_allclose(ef.memory, u - s.to_dense(), atol=1e-6)

    def test_residual_retransmitted(self):
        """Mass dropped in round 1 must appear in round 2's transmission."""
        ef = ErrorFeedback(TopK())
        u1 = np.array([10.0, 1.0, 0.0, 0.0], dtype=np.float32)
        s1 = ef.compress(u1, 0.25)  # keeps only the 10
        np.testing.assert_array_equal(s1.indices, [0])
        u2 = np.zeros(4, dtype=np.float32)
        s2 = ef.compress(u2, 0.25)  # nothing new: must flush the residual 1.0
        np.testing.assert_array_equal(s2.indices, [1])
        assert s2.values[0] == pytest.approx(1.0)

    def test_total_mass_conserved_over_rounds(self, rng):
        """sum(transmitted) + memory == sum(updates): EF loses nothing."""
        ef = ErrorFeedback(TopK())
        total_sent = np.zeros(50, dtype=np.float64)
        total_updates = np.zeros(50, dtype=np.float64)
        for _ in range(10):
            u = rng.normal(size=50).astype(np.float32)
            total_updates += u
            total_sent += ef.compress(u, 0.1).to_dense()
        np.testing.assert_allclose(total_sent + ef.memory, total_updates, atol=1e-4)

    def test_size_change_rejected(self, rng):
        ef = ErrorFeedback(TopK())
        ef.compress(rng.normal(size=10).astype(np.float32), 0.5)
        with pytest.raises(ValueError):
            ef.compress(rng.normal(size=11).astype(np.float32), 0.5)

    def test_reset(self, rng):
        ef = ErrorFeedback(TopK())
        ef.compress(rng.normal(size=10).astype(np.float32), 0.2)
        ef.reset()
        assert ef.memory is None

    def test_name(self):
        assert ErrorFeedback(TopK()).name == "ef_topk"


class TestQuantizers:
    def test_qsgd_unbiased(self):
        u = np.full(500, 0.3, dtype=np.float32)
        q = QSGDQuantizer(bits=2, seed=0)
        mean = np.mean([q.compress(u).to_dense() for _ in range(300)], axis=0)
        np.testing.assert_allclose(mean, 0.3, atol=0.02)

    def test_qsgd_bits_accounting(self, rng):
        u = rng.normal(size=100).astype(np.float32)
        out = QSGDQuantizer(bits=8, seed=0).compress(u)
        assert out.bits == 100 * 8

    def test_more_bits_less_error(self, rng):
        u = rng.normal(size=1000).astype(np.float32)
        errs = [
            compression_error(u, UniformQuantizer(bits=b).compress(u)) for b in (2, 4, 8, 16)
        ]
        assert errs == sorted(errs, reverse=True)

    def test_uniform_idempotent_on_grid(self):
        u = np.array([0.0, 0.5, 1.0, -1.0], dtype=np.float32)
        out = UniformQuantizer(bits=8).compress(u).to_dense()
        out2 = UniformQuantizer(bits=8).compress(out).to_dense()
        np.testing.assert_allclose(out, out2, atol=1e-6)

    def test_zero_vector_passthrough(self):
        u = np.zeros(10, dtype=np.float32)
        np.testing.assert_array_equal(QSGDQuantizer(bits=4, seed=0).compress(u).to_dense(), u)

    @pytest.mark.parametrize("bits", [0, 33])
    def test_bad_bits(self, bits):
        with pytest.raises(ValueError):
            QSGDQuantizer(bits=bits)
        with pytest.raises(ValueError):
            UniformQuantizer(bits=bits)

    @given(st.integers(1, 16))
    @settings(max_examples=16, deadline=None)
    def test_quantized_values_bounded_by_input(self, bits):
        u = np.random.default_rng(0).normal(size=64).astype(np.float32)
        out = UniformQuantizer(bits=bits).compress(u).to_dense()
        assert np.abs(out).max() <= np.abs(u).max() * (1 + 1e-6)


class TestRegistry:
    def test_expected_names_present(self):
        names = available_compressors()
        for expected in ("topk", "ef_topk", "randomk", "qsgd8"):
            assert expected in names

    def test_instances_are_fresh(self, rng):
        """Two ef_topk instances must not share residual state."""
        a = make_compressor("ef_topk")
        b = make_compressor("ef_topk")
        u = rng.normal(size=20).astype(np.float32)
        a.compress(u, 0.5)
        assert b.memory is None

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_compressor("bogus")

    def test_all_registered_compress(self, rng):
        u = rng.normal(size=64).astype(np.float32)
        for name in available_compressors():
            comp = make_compressor(name, seed=1)
            out = comp.compress(u, 0.25)
            assert out.to_dense().shape == (64,)
            assert out.bits > 0
