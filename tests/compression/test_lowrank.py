"""Tests for PowerSGD-style low-rank compression."""

import numpy as np
import pytest

from repro.compression.base import compression_error
from repro.compression.lowrank import LowRankCompressor, LowRankUpdate
from repro.nn.models import build_mlp, build_small_cnn
from repro.nn.params import get_flat_params, num_parameters, param_slices


@pytest.fixture
def mlp():
    return build_mlp(16, 4, hidden=(12,), seed=0)


def flat_update(model, rng):
    return rng.normal(size=num_parameters(model)).astype(np.float32)


class TestLowRankCompressor:
    def test_reconstruction_shape(self, mlp, rng):
        comp = LowRankCompressor(param_slices(mlp), rank=2, seed=0)
        u = flat_update(mlp, rng)
        out = comp.compress(u)
        assert out.to_dense().shape == u.shape

    def test_biases_carried_exactly(self, mlp, rng):
        comp = LowRankCompressor(param_slices(mlp), rank=2, seed=0)
        u = flat_update(mlp, rng)
        dense = comp.compress(u).to_dense()
        for name, sl, shape in param_slices(mlp):
            if len(shape) == 1:  # bias vectors travel dense
                np.testing.assert_array_equal(dense[sl], u[sl])

    def test_exact_for_rank_deficient_updates(self, mlp):
        """A rank-1 weight update reconstructs exactly at rank >= 1."""
        slices = param_slices(mlp)
        u = np.zeros(num_parameters(mlp), dtype=np.float32)
        name, sl, shape = next(s for s in slices if len(s[2]) == 2)
        m, n = shape
        rng = np.random.default_rng(0)
        rank1 = np.outer(rng.normal(size=m), rng.normal(size=n))
        u[sl] = rank1.reshape(-1)
        out = LowRankCompressor(slices, rank=2, seed=0).compress(u)
        np.testing.assert_allclose(out.to_dense()[sl], u[sl], atol=1e-4)

    def test_error_decreases_with_rank(self, mlp, rng):
        u = flat_update(mlp, rng)
        errs = [
            compression_error(u, LowRankCompressor(param_slices(mlp), rank=r, seed=0).compress(u))
            for r in (1, 2, 4, 8)
        ]
        assert errs == sorted(errs, reverse=True)

    def test_bits_below_dense_for_small_rank(self, mlp, rng):
        u = flat_update(mlp, rng)
        out = LowRankCompressor(param_slices(mlp), rank=1, seed=0).compress(u)
        assert out.bits < u.size * 32

    def test_conv_layers_factorized(self, rng):
        cnn = build_small_cnn(3, 8, 10, seed=0)
        u = rng.normal(size=num_parameters(cnn)).astype(np.float32)
        out = LowRankCompressor(param_slices(cnn), rank=2, seed=0).compress(u)
        assert len(out.factors) >= 1  # conv kernels reshaped and factorized
        assert out.to_dense().shape == u.shape

    def test_wrong_slices_rejected(self, mlp, rng):
        slices = param_slices(mlp)[:-1]  # drop one range
        with pytest.raises(ValueError):
            LowRankCompressor(slices, rank=1, seed=0).compress(flat_update(mlp, rng))

    def test_bad_rank(self, mlp):
        with pytest.raises(ValueError):
            LowRankCompressor(param_slices(mlp), rank=0)

    def test_update_bits_accounting(self):
        factors = ((slice(0, 6), (2, 3), np.zeros((2, 1), np.float32), np.zeros((3, 1), np.float32)),)
        dense = ((slice(6, 8), np.zeros(2, np.float32)),)
        u = LowRankUpdate(dense_size=8, factors=factors, dense_ranges=dense)
        assert u.bits == (2 + 3) * 32 + 2 * 32
