"""Tests for the compressors' ``out=`` block interface (arena compress banks).

Fixed-``k`` compressors may write their (indices, values) straight into a
preplanned buffer pair; the output must be **bit-identical** to the
allocating path, and stateful wrappers (error feedback) must evolve their
state identically either way.
"""

import numpy as np
import pytest

from repro.compression.ef import ErrorFeedback
from repro.compression.registry import make_compressor
from repro.compression.sparsifiers import RandomK, ThresholdSparsifier, TopK, k_from_ratio
from repro.core.arena import AggregationArena


def block_for(d, ratio):
    k = k_from_ratio(d, ratio)
    return np.empty(k, dtype=np.int64), np.empty(k, dtype=np.float32)


class TestFixedKFlags:
    def test_sparsifier_flags(self):
        assert TopK.fixed_k is True
        assert RandomK.fixed_k is True
        assert ThresholdSparsifier.fixed_k is False

    def test_ef_inherits_inner_flag(self):
        assert ErrorFeedback(TopK()).fixed_k is True
        assert ErrorFeedback(ThresholdSparsifier(0.1)).fixed_k is False

    @pytest.mark.parametrize("name,expected", [
        ("topk", True), ("randomk", True), ("ef_topk", True),
        ("ef_randomk", True), ("threshold", False), ("qsgd8", False),
        ("sign", False),
    ])
    def test_registry_names(self, name, expected):
        comp = make_compressor(name, seed=0)
        assert bool(getattr(comp, "fixed_k", False)) is expected


class TestTopKOut:
    def test_bit_identical_to_allocating(self, rng):
        d, ratio = 257, 0.13
        u = rng.normal(size=d).astype(np.float32)
        ref = TopK().compress(u, ratio)
        got = TopK().compress(u, ratio, out=block_for(d, ratio))
        np.testing.assert_array_equal(got.indices, ref.indices)
        np.testing.assert_array_equal(got.values, ref.values)

    def test_writes_into_given_buffers(self, rng):
        d, ratio = 100, 0.1
        idx_buf, val_buf = block_for(d, ratio)
        got = TopK().compress(rng.normal(size=d).astype(np.float32), ratio,
                              out=(idx_buf, val_buf))
        assert got.indices is idx_buf and got.values is val_buf

    def test_wrong_block_size_rejected(self, rng):
        u = rng.normal(size=100).astype(np.float32)
        with pytest.raises(ValueError, match="out block"):
            TopK().compress(u, 0.1, out=block_for(100, 0.2))


class TestRandomKOut:
    @pytest.mark.parametrize("unbiased", [True, False])
    def test_bit_identical_to_allocating(self, rng, unbiased):
        d, ratio = 321, 0.07
        u = rng.normal(size=d).astype(np.float32)
        ref = RandomK(seed=11, unbiased=unbiased).compress(u, ratio)
        got = RandomK(seed=11, unbiased=unbiased).compress(u, ratio, out=block_for(d, ratio))
        np.testing.assert_array_equal(got.indices, ref.indices)
        np.testing.assert_array_equal(got.values, ref.values)


class TestErrorFeedbackOut:
    def test_multi_round_bit_identical_with_state(self, rng):
        """out= and allocating EF runs diverge in neither output nor residual."""
        d, ratio = 400, 0.05
        ef_a = ErrorFeedback(TopK())
        ef_b = ErrorFeedback(TopK())
        arena = AggregationArena(d)
        k = k_from_ratio(d, ratio)
        for _ in range(5):
            u = rng.normal(size=d).astype(np.float32)
            ref = ef_a.compress(u, ratio)
            arena.plan_compress([k])
            got = ef_b.compress(u, ratio, out=arena.compress_block(0))
            np.testing.assert_array_equal(got.indices, ref.indices)
            np.testing.assert_array_equal(got.values, ref.values)
            np.testing.assert_array_equal(ef_a.memory, ef_b.memory)

    def test_residual_matches_historical_formulation(self, rng):
        d, ratio = 200, 0.1
        ef = ErrorFeedback(TopK())
        u = rng.normal(size=d).astype(np.float32)
        out = ef.compress(u, ratio, out=block_for(d, ratio))
        expected = u - out.to_dense()
        np.testing.assert_array_equal(ef.memory, expected)


class TestArenaBankRoundTrip:
    def test_compress_into_planned_blocks(self, rng):
        """Compressors fill disjoint bank blocks; views keep their content."""
        d, ratio = 150, 0.2
        k = k_from_ratio(d, ratio)
        arena = AggregationArena(d)
        arena.plan_compress([k, k, None])
        comps = [TopK(), TopK()]
        us = [rng.normal(size=d).astype(np.float32) for _ in range(2)]
        outs = [
            comps[i].compress(us[i], ratio, out=arena.compress_block(i))
            for i in range(2)
        ]
        assert arena.compress_block(2) is None
        for i, got in enumerate(outs):
            ref = TopK().compress(us[i], ratio)
            np.testing.assert_array_equal(got.indices, ref.indices)
            np.testing.assert_array_equal(got.values, ref.values)
