"""Tests for the 1-bit sign compressor."""

import numpy as np
import pytest

from repro.compression.ef import ErrorFeedback
from repro.compression.registry import make_compressor
from repro.compression.sign import SignCompressor, SignUpdate


class TestSignUpdate:
    def test_roundtrip(self):
        s = SignUpdate(dense_size=3, signs=np.array([1, -1, 0], np.int8), scale=2.0)
        np.testing.assert_allclose(s.to_dense(), [2.0, -2.0, 0.0])

    def test_bits_is_one_per_coordinate(self):
        s = SignUpdate(dense_size=100, signs=np.zeros(100, np.int8), scale=0.0)
        assert s.bits == 100 + 32

    def test_validation(self):
        with pytest.raises(ValueError):
            SignUpdate(dense_size=2, signs=np.zeros(3, np.int8), scale=1.0)
        with pytest.raises(ValueError):
            SignUpdate(dense_size=2, signs=np.zeros(2, np.int8), scale=-1.0)


class TestSignCompressor:
    def test_preserves_signs(self, rng):
        u = rng.normal(size=50).astype(np.float32)
        out = SignCompressor().compress(u)
        np.testing.assert_array_equal(np.sign(out.to_dense()), np.sign(u))

    def test_scale_is_mean_abs(self, rng):
        u = rng.normal(size=100).astype(np.float32)
        out = SignCompressor().compress(u)
        assert out.scale == pytest.approx(float(np.mean(np.abs(u))), rel=1e-6)

    def test_l1_mass_preserved_for_dense_sign_vectors(self):
        u = np.array([1.0, -2.0, 3.0, -4.0], dtype=np.float32)
        out = SignCompressor().compress(u)
        assert np.abs(out.to_dense()).sum() == pytest.approx(np.abs(u).sum())

    def test_zero_vector(self):
        out = SignCompressor().compress(np.zeros(10, dtype=np.float32))
        np.testing.assert_array_equal(out.to_dense(), 0.0)

    def test_registry_entries(self, rng):
        u = rng.normal(size=32).astype(np.float32)
        plain = make_compressor("sign")
        ef = make_compressor("ef_sign")
        assert isinstance(plain, SignCompressor)
        assert isinstance(ef, ErrorFeedback)
        assert ef.compress(u, 1.0).to_dense().shape == (32,)

    def test_ef_sign_flushes_residual(self, rng):
        """EF-signSGD: accumulated residual influences later transmissions."""
        ef = make_compressor("ef_sign")
        u = np.array([3.0, -0.1, 0.1, -0.1], dtype=np.float32)
        total = np.zeros(4)
        for _ in range(30):
            total += ef.compress(np.zeros(4, dtype=np.float32) + u, 1.0).to_dense()
        # Direction of accumulated transmission matches the true update.
        assert np.sign(total[0]) == 1.0 and np.sign(total[1]) == -1.0
