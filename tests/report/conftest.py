"""Fixtures wrapping the deterministic artifact builders."""

from __future__ import annotations

import pytest
from _artifacts import make_history, make_metrics, make_spans, make_sweep


@pytest.fixture
def history():
    return make_history((0.2, 0.35, 0.5), staleness=True)


@pytest.fixture
def sweep():
    return make_sweep()


@pytest.fixture
def spans():
    return make_spans()


@pytest.fixture
def metrics():
    return make_metrics()
