"""Deterministic synthetic artifacts for the report renderer tests.

Everything here is built from fixed literals — no RNG, no clocks — so the
golden test can pin whole pages byte-for-byte.
"""

from __future__ import annotations

from repro.fl.config import ExperimentConfig
from repro.fl.history import History, RoundComm, RoundRecord
from repro.network.metrics import RoundTimes
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span
from repro.scenarios import SweepReport, expand_grid


def make_history(
    accs,
    *,
    staleness: bool = False,
    comm: bool = True,
    evaluate: bool = True,
) -> History:
    """A history with the given accuracy curve and fixed everything else."""
    h = History()
    for i, acc in enumerate(accs):
        h.append(
            RoundRecord(
                round_index=i,
                selected=(0, 1),
                train_loss=2.0 / (i + 1),
                test_accuracy=(acc if evaluate else None),
                times=RoundTimes(actual=1.0, maximum=1.5, minimum=0.5),
                ratios=(0.2, 0.2),
                weights=(0.5, 0.5),
                singleton_fraction=None,
                train_seconds=0.0,
                compress_seconds=0.0,
                sim_start=float(i) * 2.0,
                sim_end=float(i) * 2.0 + 2.0,
                mean_staleness=(0.5 * i if staleness else None),
                comm=(
                    RoundComm.from_maps(
                        uplink={0: 8_000.0 + 800.0 * i, 1: 16_000.0},
                        downlink={0: 4_000.0, 1: 4_000.0},
                    )
                    if comm
                    else None
                ),
            )
        )
    return h


def tiny_base(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="synth-cifar10", num_train=200, num_test=100, num_clients=4,
        participation=0.5, rounds=2, batch_size=32, algorithm="topk",
        compression_ratio=0.2, eval_every=1, seed=3,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def make_sweep() -> SweepReport:
    """A 2×2 grid with hand-written curves (no simulation involved)."""
    cells = expand_grid(
        tiny_base(), {"gamma": [3.0, 5.0], "include_downlink": [False, True]}
    )
    curves = [(0.2, 0.4), (0.3, 0.5), (0.25, 0.45), (0.1, 0.35)]
    return SweepReport(
        cells=[(spec, make_history(accs)) for spec, accs in zip(cells, curves)],
        executed=3,
        reused=1,
    )


def make_spans() -> list[Span]:
    return [
        Span(name="round", cat="sim", start=0.0, end=1.0, tid=0),
        Span(name="evaluate", cat="sim", start=1.0, end=1.25, tid=0),
        Span(name="client_task", cat="exec", start=0.1, end=0.5, tid=101),
        Span(name="client_task", cat="exec", start=0.5, end=0.9, tid=101),
        Span(name="transport", cat="net", start=0.2, end=0.3, tid=102),
    ]


def make_metrics() -> MetricsRegistry:
    reg = MetricsRegistry()
    rounds = reg.counter("rounds_total")
    cache = reg.gauge("cache_size")
    train = reg.histogram("train_seconds", buckets=(0.25, 1.0))
    for i, (size, obs) in enumerate([(2.0, 0.1), (3.0, 0.6), (3.0, 0.9)]):
        rounds.inc()
        cache.set(size)
        train.observe(obs)
        reg.snapshot(i)
    return reg


MANIFEST = {
    "dataset": "synth-cifar10",
    "algorithm": "topk",
    "mode": "sync",
    "backend": "serial",
    "seed": "3",
    "git": "v0-test",
}
