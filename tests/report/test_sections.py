"""Section renderers: each artifact kind renders alone and degrades sanely."""

from __future__ import annotations

import math

from repro.report.sections import (
    _histogram_quantile,
    history_section,
    manifest_section,
    metrics_section,
    sweep_section,
    trace_section,
)
from _artifacts import MANIFEST, make_history

from repro.obs.tracer import Span


class TestManifest:
    def test_renders_every_pair(self):
        out = manifest_section(MANIFEST)
        assert "spec" not in out  # only what the caller supplied
        for key, value in MANIFEST.items():
            assert key in out and value in out


class TestHistorySection:
    def test_full_history_renders_all_charts(self, history):
        out = history_section(history)
        assert out.startswith('<section id="history">')
        assert "Accuracy vs round" in out
        assert "Accuracy vs virtual time" in out
        assert "Train loss vs round" in out
        assert "Comm ledger" in out
        assert "Mean staleness" in out
        assert "final accuracy" in out

    def test_backhaul_free_ledger_omits_backhaul_series(self, history):
        out = history_section(history)
        assert "uplink" in out and "downlink" in out
        assert "backhaul</" not in out.split("Comm ledger")[1].split("</figure>")[0]

    def test_unevaluated_history_renders_without_accuracy(self):
        out = history_section(make_history((0.1, 0.2), evaluate=False))
        assert "Accuracy vs round" not in out
        assert "Train loss" in out

    def test_legacy_history_without_ledger(self):
        out = history_section(make_history((0.1, 0.2), comm=False))
        assert "Comm ledger" not in out
        assert "Accuracy vs round" in out

    def test_empty_history(self):
        out = history_section(make_history(()))
        assert "<section" in out  # tiles only, nothing to plot


class TestSweepSection:
    def test_full_grid_renders_ranking_marginals_frontier_heatmap(self, sweep):
        out = sweep_section(sweep, target=0.3)
        assert "Top cells" in out
        assert "Marginal over gamma" in out
        assert "Marginal over include_downlink" in out
        assert "Pareto frontier" in out
        assert "Time to accuracy" in out
        assert "heatmap" in out
        assert "loaded from store" in out

    def test_target_lists_cells_that_never_reach_it(self, sweep):
        out = sweep_section(sweep, target=0.99)
        assert "never reached" in out

    def test_single_axis_grid_has_no_heatmap(self, sweep):
        single = type(sweep)(
            cells=[
                (spec, h) for spec, h in sweep.cells
                if spec.axes.get("include_downlink") is False
            ],
            executed=2,
            reused=0,
        )
        for spec, _ in single.cells:
            spec.axes.pop("include_downlink")
        out = sweep_section(single)
        assert "heatmap" not in out
        assert "Marginal over gamma" in out


class TestTraceSection:
    def test_timeline_hotspots_and_utilization(self, spans):
        out = trace_section(spans)
        assert "span timeline" in out
        assert "Hot spots" in out
        assert "client_task" in out
        assert "Lane utilization" in out
        assert "lane 101" in out and "main" in out

    def test_empty_trace_degrades_to_message(self):
        assert "No wall-clock spans" in trace_section([])

    def test_lane_cap_is_stated(self):
        spans = [
            Span(name="s", cat="exec", start=0.0, end=1.0, tid=tid)
            for tid in range(20)
        ]
        out = trace_section(spans, max_lanes=4)
        assert "clipped" in out
        assert out.count('class="lane"') == 4


class TestMetricsSection:
    def test_registry_and_dict_render_identically(self, metrics):
        assert metrics_section(metrics) == metrics_section(metrics.to_dict())

    def test_sparklines_kinds_and_histograms(self, metrics):
        out = metrics_section(metrics)
        assert "rounds_total" in out and "counter Δ/round" in out
        assert "cache_size" in out and "spark" in out
        assert "train_seconds" in out
        assert "~p50" in out and "~p99" in out

    def test_empty_registry(self):
        out = metrics_section({"schema": 1, "metrics": [], "snapshots": []})
        assert "<section" in out


class TestHistogramQuantile:
    ROW = {
        "count": 4,
        "min": 0.1,
        "max": 0.9,
        "buckets": [
            {"le": 0.25, "count": 1},
            {"le": 1.0, "count": 3},
            {"le": math.inf, "count": 0},
        ],
    }

    def test_zero_count_is_none(self):
        assert _histogram_quantile({"count": 0, "buckets": []}, 0.5) is None

    def test_quantiles_stay_inside_observed_range(self):
        for q in (0.1, 0.5, 0.9, 0.99):
            est = _histogram_quantile(self.ROW, q)
            assert 0.1 <= est <= 0.9

    def test_quantiles_are_monotone(self):
        qs = [_histogram_quantile(self.ROW, q) for q in (0.25, 0.5, 0.75, 0.99)]
        assert qs == sorted(qs)

    def test_overflow_bucket_uses_observed_max(self):
        row = {
            "count": 2,
            "min": 5.0,
            "max": 9.0,
            "buckets": [{"le": 1.0, "count": 0}, {"le": math.inf, "count": 2}],
        }
        est = _histogram_quantile(row, 0.99)
        assert est is not None and est <= 9.0
