"""Chart-kit contracts: determinism, escaping, scales, and input guards."""

from __future__ import annotations

import pytest

from repro.report.svg import (
    Frame,
    esc,
    fmt_bytes,
    fmt_num,
    nice_ticks,
    series_color,
    sparkline,
    svg_bars,
    svg_heatmap,
    svg_plot,
    svg_timeline,
)


class TestHelpers:
    def test_esc_covers_xml_specials(self):
        assert esc('<a & "b">') == "&lt;a &amp; &quot;b&quot;&gt;"

    def test_fmt_num_ints_stay_ints(self):
        assert fmt_num(3.0) == "3"
        assert fmt_num(0.0) == "0"
        assert fmt_num(0.123456) == "0.1235"

    def test_fmt_bytes_scales(self):
        assert fmt_bytes(512) == "512B"
        assert fmt_bytes(2.5e6) == "2.5MB"

    def test_series_color_wraps_fixed_slots(self):
        assert series_color(0) == "var(--c0)"
        assert series_color(9) == "var(--c1)"

    def test_nice_ticks_cover_range_with_round_steps(self):
        ticks = nice_ticks(0.0, 1.0)
        assert ticks[0] >= 0.0 and ticks[-1] <= 1.0
        assert len(ticks) >= 3
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1  # uniform spacing

    def test_nice_ticks_degenerate_range(self):
        assert nice_ticks(2.0, 2.0)  # must not divide by zero


class TestPlot:
    def test_plot_is_deterministic(self):
        series = {"a": ([0, 1, 2], [0.1, 0.2, 0.3])}
        assert svg_plot(series) == svg_plot(series)

    def test_plot_requires_series(self):
        with pytest.raises(ValueError, match="at least one series"):
            svg_plot({})

    def test_plot_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            svg_plot({"a": ([0, 1], [0.1])})

    def test_kinds_render_distinct_marks(self):
        series = {
            "line": ([0, 1], [0.0, 1.0]),
            "step": ([0, 1], [0.5, 0.7]),
            "dots": ([0, 1], [0.2, 0.4]),
        }
        out = svg_plot(series, kinds={"step": "step", "dots": "scatter"})
        assert 'class="line"' in out
        assert "H" in out and "V" in out  # step path commands
        assert out.count('class="dot"') >= 4  # scatter points + end markers

    def test_every_point_has_native_tooltip(self):
        out = svg_plot({"acc": ([0, 1, 2], [0.1, 0.2, 0.3])})
        assert out.count("<title>") == 3

    def test_no_external_urls_beyond_svg_namespace(self):
        out = svg_plot({"a": ([0, 1], [0, 1])})
        assert out.replace("http://www.w3.org/2000/svg", "").count("http") == 0


class TestBars:
    def test_bars_show_label_value_and_tooltip(self):
        out = svg_bars({"uplink": 12.0, "downlink": 4.0}, unit="s")
        assert "uplink" in out and "12s" in out
        assert out.count("<title>") == 2

    def test_bars_reject_empty_and_negative(self):
        with pytest.raises(ValueError):
            svg_bars({})
        with pytest.raises(ValueError, match=">= 0"):
            svg_bars({"a": -1.0})

    def test_all_zero_bars_render(self):
        assert "a: 0" in svg_bars({"a": 0.0})


class TestHeatmap:
    def test_missing_cells_render_muted_dashes(self):
        out = svg_heatmap(
            [1, 2], ["x", "y"], {(1, "x"): 0.5, (2, "y"): 0.9}
        )
        assert out.count("--") == 2
        assert out.count("<rect") == 2

    def test_extremes_take_ramp_ends_and_flip_label_ink(self):
        out = svg_heatmap([1, 2], ["r"], {(1, "r"): 0.0, (2, "r"): 1.0})
        assert "#cde2fb" in out  # lightest step → ink label
        assert "#0d366b" in out  # darkest step → white label
        assert 'fill="#ffffff"' in out and 'fill="#0b0b0b"' in out

    def test_requires_cells(self):
        with pytest.raises(ValueError):
            svg_heatmap([1], ["a"], {})


class TestTimeline:
    def test_spans_clamp_to_window(self):
        lanes = [("main", [(-1.0, 0.5, "early", "sim"), (0.2, 0.4, "in", "exec")])]
        out = svg_timeline(lanes, t0=0.0, t1=1.0)
        assert "early" in out and "in" in out

    def test_category_colors_are_fixed_slots(self):
        lanes = [("main", [(0.0, 0.5, "a", "sim"), (0.5, 1.0, "b", "net")])]
        out = svg_timeline(lanes, t0=0.0, t1=1.0)
        assert "var(--c0)" in out  # sim
        assert "var(--c2)" in out  # net

    def test_requires_lanes(self):
        with pytest.raises(ValueError):
            svg_timeline([], t0=0.0, t1=1.0)


class TestSparkline:
    def test_empty_series_degrades_to_placeholder(self):
        assert sparkline([]) == '<span class="muted">--</span>'

    def test_flat_series_renders(self):
        assert "<svg" in sparkline([1.0, 1.0, 1.0])


class TestFrame:
    def test_degenerate_extents_widen(self):
        fr = Frame(x_lo=1.0, x_hi=1.0, y_lo=2.0, y_hi=2.0)
        assert fr.x_hi > fr.x_lo and fr.y_hi > fr.y_lo

    def test_coordinates_round_to_two_decimals(self):
        fr = Frame(x_lo=0.0, x_hi=1.0, y_lo=0.0, y_hi=1.0)
        axes = fr.axes()
        assert axes == fr.axes()  # pure function of the frame
