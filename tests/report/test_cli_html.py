"""End-to-end CLI routes: --html on live runs and the post-hoc report verb."""

from __future__ import annotations

import json

from repro.cli import main


def run_args(tmp_path, *extra) -> list[str]:
    return [
        "run", "--dataset", "synth-cifar10", "--rounds", "2",
        "--num-clients", "4", "--seed", "3", "--backend", "serial",
        *extra,
    ]


def assert_self_contained(path, *sections):
    page = path.read_text()
    assert page.replace("http://www.w3.org/2000/svg", "").count("http") == 0
    assert page.count("<html") == 1
    for anchor in sections:
        assert f'<section id="{anchor}">' in page
    return page


class TestHtmlFlag:
    def test_run_with_trace_and_metrics(self, tmp_path, capsys):
        out = tmp_path / "run.html"
        rc = main(run_args(
            tmp_path,
            "--trace", str(tmp_path / "t.json"),
            "--metrics", str(tmp_path / "m.json"),
            "--html", str(out),
        ))
        assert rc == 0
        assert f"wrote {out}" in capsys.readouterr().out
        assert_self_contained(out, "manifest", "history", "trace", "metrics")

    def test_run_without_obs_renders_history_only(self, tmp_path):
        out = tmp_path / "run.html"
        assert main(run_args(tmp_path, "--html", str(out))) == 0
        page = assert_self_contained(out, "manifest", "history")
        assert '<section id="trace">' not in page
        assert '<section id="metrics">' not in page

    def test_sweep_html(self, tmp_path):
        out = tmp_path / "sweep.html"
        rc = main([
            "sweep", "--grid", "gamma=3,5", "--dataset", "synth-cifar10",
            "--rounds", "2", "--num-clients", "4",
            "--store", str(tmp_path / "cells"),
            "--target-acc", "0.1", "--html", str(out),
        ])
        assert rc == 0
        page = assert_self_contained(out, "manifest", "sweep")
        assert "Marginal over gamma" in page
        assert "Time to accuracy" in page


class TestReportVerb:
    def test_needs_at_least_one_artifact(self, tmp_path, capsys):
        rc = main(["report", "--out", str(tmp_path / "r.html")])
        assert rc == 2
        assert "at least one artifact" in capsys.readouterr().err

    def test_unreadable_artifact_is_a_clean_error(self, tmp_path, capsys):
        rc = main([
            "report", "--out", str(tmp_path / "r.html"),
            "--history", str(tmp_path / "missing.json"),
        ])
        assert rc == 2
        assert "cannot load artifacts" in capsys.readouterr().err

    def test_empty_store_is_a_clean_error(self, tmp_path, capsys):
        rc = main([
            "report", "--out", str(tmp_path / "r.html"),
            "--store", str(tmp_path / "nocells"),
        ])
        assert rc == 2
        assert "no completed cells" in capsys.readouterr().err

    def test_rebuilds_page_from_all_stored_artifacts(self, tmp_path):
        # Produce every artifact kind with live runs...
        hist = tmp_path / "h.json"
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        store = tmp_path / "cells"
        assert main(run_args(
            tmp_path,
            "--save-history", str(hist),
            "--trace", str(trace), "--metrics", str(metrics),
        )) == 0
        assert main([
            "sweep", "--grid", "gamma=3,5", "--dataset", "synth-cifar10",
            "--rounds", "2", "--num-clients", "4", "--store", str(store),
        ]) == 0

        # ...then rebuild the page post-hoc, twice: identical bytes.
        out1, out2 = tmp_path / "r1.html", tmp_path / "r2.html"
        for out in (out1, out2):
            rc = main([
                "report", "--out", str(out),
                "--history", str(hist), "--store", str(store),
                "--trace", str(trace), "--metrics", str(metrics),
                "--title", "post-hoc",
            ])
            assert rc == 0
        assert_self_contained(out1, "manifest", "history", "sweep", "trace", "metrics")
        assert out1.read_text() == out2.read_text()

    def test_jsonl_trace_also_loads(self, tmp_path):
        trace = tmp_path / "t.json"
        assert main(run_args(tmp_path, "--trace", str(trace))) == 0
        jsonl = trace.with_suffix(".jsonl")
        assert jsonl.is_file()
        out = tmp_path / "r.html"
        assert main(["report", "--out", str(out), "--trace", str(jsonl)]) == 0
        assert_self_contained(out, "trace")

    def test_metrics_json_round_trips_through_export(self, tmp_path):
        metrics = tmp_path / "m.json"
        assert main(run_args(tmp_path, "--metrics", str(metrics))) == 0
        doc = json.loads(metrics.read_text())
        assert doc["schema"] == 1
        out = tmp_path / "r.html"
        assert main(["report", "--out", str(out), "--metrics", str(metrics)]) == 0
        assert_self_contained(out, "metrics")
