"""Byte-determinism of the full page, pinned by a committed golden file.

Regenerate after an intentional rendering change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/report/test_golden.py
"""

from __future__ import annotations

import os
from pathlib import Path

from _artifacts import MANIFEST, make_history, make_metrics, make_spans, make_sweep

from repro.report import render_report

GOLDEN = Path(__file__).parent / "golden_report.html"


def render_full_page() -> str:
    return render_report(
        history=make_history((0.2, 0.35, 0.5), staleness=True),
        sweep=make_sweep(),
        trace=make_spans(),
        metrics=make_metrics(),
        manifest=MANIFEST,
        title="golden fixture",
        target_acc=0.3,
    )


def test_rendering_is_byte_deterministic():
    """Fresh artifact objects → byte-identical pages (no ids, no clocks)."""
    assert render_full_page() == render_full_page()


def test_page_is_self_contained():
    page = render_full_page()
    assert page.count("<html") == 1 and page.count("</html>") == 1
    # The only URL anywhere is the SVG XML namespace.
    assert page.replace("http://www.w3.org/2000/svg", "").count("http") == 0
    assert "<script" not in page and "@import" not in page

    # One section per artifact supplied, plus the manifest.
    for anchor in ("manifest", "history", "sweep", "trace", "metrics"):
        assert f'<section id="{anchor}">' in page


def test_matches_committed_golden():
    page = render_full_page()
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN.write_text(page)
    assert GOLDEN.is_file(), "golden missing — run with REGEN_GOLDEN=1"
    assert page == GOLDEN.read_text(), (
        "rendering drifted from the golden page; if intentional, regenerate "
        "with REGEN_GOLDEN=1"
    )
