"""All-lost rounds: the model must hold still and the history must say so.

When fault injection eats every upload of a round (or every edge
aggregator crashes), the server has nothing to apply: the round is still
recorded — with ``num_participants=0``, an unchanged model, and a frozen
evaluation — instead of crashing, skipping the record, or (the async
regression this file pins) waiting forever for a deliverable arrival.
"""

from __future__ import annotations

import pytest

from repro.fl.config import ExperimentConfig
from repro.io.history_io import history_to_dict
from repro.simtime import make_simulation


def cfg(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="synth-cifar10",
        model="mlp",
        num_train=240,
        num_test=120,
        num_clients=8,
        participation=0.5,
        rounds=3,
        batch_size=32,
        lr=0.1,
        seed=7,
        eval_every=1,
        algorithm="topk",
        compression_ratio=0.2,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def run(config) -> list:
    with make_simulation(config) as sim:
        return sim.run().records


ALL_LOST = {
    "sync": dict(drop_prob=1.0),
    "semisync": dict(
        mode="semisync", deadline_quantile=0.6, drop_prob=1.0
    ),
    "async": dict(mode="async", concurrency=3, buffer_size=2, drop_prob=1.0),
    "hier": dict(
        algorithm="bcrs_opwa",
        compression_ratio=0.2,
        mode="hier",
        num_edges=2,
        edge_rounds=1,
        edge_crash_prob=1.0,
    ),
}


@pytest.mark.parametrize("mode", sorted(ALL_LOST))
def test_total_loss_freezes_the_model(mode):
    """Every round records zero participants and an unchanged model."""
    records = run(cfg(**ALL_LOST[mode]))
    assert len(records) == cfg(**ALL_LOST[mode]).rounds
    assert [r.num_participants for r in records] == [0] * len(records)
    accs = [r.test_accuracy for r in records if r.test_accuracy is not None]
    assert accs and len(set(accs)) == 1  # evaluation never moves


def test_truncation_is_not_loss():
    """A truncated upload still participates: the prefix is delivered,
    re-priced at its delivered bits, and aggregated."""
    records = run(cfg(drop_prob=0.0, truncate_prob=1.0))
    assert any(r.num_participants > 0 for r in records)
    accs = [r.test_accuracy for r in records if r.test_accuracy is not None]
    assert len(set(accs)) > 1  # learning still happens on the prefixes


def test_partial_loss_counts_survivors():
    records = run(cfg(drop_prob=0.5, seed=3))
    counts = [r.num_participants for r in records]
    assert all(c is not None for c in counts)
    cohort = int(round(0.5 * 8))
    assert all(0 <= c <= cohort for c in counts)


def test_fault_free_histories_stay_byte_identical():
    """Without fault injection ``num_participants`` is absent — recorded as
    None and omitted from the serialized history, so pre-robustness golden
    JSON reproduces byte-for-byte."""
    records = run(cfg())
    assert all(r.num_participants is None for r in records)
    with make_simulation(cfg()) as sim:
        d = history_to_dict(sim.run())
    assert all("num_participants" not in rec for rec in d["records"])
