"""The byzantine-storm claim, pinned end to end.

At 30% sign-flip adversaries the weighted mean collapses — adversarial
mass cancels the honest pseudo-gradient and rounds with an adversarial
majority ascend — while the order-statistic aggregators land inside the
honest per-coordinate cluster and keep learning. Dense updates and
near-iid shards give the defenses their textbook regime (order statistics
over sparse top-k supports mostly see zeros); everything is seeded, so
the assertions are exact reruns, not statistics.
"""

from __future__ import annotations

import pytest

from repro.fl.config import ExperimentConfig
from repro.scenarios import get_scenario
from repro.simtime import make_simulation


def storm(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="synth-cifar10",
        model="mlp",
        num_train=480,
        num_test=160,
        num_clients=12,
        participation=1.0,
        rounds=18,
        batch_size=32,
        lr=0.1,
        seed=7,
        eval_every=6,
        algorithm="fedavg",
        compression_ratio=1.0,
        beta=1000.0,  # near-iid shards: honest updates agree per coordinate
        adversary="sign_flip",
        adversary_fraction=0.3,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def accuracies(config) -> tuple[float, float]:
    with make_simulation(config) as sim:
        h = sim.run()
    return h.final_accuracy(), h.best_accuracy()


def test_robust_aggregators_survive_what_breaks_the_mean():
    honest_final, _ = accuracies(storm(adversary=None, adversary_fraction=0.0))
    _, mean_best = accuracies(storm())
    trimmed_final, _ = accuracies(
        storm(aggregator="trimmed_mean", trim_beta=0.35)
    )
    median_final, _ = accuracies(storm(aggregator="median"))

    assert honest_final > 0.6  # the task is learnable without the storm
    assert mean_best < 0.2  # the mean degrades under 30% sign-flip
    assert trimmed_final > 0.25
    assert median_final > 0.30
    assert trimmed_final > mean_best + 0.08
    assert median_final > mean_best + 0.08


@pytest.mark.parametrize(
    "name, mode, tags",
    [
        ("byzantine-storm", "sync", {"robust", "adversary"}),
        ("poisoned-edge", "hier", {"robust", "adversary"}),
        ("lossy-uplink", "sync", {"robust", "faults"}),
        ("edge-crash-recovery", "hier", {"robust", "faults"}),
    ],
)
def test_robustness_scenarios_registered(name, mode, tags):
    spec = get_scenario(name)
    assert spec.to_config().mode == mode
    assert tags <= set(spec.tags)


def test_byzantine_storm_scenario_shape():
    config = get_scenario("byzantine-storm").to_config()
    assert config.adversary == "sign_flip"
    assert config.adversary_fraction == pytest.approx(0.3)
    assert config.aggregator == "trimmed_mean"
