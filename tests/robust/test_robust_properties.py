"""Algebraic contracts of the robustness subsystem (hypothesis).

Property tests over :mod:`repro.robust` and the transport fault injector:
permutation invariance and breakdown points of the order-statistic
aggregators (and proof that the plain mean *has* no breakdown point), the
norm-clip influence bound, bit-exact agreement of ``robust_aggregate``
with the historical weighted mean, and the pure-function guarantees of
adversary membership and fault fates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import DenseUpdate, SparseUpdate
from repro.core.aggregation import weighted_sparse_sum
from repro.network.transport import FaultInjector
from repro.robust.aggregators import (
    coordinate_median,
    densify_updates,
    norm_clip_weights,
    robust_aggregate,
    trimmed_mean,
)
from repro.robust.attacks import apply_delta_attack, flip_labels, is_adversary


def random_sparse(rng, d):
    k = int(rng.integers(1, d + 1))
    idx = np.sort(rng.choice(d, size=k, replace=False)).astype(np.int64)
    vals = rng.normal(size=k).astype(np.float32)
    return SparseUpdate(dense_size=d, indices=idx, values=vals)


def random_cohort(seed, n, d):
    rng = np.random.default_rng(seed)
    updates = [random_sparse(rng, d) for _ in range(n)]
    weights = rng.random(n) + 0.1
    return updates, weights / weights.sum()


class TestOrderStatisticAggregators:
    @given(st.integers(0, 1000), st.integers(3, 8), st.integers(4, 32))
    @settings(max_examples=30, deadline=None)
    def test_permutation_invariance(self, seed, n, d):
        """Median and trimmed mean see a multiset, not a sequence."""
        updates, _ = random_cohort(seed, n, d)
        perm = np.random.default_rng(seed + 1).permutation(n)
        shuffled = [updates[i] for i in perm]
        assert np.array_equal(
            coordinate_median(updates), coordinate_median(shuffled)
        )
        assert np.array_equal(
            trimmed_mean(updates, 0.25), trimmed_mean(shuffled, 0.25)
        )

    @given(st.integers(0, 1000), st.integers(2, 8), st.integers(4, 32))
    @settings(max_examples=30, deadline=None)
    def test_trim_nothing_is_the_unweighted_mean(self, seed, n, d):
        """β small enough to trim zero rows degrades to the plain mean."""
        updates, _ = random_cohort(seed, n, d)
        rows = densify_updates(updates)
        np.testing.assert_allclose(
            trimmed_mean(updates, 0.0), rows.mean(axis=0), rtol=1e-12, atol=0
        )

    @given(st.integers(0, 1000), st.integers(5, 9), st.integers(4, 16))
    @settings(max_examples=30, deadline=None)
    def test_breakdown_point(self, seed, n, d):
        """Fewer than ⌊β·n⌋ (median: < n/2) arbitrary updates cannot push
        the order statistics outside the honest cohort's envelope — while
        the same corruption provably breaks the weighted mean."""
        rng = np.random.default_rng(seed)
        honest = [
            DenseUpdate(
                dense_size=d,
                values=rng.uniform(-1, 1, size=d).astype(np.float32),
            )
            for _ in range(n)
        ]
        beta = 0.3
        m = max(1, min(int(beta * n), (n - 1) // 2 - 1 + (n % 2)))
        evil = [
            DenseUpdate(
                dense_size=d,
                values=np.full(d, 1e8, dtype=np.float32),
            )
            for _ in range(m)
        ]
        cohort = honest + evil
        env = densify_updates(honest)
        lo, hi = env.min(axis=0), env.max(axis=0)

        med = coordinate_median(cohort)
        tm = trimmed_mean(cohort, beta)
        assert np.all(med <= hi) and np.all(med >= lo)
        assert np.all(tm <= hi) and np.all(tm >= lo)

        mean = weighted_sparse_sum(cohort, np.full(n + m, 1.0 / (n + m)))
        assert np.any(mean > hi)  # the mean followed the adversary


class TestNormClip:
    @given(st.integers(0, 1000), st.integers(2, 8), st.integers(4, 32))
    @settings(max_examples=30, deadline=None)
    def test_influence_bound(self, seed, n, d):
        """‖Σ wᵢ'uᵢ‖ ≤ τ·Σwᵢ after clipping, whatever the updates."""
        updates, weights = random_cohort(seed, n, d)
        tau = 0.5
        clipped = norm_clip_weights(updates, weights, tau)
        agg = weighted_sparse_sum(updates, clipped)
        assert float(np.linalg.norm(agg)) <= tau * weights.sum() * (1 + 1e-9)

    @given(st.integers(0, 1000), st.integers(2, 8), st.integers(4, 32))
    @settings(max_examples=30, deadline=None)
    def test_bit_identical_when_nothing_clips(self, seed, n, d):
        """Updates inside the radius keep their exact weights, so the
        norm-clip rule *is* the weighted mean, bit for bit."""
        updates, weights = random_cohort(seed, n, d)
        tau = max(
            float(np.linalg.norm(np.asarray(u.values, dtype=np.float64)))
            for u in updates
        ) + 1.0
        assert np.array_equal(norm_clip_weights(updates, weights, tau), weights)
        assert np.array_equal(
            robust_aggregate(
                updates, weights, aggregator="norm_clip", clip_tau=tau
            ),
            robust_aggregate(updates, weights, aggregator="mean"),
        )


class TestDispatch:
    @given(st.integers(0, 1000), st.integers(2, 6), st.integers(4, 32))
    @settings(max_examples=30, deadline=None)
    def test_mean_is_the_historical_aggregate(self, seed, n, d):
        """``robust_aggregate('mean')`` is weighted_sparse_sum, bit for bit
        — the honest path cannot drift when the dispatcher lands."""
        updates, weights = random_cohort(seed, n, d)
        assert np.array_equal(
            robust_aggregate(updates, weights, aggregator="mean"),
            weighted_sparse_sum(updates, weights),
        )

    def test_bad_rules_rejected(self):
        updates, weights = random_cohort(0, 3, 8)
        with pytest.raises(ValueError, match="unknown aggregator"):
            robust_aggregate(updates, weights, aggregator="krum")
        with pytest.raises(ValueError, match="clip_tau"):
            robust_aggregate(updates, weights, aggregator="norm_clip")


class TestAdversaryMembership:
    def test_fraction_edges(self):
        assert not any(is_adversary(7, cid, 0.0) for cid in range(100))
        assert all(is_adversary(7, cid, 1.0) for cid in range(100))

    @given(st.integers(0, 10_000), st.integers(0, 1_000_000))
    @settings(max_examples=50, deadline=None)
    def test_pure_function(self, seed, cid):
        assert is_adversary(seed, cid, 0.3) == is_adversary(seed, cid, 0.3)

    @given(
        st.integers(0, 10_000),
        st.integers(0, 1_000_000),
        st.floats(0.01, 0.98),
        st.floats(0.01, 0.98),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_fraction(self, seed, cid, f1, f2):
        """Raising the fraction only ever adds adversaries (one uniform
        draw per client, thresholded) — sweeps over adversary_fraction
        corrupt nested client sets."""
        lo, hi = sorted((f1, f2))
        if is_adversary(seed, cid, lo):
            assert is_adversary(seed, cid, hi)

    def test_expected_fraction(self):
        frac = sum(is_adversary(7, cid, 0.3) for cid in range(4000)) / 4000
        assert abs(frac - 0.3) < 0.03


class TestAttacks:
    def test_sign_flip_is_an_involution(self):
        rng = np.random.default_rng(0)
        delta = rng.normal(size=64)
        orig = delta.copy()
        apply_delta_attack(delta, "sign_flip")
        assert np.array_equal(delta, -orig)
        apply_delta_attack(delta, "sign_flip")
        assert np.array_equal(delta, orig)

    def test_scaled_inflates(self):
        delta = np.ones(8)
        apply_delta_attack(delta, "scaled", scale=10.0)
        assert np.array_equal(delta, np.full(8, 10.0))

    def test_label_flip_is_a_delta_noop(self):
        delta = np.arange(4.0)
        apply_delta_attack(delta, "label_flip")
        assert np.array_equal(delta, np.arange(4.0))

    def test_flip_labels_involution(self):
        y = np.arange(10, dtype=np.int64)
        flipped = flip_labels(y.copy(), 10)
        assert np.array_equal(flipped, np.arange(9, -1, -1))
        assert np.array_equal(flip_labels(flipped.copy(), 10), y)


class TestFaultInjector:
    def test_fate_edges(self):
        drop = FaultInjector(7, drop_prob=1.0)
        assert all(
            drop.fate(e, c) == ("drop", 0.0) for e in range(5) for c in range(5)
        )
        trunc = FaultInjector(7, truncate_prob=1.0)
        for e in range(5):
            for c in range(5):
                kind, frac = trunc.fate(e, c)
                assert kind == "truncate" and 0.0 <= frac < 1.0

    @given(st.integers(0, 10_000), st.integers(0, 100), st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_fate_pure_function(self, seed, epoch, cid):
        inj = FaultInjector(seed, drop_prob=0.2, truncate_prob=0.3)
        again = FaultInjector(seed, drop_prob=0.2, truncate_prob=0.3)
        assert inj.fate(epoch, cid) == again.fate(epoch, cid)

    def test_truncate_keeps_a_priced_prefix(self):
        u = SparseUpdate(
            dense_size=16,
            indices=np.arange(8, dtype=np.int64),
            values=np.arange(8, dtype=np.float32),
        )
        cut = FaultInjector.truncate(u, 0.5)
        assert cut.nnz == 4
        assert np.array_equal(cut.indices, u.indices[:4])
        assert np.array_equal(cut.values, u.values[:4])
        assert cut.bits == u.bits / 2
        assert FaultInjector.truncate(u, 0.05) is None  # k < 1: nothing left

    def test_truncate_discards_dense_blocks(self):
        u = DenseUpdate(dense_size=4, values=np.ones(4, dtype=np.float32))
        assert FaultInjector.truncate(u, 0.9) is None

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(7, drop_prob=0.6, truncate_prob=0.6)
        with pytest.raises(ValueError):
            FaultInjector(7, drop_prob=-0.1)
