"""Fault fates are pure functions of the seed — nothing else may leak in.

Backend bit-identity for adversarial/faulty traces is pinned by the golden
suite (``tests/goldens``); this file covers the remaining leak surfaces:
repeated runs, sweep parallelism (a faulty cell must not see how many
sibling cells run beside it), and hierarchical edge-crash recovery.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_grid
from repro.fl.config import ExperimentConfig
from repro.io.history_io import history_to_dict
from repro.simtime import make_simulation
from repro.testing.goldens import run_trace


def cfg(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="synth-cifar10",
        model="mlp",
        num_train=240,
        num_test=120,
        num_clients=8,
        participation=0.5,
        rounds=3,
        batch_size=32,
        lr=0.1,
        seed=7,
        eval_every=1,
        algorithm="topk",
        compression_ratio=0.2,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def stripped(history) -> dict:
    d = history_to_dict(history)
    for rec in d["records"]:
        rec["train_seconds"] = rec["compress_seconds"] = 0.0
    return d


@pytest.mark.parametrize(
    "overrides",
    [
        dict(drop_prob=0.2, truncate_prob=0.3),
        dict(
            mode="async",
            concurrency=3,
            buffer_size=2,
            drop_prob=0.25,
            adversary="sign_flip",
            adversary_fraction=0.25,
        ),
        dict(
            algorithm="bcrs_opwa",
            mode="hier",
            num_edges=3,
            edge_rounds=1,
            edge_crash_prob=0.4,
        ),
    ],
    ids=["sync-faults", "async-faults-adversary", "hier-crash"],
)
def test_rerun_is_bitwise_identical(overrides):
    """Same config, fresh simulation: identical trace, spans included."""
    assert run_trace(cfg(**overrides)) == run_trace(cfg(**overrides))


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_sweep_parallelism_is_invisible_to_faulty_cells(executor):
    """A robustness grid run at parallel=3 matches the sequential sweep
    cell-for-cell, bit-for-bit."""
    axes = {
        "adversary_fraction": [0.0, 0.25],
        "drop_prob": [0.0, 0.3],
    }
    base = cfg(adversary="sign_flip")
    serial = run_grid(base, axes, parallel=1)
    parallel = run_grid(base, axes, parallel=3, executor=executor)
    assert len(serial) == len(parallel) == 4
    for (sa, ha), (sb, hb) in zip(serial.cells, parallel.cells):
        assert sa == sb
        assert stripped(ha) == stripped(hb)


def test_hier_crash_recovery_reweights_survivors():
    """Crashed edges vanish from the cloud merge; the cloud still steps on
    the survivors, so the run differs from the crash-free one but keeps
    learning — and every round reports its surviving cohort."""
    crashy = cfg(
        algorithm="bcrs_opwa",
        mode="hier",
        num_edges=3,
        edge_rounds=1,
        edge_crash_prob=0.4,
        rounds=4,
    )
    calm = crashy.with_(edge_crash_prob=0.0)
    with make_simulation(crashy) as sim:
        h_crash = sim.run()
    with make_simulation(calm) as sim:
        h_calm = sim.run()
    assert stripped(h_crash) != stripped(h_calm)
    assert all(r.num_participants is not None for r in h_crash.records)
    assert all(r.num_participants is None for r in h_calm.records)
    accs = [r.test_accuracy for r in h_crash.records if r.test_accuracy is not None]
    assert max(accs) > accs[0]  # survivors still move the cloud model
