"""Tests for flat-parameter packing and the model zoo."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.losses import cross_entropy
from repro.nn.models import build_mini_resnet, build_mlp, build_model, build_small_cnn
from repro.nn.optim import SGD
from repro.nn.params import (
    clone_state,
    get_flat_grads,
    get_flat_params,
    num_parameters,
    param_slices,
    restore_state,
    set_flat_params,
)


class TestFlatParams:
    def test_roundtrip(self, rng):
        model = build_mlp(10, 3, hidden=(7,), seed=0)
        flat = get_flat_params(model)
        assert flat.shape == (num_parameters(model),)
        flat2 = rng.normal(size=flat.shape).astype(np.float32)
        set_flat_params(model, flat2)
        np.testing.assert_array_equal(get_flat_params(model), flat2)

    def test_slices_cover_vector(self):
        model = build_mlp(6, 2, hidden=(4,), seed=0)
        slices = param_slices(model)
        total = num_parameters(model)
        covered = np.zeros(total, dtype=bool)
        for _, sl, shape in slices:
            assert not covered[sl].any(), "overlapping slices"
            covered[sl] = True
            assert int(np.prod(shape)) == sl.stop - sl.start
        assert covered.all()

    def test_set_rejects_wrong_size(self):
        model = build_mlp(4, 2, hidden=(3,), seed=0)
        with pytest.raises(ValueError):
            set_flat_params(model, np.zeros(3, dtype=np.float32))

    def test_grads_flatten(self, rng):
        model = build_mlp(4, 2, hidden=(3,), seed=0)
        x = rng.normal(size=(5, 4)).astype(np.float32)
        logits = model(x)
        _, g = cross_entropy(logits, rng.integers(0, 2, size=5))
        model.backward(g)
        flat_g = get_flat_grads(model)
        assert flat_g.shape == (num_parameters(model),)
        assert np.any(flat_g != 0)

    def test_clone_restore_state(self, rng):
        model = build_small_cnn(3, 8, 4, seed=0)
        snap = clone_state(model)
        x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        logits = model(x, training=True)  # mutates BN running stats
        _, g = cross_entropy(logits, rng.integers(0, 4, size=4))
        model.backward(g)
        SGD(model.parameters(), lr=0.5).step()
        restore_state(model, snap)
        np.testing.assert_array_equal(get_flat_params(model), snap[0])
        for live, saved in zip(model.state_arrays(), snap[1]):
            np.testing.assert_array_equal(live, saved)


class TestModelZoo:
    def test_mlp_output_shape(self, rng):
        model = build_mlp(12, 5, seed=0)
        out = model(rng.normal(size=(3, 12)).astype(np.float32), training=False)
        assert out.shape == (3, 5)

    def test_small_cnn_output_shape(self, rng):
        model = build_small_cnn(3, 8, 10, seed=0)
        out = model(rng.normal(size=(2, 3, 8, 8)).astype(np.float32), training=False)
        assert out.shape == (2, 10)

    def test_mini_resnet_output_shape(self, rng):
        model = build_mini_resnet(3, 10, width=8, blocks_per_stage=(1, 1), seed=0)
        out = model(rng.normal(size=(2, 3, 8, 8)).astype(np.float32), training=False)
        assert out.shape == (2, 10)

    def test_same_seed_same_init(self):
        a = get_flat_params(build_mlp(6, 2, seed=42))
        b = get_flat_params(build_mlp(6, 2, seed=42))
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_init(self):
        a = get_flat_params(build_mlp(6, 2, seed=1))
        b = get_flat_params(build_mlp(6, 2, seed=2))
        assert not np.array_equal(a, b)

    def test_registry_dispatch(self):
        m = build_model("mlp", in_channels=3, image_size=4, num_classes=2, seed=0)
        assert num_parameters(m) > 0
        with pytest.raises(KeyError):
            build_model("nope", in_channels=1, image_size=4, num_classes=2)

    @given(st.sampled_from(["mlp", "small_cnn", "mini_resnet"]))
    @settings(max_examples=6, deadline=None)
    def test_all_models_trainable_one_step(self, name):
        rng = np.random.default_rng(0)
        model = build_model(name, in_channels=3, image_size=8, num_classes=4, seed=0)
        x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        if name == "mlp":
            x = x.reshape(4, -1)
        labels = rng.integers(0, 4, size=4)
        before = get_flat_params(model).copy()
        opt = SGD(model.parameters(), lr=0.01)
        logits = model(x, training=True)
        loss0, g = cross_entropy(logits, labels)
        model.backward(g)
        opt.step()
        assert not np.array_equal(get_flat_params(model), before)

    def test_training_reduces_loss(self, rng):
        """A few SGD steps on a fixed batch should reduce cross-entropy."""
        model = build_mlp(8, 3, hidden=(16,), seed=0)
        x = rng.normal(size=(32, 8)).astype(np.float32)
        labels = rng.integers(0, 3, size=32)
        opt = SGD(model.parameters(), lr=0.5)
        losses = []
        for _ in range(30):
            opt.zero_grad()
            loss, g = cross_entropy(model(x), labels)
            model.backward(g)
            opt.step()
            losses.append(loss)
        assert losses[-1] < losses[0] * 0.5
