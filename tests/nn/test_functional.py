"""Unit and property tests for repro.nn.functional."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.functional import (
    col2im,
    conv_output_size,
    im2col,
    log_softmax,
    one_hot,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(8, 5)).astype(np.float32)
        s = softmax(x, axis=1)
        np.testing.assert_allclose(s.sum(axis=1), 1.0, atol=1e-6)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(4, 7))
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), atol=1e-6)

    def test_large_values_stable(self):
        x = np.array([[1000.0, 1000.0, -1000.0]])
        s = softmax(x)
        assert np.all(np.isfinite(s))
        np.testing.assert_allclose(s[0, :2], 0.5, atol=1e-6)

    @given(arrays(np.float64, (3, 4), elements=st.floats(-50, 50)))
    @settings(max_examples=30, deadline=None)
    def test_log_softmax_consistent(self, x):
        np.testing.assert_allclose(np.exp(log_softmax(x)), softmax(x), atol=1e-8)


class TestOneHot:
    def test_basic(self):
        oh = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(oh, np.eye(3)[[0, 2, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 5]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size,k,s,p,expected",
        [(8, 3, 1, 1, 8), (8, 3, 2, 1, 4), (8, 2, 2, 0, 4), (5, 5, 1, 0, 1)],
    )
    def test_known_values(self, size, k, s, p, expected):
        assert conv_output_size(size, k, s, p) == expected

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        cols, oh, ow = im2col(x, 3, 3, 1, 1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2 * 8 * 8, 3 * 3 * 3)

    def test_identity_kernel_1x1(self, rng):
        x = rng.normal(size=(1, 2, 4, 4)).astype(np.float32)
        cols, oh, ow = im2col(x, 1, 1, 1, 0)
        np.testing.assert_allclose(
            cols.reshape(4, 4, 2).transpose(2, 0, 1), x[0], atol=0
        )

    def test_matches_naive_extraction(self, rng):
        x = rng.normal(size=(1, 1, 5, 5)).astype(np.float32)
        cols, oh, ow = im2col(x, 3, 3, 2, 0)
        assert (oh, ow) == (2, 2)
        naive = np.stack(
            [x[0, 0, i * 2 : i * 2 + 3, j * 2 : j * 2 + 3].ravel() for i in range(2) for j in range(2)]
        )
        np.testing.assert_allclose(cols, naive)

    def test_col2im_is_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        x = rng.normal(size=(2, 3, 6, 6))
        cols, oh, ow = im2col(x, 3, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        back = col2im(y, x.shape, 3, 3, 2, 1)
        rhs = float(np.sum(x * back))
        assert lhs == pytest.approx(rhs, rel=1e-9)

    @given(st.integers(1, 3), st.integers(1, 2), st.integers(0, 1))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_shapes(self, k, s, p):
        size = 6
        if size + 2 * p < k:
            return
        x = np.random.default_rng(0).normal(size=(1, 2, size, size))
        cols, oh, ow = im2col(x, k, k, s, p)
        out = col2im(cols, x.shape, k, k, s, p)
        assert out.shape == x.shape
