"""Tests for the Adam optimizer and LayerNorm."""

import numpy as np
import pytest

from repro.nn.layers import LayerNorm, Parameter
from repro.nn.losses import cross_entropy
from repro.nn.models import build_mlp
from repro.nn.optim import Adam
from tests.conftest import check_layer_gradients


class TestAdam:
    def test_first_step_is_lr_sized(self):
        p = Parameter("w", np.zeros(2, dtype=np.float32))
        p.grad[...] = [1.0, -3.0]
        Adam([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [-0.1, 0.1], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = Parameter("w", np.array([4.0], dtype=np.float32))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            p.zero_grad()
            p.grad[...] = 2 * p.data
            opt.step()
        assert abs(p.data[0]) < 0.05

    def test_weight_decay_shrinks(self):
        p = Parameter("w", np.array([10.0], dtype=np.float32))
        opt = Adam([p], lr=0.1, weight_decay=0.1)
        opt.step()  # zero grad: only decay acts (plus epsilon-sized adam step)
        assert p.data[0] < 10.0

    def test_trains_mlp_faster_than_nothing(self, rng):
        model = build_mlp(8, 3, hidden=(16,), seed=0)
        x = rng.normal(size=(32, 8)).astype(np.float32)
        labels = rng.integers(0, 3, size=32)
        opt = Adam(model.parameters(), lr=0.01)
        first, last = None, None
        for i in range(40):
            opt.zero_grad()
            loss, g = cross_entropy(model(x), labels)
            model.backward(g)
            opt.step()
            first = loss if first is None else first
            last = loss
        assert last < first * 0.7

    @pytest.mark.parametrize("kwargs", [
        dict(lr=0), dict(lr=0.1, beta1=1.0), dict(lr=0.1, eps=0), dict(lr=0.1, weight_decay=-1),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Adam([], **kwargs)


class TestLayerNorm:
    def test_normalizes_rows(self, rng):
        ln = LayerNorm(16)
        x = rng.normal(loc=4.0, scale=3.0, size=(8, 16)).astype(np.float32)
        out = ln(x, training=True)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.var(axis=-1), 1.0, atol=1e-3)

    def test_batch_size_independent(self, rng):
        """Unlike BatchNorm, LayerNorm gives identical outputs per-row
        regardless of what else is in the batch."""
        ln = LayerNorm(8)
        x = rng.normal(size=(4, 8)).astype(np.float32)
        full = ln(x, training=False)
        single = np.concatenate([ln(x[i : i + 1], training=False) for i in range(4)])
        np.testing.assert_allclose(full, single, atol=1e-6)

    def test_gradients(self, rng):
        check_layer_gradients(LayerNorm(6), rng.normal(size=(4, 6)), atol=2e-2)

    def test_parameters_exposed(self):
        assert len(LayerNorm(4).parameters()) == 2
