"""Tests for the GroupNorm CNN (BatchNorm-free FL model)."""

import numpy as np
import pytest

from repro.fl.config import ExperimentConfig
from repro.fl.simulation import run_experiment
from repro.nn.models import build_gn_cnn, build_model, build_small_cnn


class TestGnCnn:
    def test_output_shape(self, rng):
        model = build_gn_cnn(3, 10, seed=0)
        out = model(rng.normal(size=(2, 3, 8, 8)).astype(np.float32), training=False)
        assert out.shape == (2, 10)

    def test_no_persistent_buffers(self):
        """The point of GroupNorm in FL: nothing to average beside weights."""
        assert build_gn_cnn(3, 10, seed=0).state_arrays() == []
        assert len(build_small_cnn(3, 8, 10, seed=0).state_arrays()) > 0

    def test_registry_dispatch(self):
        model = build_model("gn_cnn", in_channels=3, image_size=8, num_classes=5, seed=0)
        assert model(np.zeros((1, 3, 8, 8), np.float32), training=False).shape == (1, 5)

    def test_batch_independence(self, rng):
        """Same sample, different batch companions, identical output —
        the property BatchNorm lacks."""
        model = build_gn_cnn(3, 10, seed=0)
        x = rng.normal(size=(4, 3, 8, 8)).astype(np.float32)
        full = model(x, training=False)
        alone = model(x[:1], training=False)
        np.testing.assert_allclose(full[0], alone[0], atol=1e-5)

    def test_end_to_end_federated(self):
        cfg = ExperimentConfig(
            dataset="synth-cifar10", model="gn_cnn", num_train=300, num_test=100,
            rounds=3, num_clients=4, participation=0.5, lr=0.05, eval_every=3,
        )
        h = run_experiment(cfg)
        assert 0.0 <= h.final_accuracy() <= 1.0
