"""Gradient checks and behavioural tests for every layer."""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    GroupNorm,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.sequential import BasicBlock, Sequential
from tests.conftest import check_layer_gradients


class TestLinear:
    def test_forward_matches_matmul(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(5, 4)).astype(np.float32)
        np.testing.assert_allclose(layer(x), x @ layer.weight.data + layer.bias.data, atol=1e-6)

    def test_gradients(self, rng):
        layer = Linear(4, 3, rng)
        check_layer_gradients(layer, rng.normal(size=(5, 4)))

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert len(layer.parameters()) == 1
        check_layer_gradients(layer, rng.normal(size=(2, 4)))

    def test_backward_without_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Linear(2, 2, rng).backward(np.zeros((1, 2), dtype=np.float32))

    def test_grad_accumulates(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3)).astype(np.float32)
        g = rng.normal(size=(4, 2)).astype(np.float32)
        layer(x); layer.backward(g)
        first = layer.weight.grad.copy()
        layer(x); layer.backward(g)
        np.testing.assert_allclose(layer.weight.grad, 2 * first, rtol=1e-5)


class TestConv2d:
    def test_output_shape(self, rng):
        layer = Conv2d(3, 8, 3, rng, stride=2, padding=1)
        out = layer(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
        assert out.shape == (2, 8, 4, 4)

    def test_gradients(self, rng):
        layer = Conv2d(2, 3, 3, rng, stride=1, padding=1)
        check_layer_gradients(layer, rng.normal(size=(2, 2, 4, 4)))

    def test_gradients_strided_no_pad(self, rng):
        layer = Conv2d(1, 2, 2, rng, stride=2, padding=0)
        check_layer_gradients(layer, rng.normal(size=(1, 1, 4, 4)))

    def test_matches_naive_convolution(self, rng):
        layer = Conv2d(1, 1, 3, rng, padding=0, bias=False)
        x = rng.normal(size=(1, 1, 5, 5)).astype(np.float32)
        out = layer(x, training=False)
        k = layer.weight.data[0, 0]
        naive = np.zeros((3, 3), dtype=np.float64)
        for i in range(3):
            for j in range(3):
                naive[i, j] = np.sum(x[0, 0, i : i + 3, j : j + 3] * k)
        np.testing.assert_allclose(out[0, 0], naive, rtol=1e-5)


class TestBatchNorm2d:
    def test_normalizes_batch(self, rng):
        layer = BatchNorm2d(4)
        x = rng.normal(loc=3.0, scale=2.0, size=(16, 4, 3, 3)).astype(np.float32)
        out = layer(x, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.var(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_move_toward_batch(self, rng):
        layer = BatchNorm2d(2, momentum=0.5)
        x = rng.normal(loc=5.0, size=(8, 2, 2, 2)).astype(np.float32)
        layer(x, training=True)
        assert np.all(layer.running_mean > 1.0)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm2d(2)
        x = rng.normal(size=(8, 2, 2, 2)).astype(np.float32)
        out = layer(x, training=False)
        np.testing.assert_allclose(out, x / np.sqrt(1 + layer.eps), atol=1e-5)

    def test_gradients(self, rng):
        layer = BatchNorm2d(3)
        check_layer_gradients(layer, rng.normal(size=(4, 3, 2, 2)), atol=2e-2)


class TestGroupNorm:
    def test_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            GroupNorm(3, 4)

    def test_normalizes_groups(self, rng):
        layer = GroupNorm(2, 4)
        x = rng.normal(loc=2.0, size=(3, 4, 4, 4)).astype(np.float32)
        out = layer(x, training=True)
        grouped = out.reshape(3, 2, -1)
        np.testing.assert_allclose(grouped.mean(axis=2), 0.0, atol=1e-5)

    def test_gradients(self, rng):
        layer = GroupNorm(2, 4)
        check_layer_gradients(layer, rng.normal(size=(2, 4, 2, 2)), atol=2e-2)


class TestActivations:
    def test_relu_forward(self):
        out = ReLU()(np.array([[-1.0, 2.0]], dtype=np.float32))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_relu_gradients(self, rng):
        check_layer_gradients(ReLU(), rng.normal(size=(3, 5)) + 0.1)

    def test_leaky_relu_gradients(self, rng):
        check_layer_gradients(LeakyReLU(0.1), rng.normal(size=(3, 5)) + 0.1)

    def test_leaky_negative_slope(self):
        out = LeakyReLU(0.1)(np.array([[-10.0]], dtype=np.float32))
        np.testing.assert_allclose(out, [[-1.0]])


class TestPooling:
    def test_maxpool_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = MaxPool2d(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradients(self, rng):
        check_layer_gradients(MaxPool2d(2), rng.normal(size=(2, 2, 4, 4)))

    def test_avgpool_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = AvgPool2d(2)(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_gradients(self, rng):
        check_layer_gradients(AvgPool2d(2), rng.normal(size=(2, 2, 4, 4)))

    def test_global_avgpool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        out = GlobalAvgPool2d()(x)
        np.testing.assert_allclose(out, x.mean(axis=(2, 3)), atol=1e-6)

    def test_global_avgpool_gradients(self, rng):
        check_layer_gradients(GlobalAvgPool2d(), rng.normal(size=(2, 3, 3, 3)))


class TestFlattenDropout:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        out = layer(x)
        assert out.shape == (2, 48)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_dropout_eval_identity(self, rng):
        layer = Dropout(0.5, rng)
        x = rng.normal(size=(4, 4)).astype(np.float32)
        np.testing.assert_array_equal(layer(x, training=False), x)

    def test_dropout_preserves_expectation(self, rng):
        layer = Dropout(0.3, rng)
        x = np.ones((200, 200), dtype=np.float32)
        out = layer(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_rejects_bad_p(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestBasicBlock:
    def test_identity_skip_shape(self, rng):
        block = BasicBlock(4, 4, rng)
        out = block(rng.normal(size=(2, 4, 4, 4)).astype(np.float32))
        assert out.shape == (2, 4, 4, 4)

    def test_projection_skip_shape(self, rng):
        block = BasicBlock(4, 8, rng, stride=2)
        out = block(rng.normal(size=(2, 4, 4, 4)).astype(np.float32))
        assert out.shape == (2, 8, 2, 2)
        assert block.downsample is not None

    def test_gradients_identity(self, rng):
        block = BasicBlock(2, 2, rng)
        check_layer_gradients(block, rng.normal(size=(2, 2, 3, 3)), atol=3e-2)

    def test_gradients_projection(self, rng):
        block = BasicBlock(2, 4, rng, stride=2)
        check_layer_gradients(block, rng.normal(size=(2, 2, 4, 4)), atol=3e-2)


class TestSequential:
    def test_compose_and_param_collection(self, rng):
        model = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng))
        assert len(model.parameters()) == 4
        assert len(model) == 3

    def test_gradients_through_stack(self, rng):
        model = Sequential(Linear(3, 4, rng), ReLU(), Linear(4, 2, rng))
        check_layer_gradients(model, rng.normal(size=(3, 3)))

    def test_append_builder(self, rng):
        model = Sequential().append(Linear(2, 2, rng))
        assert len(model) == 1
