"""Tests for losses, optimizers and LR schedules."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Parameter
from repro.nn.losses import accuracy, cross_entropy, mse_loss
from repro.nn.optim import SGD, ConstantLR, CosineLR, StepLR
from tests.conftest import numeric_grad


class TestCrossEntropy:
    def test_uniform_logits_log_k(self):
        logits = np.zeros((4, 10), dtype=np.float32)
        loss, _ = cross_entropy(logits, np.array([0, 1, 2, 3]))
        assert loss == pytest.approx(np.log(10), rel=1e-5)

    def test_gradient_matches_numeric(self, rng):
        logits = rng.normal(size=(3, 5)).astype(np.float64)
        labels = np.array([0, 4, 2])
        _, grad = cross_entropy(logits, labels)
        num = numeric_grad(lambda: cross_entropy(logits, labels)[0], logits, eps=1e-5)
        np.testing.assert_allclose(grad, num, atol=1e-5)

    def test_gradient_rows_sum_zero(self, rng):
        logits = rng.normal(size=(6, 4)).astype(np.float32)
        _, grad = cross_entropy(logits, rng.integers(0, 4, size=6))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_confident_correct_low_loss(self):
        logits = np.array([[10.0, -10.0]], dtype=np.float32)
        loss, _ = cross_entropy(logits, np.array([0]))
        assert loss < 1e-4


class TestMSE:
    def test_zero_at_target(self):
        x = np.ones((2, 3))
        loss, grad = mse_loss(x, x.copy())
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_gradient_matches_numeric(self, rng):
        pred = rng.normal(size=(3, 2)).astype(np.float64)
        target = rng.normal(size=(3, 2))
        _, grad = mse_loss(pred, target)
        num = numeric_grad(lambda: mse_loss(pred, target)[0], pred, eps=1e-6)
        np.testing.assert_allclose(grad, num, atol=1e-5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros((2, 2)), np.zeros((2, 3)))


class TestAccuracy:
    def test_perfect(self):
        logits = np.eye(3)
        assert accuracy(logits, np.array([0, 1, 2])) == 1.0

    def test_partial(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5


class TestSGD:
    def test_plain_step(self):
        p = Parameter("w", np.array([1.0, 2.0], dtype=np.float32))
        p.grad[...] = [0.5, 0.5]
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 1.95], rtol=1e-6)

    def test_momentum_accelerates(self):
        p1 = Parameter("a", np.zeros(1, dtype=np.float32))
        p2 = Parameter("b", np.zeros(1, dtype=np.float32))
        opt1, opt2 = SGD([p1], lr=0.1), SGD([p2], lr=0.1, momentum=0.9)
        for _ in range(5):
            p1.grad[...] = 1.0
            p2.grad[...] = 1.0
            opt1.step()
            opt2.step()
        assert p2.data[0] < p1.data[0]  # momentum moves farther downhill

    def test_weight_decay_shrinks(self):
        p = Parameter("w", np.array([10.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=0.1)
        opt.step()  # zero gradient: only decay acts
        assert p.data[0] < 10.0

    def test_zero_grad(self, rng):
        layer = Linear(2, 2, rng)
        layer.weight.grad[...] = 1.0
        opt = SGD(layer.parameters(), lr=0.1)
        opt.zero_grad()
        np.testing.assert_array_equal(layer.weight.grad, 0.0)

    @pytest.mark.parametrize("kwargs", [dict(lr=0), dict(lr=0.1, momentum=1.0), dict(lr=0.1, weight_decay=-1)])
    def test_rejects_bad_hparams(self, kwargs):
        with pytest.raises(ValueError):
            SGD([], **kwargs)

    def test_converges_on_quadratic(self):
        p = Parameter("w", np.array([5.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(100):
            p.zero_grad()
            p.grad[...] = 2 * p.data  # d/dw w^2
            opt.step()
        assert abs(p.data[0]) < 1e-3


class TestSchedules:
    def test_constant(self):
        assert ConstantLR(0.1)(0) == ConstantLR(0.1)(1000) == 0.1

    def test_step_decay(self):
        sched = StepLR(1.0, step_size=10, gamma=0.1)
        assert sched(0) == 1.0
        assert sched(10) == pytest.approx(0.1)
        assert sched(25) == pytest.approx(0.01)

    def test_cosine_endpoints(self):
        sched = CosineLR(1.0, total_steps=100, min_lr=0.0)
        assert sched(0) == pytest.approx(1.0)
        assert sched(100) == pytest.approx(0.0, abs=1e-9)
        assert sched(50) == pytest.approx(0.5, abs=1e-9)

    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            StepLR(1.0, 0)
        with pytest.raises(ValueError):
            CosineLR(1.0, 0)
