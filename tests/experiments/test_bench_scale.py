"""Tests for the REPRO_BENCH_SCALE knob and preset scaling."""

import pytest

from repro.experiments.presets import bench_config, bench_scale


class TestBenchScale:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5

    def test_scale_grows_budget(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        small = bench_config("cifar10", "topk")
        monkeypatch.setenv("REPRO_BENCH_SCALE", "4")
        big = bench_config("cifar10", "topk")
        assert big.rounds > small.rounds
        assert big.num_train > small.num_train

    def test_floor_at_tiny_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.01")
        cfg = bench_config("cifar10", "topk")
        assert cfg.rounds >= 10
        assert cfg.num_train >= 400
