"""Tests for experiment presets, runners and reporting."""

import numpy as np
import pytest

from repro.experiments.paper_reference import TABLE2, TABLE3, TABLE4
from repro.experiments.presets import DATASET_NAME_MAP, bench_config, paper_config
from repro.experiments.reporting import (
    accuracy_row,
    format_table,
    paired_row,
    series_text,
    summarize_comparison,
    time_to_accuracy_row,
)
from repro.experiments.runner import run_comparison, sweep
from repro.fl.config import ExperimentConfig
from repro.fl.simulation import Simulation

SMALL = dict(rounds=4, num_train=400, num_test=150, eval_every=2)


class TestPresets:
    def test_paper_setting(self):
        cfg = paper_config("cifar10", "bcrs", beta=0.1, compression_ratio=0.01)
        assert cfg.dataset == "synth-cifar10"
        assert cfg.num_clients == 10
        assert cfg.participation == 0.5
        assert cfg.batch_size == 64
        assert cfg.local_epochs == 1
        assert cfg.rounds == 200
        assert cfg.compression_ratio == 0.01
        assert cfg.alpha == 0.3

    def test_fedavg_forces_dense(self):
        cfg = paper_config("svhn", "fedavg", compression_ratio=0.01)
        assert cfg.compression_ratio == 1.0

    def test_dataset_name_mapping(self):
        for paper_name, synth in DATASET_NAME_MAP.items():
            assert paper_config(paper_name, "topk").dataset == synth
        # Synthetic names pass through.
        assert paper_config("synth-svhn", "topk").dataset == "synth-svhn"

    def test_bench_config_is_smaller(self):
        b = bench_config("cifar10", "topk")
        p = paper_config("cifar10", "topk")
        assert b.rounds < p.rounds
        assert b.num_train <= p.num_train

    def test_overrides_win(self):
        cfg = bench_config("cifar10", "bcrs_opwa", gamma=3.0, rounds=5)
        assert cfg.gamma == 3.0
        assert cfg.rounds == 5


class TestRunner:
    def test_run_comparison_all_algorithms(self):
        base = paper_config("cifar10", "fedavg", **SMALL)
        results = run_comparison(base, ["fedavg", "topk"], compression_ratio=0.1)
        assert set(results) == {"fedavg", "topk"}
        for h in results.values():
            assert len(h) == 4

    def test_comparison_shares_seed(self):
        """Same seed => same client selection sequence across algorithms."""
        base = paper_config("cifar10", "fedavg", **SMALL)
        results = run_comparison(base, ["fedavg", "topk"], compression_ratio=0.1)
        sel_a = [r.selected for r in results["fedavg"].records]
        sel_b = [r.selected for r in results["topk"].records]
        assert sel_a == sel_b

    def test_sweep(self):
        base = paper_config("cifar10", "bcrs_opwa", compression_ratio=0.1, **SMALL)
        out = sweep(base, "gamma", [3.0, 5.0])
        assert set(out) == {3.0, 5.0}


class TestReporting:
    @pytest.fixture
    def history(self):
        return Simulation(paper_config("cifar10", "topk", compression_ratio=0.1, **SMALL)).run()

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_accuracy_row(self, history):
        row = accuracy_row("topk", history, 0.4669)
        assert row[0] == "topk"
        assert row[2] == "0.4669"

    def test_time_row_handles_unreached(self, history):
        row = time_to_accuracy_row("topk", history, target=1.01)
        assert row[1] == "--"

    def test_paired_row_none(self):
        assert paired_row("x", None, 0.5) == ["x", "--", "0.5000"]

    def test_series_text(self, history):
        text = series_text(history, every=2)
        assert "round" in text and "acc" in text

    def test_summarize_comparison(self, history):
        text = summarize_comparison({"topk": history})
        assert "topk" in text and "final_acc" in text


class TestPaperReference:
    def test_table2_complete(self):
        for ds, cells in TABLE2.items():
            assert set(cells) == {(0.1, 0.1), (0.1, 0.01), (0.5, 0.1), (0.5, 0.01)}
            for algs in cells.values():
                assert set(algs) == {"fedavg", "topk", "eftopk", "bcrs", "bcrs_opwa"}
                assert all(0 < v < 1 for v in algs.values())

    def test_table3_fedavg_actual_equals_max(self):
        actual, mx, mn = TABLE3["fedavg"][0.1]
        assert actual == mx
        assert mn < actual

    def test_table4_gamma7_beats_gamma3_at_high_compression(self):
        assert TABLE4[(0.1, 0.01)][7] > TABLE4[(0.1, 0.01)][3]
