"""Tests for derived evaluation metrics."""

import pytest

from repro.experiments.metrics import accuracy_auc, rounds_speedup, speedup_to_target
from tests.fl.test_history import record
from repro.fl.history import History


def history_with(accs, actual=1.0):
    h = History()
    for i, a in enumerate(accs):
        h.append(record(i, acc=a, actual=actual))
    return h


class TestAUC:
    def test_constant_curve(self):
        assert accuracy_auc(history_with([0.5, 0.5, 0.5])) == pytest.approx(0.5)

    def test_linear_curve(self):
        assert accuracy_auc(history_with([0.0, 0.5, 1.0])) == pytest.approx(0.5)

    def test_fast_riser_beats_slow_riser(self):
        fast = history_with([0.8, 0.9, 0.9])
        slow = history_with([0.1, 0.2, 0.9])
        assert accuracy_auc(fast) > accuracy_auc(slow)

    def test_single_point(self):
        assert accuracy_auc(history_with([0.3])) == pytest.approx(0.3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_auc(History())


class TestSpeedups:
    def test_time_speedup(self):
        slow = history_with([0.1, 0.2, 0.5], actual=10.0)  # reaches 0.4 at round 2 → 30s
        fast = history_with([0.5, 0.6], actual=5.0)  # reaches 0.4 at round 0 → 5s
        assert speedup_to_target(slow, fast, 0.4) == pytest.approx(6.0)

    def test_unreached_is_none(self):
        a = history_with([0.1])
        b = history_with([0.9])
        assert speedup_to_target(a, b, 0.5) is None
        assert speedup_to_target(b, a, 0.5) is None

    def test_rounds_speedup(self):
        slow = history_with([0.1, 0.2, 0.5, 0.6])
        fast = history_with([0.1, 0.6])
        assert rounds_speedup(slow, fast, 0.5) == pytest.approx(2.0)

    def test_rounds_speedup_target_at_round_zero(self):
        base = history_with([0.1, 0.6])
        cand = history_with([0.7])
        assert rounds_speedup(base, cand, 0.5) == float("inf")
