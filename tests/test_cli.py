"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

FAST_ARGS = ["--rounds", "3", "--dataset", "cifar10", "--beta", "0.5", "--cr", "0.2"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "bcrs_opwa"
        assert args.dataset == "cifar10"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "sgd"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "bcrs_opwa" in out
        assert "topk" in out

    def test_run_prints_curve(self, capsys):
        assert main(["run", "--algorithm", "topk", *FAST_ARGS]) == 0
        out = capsys.readouterr().out
        assert "final accuracy" in out
        assert "round" in out

    def test_run_saves_artifacts(self, tmp_path, capsys):
        hist = tmp_path / "h.json"
        csv_path = tmp_path / "c.csv"
        rc = main([
            "run", "--algorithm", "topk", *FAST_ARGS,
            "--save-history", str(hist), "--export-csv", str(csv_path),
        ])
        assert rc == 0
        assert json.loads(hist.read_text())["records"]
        assert csv_path.read_text().startswith("round,")

    def test_compare(self, capsys):
        rc = main(["compare", "--algorithms", "fedavg,topk", *FAST_ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fedavg" in out and "topk" in out

    def test_compare_rejects_unknown(self, capsys):
        rc = main(["compare", "--algorithms", "fedavg,nope", *FAST_ARGS])
        assert rc == 2

    def test_sweep(self, capsys):
        rc = main([
            "sweep", "--algorithm", "bcrs_opwa", "--param", "gamma",
            "--values", "3,5", *FAST_ARGS,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gamma=3.0" in out and "gamma=5.0" in out


class TestSweepGrid:
    def test_param_without_values_rejected(self, capsys):
        rc = main(["sweep", "--param", "gamma", *FAST_ARGS])
        assert rc == 2
        assert "go together" in capsys.readouterr().err

    def test_nothing_to_sweep_rejected(self, capsys):
        rc = main(["sweep", *FAST_ARGS])
        assert rc == 2

    def test_unknown_field_rejected(self, capsys):
        rc = main(["sweep", "--grid", "gammma=3,5", *FAST_ARGS])
        assert rc == 2
        assert "unknown config field" in capsys.readouterr().err

    def test_boolean_axis_types_through_config(self, capsys):
        """The old parser stringified values, so bool('false') swept
        [True, True]; the typed parser must produce two distinct cells."""
        rc = main([
            "sweep", "--algorithm", "topk", "--grid",
            "include_downlink=false,true", *FAST_ARGS,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "include_downlink=False" in out
        assert "include_downlink=True" in out

    def test_multi_axis_grid_with_parallel_and_marginals(self, capsys):
        rc = main([
            "sweep", "--algorithm", "bcrs_opwa",
            "--grid", "gamma=3,5", "--grid", "alpha=0.1,0.3",
            "--parallel", "4", "--target-acc", "0.02", *FAST_ARGS,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "marginal over gamma" in out
        assert "marginal over alpha" in out
        assert "t_to_target" in out

    def test_store_resume_skips_completed_cells(self, tmp_path, capsys):
        args = [
            "sweep", "--algorithm", "topk", "--grid", "gamma=3,5",
            "--store", str(tmp_path / "runs"), *FAST_ARGS,
        ]
        assert main(args) == 0
        assert "2 cell(s) run, 0 loaded" in capsys.readouterr().out
        assert main(args) == 0
        assert "0 cell(s) run, 2 loaded" in capsys.readouterr().out

    def test_scenario_base_with_seeds(self, capsys):
        rc = main([
            "sweep", "--scenario", "paper-baseline", "--rounds", "2",
            "--grid", "num_train=200", "--seeds", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "seed=0" in out and "seed=1" in out

    def test_scenario_base_honors_explicit_seed(self, capsys):
        """--seed layers onto a --scenario base exactly like `scenario run`."""
        a = main([
            "sweep", "--scenario", "paper-baseline", "--rounds", "2",
            "--grid", "num_train=200", "--seed", "7",
        ])
        out_seed7 = capsys.readouterr().out
        b = main([
            "sweep", "--scenario", "paper-baseline", "--rounds", "2",
            "--grid", "num_train=200",
        ])
        out_default = capsys.readouterr().out
        assert a == b == 0
        assert out_seed7 != out_default  # the seed actually reached the cells

    def test_cross_field_invalid_value_exits_cleanly(self, capsys):
        rc = main(["sweep", "--grid", "alpha=-1,0.3", *FAST_ARGS])
        assert rc == 2
        assert "alpha must be" in capsys.readouterr().err

    def test_duplicate_cells_exit_cleanly(self, capsys):
        rc = main(["sweep", "--grid", "gamma=3,3.0", *FAST_ARGS])
        assert rc == 2
        assert "duplicate" in capsys.readouterr().err

    def test_none_is_a_plain_value_for_str_fields(self, capsys):
        rc = main([
            "sweep", "--algorithm", "topk", "--grid", "contention=none",
            *FAST_ARGS,
        ])
        assert rc == 0
        assert "contention=none" in capsys.readouterr().out


class TestScenarioCommand:
    def test_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "straggler-storm" in out and "edge-quantized" in out

    def test_show(self, capsys):
        assert main(["scenario", "show", "diurnal-churn"]) == 0
        out = capsys.readouterr().out
        assert "expected:" in out and "mode = 'async'" in out

    def test_show_requires_name(self, capsys):
        assert main(["scenario", "show"]) == 2

    def test_unknown_scenario(self, capsys):
        assert main(["scenario", "run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "available" in err
        assert not err.startswith('"')  # KeyError message printed unwrapped

    def test_run_with_overrides_and_artifacts(self, tmp_path, capsys):
        hist = tmp_path / "h.json"
        rc = main([
            "scenario", "run", "straggler-storm", "--rounds", "2",
            "--seed", "1", "--save-history", str(hist),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scenario straggler-storm" in out and "mode semisync" in out
        assert json.loads(hist.read_text())["records"]


class TestHierCommand:
    def test_hier_summary_table(self, capsys):
        rc = main(["hier", "--edges", "1,2", "--target-acc", "0.05", *FAST_ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "edges" in out and "backhaul/rnd" in out and "t_to_acc>=0.05" in out

    def test_hier_rejects_too_many_edges(self, capsys):
        rc = main(["hier", "--edges", "99", *FAST_ARGS])
        assert rc == 2

    def test_run_mode_hier_with_knobs(self, capsys):
        rc = main([
            "run", "--algorithm", "topk", "--mode", "hier",
            "--num-edges", "2", "--edge-rounds", "2", "--backhaul-mbps", "100",
            *FAST_ARGS,
        ])
        assert rc == 0
        assert "mode hier" in capsys.readouterr().out

    def test_hier_saves_per_edge_histories(self, tmp_path, capsys):
        hist = tmp_path / "h"
        rc = main([
            "hier", "--edges", "1,2", "--save-history", str(hist), *FAST_ARGS,
        ])
        assert rc == 0
        data = json.loads((tmp_path / "h.edges2.json").read_text())
        assert data["records"][0]["edge_breakdown"] is not None

    def test_comm_summary(self, capsys):
        rc = main(["comm", "--algorithm", "topk", *FAST_ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "uplink" in out and "direction" in out
        assert "contention none" in out

    def test_comm_with_fair_contention(self, capsys):
        rc = main([
            "comm", "--algorithm", "topk", "--contention", "fair",
            "--ingress-mbps", "1.5", *FAST_ARGS,
        ])
        assert rc == 0
        assert "contention fair" in capsys.readouterr().out

    def test_run_contention_knobs_reach_config(self, capsys):
        rc = main([
            "run", "--algorithm", "topk", "--contention", "fair",
            "--ingress-mbps", "2", *FAST_ARGS,
        ])
        assert rc == 0
        assert "final accuracy" in capsys.readouterr().out

    def test_comm_saves_ledger(self, tmp_path, capsys):
        hist = tmp_path / "h.json"
        rc = main([
            "comm", "--algorithm", "topk", "--save-history", str(hist), *FAST_ARGS,
        ])
        assert rc == 0
        data = json.loads(hist.read_text())
        assert data["records"][0]["comm"]["uplink"]
