"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

FAST_ARGS = ["--rounds", "3", "--dataset", "cifar10", "--beta", "0.5", "--cr", "0.2"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "bcrs_opwa"
        assert args.dataset == "cifar10"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "sgd"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "bcrs_opwa" in out
        assert "topk" in out

    def test_run_prints_curve(self, capsys):
        assert main(["run", "--algorithm", "topk", *FAST_ARGS]) == 0
        out = capsys.readouterr().out
        assert "final accuracy" in out
        assert "round" in out

    def test_run_saves_artifacts(self, tmp_path, capsys):
        hist = tmp_path / "h.json"
        csv_path = tmp_path / "c.csv"
        rc = main([
            "run", "--algorithm", "topk", *FAST_ARGS,
            "--save-history", str(hist), "--export-csv", str(csv_path),
        ])
        assert rc == 0
        assert json.loads(hist.read_text())["records"]
        assert csv_path.read_text().startswith("round,")

    def test_compare(self, capsys):
        rc = main(["compare", "--algorithms", "fedavg,topk", *FAST_ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fedavg" in out and "topk" in out

    def test_compare_rejects_unknown(self, capsys):
        rc = main(["compare", "--algorithms", "fedavg,nope", *FAST_ARGS])
        assert rc == 2

    def test_sweep(self, capsys):
        rc = main([
            "sweep", "--algorithm", "bcrs_opwa", "--param", "gamma",
            "--values", "3,5", *FAST_ARGS,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gamma=3.0" in out and "gamma=5.0" in out


class TestHierCommand:
    def test_hier_summary_table(self, capsys):
        rc = main(["hier", "--edges", "1,2", "--target-acc", "0.05", *FAST_ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "edges" in out and "backhaul/rnd" in out and "t_to_acc>=0.05" in out

    def test_hier_rejects_too_many_edges(self, capsys):
        rc = main(["hier", "--edges", "99", *FAST_ARGS])
        assert rc == 2

    def test_run_mode_hier_with_knobs(self, capsys):
        rc = main([
            "run", "--algorithm", "topk", "--mode", "hier",
            "--num-edges", "2", "--edge-rounds", "2", "--backhaul-mbps", "100",
            *FAST_ARGS,
        ])
        assert rc == 0
        assert "mode hier" in capsys.readouterr().out

    def test_hier_saves_per_edge_histories(self, tmp_path, capsys):
        hist = tmp_path / "h"
        rc = main([
            "hier", "--edges", "1,2", "--save-history", str(hist), *FAST_ARGS,
        ])
        assert rc == 0
        data = json.loads((tmp_path / "h.edges2.json").read_text())
        assert data["records"][0]["edge_breakdown"] is not None

    def test_comm_summary(self, capsys):
        rc = main(["comm", "--algorithm", "topk", *FAST_ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "uplink" in out and "direction" in out
        assert "contention none" in out

    def test_comm_with_fair_contention(self, capsys):
        rc = main([
            "comm", "--algorithm", "topk", "--contention", "fair",
            "--ingress-mbps", "1.5", *FAST_ARGS,
        ])
        assert rc == 0
        assert "contention fair" in capsys.readouterr().out

    def test_run_contention_knobs_reach_config(self, capsys):
        rc = main([
            "run", "--algorithm", "topk", "--contention", "fair",
            "--ingress-mbps", "2", *FAST_ARGS,
        ])
        assert rc == 0
        assert "final accuracy" in capsys.readouterr().out

    def test_comm_saves_ledger(self, tmp_path, capsys):
        hist = tmp_path / "h.json"
        rc = main([
            "comm", "--algorithm", "topk", "--save-history", str(hist), *FAST_ARGS,
        ])
        assert rc == 0
        data = json.loads(hist.read_text())
        assert data["records"][0]["comm"]["uplink"]
