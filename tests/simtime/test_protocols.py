"""Tests for the event-driven protocols: semantics + backend determinism."""

import numpy as np
import pytest

from repro.fl.config import ExperimentConfig
from repro.fl.simulation import Simulation
from repro.simtime import make_simulation
from repro.simtime.protocols import AsyncSimulation, SemiSyncSimulation


def small_config(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="synth-cifar10",
        model="mlp",
        num_train=240,
        num_test=120,
        num_clients=6,
        participation=0.5,
        rounds=4,
        batch_size=32,
        algorithm="topk",
        compression_ratio=0.2,
        seed=3,
        eval_every=1,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def run_sim(config):
    with make_simulation(config) as sim:
        history = sim.run()
    return sim, history


class TestFactory:
    def test_mode_selects_class(self):
        assert isinstance(make_simulation(small_config(mode="sync")), Simulation)
        assert isinstance(make_simulation(small_config(mode="semisync")), SemiSyncSimulation)
        assert isinstance(make_simulation(small_config(mode="async")), AsyncSimulation)

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            small_config(mode="warp")

    def test_config_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="buffer_size"):
            small_config(buffer_size=0)
        with pytest.raises(ValueError, match="concurrency"):
            small_config(concurrency=99)
        with pytest.raises(ValueError, match="late_policy"):
            small_config(late_policy="retry")
        with pytest.raises(ValueError, match="deadline_s"):
            small_config(deadline_s=0.0)


class TestVirtualSpans:
    @pytest.mark.parametrize("mode", ["sync", "semisync", "async"])
    def test_records_carry_monotone_spans(self, mode):
        _, h = run_sim(small_config(mode=mode))
        assert len(h) == 4
        prev_end = 0.0
        for r in h.records:
            assert r.sim_start is not None and r.sim_end is not None
            assert r.sim_start == pytest.approx(prev_end)
            assert r.sim_end >= r.sim_start
            prev_end = r.sim_end

    @pytest.mark.parametrize("mode", ["sync", "semisync", "async"])
    def test_span_log_within_clock(self, mode):
        sim, h = run_sim(small_config(mode=mode))
        assert len(sim.spans) > 0
        kinds = {s.kind for s in sim.spans}
        assert kinds == {"train", "upload"}

    def test_accuracy_vs_simtime_uses_spans(self):
        _, h = run_sim(small_config(mode="async"))
        t, acc = h.accuracy_vs_simtime()
        assert t.size == acc.size > 0
        np.testing.assert_array_equal(t, [r.sim_end for r in h.records if r.test_accuracy is not None])


class TestAsync:
    def test_rounds_count_aggregations_of_k_arrivals(self):
        cfg = small_config(mode="async", buffer_size=2, rounds=5)
        _, h = run_sim(cfg)
        assert len(h) == 5
        for r in h.records:
            assert len(r.selected) == 2  # exactly K contributors per aggregation
            assert len(r.weights) == 2

    def test_buffer_size_one_aggregates_every_arrival(self):
        _, h = run_sim(small_config(mode="async", buffer_size=1, rounds=3))
        assert all(len(r.selected) == 1 for r in h.records)

    def test_staleness_recorded_and_bounded(self):
        _, h = run_sim(small_config(mode="async", rounds=6))
        lags = [r.mean_staleness for r in h.records]
        assert all(s is not None and s >= 0 for s in lags)
        assert any(s > 0 for s in lags)  # slow devices do fall behind

    def test_weights_normalized(self):
        _, h = run_sim(small_config(mode="async", rounds=4))
        for r in h.records:
            assert sum(r.weights) == pytest.approx(1.0)

    def test_staleness_exponent_zero_ignores_lag(self):
        """a=0 ⇒ weights are pure data frequencies regardless of staleness."""
        _, h = run_sim(small_config(mode="async", staleness_exponent=0.0, rounds=4))
        for r in h.records:
            assert sum(r.weights) == pytest.approx(1.0)

    def test_dense_fedavg_runs_async(self):
        _, h = run_sim(small_config(mode="async", algorithm="fedavg", compression_ratio=1.0))
        assert all(r.ratios == tuple(1.0 for _ in r.ratios) for r in h.records)


class TestSemiSync:
    def test_fixed_deadline_bounds_rounds(self):
        cfg = small_config(mode="semisync", deadline_s=1.5, rounds=5)
        _, h = run_sim(cfg)
        for r in h.records:
            # A round spans exactly the deadline unless extended for progress.
            assert r.sim_end - r.sim_start >= 1.5 - 1e-9

    def test_carryover_cannot_outweigh_fresh_majority(self):
        """The fresh arrivals' total mass is set by staleness-discounted
        frequencies, so a lone stale carryover never dominates them."""
        cfg = small_config(
            mode="semisync", rounds=8, deadline_quantile=0.25, compute_heterogeneity=1.0
        )
        _, h = run_sim(cfg)
        saw_mixed = False
        for r in h.records:
            if (r.mean_staleness or 0) == 0 or len(r.weights) < 2:
                continue
            saw_mixed = True
            assert max(r.weights) < 0.75  # no single contributor dominates
        assert saw_mixed

    def test_carryover_produces_stale_contributions(self):
        cfg = small_config(
            mode="semisync", rounds=6, deadline_quantile=0.3, compute_heterogeneity=1.0
        )
        _, h = run_sim(cfg)
        assert any((r.mean_staleness or 0) > 0 for r in h.records)

    def test_drop_never_has_stale_contributions(self):
        cfg = small_config(
            mode="semisync", rounds=6, deadline_quantile=0.3,
            compute_heterogeneity=1.0, late_policy="drop",
        )
        _, h = run_sim(cfg)
        assert all((r.mean_staleness or 0) == 0 for r in h.records)

    def test_policies_diverge(self):
        base = dict(mode="semisync", rounds=6, deadline_quantile=0.3, compute_heterogeneity=1.0)
        _, keep = run_sim(small_config(**base, late_policy="carryover"))
        _, drop = run_sim(small_config(**base, late_policy="drop"))
        assert [r.train_loss for r in keep.records] != [r.train_loss for r in drop.records]

    def test_weights_normalized(self):
        _, h = run_sim(small_config(mode="semisync", rounds=4))
        for r in h.records:
            assert sum(r.weights) == pytest.approx(1.0)

    def test_bcrs_plan_applies_per_round(self):
        """Semi-sync keeps per-round BCRS scheduling (unlike async)."""
        _, h = run_sim(small_config(mode="semisync", algorithm="bcrs", rounds=3))
        realized = [rr for r in h.records for rr in r.ratios]
        assert len(set(realized)) > 1  # per-client scheduled ratios differ


class TestReachesSyncTarget:
    def test_all_modes_reach_sync_target_accuracy(self):
        """Acceptance: async/semisync reach the sync baseline's target on
        the quickstart-scale config, in bounded virtual time."""
        cfg = small_config(rounds=10, num_train=400, num_test=200, seed=0)
        _, sync = run_sim(cfg.with_(mode="sync"))
        target = 0.6 * sync.best_accuracy()
        for mode in ("semisync", "async"):
            _, h = run_sim(cfg.with_(mode=mode))
            t = h.simtime_to_accuracy(target)
            assert t is not None, f"{mode} never reached {target:.3f}"
            assert t <= sync.records[-1].sim_end


class TestReviewRegressions:
    def test_async_rejects_time_varying_links(self):
        with pytest.raises(ValueError, match="time_varying_links"):
            make_simulation(small_config(mode="async", time_varying_links=True))

    def test_async_warns_on_schedule_based_algorithms(self):
        import warnings as w

        with pytest.warns(UserWarning, match="uniform Top-K"):
            make_simulation(small_config(mode="async", algorithm="bcrs"))
        with w.catch_warnings():
            w.simplefilter("error")  # plain topk must stay silent
            make_simulation(small_config(mode="async", algorithm="topk"))

    def test_flush_batches_never_repeat_a_client(self):
        """A fast client dispatched twice in one window must train in two
        sequential backend batches — the thread pool shards by position and
        would otherwise race on the client's shared loader/compressor."""
        sim = make_simulation(small_config(mode="async", algorithm="eftopk", seed=5))
        batches = []
        original = sim._train_now

        def recording(tasks):
            batches.append([t.cid for t in tasks])
            return original(tasks)

        sim._train_now = recording
        sim.run()
        sim.close()
        assert any(len(b) > 1 for b in batches)  # batching actually happens
        for b in batches:
            assert len(b) == len(set(b)), f"duplicate client in one batch: {b}"

    def test_async_comm_time_is_not_wall_time(self):
        """times.actual carries Sec. 5.2 upload semantics; the window's
        wall span lives in sim_start/sim_end."""
        _, h = run_sim(small_config(mode="async", rounds=4))
        for r in h.records:
            assert r.times.actual == r.times.maximum  # slowest aggregated upload
            assert r.times.minimum <= r.times.actual

    @pytest.mark.filterwarnings("ignore:algorithm 'deadline_topk'")  # async degrade note
    @pytest.mark.parametrize("mode", ["sync", "semisync", "async"])
    def test_anticompression_cr_above_half_does_not_crash(self, mode):
        """CR > 0.5 makes (index, value) uploads *bigger* than dense; the
        round-time invariant must survive (was: minimum > maximum crash)."""
        cfg = small_config(mode=mode, algorithm="deadline_topk", compression_ratio=1.0, rounds=2)
        _, h = run_sim(cfg)
        for r in h.records:
            assert r.times.minimum <= r.times.maximum

    @pytest.mark.parametrize("mode", ["semisync", "async"])
    def test_downlink_included_in_comm_fields(self, mode):
        """With include_downlink, broadcast time is part of actual/max/min
        (the RoundTimes invariant the sync plans follow) and recorded split."""
        on = small_config(mode=mode, include_downlink=True)
        off = small_config(mode=mode, include_downlink=False)
        _, h_on = run_sim(on)
        _, h_off = run_sim(off)
        for r_on, r_off in zip(h_on.records, h_off.records):
            assert r_on.times.downlink > 0.0
            assert r_off.times.downlink == 0.0
            assert r_on.times.downlink <= r_on.times.maximum

    @pytest.mark.parametrize("mode", ["semisync", "async"])
    def test_checkpoint_resume_continues_virtual_clock(self, mode, tmp_path):
        from repro.io.checkpoint import load_checkpoint, save_checkpoint

        cfg = small_config(mode=mode, rounds=3)
        with make_simulation(cfg) as sim:
            sim.run()
            end = sim.sim_clock
            save_checkpoint(sim, tmp_path / "ckpt.npz")
        fresh = make_simulation(cfg)
        load_checkpoint(fresh, tmp_path / "ckpt.npz")
        rec = fresh.run_round()
        assert rec.sim_start == pytest.approx(end)  # clock continues, not resets
        assert rec.sim_end > rec.sim_start
        fresh.close()

    def test_sync_deadline_topk_barrier_ignores_dropped_stragglers(self):
        """The virtual span waits only for clients the server aggregates."""
        cfg = small_config(
            mode="sync", algorithm="deadline_topk", deadline_quantile=0.3,
            compute_heterogeneity=1.0, rounds=3,
        )
        with make_simulation(cfg) as sim:
            h = sim.run()
        tightened = False
        for r in h.records:
            included = {c for c, w in zip(r.selected, r.weights) if w > 0.0}
            ends = {
                s.cid: s.end - r.sim_start
                for s in sim.spans
                if s.tag == r.round_index and s.kind == "upload"
            }
            span = r.sim_end - r.sim_start
            assert span == pytest.approx(max(ends[c] for c in included))
            if span < max(ends.values()):  # the overall straggler was dropped
                tightened = True
        assert tightened  # the fix must bite on at least one round


class TestBackendDeterminism:
    """Same seed ⇒ identical event order/records on every exec backend."""

    @staticmethod
    def assert_identical(a_sim, a_hist, b_sim, b_hist):
        assert len(a_hist) == len(b_hist)
        for ra, rb in zip(a_hist.records, b_hist.records):
            assert ra.round_index == rb.round_index
            assert ra.selected == rb.selected
            assert ra.train_loss == rb.train_loss
            assert ra.test_accuracy == rb.test_accuracy
            assert ra.times == rb.times
            assert ra.ratios == rb.ratios
            assert ra.weights == rb.weights
            assert ra.sim_start == rb.sim_start
            assert ra.sim_end == rb.sim_end
            assert ra.mean_staleness == rb.mean_staleness
        # The full event log — every train/upload interval — matches too.
        assert a_sim.spans.spans == b_sim.spans.spans

    @pytest.mark.parametrize("mode", ["semisync", "async"])
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_matches_serial(self, mode, backend):
        cfg = small_config(mode=mode, algorithm="eftopk", rounds=4, seed=5)
        serial_sim, serial_hist = run_sim(cfg)
        other_sim, other_hist = run_sim(cfg.with_(backend=backend, workers=2))
        self.assert_identical(serial_sim, serial_hist, other_sim, other_hist)
