"""Tests for device timing profiles and dispatch pricing."""

import numpy as np
import pytest

from repro.network.cost import LinkSpec, sparse_uplink_time, uplink_time
from repro.simtime.profiles import (
    ComputeSpec,
    DeviceProfile,
    TraceProfile,
    pipeline_times,
    sample_device_profiles,
)

LINK = LinkSpec(bandwidth_bps=1e6, latency_s=0.1)


class TestComputeSpec:
    def test_linear_in_samples_and_epochs(self):
        spec = ComputeSpec(s_per_sample=0.01, overhead_s=0.5)
        assert spec.train_time(100, 2) == pytest.approx(0.5 + 0.01 * 200)

    def test_zero_work_costs_overhead(self):
        assert ComputeSpec(0.01, overhead_s=0.3).train_time(0, 1) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeSpec(s_per_sample=0.0)
        with pytest.raises(ValueError):
            ComputeSpec(0.01).train_time(-1, 1)


class TestTraceProfile:
    def test_cycles_through_trace(self):
        tp = TraceProfile(ComputeSpec(0.01), trace=(1.0, 3.0))
        t1 = tp.train_time(100, 1)
        t2 = tp.train_time(100, 1)
        t3 = tp.train_time(100, 1)
        assert t2 == pytest.approx(3 * t1)
        assert t3 == pytest.approx(t1)  # wrapped around

    def test_substitutes_for_compute_spec_in_profile(self):
        dev = DeviceProfile(cid=0, compute=TraceProfile(ComputeSpec(0.01), (2.0,)), link=LINK)
        assert dev.train_time(50, 1) == pytest.approx(0.01 * 2.0 * 50)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceProfile(ComputeSpec(0.01), trace=())
        with pytest.raises(ValueError):
            TraceProfile(ComputeSpec(0.01), trace=(1.0, 0.0))


class TestDeviceProfile:
    def test_upload_dense_and_sparse(self):
        dev = DeviceProfile(cid=0, compute=ComputeSpec(0.01), link=LINK)
        assert dev.upload_time(1e6, None) == pytest.approx(uplink_time(LINK, 1e6))
        assert dev.upload_time(1e6, 0.1) == pytest.approx(sparse_uplink_time(LINK, 1e6, 0.1))

    def test_link_override_prices_drifted_link(self):
        dev = DeviceProfile(cid=0, compute=ComputeSpec(0.01), link=LINK)
        fast = LinkSpec(bandwidth_bps=4e6, latency_s=0.1)
        assert dev.upload_time(1e6, None, link=fast) < dev.upload_time(1e6, None)

    def test_download_uses_bandwidth_factor(self):
        dev = DeviceProfile(cid=0, compute=ComputeSpec(0.01), link=LINK)
        d1 = dev.download_time(1e6, bandwidth_factor=1.0)
        d10 = dev.download_time(1e6, bandwidth_factor=10.0)
        assert d10 < d1
        assert d10 == pytest.approx(0.1 + 1e6 / 1e7)


class TestSampleDeviceProfiles:
    def test_deterministic_in_seed(self):
        links = [LINK] * 8
        a = sample_device_profiles(links, median_s_per_sample=0.01, heterogeneity=0.5, seed=3)
        b = sample_device_profiles(links, median_s_per_sample=0.01, heterogeneity=0.5, seed=3)
        assert [p.compute.s_per_sample for p in a] == [p.compute.s_per_sample for p in b]

    def test_zero_heterogeneity_is_uniform(self):
        profs = sample_device_profiles(
            [LINK] * 5, median_s_per_sample=0.01, heterogeneity=0.0, seed=0
        )
        assert all(p.compute.s_per_sample == pytest.approx(0.01) for p in profs)

    def test_heterogeneity_spreads_speeds(self):
        profs = sample_device_profiles(
            [LINK] * 200, median_s_per_sample=0.01, heterogeneity=0.5, seed=0
        )
        speeds = np.array([p.compute.s_per_sample for p in profs])
        assert speeds.max() / speeds.min() > 3.0
        # Lognormal around the median: roughly half the fleet on each side.
        frac_above = (speeds > 0.01).mean()
        assert 0.35 < frac_above < 0.65


class TestPipelineTimes:
    def test_stages_compose(self):
        dev = DeviceProfile(cid=0, compute=ComputeSpec(0.01), link=LINK)
        down, train, up = pipeline_times(
            dev, volume_bits=1e6, ratio=0.1, num_samples=100, epochs=1,
            include_downlink=True, downlink_factor=10.0,
        )
        assert down == pytest.approx(dev.download_time(1e6, bandwidth_factor=10.0))
        assert train == pytest.approx(1.0)
        assert up == pytest.approx(sparse_uplink_time(LINK, 1e6, 0.1))

    def test_downlink_gated(self):
        dev = DeviceProfile(cid=0, compute=ComputeSpec(0.01), link=LINK)
        down, _, _ = pipeline_times(
            dev, volume_bits=1e6, ratio=None, num_samples=10, epochs=1,
            include_downlink=False, downlink_factor=10.0,
        )
        assert down == 0.0
