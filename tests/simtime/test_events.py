"""Tests for the deterministic event queue and span log."""

import pytest

from repro.simtime.events import ClientSpan, EventQueue, SpanLog


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_ties_pop_in_insertion_order(self):
        """The determinism contract: equal timestamps are FIFO."""
        q = EventQueue()
        for i in range(50):
            q.push(1.0, "e", cid=i)
        assert [q.pop().cid for _ in range(50)] == list(range(50))

    def test_interleaved_push_pop_keeps_order(self):
        q = EventQueue()
        q.push(5.0, "late")
        q.push(1.0, "early")
        assert q.pop().kind == "early"
        q.push(2.0, "mid")
        assert q.pop().kind == "mid"
        assert q.pop().kind == "late"

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(1.0, "only")
        assert q.peek().kind == "only"
        assert len(q) == 1

    def test_empty_pop_and_peek_raise(self):
        q = EventQueue()
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.peek()
        assert not q

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_rejects_bad_times(self, bad):
        with pytest.raises(ValueError):
            EventQueue().push(bad, "e")

    def test_payload_travels(self):
        q = EventQueue()
        q.push(1.0, "e", cid=7, payload={"x": 1})
        ev = q.pop()
        assert ev.cid == 7 and ev.payload == {"x": 1}


class TestSpanLog:
    def test_window_filters_overlap(self):
        log = SpanLog()
        log.add(0, "train", 0.0, 1.0)
        log.add(0, "upload", 1.0, 2.0)
        log.add(1, "train", 5.0, 6.0)
        assert len(log.window(0.5, 1.5)) == 2
        assert [s.cid for s in log.window(4.0, 7.0)] == [1]
        with pytest.raises(ValueError):
            log.window(2.0, 1.0)

    def test_for_client(self):
        log = SpanLog()
        log.add(0, "train", 0.0, 1.0, tag=3)
        log.add(1, "train", 0.0, 1.0)
        spans = log.for_client(0)
        assert len(spans) == 1 and spans[0].tag == 3

    def test_rejects_inverted_span(self):
        with pytest.raises(ValueError):
            ClientSpan(cid=0, kind="train", start=2.0, end=1.0)
