"""Tests for the degree-of-overlap metric and the OPWA mask."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import SparseUpdate
from repro.compression.sparsifiers import TopK
from repro.core.opwa import opwa_mask, opwa_mask_from_updates
from repro.core.overlap import overlap_counts, overlap_distribution


def sparse(d, idx, vals=None):
    idx = np.asarray(idx, dtype=np.int64)
    vals = np.ones(len(idx), np.float32) if vals is None else np.asarray(vals, np.float32)
    return SparseUpdate(dense_size=d, indices=idx, values=vals)


class TestOverlapCounts:
    def test_fig3_example(self):
        """The Fig. 3 style scenario: overlapping vs unique indices."""
        u1 = sparse(8, [1, 4, 7])
        u2 = sparse(8, [1, 3, 7])
        u3 = sparse(8, [1, 5])
        counts = overlap_counts([u1, u2, u3])
        np.testing.assert_array_equal(counts, [0, 3, 0, 1, 1, 1, 0, 2])

    def test_single_update(self):
        counts = overlap_counts([sparse(4, [0, 2])])
        np.testing.assert_array_equal(counts, [1, 0, 1, 0])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            overlap_counts([sparse(4, [0]), sparse(5, [0])])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            overlap_counts([])

    @given(st.integers(2, 6), st.integers(10, 60))
    @settings(max_examples=30, deadline=None)
    def test_counts_bounded_by_clients(self, n_clients, d):
        rng = np.random.default_rng(d)
        updates = []
        for _ in range(n_clients):
            k = rng.integers(1, d)
            idx = np.sort(rng.choice(d, size=k, replace=False))
            updates.append(sparse(d, idx))
        counts = overlap_counts(updates)
        assert counts.max() <= n_clients
        assert counts.sum() == sum(u.nnz for u in updates)


class TestOverlapDistribution:
    def test_histogram(self):
        u1 = sparse(8, [1, 4, 7])
        u2 = sparse(8, [1, 3, 7])
        u3 = sparse(8, [1, 5])
        dist = overlap_distribution([u1, u2, u3])
        # indices: 1 appears ×3, 7 ×2, and 3,4,5 ×1 → hist [3, 1, 1]
        np.testing.assert_array_equal(dist.counts, [3, 1, 1])
        assert dist.total_retained == 5
        np.testing.assert_allclose(dist.fractions(), [0.6, 0.2, 0.2])
        assert dist.singleton_fraction() == pytest.approx(0.6)

    def test_high_compression_mostly_singletons(self):
        """The paper's Fig. 4 finding: at high compression on non-aligned
        updates, most retained indices appear in one client only."""
        rng = np.random.default_rng(0)
        d = 20000
        topk = TopK()
        # Clients with independently random updates (severe non-IID proxy).
        updates = [topk.compress(rng.normal(size=d).astype(np.float32), 0.01) for _ in range(5)]
        dist = overlap_distribution(updates)
        assert dist.singleton_fraction() > 0.8

    def test_identical_updates_full_overlap(self):
        u = np.zeros(100, dtype=np.float32)
        u[:10] = np.arange(10, 0, -1)
        updates = [TopK().compress(u, 0.1) for _ in range(4)]
        dist = overlap_distribution(updates)
        np.testing.assert_array_equal(dist.counts, [0, 0, 0, 10])
        assert dist.singleton_fraction() == 0.0


class TestOpwaMask:
    def test_alg3_default(self):
        counts = np.array([0, 1, 2, 3, 1])
        mask = opwa_mask(counts, gamma=5.0)
        np.testing.assert_array_equal(mask, [1, 5, 1, 1, 5])

    def test_required_overlap_threshold(self):
        counts = np.array([0, 1, 2, 3])
        mask = opwa_mask(counts, gamma=4.0, required_overlap=2)
        np.testing.assert_array_equal(mask, [1, 4, 4, 1])

    def test_gamma_one_is_identity(self):
        counts = np.array([0, 1, 5])
        np.testing.assert_array_equal(opwa_mask(counts, 1.0), 1.0)

    def test_unretained_indices_untouched(self):
        mask = opwa_mask(np.zeros(5, dtype=int), gamma=9.0)
        np.testing.assert_array_equal(mask, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            opwa_mask(np.array([1]), gamma=0.0)
        with pytest.raises(ValueError):
            opwa_mask(np.array([1]), gamma=2.0, required_overlap=0)
        with pytest.raises(ValueError):
            opwa_mask(np.zeros((2, 2), int), gamma=2.0)

    def test_from_updates_convenience(self):
        u1 = sparse(6, [0, 1])
        u2 = sparse(6, [1, 2])
        mask = opwa_mask_from_updates([u1, u2], gamma=3.0)
        np.testing.assert_array_equal(mask, [3, 1, 3, 1, 1, 1])

    @given(st.floats(1.0, 10.0), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_mask_values_property(self, gamma, d_req):
        rng = np.random.default_rng(7)
        counts = rng.integers(0, 6, size=50)
        mask = opwa_mask(counts, gamma, required_overlap=d_req)
        assert set(np.unique(mask)) <= {1.0, np.float32(gamma)}
