"""Tests for Algorithm 2 — BCRS compression-ratio scheduling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bcrs import schedule_ratios
from repro.network.cost import LinkSpec, sparse_uplink_time

V = 32e6  # 1M params × 32 bits


@pytest.fixture
def links():
    # B1 > B2 > B3 as in Fig. 1/2.
    return [
        LinkSpec(bandwidth_bps=2.0e6, latency_s=0.05),
        LinkSpec(bandwidth_bps=1.0e6, latency_s=0.10),
        LinkSpec(bandwidth_bps=0.5e6, latency_s=0.15),
    ]


class TestBenchmark:
    def test_slowest_client_is_benchmark(self, links):
        sched = schedule_ratios(links, V, 0.01)
        assert sched.benchmark_index == 2
        assert sched.t_bench == pytest.approx(
            sparse_uplink_time(links[2], V, 0.01)
        )

    def test_slowest_keeps_default_cr(self, links):
        sched = schedule_ratios(links, V, 0.01)
        assert sched.ratios[2] == pytest.approx(0.01)

    def test_median_benchmark_rule(self, links):
        sched = schedule_ratios(links, V, 0.01, benchmark="median")
        assert sched.benchmark_index == 1
        # Clients slower than the median benchmark are clipped at CR*.
        assert sched.ratios[2] == pytest.approx(0.01)

    def test_unknown_benchmark_rejected(self, links):
        with pytest.raises(ValueError):
            schedule_ratios(links, V, 0.01, benchmark="p99")


class TestEqualizedTimes:
    def test_unclipped_times_equal_bench(self, links):
        """Alg. 2's purpose: every unclipped client finishes exactly at T_bench."""
        sched = schedule_ratios(links, V, 0.01)
        for i in range(3):
            if 0.01 < sched.ratios[i] < 1.0:
                assert sched.scheduled_times[i] == pytest.approx(sched.t_bench, rel=1e-9)

    def test_no_client_exceeds_bench(self, links):
        sched = schedule_ratios(links, V, 0.01)
        assert np.all(sched.scheduled_times <= sched.t_bench * (1 + 1e-9))

    def test_faster_clients_higher_ratio(self, links):
        """Fig. 2: B1 > B2 > B3 implies CR1 >= CR2 >= CR3."""
        sched = schedule_ratios(links, V, 0.01)
        assert sched.ratios[0] >= sched.ratios[1] >= sched.ratios[2]

    def test_cr1_formula_exact(self, links):
        """CR_i = (T_bench − L_i)/(2V) · B_i, line 13."""
        sched = schedule_ratios(links, V, 0.01)
        expected = (sched.t_bench - 0.05) / (2 * V) * 2.0e6
        assert sched.ratios[0] == pytest.approx(expected)


class TestClipping:
    def test_ratio_capped_at_one(self):
        # A wildly fast client would get CR > 1 without clipping.
        links = [LinkSpec(1e9, 0.01), LinkSpec(0.1e6, 0.2)]
        sched = schedule_ratios(links, V, 0.1)
        assert sched.ratios[0] == 1.0

    def test_custom_cr_max(self):
        links = [LinkSpec(1e9, 0.01), LinkSpec(0.1e6, 0.2)]
        sched = schedule_ratios(links, V, 0.1, cr_max=0.5)
        assert sched.ratios[0] == 0.5

    def test_default_above_cr_max_rejected(self, links):
        with pytest.raises(ValueError):
            schedule_ratios(links, V, 0.8, cr_max=0.5)

    def test_homogeneous_links_all_default(self):
        links = [LinkSpec(1e6, 0.1)] * 4
        sched = schedule_ratios(links, V, 0.05)
        np.testing.assert_allclose(sched.ratios, 0.05)

    def test_single_client(self):
        sched = schedule_ratios([LinkSpec(1e6, 0.1)], V, 0.01)
        assert sched.ratios[0] == pytest.approx(0.01)
        assert sched.saved_time() == pytest.approx(0.0)


class TestSavedTime:
    def test_saved_time_positive_when_heterogeneous(self, links):
        sched = schedule_ratios(links, V, 0.01)
        assert sched.saved_time() > 0

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            schedule_ratios([], V, 0.1)


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0.1e6, 10e6), st.floats(0.01, 0.3)),
            min_size=1,
            max_size=12,
        ),
        st.floats(0.005, 0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, raw_links, default_cr):
        links = [LinkSpec(b, l) for b, l in raw_links]
        sched = schedule_ratios(links, V, default_cr)
        # Ratios bounded.
        assert np.all(sched.ratios >= default_cr - 1e-12)
        assert np.all(sched.ratios <= 1.0 + 1e-12)
        # No scheduled time beyond the benchmark.
        assert np.all(sched.scheduled_times <= sched.t_bench + 1e-9)
        # Scheduled times never beat the latency floor.
        lats = np.array([l.latency_s for l in links])
        assert np.all(sched.scheduled_times >= lats - 1e-12)
