"""Tests for server optimizers (FedOpt family)."""

import numpy as np
import pytest

from repro.core.server_opt import ServerAdam, ServerSGD, make_server_optimizer


class TestServerSGD:
    def test_plain_step_matches_alg1(self):
        """lr=1, momentum=0 is Algorithm 1's w − Σ p_i Δw_i exactly."""
        opt = ServerSGD(lr=1.0)
        w = np.array([1.0, 2.0], dtype=np.float32)
        g = np.array([0.5, -0.5])
        np.testing.assert_allclose(opt.step(w, g), [0.5, 2.5])

    def test_momentum_accumulates(self):
        opt = ServerSGD(lr=1.0, momentum=0.9)
        w = np.zeros(1, dtype=np.float32)
        g = np.ones(1)
        w = opt.step(w, g)  # v=1, w=-1
        w = opt.step(w, g)  # v=1.9, w=-2.9
        assert w[0] == pytest.approx(-2.9)

    def test_reset_clears_velocity(self):
        opt = ServerSGD(lr=1.0, momentum=0.9)
        opt.step(np.zeros(1, dtype=np.float32), np.ones(1))
        opt.reset()
        w = opt.step(np.zeros(1, dtype=np.float32), np.ones(1))
        assert w[0] == pytest.approx(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerSGD(lr=0)
        with pytest.raises(ValueError):
            ServerSGD(lr=1, momentum=1.0)


class TestServerAdam:
    def test_first_step_is_lr_sized(self):
        """Bias correction makes the first Adam step ≈ lr·sign(g)."""
        opt = ServerAdam(lr=0.1, eps=1e-8)
        w = np.zeros(2, dtype=np.float32)
        g = np.array([1.0, -2.0])
        w = opt.step(w, g)
        np.testing.assert_allclose(w, [-0.1, 0.1], atol=1e-5)

    def test_adapts_to_scale(self):
        """Constant gradients of different magnitude produce equal step sizes."""
        opt1, opt2 = ServerAdam(lr=0.1, eps=1e-8), ServerAdam(lr=0.1, eps=1e-8)
        w1 = w2 = np.zeros(1, dtype=np.float32)
        for _ in range(20):
            w1 = opt1.step(w1, np.array([0.001]))
            w2 = opt2.step(w2, np.array([100.0]))
        assert w1[0] == pytest.approx(w2[0], rel=1e-3)

    def test_converges_on_quadratic(self):
        opt = ServerAdam(lr=0.5, eps=1e-8)
        w = np.array([5.0], dtype=np.float32)
        for _ in range(300):
            w = opt.step(w, 2 * w.astype(np.float64))
        assert abs(w[0]) < 0.1

    def test_reset(self):
        opt = ServerAdam(lr=0.1)
        opt.step(np.zeros(1, dtype=np.float32), np.ones(1))
        opt.reset()
        assert opt._t == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerAdam(lr=0)
        with pytest.raises(ValueError):
            ServerAdam(beta1=1.0)
        with pytest.raises(ValueError):
            ServerAdam(eps=0)


class TestFactory:
    def test_dispatch(self):
        assert isinstance(make_server_optimizer("sgd"), ServerSGD)
        assert isinstance(make_server_optimizer("adam"), ServerAdam)

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_server_optimizer("lamb")
