"""Tests for Eq. 6 adjusted averaging coefficients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coefficients import adjusted_coefficients, fedavg_coefficients, normalize_ratios


class TestNormalizeRatios:
    def test_sum_mode(self):
        out = normalize_ratios(np.array([0.1, 0.3]), mode="sum")
        np.testing.assert_allclose(out, [0.25, 0.75])

    def test_max_mode(self):
        out = normalize_ratios(np.array([0.1, 0.4]), mode="max")
        np.testing.assert_allclose(out, [0.25, 1.0])

    def test_none_mode(self):
        out = normalize_ratios(np.array([0.1, 0.4]), mode="none")
        np.testing.assert_allclose(out, [0.1, 0.4])

    def test_invalid(self):
        with pytest.raises(ValueError):
            normalize_ratios(np.array([0.1, -0.2]))
        with pytest.raises(ValueError):
            normalize_ratios(np.array([0.1]), mode="bogus")
        with pytest.raises(ValueError):
            normalize_ratios(np.array([]))

    def test_unknown_mode_error_names_mode_and_valid_set(self):
        with pytest.raises(ValueError, match=r"'bogus'.*\('sum', 'max', 'none'\)"):
            normalize_ratios(np.array([0.1]), mode="bogus")


class TestFedAvgCoefficients:
    def test_passthrough(self):
        f = np.array([0.2, 0.8])
        np.testing.assert_array_equal(fedavg_coefficients(f), f)

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            fedavg_coefficients(np.array([0.5, 0.6]))


class TestAdjustedCoefficients:
    def test_eq6_exact(self):
        """Hand-computed Eq. 6 with sum-normalization."""
        f = np.array([0.5, 0.5])
        crs = np.array([0.3, 0.1])  # shares: 0.75, 0.25
        p = adjusted_coefficients(f, crs, alpha=1.0)
        np.testing.assert_allclose(p, [0.5 / 0.75, 1.0])

    def test_alpha_scales(self):
        f = np.array([0.5, 0.5])
        crs = np.array([0.1, 0.1])
        p = adjusted_coefficients(f, crs, alpha=0.3)
        np.testing.assert_allclose(p, [0.3, 0.3])

    def test_max_value_is_alpha(self):
        """Paper: 'adjusted averaging coefficient with a maximum value of 1'
        (for alpha = 1)."""
        rng = np.random.default_rng(0)
        f = rng.dirichlet(np.ones(10))
        crs = rng.uniform(0.01, 1.0, size=10)
        p = adjusted_coefficients(f, crs, alpha=1.0)
        assert np.all(p <= 1.0 + 1e-12)

    def test_high_bandwidth_client_downweighted(self):
        """A client transmitting a larger share than its data share gets
        coefficient < alpha; equal shares keep exactly alpha."""
        f = np.array([0.5, 0.5])
        crs = np.array([0.9, 0.1])
        p = adjusted_coefficients(f, crs, alpha=1.0)
        assert p[0] < 1.0
        assert p[1] == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            adjusted_coefficients(np.array([1.0]), np.array([0.1, 0.2]), 1.0)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            adjusted_coefficients(np.array([1.0]), np.array([0.1]), 0.0)

    @given(st.integers(2, 16), st.floats(0.01, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_bounds_property(self, n, alpha):
        rng = np.random.default_rng(n)
        f = rng.dirichlet(np.ones(n))
        crs = rng.uniform(0.01, 1.0, size=n)
        p = adjusted_coefficients(f, crs, alpha=alpha)
        assert np.all(p > 0)
        assert np.all(p <= alpha + 1e-12)

    def test_uniform_everything_gives_alpha(self):
        f = np.full(4, 0.25)
        crs = np.full(4, 0.1)
        p = adjusted_coefficients(f, crs, alpha=0.5)
        np.testing.assert_allclose(p, 0.5)
