"""Tests for the aggregation rules (Alg. 1 lines 14–18)."""

import numpy as np
import pytest

from repro.compression.base import DenseUpdate, SparseUpdate
from repro.compression.sparsifiers import TopK
from repro.core.aggregation import aggregate, apply_server_update, weighted_sparse_sum
from repro.core.opwa import opwa_mask_from_updates


def sparse(d, idx, vals):
    return SparseUpdate(
        dense_size=d,
        indices=np.asarray(idx, np.int64),
        values=np.asarray(vals, np.float32),
    )


class TestWeightedSparseSum:
    def test_matches_dense_reference(self, rng):
        d = 200
        updates = [TopK().compress(rng.normal(size=d).astype(np.float32), 0.2) for _ in range(4)]
        weights = rng.dirichlet(np.ones(4))
        got = weighted_sparse_sum(updates, weights)
        ref = sum(w * u.to_dense().astype(np.float64) for w, u in zip(weights, updates))
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_mask_applied_per_parameter(self):
        u1 = sparse(4, [0, 1], [1.0, 1.0])
        u2 = sparse(4, [1, 2], [1.0, 1.0])
        mask = opwa_mask_from_updates([u1, u2], gamma=10.0)
        got = weighted_sparse_sum([u1, u2], np.array([0.5, 0.5]), mask=mask)
        # idx0: unique → 0.5·10 = 5; idx1: overlap 2 → 0.5+0.5 = 1; idx2: unique → 5.
        np.testing.assert_allclose(got, [5.0, 1.0, 5.0, 0.0])

    def test_dense_updates_supported(self, rng):
        d = 50
        u = DenseUpdate(dense_size=d, values=rng.normal(size=d).astype(np.float32))
        got = weighted_sparse_sum([u], np.array([2.0]))
        np.testing.assert_allclose(got, 2.0 * u.values, rtol=1e-6)

    def test_mixed_sparse_dense(self, rng):
        d = 30
        su = sparse(d, [0], [3.0])
        du = DenseUpdate(dense_size=d, values=np.ones(d, np.float32))
        got = weighted_sparse_sum([su, du], np.array([1.0, 1.0]))
        assert got[0] == pytest.approx(4.0)
        assert got[1] == pytest.approx(1.0)

    def test_out_buffer_reused(self, rng):
        d = 10
        u = sparse(d, [3], [1.0])
        buf = np.full(d, 7.0)
        got = weighted_sparse_sum([u], np.array([1.0]), out=buf)
        assert got is buf
        assert buf[3] == 1.0 and buf[0] == 0.0

    @pytest.mark.parametrize("bad", [
        ([], np.array([])),
    ])
    def test_empty_rejected(self, bad):
        with pytest.raises(ValueError):
            weighted_sparse_sum(*bad)

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_sparse_sum([sparse(3, [0], [1.0])], np.array([1.0, 2.0]))

    def test_dense_size_mismatch(self):
        with pytest.raises(ValueError):
            weighted_sparse_sum(
                [sparse(3, [0], [1.0]), sparse(4, [0], [1.0])], np.array([1.0, 1.0])
            )


class TestApplyServerUpdate:
    def test_descent_direction(self):
        w = np.array([1.0, 2.0], dtype=np.float32)
        out = apply_server_update(w, np.array([0.5, -0.5]))
        np.testing.assert_allclose(out, [0.5, 2.5])

    def test_server_step_scales(self):
        w = np.zeros(2, dtype=np.float32)
        out = apply_server_update(w, np.array([1.0, 1.0]), server_step=0.1)
        np.testing.assert_allclose(out, [-0.1, -0.1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            apply_server_update(np.zeros(2, np.float32), np.zeros(3))


class TestFedAvgRecovery:
    def test_dense_uncompressed_recovers_fedavg(self, rng):
        """With dense updates Δw_i = w_t − w_i, f-weights and step 1, the
        aggregate is exactly the FedAvg weighted model average Σ f_i w_i."""
        d = 64
        w_global = rng.normal(size=d).astype(np.float32)
        client_models = [rng.normal(size=d).astype(np.float32) for _ in range(5)]
        f = rng.dirichlet(np.ones(5))
        updates = [DenseUpdate(dense_size=d, values=w_global - wm) for wm in client_models]
        new = aggregate(w_global, updates, f, server_step=1.0)
        expected = sum(fi * wm.astype(np.float64) for fi, wm in zip(f, client_models))
        np.testing.assert_allclose(new, expected, atol=1e-5)

    def test_gamma_mask_amplifies_unique_updates(self, rng):
        """OPWA vs uniform: unique parameters move further under the mask."""
        d = 100
        w = np.zeros(d, dtype=np.float32)
        u1 = sparse(d, [0], [1.0])
        u2 = sparse(d, [1], [1.0])
        weights = np.array([0.5, 0.5])
        uniform = aggregate(w, [u1, u2], weights)
        mask = opwa_mask_from_updates([u1, u2], gamma=2.0)
        masked = aggregate(w, [u1, u2], weights, mask=mask)
        assert abs(masked[0]) == pytest.approx(2 * abs(uniform[0]))
