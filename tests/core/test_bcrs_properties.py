"""BCRS scheduling invariants, parametrized over random link draws.

Algorithm 2's contract must hold on *any* selected-client link profile, not
just the Fig. 1/2 example: the benchmark (slowest default-ratio) client
keeps ``CR*``, every scheduled ratio lands in ``[cr*, 1]``, no scheduled
upload exceeds the benchmark window, and scheduling a single client is a
no-op.
"""

import numpy as np
import pytest

from repro.core.bcrs import schedule_ratios
from repro.network.cost import sparse_uplink_time
from repro.network.links import LinkModel, PAPER_LINK_MODEL, sample_links

#: Timing tolerance: scheduled times are recomputed from clipped ratios,
#: so they may exceed t_bench only by float rounding.
EPS = 1e-9

#: Diverse link populations: the paper's model plus wider/narrower spreads.
LINK_MODELS = {
    "paper": PAPER_LINK_MODEL,
    "wide": LinkModel(bandwidth_mean_bps=2e6, bandwidth_std_bps=1.5e6),
    "slow": LinkModel(bandwidth_mean_bps=0.3e6, bandwidth_std_bps=0.1e6),
}

V = 32e6  # 1M params × 32 bits


def draws():
    """(links, default_cr) over seeds × models × ratios — 54 profiles."""
    cases = []
    for model_name, model in LINK_MODELS.items():
        for seed in range(6):
            for cr in (0.01, 0.1, 0.5):
                cases.append(
                    pytest.param(model, seed, cr, id=f"{model_name}-s{seed}-cr{cr}")
                )
    return cases


@pytest.mark.parametrize("model,seed,default_cr", draws())
class TestScheduleInvariants:
    def links(self, model, seed):
        return sample_links(8, model, seed=seed)

    def test_slowest_client_keeps_default_cr(self, model, seed, default_cr):
        links = self.links(model, seed)
        sched = schedule_ratios(links, V, default_cr)
        assert sched.ratios[sched.benchmark_index] == pytest.approx(default_cr)
        # And the benchmark really is the slowest default-ratio client.
        assert sched.benchmark_index == int(np.argmax(sched.default_times))

    def test_ratios_clipped_to_valid_range(self, model, seed, default_cr):
        sched = schedule_ratios(self.links(model, seed), V, default_cr)
        assert np.all(sched.ratios >= default_cr - EPS)
        assert np.all(sched.ratios <= 1.0 + EPS)

    def test_scheduled_times_never_exceed_benchmark(self, model, seed, default_cr):
        links = self.links(model, seed)
        sched = schedule_ratios(links, V, default_cr)
        assert np.all(sched.scheduled_times <= sched.t_bench + EPS)
        # scheduled_times is self-consistent with the cost model.
        for link, r, t in zip(links, sched.ratios, sched.scheduled_times):
            assert t == pytest.approx(sparse_uplink_time(link, V, float(r)))

    def test_single_client_selection_is_noop(self, model, seed, default_cr):
        (link,) = sample_links(1, model, seed=seed)
        sched = schedule_ratios([link], V, default_cr)
        assert sched.num_clients == 1
        assert sched.benchmark_index == 0
        assert sched.ratios[0] == pytest.approx(default_cr)
        assert sched.scheduled_times[0] == pytest.approx(sched.t_bench)
        assert sched.saved_time() == pytest.approx(0.0)

    def test_saved_time_is_nonnegative_gap_sum(self, model, seed, default_cr):
        sched = schedule_ratios(self.links(model, seed), V, default_cr)
        assert sched.saved_time() >= -EPS
        assert sched.saved_time() == pytest.approx(
            float(np.sum(sched.t_bench - sched.default_times))
        )
