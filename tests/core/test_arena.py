"""Tests for the fused sparse-aggregation arena and the in-place step path.

The load-bearing property everywhere: arena-backed calls are **bit-for-bit**
equal to the allocating paths they replace — the arena may only change who
owns the memory, never a single IEEE operation.
"""

import numpy as np
import pytest

from repro.compression.base import DenseUpdate, SparseUpdate
from repro.compression.sparsifiers import TopK
from repro.core.aggregation import apply_server_update, weighted_sparse_sum
from repro.core.arena import AggregationArena
from repro.core.opwa import opwa_mask_from_updates
from repro.core.server_opt import make_server_optimizer


def topk_updates(rng, d, n, ratio):
    return [
        TopK().compress(rng.normal(size=d).astype(np.float32), ratio)
        for _ in range(n)
    ]


class TestArenaSparseSum:
    def test_bit_identical_to_allocating_path(self, rng):
        d = 300
        updates = topk_updates(rng, d, 5, 0.2)
        weights = rng.dirichlet(np.ones(5))
        arena = AggregationArena(d)
        got = weighted_sparse_sum(updates, weights, arena=arena)
        ref = weighted_sparse_sum(updates, weights)
        np.testing.assert_array_equal(got, ref)

    def test_bit_identical_with_mask(self, rng):
        d = 120
        updates = topk_updates(rng, d, 4, 0.3)
        weights = rng.dirichlet(np.ones(4))
        mask = opwa_mask_from_updates(updates, gamma=7.0)
        arena = AggregationArena(d)
        got = weighted_sparse_sum(updates, weights, mask=mask, arena=arena)
        ref = weighted_sparse_sum(updates, weights, mask=mask)
        np.testing.assert_array_equal(got, ref)

    def test_reuse_across_calls_bit_identical(self, rng):
        """Stale buffer contents from a prior round never leak into the next."""
        d = 80
        arena = AggregationArena(d)
        for n in (6, 3, 6):  # shrink then regrow the packed width
            updates = topk_updates(rng, d, n, 0.25)
            weights = rng.dirichlet(np.ones(n))
            got = weighted_sparse_sum(updates, weights, arena=arena).copy()
            ref = weighted_sparse_sum(updates, weights)
            np.testing.assert_array_equal(got, ref)

    def test_accumulator_is_arena_owned(self, rng):
        d = 40
        arena = AggregationArena(d)
        updates = topk_updates(rng, d, 2, 0.5)
        out = weighted_sparse_sum(updates, np.array([0.5, 0.5]), arena=arena)
        assert out is arena._acc

    def test_mixed_dense_sparse_with_arena(self, rng):
        d = 50
        su = TopK().compress(rng.normal(size=d).astype(np.float32), 0.2)
        du = DenseUpdate(dense_size=d, values=np.ones(d, np.float32))
        arena = AggregationArena(d)
        got = weighted_sparse_sum([su, du], np.array([1.0, 2.0]), arena=arena)
        ref = weighted_sparse_sum([su, du], np.array([1.0, 2.0]))
        np.testing.assert_array_equal(got, ref)

    def test_arena_dense_size_mismatch_rejected(self, rng):
        updates = topk_updates(rng, 20, 1, 0.5)
        with pytest.raises(ValueError, match="dense_size"):
            weighted_sparse_sum(updates, np.array([1.0]), arena=AggregationArena(21))


class TestCompressBanks:
    def test_blocks_are_disjoint_bank_slices(self):
        arena = AggregationArena(100)
        arena.plan_compress([3, None, 5, 2])
        blocks = [arena.compress_block(i) for i in range(4)]
        assert blocks[1] is None
        spans = []
        for b in (blocks[0], blocks[2], blocks[3]):
            idx, val = b
            assert idx.dtype == np.int64 and val.dtype == np.float32
            assert idx.size == val.size
            spans.append(idx.size)
        assert spans == [3, 5, 2]
        # writing one block never touches another
        blocks[0][1][...] = 1.0
        blocks[2][1][...] = 2.0
        assert float(blocks[0][1][0]) == 1.0

    def test_double_buffer_keeps_last_round_views_valid(self):
        arena = AggregationArena(100)
        arena.plan_compress([2])
        idx, val = arena.compress_block(0)
        idx[...] = [4, 9]
        val[...] = [1.5, -2.5]
        arena.plan_compress([2])  # next round flips banks
        idx2, val2 = arena.compress_block(0)
        idx2[...] = [0, 1]
        val2[...] = [9.0, 9.0]
        # previous round's views are intact
        np.testing.assert_array_equal(idx, [4, 9])
        np.testing.assert_array_equal(val, [1.5, -2.5])

    def test_out_of_range_position_returns_none(self):
        arena = AggregationArena(10)
        arena.plan_compress([2])
        assert arena.compress_block(5) is None

    def test_bad_block_size_rejected(self):
        arena = AggregationArena(10)
        with pytest.raises(ValueError):
            arena.plan_compress([0])

    def test_nbytes_reports_growth(self):
        arena = AggregationArena(10)
        before = arena.nbytes()
        arena.plan_compress([64])
        assert arena.nbytes() > before


class TestInPlaceServerStep:
    """Satellite (a): the ``out=``/``scratch=`` step path is exact."""

    def test_out_and_scratch_bit_identical(self, rng):
        w = rng.normal(size=500).astype(np.float32)
        g = rng.normal(size=500)
        ref = apply_server_update(w, g, 0.7)
        scratch = np.empty(500, dtype=np.float64)
        out = np.empty(500, dtype=np.float32)
        got = apply_server_update(w, g, 0.7, out=out, scratch=scratch)
        assert got is out
        np.testing.assert_array_equal(got, ref)

    def test_out_aliasing_params_is_exact(self, rng):
        w = rng.normal(size=200).astype(np.float32)
        g = rng.normal(size=200)
        ref = apply_server_update(w, g, 1.0)
        got = apply_server_update(w, g, 1.0, out=w, scratch=np.empty(200, np.float64))
        assert got is w
        np.testing.assert_array_equal(w, ref)

    def test_scratch_only_path_exact(self, rng):
        w = rng.normal(size=100).astype(np.float32)
        g = rng.normal(size=100)
        ref = apply_server_update(w, g, 0.3)
        got = apply_server_update(w, g, 0.3, scratch=np.empty(100, np.float64))
        np.testing.assert_array_equal(got, ref)

    def test_bad_scratch_rejected(self, rng):
        w = np.ones(4, np.float32)
        with pytest.raises(ValueError, match="scratch"):
            apply_server_update(w, np.ones(4), scratch=np.empty(4, np.float32))
        with pytest.raises(ValueError, match="scratch"):
            apply_server_update(w, np.ones(4), scratch=np.empty(5, np.float64))

    def test_bad_out_rejected(self, rng):
        w = np.ones(4, np.float32)
        with pytest.raises(ValueError, match="out"):
            apply_server_update(
                w, np.ones(4), out=np.empty(5, np.float32),
                scratch=np.empty(4, np.float64),
            )

    @pytest.mark.parametrize("name", ["sgd", "adam"])
    def test_server_optimizers_out_path_exact(self, rng, name):
        d = 64
        kwargs = {"lr": 0.5, "momentum": 0.4} if name == "sgd" else {"lr": 0.5}
        opt_a = make_server_optimizer(name, **kwargs)
        opt_b = make_server_optimizer(name, **kwargs)
        w_a = rng.normal(size=d).astype(np.float32)
        w_b = w_a.copy()
        scratch = np.empty(d, dtype=np.float64)
        for _ in range(3):  # stateful across steps (momentum / Adam moments)
            g = rng.normal(size=d)
            w_a = opt_a.step(w_a, g)
            w_b = opt_b.step(w_b, g, out=w_b, scratch=scratch)
        np.testing.assert_array_equal(w_a, w_b)
