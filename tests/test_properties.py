"""Cross-module property-based tests (hypothesis).

These pin down algebraic invariants that individual unit tests can't cover
exhaustively: aggregation linearity, compression/overlap consistency, BCRS
schedule feasibility under arbitrary link populations, and end-to-end
determinism of the engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import SparseUpdate
from repro.compression.sparsifiers import TopK
from repro.core.aggregation import weighted_sparse_sum
from repro.core.bcrs import schedule_ratios
from repro.core.coefficients import adjusted_coefficients
from repro.core.opwa import opwa_mask
from repro.core.overlap import overlap_counts, overlap_distribution
from repro.network.cost import LinkSpec, sparse_uplink_time


def random_sparse(rng, d, max_k=None):
    k = int(rng.integers(1, (max_k or d) + 1))
    idx = np.sort(rng.choice(d, size=k, replace=False)).astype(np.int64)
    vals = rng.normal(size=k).astype(np.float32)
    return SparseUpdate(dense_size=d, indices=idx, values=vals)


class TestAggregationAlgebra:
    @given(st.integers(0, 1000), st.integers(2, 6), st.integers(8, 64))
    @settings(max_examples=40, deadline=None)
    def test_linearity_in_weights(self, seed, n, d):
        """agg(2w) == 2 agg(w) and agg(w1 + w2) == agg(w1) + agg(w2)."""
        rng = np.random.default_rng(seed)
        updates = [random_sparse(rng, d) for _ in range(n)]
        w1 = rng.random(n)
        w2 = rng.random(n)
        a1 = weighted_sparse_sum(updates, w1)
        a2 = weighted_sparse_sum(updates, w2)
        both = weighted_sparse_sum(updates, w1 + w2)
        np.testing.assert_allclose(both, a1 + a2, atol=1e-9)
        np.testing.assert_allclose(weighted_sparse_sum(updates, 2 * w1), 2 * a1, atol=1e-9)

    @given(st.integers(0, 1000), st.integers(2, 6), st.integers(8, 64))
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariance(self, seed, n, d):
        """Client order must not matter."""
        rng = np.random.default_rng(seed)
        updates = [random_sparse(rng, d) for _ in range(n)]
        weights = rng.random(n)
        perm = rng.permutation(n)
        a = weighted_sparse_sum(updates, weights)
        b = weighted_sparse_sum([updates[i] for i in perm], weights[perm])
        np.testing.assert_allclose(a, b, atol=1e-9)

    @given(st.integers(0, 500), st.integers(2, 5), st.integers(8, 48), st.floats(1.0, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_mask_bounds_aggregate(self, seed, n, d, gamma):
        """The γ-masked aggregate is coordinate-wise within γ× the unmasked
        one (same signs, amplified magnitude only where the mask is γ)."""
        rng = np.random.default_rng(seed)
        updates = [random_sparse(rng, d) for _ in range(n)]
        weights = rng.random(n) + 0.1
        mask = opwa_mask(overlap_counts(updates), gamma)
        plain = weighted_sparse_sum(updates, weights)
        masked = weighted_sparse_sum(updates, weights, mask=mask)
        np.testing.assert_allclose(masked, plain * mask, atol=1e-9)
        # The mask stores gamma as float32; compare against that representation.
        g32 = float(np.float32(gamma))
        assert np.all(np.abs(masked) <= g32 * np.abs(plain) * (1 + 1e-6) + 1e-9)


class TestCompressionOverlapConsistency:
    @given(st.integers(0, 500), st.integers(2, 6), st.integers(20, 200),
           st.floats(0.02, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_distribution_accounts_for_all_retained(self, seed, n, d, ratio):
        rng = np.random.default_rng(seed)
        topk = TopK()
        updates = [topk.compress(rng.normal(size=d).astype(np.float32), ratio) for _ in range(n)]
        dist = overlap_distribution(updates)
        counts = overlap_counts(updates)
        assert dist.total_retained == int((counts > 0).sum())
        # Total index mass: sum over histogram of degree×count equals nnz sum.
        degrees = np.arange(1, n + 1)
        assert int((dist.counts * degrees).sum()) == sum(u.nnz for u in updates)

    @given(st.integers(0, 500), st.integers(20, 200), st.floats(0.02, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_topk_bits_monotone_in_ratio(self, seed, d, ratio):
        rng = np.random.default_rng(seed)
        u = rng.normal(size=d).astype(np.float32)
        small = TopK().compress(u, max(ratio / 2, 0.01))
        big = TopK().compress(u, ratio)
        assert small.bits <= big.bits + 1e-9


class TestBCRSFeasibility:
    @given(
        st.lists(st.tuples(st.floats(0.05e6, 20e6), st.floats(0.0, 0.5)), min_size=1, max_size=15),
        st.floats(0.005, 0.9),
        st.floats(1e5, 1e9),
    )
    @settings(max_examples=60, deadline=None)
    def test_schedule_never_misses_benchmark(self, raw, default_cr, volume):
        links = [LinkSpec(b, l) for b, l in raw]
        sched = schedule_ratios(links, volume, default_cr)
        # Feasibility: every scheduled upload fits in the benchmark window.
        for link, cr in zip(links, sched.ratios):
            assert sparse_uplink_time(link, volume, cr) <= sched.t_bench * (1 + 1e-9)

    @given(
        st.integers(2, 10),
        st.floats(0.01, 0.99),
        st.floats(0.01, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_eq6_weights_bounded_for_scheduled_ratios(self, n, default_cr, alpha):
        rng = np.random.default_rng(n)
        links = [LinkSpec(rng.uniform(0.1e6, 5e6), rng.uniform(0.01, 0.3)) for _ in range(n)]
        sched = schedule_ratios(links, 32e6, default_cr)
        f = rng.dirichlet(np.ones(n))
        p = adjusted_coefficients(f, sched.ratios, alpha)
        assert np.all(p > 0)
        assert np.all(p <= alpha + 1e-12)


class TestEngineDeterminism:
    @given(st.integers(0, 20))
    @settings(max_examples=5, deadline=None)
    def test_runs_reproduce_bitwise(self, seed):
        from repro.fl.config import ExperimentConfig
        from repro.fl.simulation import Simulation

        cfg = ExperimentConfig(
            num_train=300, num_test=80, rounds=3, num_clients=4, participation=0.5,
            lr=0.1, model="mlp", algorithm="bcrs_opwa", compression_ratio=0.1,
            seed=seed, eval_every=3,
        )
        a = Simulation(cfg)
        b = Simulation(cfg)
        a.run()
        b.run()
        np.testing.assert_array_equal(a.global_params, b.global_params)
