"""Hierarchical protocol tests: degenerate equivalence, two-level semantics,
per-tier timings, and backend determinism."""

import pytest

from repro.fl.config import ExperimentConfig
from repro.fl.simulation import Simulation
from repro.hier.simulation import HierSimulation
from repro.io.history_io import history_from_dict, history_to_dict
from repro.simtime import make_simulation

#: Deterministic record fields (train/compress_seconds are wall clock;
#: edge_breakdown exists only on hierarchical records).
FLAT_FIELDS = (
    "round_index",
    "selected",
    "train_loss",
    "test_accuracy",
    "times",
    "ratios",
    "weights",
    "singleton_fraction",
    "sim_start",
    "sim_end",
    "mean_staleness",
)


def small_config(**overrides) -> ExperimentConfig:
    base = dict(
        dataset="synth-cifar10",
        model="mlp",
        num_train=240,
        num_test=120,
        num_clients=6,
        participation=0.5,
        rounds=3,
        batch_size=32,
        algorithm="bcrs_opwa",
        compression_ratio=0.1,
        seed=3,
        eval_every=1,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def run_sim(config):
    with make_simulation(config) as sim:
        history = sim.run()
    return sim, history


def assert_records_identical(a, b, fields=FLAT_FIELDS):
    assert len(a) == len(b)
    for ra, rb in zip(a.records, b.records):
        for f in fields:
            assert getattr(ra, f) == getattr(rb, f), f


class TestFactoryAndConfig:
    def test_mode_selects_class(self):
        assert isinstance(make_simulation(small_config(mode="hier")), HierSimulation)

    def test_config_rejects_bad_hier_knobs(self):
        with pytest.raises(ValueError, match="num_edges"):
            small_config(num_edges=7)  # > num_clients
        with pytest.raises(ValueError, match="num_edges"):
            small_config(num_edges=0)
        with pytest.raises(ValueError, match="edge_rounds"):
            small_config(edge_rounds=0)
        with pytest.raises(ValueError, match="edge_assignment"):
            small_config(edge_assignment="geo")
        with pytest.raises(ValueError, match="edge_sync"):
            small_config(edge_sync="async")
        with pytest.raises(ValueError, match="backhaul_bandwidth_mbps"):
            small_config(backhaul_bandwidth_mbps=0.0)


class TestDegenerateEquivalence:
    """num_edges=1 + free backhaul + one sub-round ≡ the flat protocol."""

    @pytest.mark.parametrize("algorithm", ["fedavg", "topk", "bcrs", "bcrs_opwa"])
    def test_reproduces_flat_records_bit_for_bit(self, algorithm):
        cr = 1.0 if algorithm == "fedavg" else 0.1
        cfg = small_config(algorithm=algorithm, compression_ratio=cr)
        with Simulation(cfg) as flat_sim:
            flat = flat_sim.run()
        hier_sim, hier = run_sim(cfg.with_(mode="hier"))
        assert_records_identical(flat, hier)
        # The virtual span logs (every train/upload interval) match too.
        assert flat_sim.spans.spans == hier_sim.spans.spans

    def test_degenerate_breakdown_is_single_free_edge(self):
        _, h = run_sim(small_config(mode="hier"))
        for r in h.records:
            assert len(r.edge_breakdown) == 1
            (edge,) = r.edge_breakdown
            assert edge.backhaul_s == 0.0
            assert edge.end == r.sim_end

    def test_costly_backhaul_breaks_equivalence_only_in_time(self):
        cfg = small_config()
        with Simulation(cfg) as flat_sim:
            flat = flat_sim.run()
        _, hier = run_sim(
            cfg.with_(mode="hier", backhaul_bandwidth_mbps=10.0, backhaul_latency_s=0.05)
        )
        # The learning outcome is untouched (one edge aggregates everything
        # exactly as the flat server would)…
        assert_records_identical(
            flat, hier, fields=("selected", "train_loss", "test_accuracy", "weights")
        )
        # …but every round now pays the edge↔cloud transfer.
        for rf, rh in zip(flat.records, hier.records):
            assert rh.sim_end - rh.sim_start > rf.sim_end - rf.sim_start
            assert rh.edge_breakdown[0].backhaul_s > 0.0


class TestTwoLevelSemantics:
    def test_breakdown_shape_and_tiering(self):
        cfg = small_config(
            mode="hier", num_edges=3, edge_rounds=2,
            backhaul_bandwidth_mbps=50.0, backhaul_latency_s=0.01,
        )
        sim, h = run_sim(cfg)
        for r in h.records:
            assert len(r.edge_breakdown) == 3
            for e, edge in enumerate(r.edge_breakdown):
                assert edge.edge == e
                assert len(edge.sub_spans) == 2  # K₁ sub-rounds per edge
                group = set(sim.topology.groups[e])
                assert set(edge.selected) <= group  # edges sample their own tier
                assert edge.start == r.sim_start
                # end = start + Σ sub-round spans + backhaul transfers
                assert edge.end == pytest.approx(
                    edge.start + sum(edge.sub_spans) + edge.backhaul_s
                )
            # The cloud waits for its slowest edge.
            assert r.sim_end == max(e.end for e in r.edge_breakdown)

    def test_bcrs_benchmarks_per_edge_group(self):
        """Each edge schedules against its own slowest member, so the per-
        round actual time is bounded by the slowest edge, not by a global
        benchmark applied to everyone."""
        cfg = small_config(num_clients=8, algorithm="bcrs")
        flat_sim, flat = run_sim(cfg)
        hier_sim, hier = run_sim(
            cfg.with_(mode="hier", num_edges=4, edge_assignment="bandwidth")
        )
        # Bandwidth-homogeneous groups: at least one round where the fast
        # groups finish their (local) benchmark before the global one.
        assert any(
            rh.times.actual <= rf.times.actual
            for rf, rh in zip(flat.records, hier.records)
        )

    def test_edge_models_diverge_then_cloud_averages(self):
        """With E>1 the per-edge aggregations see different client subsets,
        so the trajectory must differ from the flat run."""
        cfg = small_config()
        _, flat = run_sim(cfg)
        _, hier = run_sim(cfg.with_(mode="hier", num_edges=3))
        assert [r.train_loss for r in flat.records] != [r.train_loss for r in hier.records]

    def test_edge_rounds_multiply_local_work(self):
        _, h1 = run_sim(small_config(mode="hier", num_edges=2, edge_rounds=1))
        _, h3 = run_sim(small_config(mode="hier", num_edges=2, edge_rounds=3))
        for r1, r3 in zip(h1.records, h3.records):
            assert len(r3.selected) == 3 * len(r1.selected)
            assert r3.sim_end >= r1.sim_end

    def test_one_client_per_edge_runs(self):
        cfg = small_config(mode="hier", num_edges=6)  # degenerate groups of 1
        _, h = run_sim(cfg)
        assert len(h) == 3
        for r in h.records:
            assert len(r.selected) == 6  # every edge samples its lone client

    def test_semisync_edges_drop_stragglers(self):
        base = dict(
            mode="hier", num_edges=2, num_clients=8, compute_heterogeneity=1.5,
            deadline_quantile=0.5, rounds=4,
        )
        _, sync_h = run_sim(small_config(**base, edge_sync="sync"))
        _, semi_h = run_sim(small_config(**base, edge_sync="semisync"))
        # Dropped stragglers show up as zero aggregation weights…
        assert any(0.0 in r.weights for r in semi_h.records)
        assert all(0.0 not in r.weights for r in sync_h.records)
        # …and the deadline cut never waits longer than the sync barrier.
        for rs, rd in zip(sync_h.records, semi_h.records):
            assert rd.sim_end <= rs.sim_end + 1e-9

    def test_semisync_edges_honor_fixed_deadline(self):
        """deadline_s overrides the per-sub-round quantile, exactly as it
        overrides the per-round quantile in the flat semisync mode."""
        base = dict(
            mode="hier", num_edges=2, num_clients=8, compute_heterogeneity=1.5,
            edge_sync="semisync", rounds=3,
        )
        _, tight = run_sim(small_config(**base, deadline_s=0.05))
        _, loose = run_sim(small_config(**base, deadline_s=1e6))
        # A generous fixed deadline drops nobody; a tight one must.
        assert all(0.0 not in r.weights for r in loose.records)
        assert any(0.0 in r.weights for r in tight.records)
        # A sub-round span is never shorter than the deadline it waited for,
        # and with everything dropped-but-one it extends to that survivor.
        for r in tight.records:
            for edge in r.edge_breakdown:
                assert all(s >= 0.05 - 1e-9 for s in edge.sub_spans)

    def test_weights_normalized_per_aggregation(self):
        # topk uses FedAvg coefficients (sum 1 per aggregation); BCRS's
        # Eq. 6 coefficients are intentionally unnormalized, as in the flat
        # protocol.
        _, h = run_sim(
            small_config(mode="hier", num_edges=2, edge_rounds=2, algorithm="topk")
        )
        for r in h.records:
            # 2 edges × 2 sub-rounds: four unit-normalized aggregations.
            assert sum(r.weights) == pytest.approx(4.0)

    def test_history_io_roundtrips_breakdown(self):
        _, h = run_sim(
            small_config(mode="hier", num_edges=2, backhaul_bandwidth_mbps=50.0)
        )
        back = history_from_dict(history_to_dict(h))
        for ra, rb in zip(h.records, back.records):
            assert ra.edge_breakdown == rb.edge_breakdown

    def test_checkpoint_resume_continues_clock(self, tmp_path):
        from repro.io.checkpoint import load_checkpoint, save_checkpoint

        cfg = small_config(mode="hier", num_edges=2, backhaul_bandwidth_mbps=50.0)
        with make_simulation(cfg) as sim:
            sim.run()
            end = sim.sim_clock
            save_checkpoint(sim, tmp_path / "ckpt.npz")
        fresh = make_simulation(cfg)
        load_checkpoint(fresh, tmp_path / "ckpt.npz")
        rec = fresh.run_round()
        assert rec.sim_start == pytest.approx(end)
        fresh.close()


class TestRunnerReporting:
    def test_run_hier_and_summary(self):
        from repro.experiments.runner import run_hier
        from repro.experiments.reporting import summarize_hier

        base = small_config(rounds=2, backhaul_bandwidth_mbps=100.0)
        results = run_hier(base, [1, 3])
        assert sorted(results) == [1, 3]
        text = summarize_hier(results, target=0.05)
        assert "edges" in text and "backhaul/rnd" in text
        assert "t_to_acc>=0.05" in text

    def test_modes_race_excludes_hier_by_default(self):
        from repro.experiments.runner import PROTOCOL_RACE_MODES

        assert "hier" not in PROTOCOL_RACE_MODES


class TestBackendDeterminism:
    """Same seed ⇒ identical records and span logs on every exec backend."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_matches_serial(self, backend):
        cfg = small_config(
            mode="hier", num_edges=3, edge_rounds=2, algorithm="eftopk",
            backhaul_bandwidth_mbps=50.0, backhaul_heterogeneity=0.3, seed=5,
        )
        serial_sim, serial_hist = run_sim(cfg)
        other_sim, other_hist = run_sim(cfg.with_(backend=backend, workers=2))
        assert_records_identical(serial_hist, other_hist)
        for ra, rb in zip(serial_hist.records, other_hist.records):
            assert ra.edge_breakdown == rb.edge_breakdown
        assert serial_sim.spans.spans == other_sim.spans.spans
