"""Tests for the multi-tier topology model."""

import pytest

from repro.hier.topology import (
    TierTopology,
    assign_edges,
    sample_backhaul_links,
)
from repro.network.cost import LinkSpec
from repro.network.links import PAPER_LINK_MODEL, sample_links


def links(n, seed=0):
    return sample_links(n, PAPER_LINK_MODEL, seed=seed)


class TestAssignEdges:
    @pytest.mark.parametrize("mode", ["contiguous", "random", "bandwidth"])
    @pytest.mark.parametrize("num_edges", [1, 2, 3, 10])
    def test_partition_invariants(self, mode, num_edges):
        n = 10
        groups = assign_edges(n, num_edges, mode, links=links(n), seed=7)
        assert len(groups) == num_edges
        flat = sorted(c for g in groups for c in g)
        assert flat == list(range(n))  # exact partition, no dupes/gaps
        for g in groups:
            assert g  # non-empty
            assert list(g) == sorted(g)  # id-sorted within a group

    def test_contiguous_is_consecutive_chunks(self):
        groups = assign_edges(6, 3, "contiguous")
        assert groups == ((0, 1), (2, 3), (4, 5))

    def test_random_is_seeded(self):
        a = assign_edges(12, 3, "random", seed=5)
        b = assign_edges(12, 3, "random", seed=5)
        c = assign_edges(12, 3, "random", seed=6)
        assert a == b
        assert a != c

    def test_bandwidth_groups_are_bandwidth_ordered(self):
        ls = links(12, seed=3)
        groups = assign_edges(12, 4, "bandwidth", links=ls)
        # Every client in group e is no faster than any client in group e+1.
        for e in range(3):
            assert max(ls[c].bandwidth_bps for c in groups[e]) <= min(
                ls[c].bandwidth_bps for c in groups[e + 1]
            )

    def test_errors(self):
        with pytest.raises(ValueError, match="num_edges"):
            assign_edges(4, 5, "contiguous")
        with pytest.raises(ValueError, match="num_edges"):
            assign_edges(4, 0, "contiguous")
        with pytest.raises(ValueError, match="unknown edge assignment"):
            assign_edges(4, 2, "geo")
        with pytest.raises(ValueError, match="links"):
            assign_edges(4, 2, "bandwidth")


class TestBackhaulLinks:
    def test_none_bandwidth_is_free_tier(self):
        assert sample_backhaul_links(3, bandwidth_mbps=None) == (None, None, None)

    def test_zero_heterogeneity_is_uniform(self):
        bh = sample_backhaul_links(
            4, bandwidth_mbps=100.0, latency_s=0.01, heterogeneity=0.0, seed=1
        )
        assert all(l == LinkSpec(bandwidth_bps=100e6, latency_s=0.01) for l in bh)

    def test_heterogeneity_spreads_draws_deterministically(self):
        a = sample_backhaul_links(8, bandwidth_mbps=100.0, latency_s=0.01, heterogeneity=0.5, seed=2)
        b = sample_backhaul_links(8, bandwidth_mbps=100.0, latency_s=0.01, heterogeneity=0.5, seed=2)
        assert a == b
        assert len({l.bandwidth_bps for l in a}) > 1


class TestTierTopology:
    def build(self, n=6, num_edges=2, backhaul_mbps=50.0):
        ls = links(n)
        return TierTopology(
            groups=assign_edges(n, num_edges, "contiguous"),
            client_links=tuple(ls),
            backhaul_links=sample_backhaul_links(
                num_edges, bandwidth_mbps=backhaul_mbps, latency_s=0.02, seed=1
            ),
        )

    def test_shape_accessors(self):
        topo = self.build()
        assert topo.num_edges == 2
        assert topo.num_clients == 6
        assert topo.edge_of(0) == 0 and topo.edge_of(5) == 1

    def test_backhaul_times(self):
        topo = self.build(backhaul_mbps=50.0)
        v = 1e6
        t = topo.backhaul_uplink_time(0, v)
        link = topo.backhaul_links[0]
        assert t == pytest.approx(link.latency_s + v / link.bandwidth_bps)
        free = self.build(backhaul_mbps=None)
        assert free.backhaul_uplink_time(0, v) == 0.0
        assert free.backhaul_downlink_time(0, v) == 0.0

    def test_validation(self):
        ls = tuple(links(4))
        with pytest.raises(ValueError, match="partition"):
            TierTopology(groups=((0, 1), (1, 2, 3)), client_links=ls, backhaul_links=(None, None))
        with pytest.raises(ValueError, match="backhaul"):
            TierTopology(groups=((0, 1), (2, 3)), client_links=ls, backhaul_links=(None,))
        with pytest.raises(ValueError, match="at least one client"):
            TierTopology(groups=((0, 1, 2, 3), ()), client_links=ls, backhaul_links=(None, None))

    def test_to_networkx_tree(self):
        nx = pytest.importorskip("networkx")
        topo = self.build()
        g = topo.to_networkx()
        assert g.number_of_nodes() == 1 + 2 + 6
        assert nx.is_tree(g)
        assert g.degree("cloud") == 2
