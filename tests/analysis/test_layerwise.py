"""Tests for per-layer compression/overlap decomposition."""

import numpy as np
import pytest

from repro.analysis.layerwise import layer_density, layer_singleton_fraction
from repro.compression.base import SparseUpdate
from repro.compression.sparsifiers import TopK
from repro.nn.models import build_mlp
from repro.nn.params import num_parameters, param_slices


def sparse(d, idx):
    idx = np.asarray(idx, dtype=np.int64)
    return SparseUpdate(dense_size=d, indices=idx, values=np.ones(len(idx), np.float32))


SLICES = [("a", slice(0, 4), (4,)), ("b", slice(4, 10), (6,))]


class TestLayerDensity:
    def test_exact_fractions(self):
        u = sparse(10, [0, 1, 5])
        out = layer_density(u, SLICES)
        assert out["a"] == pytest.approx(0.5)
        assert out["b"] == pytest.approx(1 / 6)

    def test_empty_layer_zero(self):
        u = sparse(10, [0])
        assert layer_density(u, SLICES)["b"] == 0.0

    def test_on_real_model(self, rng):
        model = build_mlp(16, 4, hidden=(8,), seed=0)
        d = num_parameters(model)
        update = TopK().compress(rng.normal(size=d).astype(np.float32), 0.1)
        out = layer_density(update, param_slices(model))
        assert set(out) == {s[0] for s in param_slices(model)}
        # Densities average (weighted) to the global ratio.
        total = sum(
            out[name] * (sl.stop - sl.start) for name, sl, _ in param_slices(model)
        )
        assert total == pytest.approx(update.nnz)


class TestLayerSingletons:
    def test_mixed_overlap(self):
        u1 = sparse(10, [0, 5])
        u2 = sparse(10, [0, 6])
        out = layer_singleton_fraction([u1, u2], SLICES)
        assert out["a"] == pytest.approx(0.0)  # index 0 overlaps fully
        assert out["b"] == pytest.approx(1.0)  # 5 and 6 are singletons

    def test_unretained_layer_nan(self):
        u1 = sparse(10, [0])
        u2 = sparse(10, [1])
        out = layer_singleton_fraction([u1, u2], SLICES)
        assert np.isnan(out["b"])
