"""Tests for per-client fairness evaluation."""

import numpy as np
import pytest

from repro.analysis.fairness import FairnessReport, fairness_report, per_client_accuracy
from repro.fl.config import ExperimentConfig
from repro.fl.simulation import Simulation

FAST = dict(num_train=500, num_test=150, rounds=6, num_clients=5, participation=0.6,
            lr=0.1, model="mlp", eval_every=3)


class TestFairnessReport:
    def test_statistics(self):
        rep = FairnessReport(np.array([0.2, 0.4, 0.6, 0.8]))
        assert rep.mean == pytest.approx(0.5)
        assert rep.worst == 0.2
        assert rep.best == 0.8
        assert rep.bottom_decile_mean() == pytest.approx(0.2)

    def test_bottom_decile_with_many_clients(self):
        accs = np.linspace(0, 1, 20)
        rep = FairnessReport(accs)
        assert rep.bottom_decile_mean() == pytest.approx(accs[:2].mean())


class TestPerClientAccuracy:
    def test_shape_and_range(self):
        sim = Simulation(ExperimentConfig(**FAST, beta=0.1))
        sim.run()
        accs = per_client_accuracy(sim)
        assert accs.shape == (5,)
        assert np.all((0 <= accs) & (accs <= 1))

    def test_noniid_more_dispersed_than_iid(self):
        """Label skew should widen the per-client accuracy spread."""
        skew = Simulation(ExperimentConfig(**FAST, beta=0.1, seed=1))
        skew.run()
        iid = Simulation(ExperimentConfig(**FAST, partition="iid", seed=1))
        iid.run()
        assert fairness_report(skew).std >= fairness_report(iid).std - 0.02

    def test_report_from_simulation(self):
        sim = Simulation(ExperimentConfig(**FAST))
        sim.run()
        rep = fairness_report(sim)
        assert rep.worst <= rep.mean <= rep.best
