"""Tests for drift and fidelity diagnostics."""

import numpy as np
import pytest

from repro.analysis.drift import (
    cosine_similarity_matrix,
    gradient_diversity,
    mean_pairwise_cosine,
    update_norm_dispersion,
)
from repro.analysis.fidelity import aggregation_fidelity, relative_error, retained_mass
from repro.compression.sparsifiers import TopK
from repro.core.opwa import opwa_mask_from_updates
from repro.data.datasets import make_dataset
from repro.data.partition import dirichlet_partition, iid_partition
from repro.fl.client import Client
from repro.nn.models import build_mlp
from repro.nn.params import get_flat_params


class TestDriftMetrics:
    def test_identical_updates_cosine_one(self):
        u = np.ones(10)
        sim = cosine_similarity_matrix([u, u.copy(), u.copy()])
        np.testing.assert_allclose(sim, 1.0, atol=1e-12)
        assert mean_pairwise_cosine([u, u.copy()]) == pytest.approx(1.0)

    def test_orthogonal_updates_cosine_zero(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert mean_pairwise_cosine([a, b]) == pytest.approx(0.0, abs=1e-12)

    def test_gradient_diversity_bounds(self):
        u = np.ones(5)
        # identical updates: diversity = 1/n
        assert gradient_diversity([u] * 4) == pytest.approx(0.25)
        # orthogonal equal-norm updates: diversity = 1
        a, b = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        assert gradient_diversity([a, b]) == pytest.approx(1.0)

    def test_diversity_infinite_on_cancellation(self):
        a = np.array([1.0, -1.0])
        assert gradient_diversity([a, -a]) == float("inf")

    def test_norm_dispersion(self):
        same = [np.ones(4), np.ones(4)]
        assert update_norm_dispersion(same) == pytest.approx(0.0)
        different = [np.ones(4), 10 * np.ones(4)]
        assert update_norm_dispersion(different) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_pairwise_cosine([np.ones(3)])
        with pytest.raises(ValueError):
            cosine_similarity_matrix([])


class TestDriftOnRealClients:
    def test_noniid_clients_less_aligned_than_iid(self):
        """The paper's premise, measured: Dirichlet(0.1) client updates are
        less mutually aligned than IID client updates."""
        ds = make_dataset("synth-cifar10", 1500, seed=0)
        model = build_mlp(192, 10, hidden=(32,), seed=0)
        w0 = get_flat_params(model)

        def client_updates(partition):
            updates = []
            for cid, ix in enumerate(partition.client_indices[:5]):
                c = Client(cid, ds.subset(ix), 64, np.random.default_rng(cid), flatten_inputs=True)
                updates.append(c.local_train(model, w0, lr=0.1, epochs=1).delta)
            return updates

        iid_cos = mean_pairwise_cosine(client_updates(iid_partition(ds.y, 5, seed=1)))
        skew_cos = mean_pairwise_cosine(
            client_updates(dirichlet_partition(ds.y, 5, 0.1, seed=1))
        )
        assert skew_cos < iid_cos


class TestFidelity:
    def test_retained_mass_full_at_cr1(self, rng):
        u = rng.normal(size=100).astype(np.float32)
        assert retained_mass(u, TopK().compress(u, 1.0)) == pytest.approx(1.0)

    def test_retained_mass_monotone_in_cr(self, rng):
        u = rng.normal(size=500).astype(np.float32)
        masses = [retained_mass(u, TopK().compress(u, r)) for r in (0.01, 0.1, 0.5)]
        assert masses == sorted(masses)

    def test_relative_error_zero_at_cr1(self, rng):
        u = rng.normal(size=64).astype(np.float32)
        assert relative_error(u, TopK().compress(u, 1.0)) == 0.0

    def test_opwa_mask_raises_aggregation_fidelity_for_disjoint_updates(self):
        """The OPWA rationale, quantified: with disjoint retained sets, the
        gamma = |S_t| mask makes the masked aggregate exactly proportional to
        the dense average restricted to retained coordinates, raising cosine
        fidelity vs the unmasked aggregate."""
        rng = np.random.default_rng(0)
        d = 400
        n = 4
        dense = []
        compressed = []
        topk = TopK()
        for i in range(n):
            u = np.zeros(d, dtype=np.float32)
            block = slice(i * 100, i * 100 + 100)  # disjoint supports
            u[block] = rng.normal(size=100)
            dense.append(u)
            compressed.append(topk.compress(u, 0.1))
        weights = np.full(n, 1.0 / n)
        mask = opwa_mask_from_updates(compressed, gamma=float(n))
        fid_unmasked = aggregation_fidelity(dense, compressed, weights)
        fid_masked = aggregation_fidelity(dense, compressed, weights, mask=mask)
        assert fid_masked >= fid_unmasked - 1e-9

    def test_aggregation_fidelity_perfect_for_cr1(self, rng):
        d = 50
        dense = [rng.normal(size=d).astype(np.float32) for _ in range(3)]
        compressed = [TopK().compress(u, 1.0) for u in dense]
        fid = aggregation_fidelity(dense, compressed, np.full(3, 1 / 3))
        assert fid == pytest.approx(1.0)

    def test_length_mismatch(self, rng):
        u = rng.normal(size=10).astype(np.float32)
        with pytest.raises(ValueError):
            aggregation_fidelity([u], [], np.array([]))
