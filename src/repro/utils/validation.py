"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

__all__ = ["check_positive", "check_fraction", "check_probability_vector"]


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (``> 0``; or ``>= 0`` if not strict)."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float, *, allow_zero: bool = False) -> float:
    """Validate that ``value`` lies in ``(0, 1]`` (or ``[0, 1]`` with allow_zero)."""
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    lo_ok = value >= 0 if allow_zero else value > 0
    if not (lo_ok and value <= 1.0):
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValueError(f"{name} must be in {bound}, got {value!r}")
    return value


def check_probability_vector(name: str, p: np.ndarray, *, atol: float = 1e-6) -> np.ndarray:
    """Validate that ``p`` is a 1-D non-negative vector summing to 1."""
    p = np.asarray(p, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {p.shape}")
    if np.any(p < -atol):
        raise ValueError(f"{name} must be non-negative")
    total = float(p.sum())
    if abs(total - 1.0) > atol:
        raise ValueError(f"{name} must sum to 1, sums to {total}")
    return p
