"""Deterministic random-number management.

Every stochastic component in the library takes a ``numpy.random.Generator``.
Experiments derive *independent named streams* from a single root seed via
``RngFactory`` so that, e.g., client sampling and data partitioning do not
perturb each other's sequences when one of them changes.

Two per-entity derivation schemes coexist:

- :meth:`RngFactory.child` mixes ``(seed, name, index)`` through a
  ``SeedSequence`` — the historical scheme every pre-population golden
  history was recorded under;
- :meth:`RngFactory.counter` keys a counter-based ``Philox`` bit generator
  directly on ``(seed, name, index)`` — O(1) construction with no
  SeedSequence mixing, the scheme the million-client population table uses
  for per-client draws (shard contents) that must be reconstructible on
  demand, in any order, on any process worker.

Both are pure functions of their inputs, so hydrating a client lazily
yields exactly the stream its eager construction would have received.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["as_generator", "spawn_generators", "RngFactory"]


def as_generator(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a ``numpy.random.Generator``.

    Accepts ``None`` (fresh nondeterministic generator), an integer seed, or an
    existing generator (returned unchanged).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_generators(root: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``root``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = as_generator(root)
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


class RngFactory:
    """Derive named, reproducible random streams from one root seed.

    Two factories constructed with the same seed hand out identical streams
    for identical names, regardless of request order::

        f = RngFactory(7)
        rng_a = f.stream("sampler")
        rng_b = f.stream("partition")
    """

    def __init__(self, seed: int):
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """Root seed this factory derives all streams from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for stream ``name`` (stable across calls)."""
        # Hash the name into entropy words; SeedSequence mixes them with the
        # root seed, so distinct names give independent streams.
        words = np.frombuffer(name.encode("utf-8").ljust(16, b"\0"), dtype=np.uint32)
        ss = np.random.SeedSequence(entropy=self._seed, spawn_key=tuple(int(w) for w in words))
        return np.random.default_rng(ss)

    def child(self, name: str, index: int) -> np.random.Generator:
        """Return the ``index``-th generator of the named family (e.g. per-client)."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        words = np.frombuffer(name.encode("utf-8").ljust(16, b"\0"), dtype=np.uint32)
        ss = np.random.SeedSequence(
            entropy=self._seed,
            spawn_key=tuple(int(w) for w in words) + (int(index),),
        )
        return np.random.default_rng(ss)

    def counter_key(self, name: str) -> int:
        """The 64-bit Philox key word identifying stream ``name`` under this seed.

        A keyed BLAKE2 digest of the stream name, salted with the root seed,
        so distinct ``(seed, name)`` pairs map to distinct key words (up to a
        2⁻⁶⁴ hash collision) and renaming a stream can never silently alias
        another one.
        """
        digest = hashlib.blake2b(
            name.encode("utf-8"),
            digest_size=8,
            key=str(self._seed).encode("utf-8"),
        ).digest()
        return int.from_bytes(digest, "little")

    def counter(self, name: str, index: int) -> np.random.Generator:
        """Counter-based per-entity stream: ``Philox(key=(seed⊕name, index))``.

        Unlike :meth:`child`, the key is consumed directly by the Philox
        block cipher — no SeedSequence pool mixing — so constructing the
        ``index``-th stream is O(1) and *stateless*: any process can rebuild
        client ``index``'s generator at any time, in any order, and read the
        identical sequence. Distinct ``(name, index)`` pairs key distinct
        Philox streams by construction (Philox's key words are independent
        cipher keys), which is what lets a million-client population draw
        per-client randomness on demand instead of holding a million
        generator objects.
        """
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        bitgen = np.random.Philox(key=[self.counter_key(name), int(index)])
        return np.random.Generator(bitgen)
