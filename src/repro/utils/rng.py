"""Deterministic random-number management.

Every stochastic component in the library takes a ``numpy.random.Generator``.
Experiments derive *independent named streams* from a single root seed via
``RngFactory`` so that, e.g., client sampling and data partitioning do not
perturb each other's sequences when one of them changes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_generators", "RngFactory"]


def as_generator(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a ``numpy.random.Generator``.

    Accepts ``None`` (fresh nondeterministic generator), an integer seed, or an
    existing generator (returned unchanged).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_generators(root: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``root``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = as_generator(root)
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


class RngFactory:
    """Derive named, reproducible random streams from one root seed.

    Two factories constructed with the same seed hand out identical streams
    for identical names, regardless of request order::

        f = RngFactory(7)
        rng_a = f.stream("sampler")
        rng_b = f.stream("partition")
    """

    def __init__(self, seed: int):
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """Root seed this factory derives all streams from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for stream ``name`` (stable across calls)."""
        # Hash the name into entropy words; SeedSequence mixes them with the
        # root seed, so distinct names give independent streams.
        words = np.frombuffer(name.encode("utf-8").ljust(16, b"\0"), dtype=np.uint32)
        ss = np.random.SeedSequence(entropy=self._seed, spawn_key=tuple(int(w) for w in words))
        return np.random.default_rng(ss)

    def child(self, name: str, index: int) -> np.random.Generator:
        """Return the ``index``-th generator of the named family (e.g. per-client)."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        words = np.frombuffer(name.encode("utf-8").ljust(16, b"\0"), dtype=np.uint32)
        ss = np.random.SeedSequence(
            entropy=self._seed,
            spawn_key=tuple(int(w) for w in words) + (int(index),),
        )
        return np.random.default_rng(ss)
