"""Shared utilities: seeded RNG streams, validation helpers, lightweight logging."""

from repro.utils.rng import RngFactory, as_generator, spawn_generators
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "check_fraction",
    "check_positive",
    "check_probability_vector",
]
