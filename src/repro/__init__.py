"""repro — reproduction of "Bandwidth-Aware and Overlap-Weighted Compression
for Communication-Efficient Federated Learning" (Tang et al., ICPP 2024).

Subpackages
-----------
- ``repro.nn``: numpy neural-network substrate (models the paper trains).
- ``repro.data``: synthetic federated datasets + Dirichlet non-IID partitioning.
- ``repro.network``: the paper's communication cost model and time metrics.
- ``repro.compression``: Top-K / Random-K / threshold / quantization / EF.
- ``repro.core``: the paper's contribution — BCRS scheduling and OPWA.
- ``repro.fl``: the federated simulation engine (Algorithm 1).
- ``repro.simtime``: virtual-clock scheduler (async/semi-sync protocols).
- ``repro.hier``: hierarchical cloud–edge–client federation.
- ``repro.experiments``: presets and reporting for every paper table/figure.
"""

__version__ = "1.0.0"
