"""Concurrent, resumable execution of expanded scenario grids.

:class:`SweepRunner` takes a list of :class:`ScenarioSpec` cells (usually
from :func:`~repro.scenarios.grid.expand_grid`), runs each cell's full
experiment, and returns a :class:`~repro.scenarios.report.SweepReport`.

Concurrency is *across cells*: whole experiments fan out over a pool named
after the exec-backend vocabulary — ``"serial"`` (in-order, the reference),
``"thread"`` (GIL-bound; fine for small grids and for exercising the
machinery), ``"process"`` (forked workers — true parallelism; cells should
then use ``backend="serial"`` internally so pools don't nest; the runner
enforces this, see below). Per-cell results are a pure function of the
cell's config seed, so the report is bit-identical at any ``parallel`` on
any executor (wall-clock ``train_seconds``/``compress_seconds`` excepted,
as everywhere).

**Persistent workers + cross-cell caching.** Grid cells overwhelmingly
share their dataset world — same raw arrays, same splits, same partition,
same population columns — and differ only in training knobs. Every
:func:`run_cell` therefore resolves its cell's dataset-relevant config
slice against a process-local :class:`~repro.fl.context.WorldCache` and
threads the cached :class:`~repro.fl.context.SimulationContext` into
:func:`~repro.fl.simulation.run_experiment`, so the expensive construction
happens once per distinct world, not once per cell. The cache lives at
module level, which makes it per-*worker* on the process executor — and the
runner keeps its pool **persistent** (reused across :meth:`SweepRunner.run`
calls until :meth:`SweepRunner.close`, or scope it with ``with``), so
worker caches keep paying off across repeated/resumed sweeps.

Guard rail: when the sweep executor is ``"process"``, a cell that itself
requests ``backend="process"`` would fork a pool inside a pool. The runner
tells workers to force such cells to ``backend="serial"`` (warning once per
worker); by the determinism contract the history is identical either way.

With a :class:`~repro.scenarios.store.RunStore`, finished cells persist as
they complete and an interrupted sweep resumes by re-running only the
missing ones.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, Executor, ProcessPoolExecutor, ThreadPoolExecutor, wait

from repro.fl.context import WorldCache
from repro.fl.history import History
from repro.fl.simulation import run_experiment
from repro.io.history_io import history_from_dict, history_to_dict
from repro.scenarios.report import SweepReport
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.store import RunStore

__all__ = ["SweepRunner", "SWEEP_EXECUTORS", "run_cell", "WORLD_CACHE"]

#: How cells fan out; mirrors the exec-backend vocabulary.
SWEEP_EXECUTORS = ("serial", "thread", "process")

#: Process-local dataset/world cache shared by every cell this process (or
#: forked sweep worker) runs. Keyed purely on the dataset-relevant config
#: slice — see :data:`repro.fl.context.DATASET_KEY_FIELDS`.
WORLD_CACHE = WorldCache()

#: Set once a worker has warned about forcing a nested-process cell serial,
#: so a 1000-cell grid produces one warning per worker, not per cell.
_warned_forced_serial = False


def run_cell(
    spec_dict: dict,
    *,
    use_cache: bool = True,
    force_serial_backend: bool = False,
) -> dict:
    """Run one cell (spec as dict in, history as dict out).

    Module-level and dict-typed so it crosses a process pool by reference +
    pickle; also the serial path, so every executor shares one code path.

    ``use_cache`` resolves the cell's world through the process-local
    :data:`WORLD_CACHE` (bit-identical to a cold build — the cache only
    skips reconstruction of seeded-deterministic arrays).
    ``force_serial_backend`` is the nested-pool guard rail: a cell
    requesting ``backend="process"`` is run with ``backend="serial"``
    instead (identical history by the determinism contract; the spec — and
    therefore any :class:`~repro.scenarios.store.RunStore` key — is not
    rewritten).
    """
    global _warned_forced_serial
    spec = ScenarioSpec.from_dict(spec_dict)
    config = spec.to_config()
    if force_serial_backend and config.backend == "process":
        if not _warned_forced_serial:
            _warned_forced_serial = True
            warnings.warn(
                "cell requests backend='process' inside a process-pool "
                "sweep; nested worker pools oversubscribe the CPU — forcing "
                "backend='serial' for this worker's cells (histories are "
                "bit-identical by the determinism contract)",
                stacklevel=2,
            )
        config = dataclasses.replace(config, backend="serial")
    context = WORLD_CACHE.get(config) if use_cache else None
    return history_to_dict(run_experiment(config, context=context))


class SweepRunner:
    """Execute scenario cells concurrently with optional resume.

    Parameters
    ----------
    specs:
        The cells to run. Order is preserved in the report regardless of
        completion order.
    parallel:
        Max cells in flight at once (1 = sequential).
    executor:
        ``"serial"`` | ``"thread"`` | ``"process"``; default picks
        ``"process"`` when ``parallel > 1`` (falling back to ``"thread"``
        where fork is unavailable) and ``"serial"`` otherwise.
    store:
        Optional :class:`RunStore` (or path) for resume: completed cells
        are loaded instead of re-run, fresh cells are persisted as they
        finish — an interrupt loses only in-flight cells.
    progress:
        Optional callback ``(spec, cached: bool)`` invoked as each cell
        resolves (from worker threads' completion loop order, not cell
        order).
    on_start:
        Optional callback ``(spec)`` invoked when a cell is dispatched
        (submitted to the pool, or about to run on the serial path) —
        together with ``progress`` this drives live displays like
        :class:`repro.obs.SweepProgress`.
    obs:
        Optional :class:`repro.obs.Obs` bundle: each cell's dispatch→
        resolution lifetime is recorded as a ``sweep.cell`` span, with
        done/cached counters and a cell-seconds histogram.
    """

    def __init__(
        self,
        specs: Sequence[ScenarioSpec],
        *,
        parallel: int = 1,
        executor: str | None = None,
        store: RunStore | str | None = None,
        progress: Callable[[ScenarioSpec, bool], None] | None = None,
        on_start: Callable[[ScenarioSpec], None] | None = None,
        obs=None,
    ):
        if parallel < 1:
            raise ValueError(f"parallel must be >= 1, got {parallel}")
        if executor is None:
            executor = "process" if parallel > 1 else "serial"
            if executor == "process" and "fork" not in mp.get_all_start_methods():
                executor = "thread"  # pragma: no cover (non-POSIX)
        if executor not in SWEEP_EXECUTORS:
            raise ValueError(
                f"executor must be one of {SWEEP_EXECUTORS}, got {executor!r}"
            )
        self.specs = list(specs)
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate cell names in sweep: {dupes}")
        self.parallel = int(parallel)
        self.executor = executor
        if store is not None and not isinstance(store, RunStore):
            store = RunStore(store)  # accept a plain directory path
        self.store = store
        self.progress = progress
        self.on_start = on_start
        if obs is None:
            from repro.obs import NULL_OBS

            obs = NULL_OBS
        self.obs = obs
        self._pool: Executor | None = None
        self._entered = False
        if self.executor == "process" and self.parallel > 1:
            busy = sorted({s.to_config().backend for s in self.specs} - {"serial"})
            if busy:
                warnings.warn(
                    f"sweep cells use backend={busy} inside a process-pool "
                    "sweep; nested worker pools oversubscribe the CPU — "
                    "'process' cells are forced serial in the workers, "
                    "'thread' cells run as requested; prefer "
                    "backend='serial' cells with sweep-level parallelism",
                    stacklevel=2,
                )

    # ----------------------------------------------------------------- pool

    def _ensure_pool(self) -> Executor:
        """The runner's persistent executor pool (created on first use).

        Kept alive across :meth:`run` calls so forked workers — and with
        them the per-worker :data:`WORLD_CACHE` — survive from one sweep to
        the next. Released by :meth:`close` (or leaving a ``with`` block).
        """
        if self._pool is None:
            if self.executor == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self.parallel)
            else:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.parallel, mp_context=mp.get_context("fork")
                )
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> SweepRunner:
        self._entered = True
        return self

    def __exit__(self, *exc) -> None:
        self._entered = False
        self.close()

    def run(self) -> SweepReport:
        """Run every cell (skipping completed store entries); build the report.

        Histories pass through the dict round-trip on every path (worker
        pickle, store JSON, serial), so a cell's record values have one
        provenance no matter how it executed.
        """
        obs = self.obs
        cached: dict[int, History] = {}
        pending: list[int] = []
        for i, spec in enumerate(self.specs):
            hist = self.store.load(spec) if self.store is not None else None
            if hist is not None:
                cached[i] = hist
                obs.metrics.counter("sweep_cells", outcome="cached").inc()
                if self.progress is not None:
                    self.progress(spec, True)
            else:
                pending.append(i)

        results: dict[int, History] = dict(cached)
        # Per-cell dispatch instants: the span runs submission → resolution
        # (on the parallel path that includes queueing; on the serial path
        # it is the cell's own wall clock).
        starts: dict[int, float] = {}

        def dispatch(i: int) -> None:
            if obs.enabled:
                from repro.obs.tracer import trace_clock

                starts[i] = trace_clock()
            if self.on_start is not None:
                self.on_start(self.specs[i])

        def resolve(i: int, history_dict: dict) -> None:
            history = history_from_dict(history_dict)
            results[i] = history
            if obs.enabled:
                from repro.obs.tracer import trace_clock

                t0 = starts.pop(i, None)
                if t0 is not None:
                    t1 = trace_clock()
                    obs.tracer.add_span(
                        "sweep.cell", t0, t1, cat="sweep", cell=self.specs[i].name
                    )
                    obs.metrics.histogram("sweep_cell_seconds").observe(t1 - t0)
                obs.metrics.counter("sweep_cells", outcome="done").inc()
            if self.store is not None:
                self.store.save(self.specs[i], history)
            if self.progress is not None:
                self.progress(self.specs[i], False)

        force_serial = self.executor == "process" and self.parallel > 1
        if not pending:
            pass
        elif self.parallel == 1 or self.executor == "serial" or len(pending) == 1:
            for i in pending:
                dispatch(i)
                resolve(i, run_cell(self.specs[i].to_dict()))
        else:
            try:
                pool = self._ensure_pool()
                # Bounded submission window: keep at most ``parallel``
                # futures alive so a 10k-cell grid doesn't pickle everything
                # up front, and persist each cell the moment it lands.
                todo = list(pending)
                futures = {}
                while todo or futures:
                    while todo and len(futures) < self.parallel:
                        i = todo.pop(0)
                        dispatch(i)
                        futures[
                            pool.submit(
                                run_cell,
                                self.specs[i].to_dict(),
                                force_serial_backend=force_serial,
                            )
                        ] = i
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for fut in done:
                        resolve(futures.pop(fut), fut.result())
            finally:
                # Outside a ``with`` block the pool is single-use, matching
                # the historical behavior; entered runners keep it warm.
                if not self._entered:
                    self.close()

        ordered = [(self.specs[i], results[i]) for i in range(len(self.specs))]
        return SweepReport(
            cells=ordered, executed=len(pending), reused=len(cached)
        )
