"""Declarative scenarios and parallel sweep orchestration.

The simulator's feature axes — execution backends (:mod:`repro.exec`),
round protocols (:mod:`repro.simtime`), hierarchy (:mod:`repro.hier`),
transport contention (:mod:`repro.network.transport`), compressors — are
orthogonal by construction. This package is the layer that *composes*
them:

- :mod:`~repro.scenarios.spec` — :class:`ScenarioSpec`, a serializable,
  hashable description of one complete experiment, bridging to/from
  :class:`~repro.fl.config.ExperimentConfig`;
- :mod:`~repro.scenarios.registry` — named built-ins exercising
  cross-feature combinations (the source of ``docs/SCENARIOS.md``);
- :mod:`~repro.scenarios.grid` — typed multi-axis grid expansion with
  seed replication;
- :mod:`~repro.scenarios.sweep` — :class:`SweepRunner`: cells fan out
  over serial/thread/process pools with a resumable on-disk
  :class:`~repro.scenarios.store.RunStore`;
- :mod:`~repro.scenarios.report` — :class:`SweepReport`: best-cell
  rankings, per-axis marginals, time-to-accuracy frontiers.

CLI: ``python -m repro scenario {list,show,run}`` and
``python -m repro sweep --grid field=a,b,c --parallel N``.
"""

from repro.scenarios.grid import cell_label, expand_grid, parse_axis
from repro.scenarios.registry import (
    REGISTRY,
    ScenarioRegistry,
    available_scenarios,
    get_scenario,
    register_scenario,
    scenarios_by_tag,
)
from repro.scenarios.report import SweepReport
from repro.scenarios.spec import (
    ScenarioSpec,
    coerce_field,
    config_field_names,
    config_overrides,
    config_to_dict,
)
from repro.scenarios.store import RunStore
from repro.scenarios.sweep import SWEEP_EXECUTORS, SweepRunner, run_cell

__all__ = [
    "ScenarioSpec",
    "ScenarioRegistry",
    "REGISTRY",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "scenarios_by_tag",
    "coerce_field",
    "config_field_names",
    "config_overrides",
    "config_to_dict",
    "parse_axis",
    "expand_grid",
    "cell_label",
    "RunStore",
    "SweepRunner",
    "SweepReport",
    "SWEEP_EXECUTORS",
    "run_cell",
]
