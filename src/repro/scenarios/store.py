"""On-disk run store: one JSON per spec hash, written atomically.

The store is what makes sweeps *resumable*: every completed cell is
persisted under its :meth:`~repro.scenarios.spec.ScenarioSpec.spec_hash`
(a key of the resolved config, not the cell's name), so rerunning an
interrupted sweep re-executes only the cells whose files are missing.
Writes go through a temp file + ``os.replace`` so a kill mid-write never
leaves a truncated cell that would poison the resume.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.fl.history import History
from repro.io.history_io import history_from_dict, history_to_dict
from repro.scenarios.spec import ScenarioSpec

__all__ = ["RunStore"]


class RunStore:
    """A directory of ``<spec_hash>.json`` cells (created on first write)."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def path_for(self, spec: ScenarioSpec) -> Path:
        """Where ``spec``'s result lives (whether or not it exists yet)."""
        return self.root / f"{spec.spec_hash()}.json"

    def _read(self, spec: ScenarioSpec) -> dict | None:
        """The cell's payload if finished and readable, else None.

        One read + parse serves both :meth:`completed` and :meth:`load`
        (cell files carry whole histories — parsing twice per resumed cell
        would double resume I/O on large grids).
        """
        path = self.path_for(spec)
        if not path.is_file():
            return None
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return None  # torn/foreign file: treat as missing, re-run
        if not isinstance(data, dict):
            return None  # foreign non-object JSON: ditto
        return data if data.get("completed") else None

    def completed(self, spec: ScenarioSpec) -> bool:
        """True iff a finished, readable result for ``spec`` is on disk."""
        return self._read(spec) is not None

    def save(self, spec: ScenarioSpec, history: History) -> Path:
        """Persist one finished cell atomically; returns its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        payload = {
            "spec": spec.to_dict(),
            "spec_hash": spec.spec_hash(),
            "history": history_to_dict(history),
            "completed": True,
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
        return path

    def load(self, spec: ScenarioSpec) -> History | None:
        """The persisted history for ``spec``, or None if not completed."""
        data = self._read(spec)
        return None if data is None else history_from_dict(data["history"])

    def load_all(self) -> list[tuple[ScenarioSpec, History]]:
        """Every finished cell in the store, deterministically ordered.

        Sorted by (spec name, spec hash) — not directory order — so
        post-hoc consumers (``repro report --store``) render identically
        regardless of filesystem enumeration. Torn or foreign files are
        skipped, matching :meth:`completed_hashes`.
        """
        out: list[tuple[ScenarioSpec, History]] = []
        if not self.root.is_dir():
            return out
        for path in self.root.glob("*.json"):
            try:
                data = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                continue
            if not isinstance(data, dict) or not data.get("completed"):
                continue
            try:
                spec = ScenarioSpec.from_dict(data["spec"])
                history = history_from_dict(data["history"])
            except (KeyError, TypeError, ValueError):
                continue
            out.append((spec, history))
        out.sort(key=lambda cell: (cell[0].name, cell[0].spec_hash()))
        return out

    def completed_hashes(self) -> set[str]:
        """Spec hashes of every finished cell in the store."""
        out: set[str] = set()
        if not self.root.is_dir():
            return out
        for path in self.root.glob("*.json"):
            try:
                data = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                continue
            if isinstance(data, dict) and data.get("completed"):
                out.add(data.get("spec_hash", path.stem))
        return out
