"""Multi-dimensional sweep grids over scenario specs.

:func:`expand_grid` takes a base (a :class:`ScenarioSpec` or a raw
``ExperimentConfig``) and a dict of axes — config field → list of values —
and returns the cartesian product as concrete specs, optionally replicated
over seeds. Axis values are typed through the config dataclass's declared
field types (:func:`~repro.scenarios.spec.coerce_field`), so CLI strings
like ``"false"`` or ``"none"`` land as ``False``/``None``, not truthy
strings. Expansion order is deterministic: axes vary right-to-left (the
last axis fastest), seeds innermost.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import replace

from repro.fl.config import ExperimentConfig
from repro.scenarios.spec import ScenarioSpec, coerce_field

__all__ = ["parse_axis", "expand_grid", "cell_label"]


def parse_axis(text: str) -> tuple[str, list]:
    """Parse one ``field=v1,v2,...`` CLI axis into (field, typed values).

    Values are typed through the config field's declared type — the fix for
    sweeping boolean/None-able fields, which the old parser stringified
    (``bool("false") is True``). Raises ``ValueError`` on a malformed axis,
    an unknown field, an untypeable value, or an empty value list.
    """
    field_name, sep, raw = text.partition("=")
    field_name = field_name.strip()
    if not sep or not field_name:
        raise ValueError(f"axis must look like field=v1,v2,..., got {text!r}")
    values = [coerce_field(field_name, v.strip()) for v in raw.split(",") if v.strip() != ""]
    if not values:
        raise ValueError(f"axis {field_name!r} has no values in {text!r}")
    return field_name, values


def cell_label(axes: dict) -> str:
    """Canonical ``f1=v1,f2=v2`` label of one grid cell's coordinates."""
    return ",".join(f"{k}={v}" for k, v in axes.items())


def expand_grid(
    base: ScenarioSpec | ExperimentConfig,
    axes: dict[str, Sequence],
    *,
    seeds: int | Sequence[int] | None = None,
) -> list[ScenarioSpec]:
    """The cartesian product of ``axes`` over ``base``, one spec per cell.

    ``base`` supplies everything the axes don't vary (an
    ``ExperimentConfig`` is bridged to an anonymous spec first). ``seeds``
    replicates every cell: an int ``k`` means seeds ``s0..s0+k-1`` starting
    at the base config's own seed, a sequence is used verbatim, and
    ``None`` keeps the base seed (no replication axis). Each returned
    spec's ``axes`` dict records its coordinates — including ``seed`` when
    replicated — which is what sweep reports compute marginals over.
    Sweeping ``seed`` both ways (an explicit axis *and* ``seeds=``) is
    refused rather than silently overridden.
    """
    if isinstance(base, ExperimentConfig):
        base = ScenarioSpec.from_config(base, name="grid")
    names = list(axes)
    typed: list[list] = []
    for name in names:
        values = [coerce_field(name, v) for v in axes[name]]
        if not values:
            raise ValueError(f"axis {name!r} has no values")
        typed.append(values)

    if seeds is None:
        seed_values: list[int] | None = None
    elif isinstance(seeds, int):
        if seeds < 1:
            raise ValueError(f"seeds must be >= 1, got {seeds}")
        seed0 = int(base.overrides.get("seed", ExperimentConfig().seed))
        seed_values = [seed0 + i for i in range(seeds)]
    else:
        seed_values = [int(s) for s in seeds]
        if not seed_values:
            raise ValueError("seeds sequence is empty")
    if seed_values is not None and "seed" in names:
        raise ValueError("'seed' is already a grid axis; drop the seeds= replication")

    cells: list[ScenarioSpec] = []
    for combo in itertools.product(*typed) if names else [()]:
        coords = dict(zip(names, combo))
        for seed in seed_values if seed_values is not None else [None]:
            cell_axes = dict(coords)
            overrides = dict(coords)
            if seed is not None:
                cell_axes["seed"] = seed
                overrides["seed"] = seed
            cells.append(
                replace(
                    base.with_overrides(**overrides),
                    name=f"{base.name}[{cell_label(cell_axes)}]" if cell_axes else base.name,
                    axes=cell_axes,
                )
            )
    return cells
