"""Serializable experiment scenarios.

A :class:`ScenarioSpec` is a *complete, declarative* description of one
experiment: a name, prose (what the scenario models, what outcome to
expect), tags, and the :class:`~repro.fl.config.ExperimentConfig` fields
that differ from the defaults. It round-trips losslessly through plain
dicts (``to_dict``/``from_dict``), bridges to the live config
(``to_config``/``from_config``), and hashes stably (``spec_hash``) so the
sweep run store can key persisted results by *what was run*, not by when.

Values entering a spec — from JSON, from CLI ``--grid field=a,b,c`` axes —
are typed through the config dataclass's own declared field types by
:func:`coerce_field`, so ``"false"`` becomes ``False`` for a bool field and
``"none"`` becomes ``None`` for an optional one instead of a truthy string.
"""

from __future__ import annotations

import hashlib
import json
import types
import typing
from dataclasses import dataclass, field, fields, replace

from repro.fl.config import ExperimentConfig

__all__ = [
    "ScenarioSpec",
    "coerce_field",
    "config_field_names",
    "config_to_dict",
    "config_overrides",
]

#: Strings accepted (case-insensitively) as ``None`` for optional fields.
_NONE_WORDS = frozenset({"none", "null", "nil", "~"})
_TRUE_WORDS = frozenset({"true", "1", "yes", "on"})
_FALSE_WORDS = frozenset({"false", "0", "no", "off"})


def _field_types() -> dict[str, type]:
    """Resolved annotation per ExperimentConfig field (cached)."""
    cache = getattr(_field_types, "_cache", None)
    if cache is None:
        cache = typing.get_type_hints(ExperimentConfig)
        _field_types._cache = cache
    return cache


def config_field_names() -> tuple[str, ...]:
    """The ExperimentConfig field names, in declaration order."""
    return tuple(f.name for f in fields(ExperimentConfig))


def _unwrap_optional(tp) -> tuple[type, bool]:
    """(base type, is_optional) for ``X | None`` annotations."""
    if isinstance(tp, types.UnionType) or typing.get_origin(tp) is typing.Union:
        args = [a for a in typing.get_args(tp) if a is not type(None)]
        if len(args) == 1:
            return args[0], True
    return tp, False


def coerce_field(name: str, value):
    """Type ``value`` through ExperimentConfig's declared type for ``name``.

    Accepts already-typed values (JSON loads, programmatic overrides) and
    strings (CLI axes). Booleans parse ``true/false``-style words instead of
    Python's truthiness — ``bool("false")`` is ``True``, which is exactly
    the ``cli sweep`` bug this helper exists to fix — and optional fields
    accept ``None`` or the word ``"none"``. Raises ``ValueError`` on
    unknown fields or unparseable values.
    """
    try:
        tp = _field_types()[name]
    except KeyError:
        known = ", ".join(config_field_names())
        raise ValueError(f"unknown config field {name!r}; expected one of: {known}") from None
    base, optional = _unwrap_optional(tp)

    # None-words map to None only for optional fields: "none" is a real
    # *value* of plain str fields (e.g. contention="none").
    if optional and (
        value is None
        or (isinstance(value, str) and value.strip().lower() in _NONE_WORDS)
    ):
        return None
    if value is None:
        raise ValueError(f"field {name!r} ({base.__name__}) does not accept None")

    if base is bool:
        if isinstance(value, bool):
            return value
        word = str(value).strip().lower()
        if word in _TRUE_WORDS:
            return True
        if word in _FALSE_WORDS:
            return False
        raise ValueError(f"field {name!r} expects a boolean, got {value!r}")
    if base is int:
        if isinstance(value, bool):
            raise ValueError(f"field {name!r} expects an int, got {value!r}")
        if isinstance(value, float) and not value.is_integer():
            raise ValueError(f"field {name!r} expects an int, got {value!r}")
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ValueError(f"field {name!r} expects an int, got {value!r}") from None
    if base is float:
        if isinstance(value, bool):
            raise ValueError(f"field {name!r} expects a float, got {value!r}")
        try:
            return float(value)
        except (TypeError, ValueError):
            raise ValueError(f"field {name!r} expects a float, got {value!r}") from None
    if base is str:
        return str(value)
    raise ValueError(f"field {name!r} has unsupported type {tp!r}")  # pragma: no cover


def config_to_dict(config: ExperimentConfig) -> dict:
    """Every config field as a plain JSON-able dict, in declaration order."""
    return {name: getattr(config, name) for name in config_field_names()}


def config_overrides(config: ExperimentConfig) -> dict:
    """The fields of ``config`` that differ from the dataclass defaults."""
    defaults = ExperimentConfig()
    return {
        name: getattr(config, name)
        for name in config_field_names()
        if getattr(config, name) != getattr(defaults, name)
    }


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, self-contained experiment description.

    ``overrides`` holds the ExperimentConfig fields that differ from the
    defaults — the *whole* experiment (dataset/partition, algorithm,
    compressor, protocol mode, hierarchy, transport/contention, seed) is
    reachable through them. ``axes`` records this spec's coordinates in a
    sweep grid (set by :func:`~repro.scenarios.grid.expand_grid`; empty for
    standalone scenarios) so reports can compute per-axis marginals.
    ``description`` says what the scenario models and ``expected`` the
    qualitative outcome — both feed the generated ``docs/SCENARIOS.md``.
    """

    name: str
    description: str = ""
    expected: str = ""
    tags: tuple[str, ...] = ()
    overrides: dict = field(default_factory=dict)
    axes: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        # Validate eagerly: every override must name a real field and carry
        # a value of its declared type. (Cross-field constraints are checked
        # by ExperimentConfig itself in to_config().)
        typed = {k: coerce_field(k, v) for k, v in self.overrides.items()}
        object.__setattr__(self, "overrides", typed)
        object.__setattr__(self, "tags", tuple(self.tags))

    # ------------------------------------------------------------- bridging

    def to_config(self) -> ExperimentConfig:
        """The live (validated) ExperimentConfig this spec describes."""
        return ExperimentConfig(**self.overrides)

    @classmethod
    def from_config(
        cls,
        config: ExperimentConfig,
        *,
        name: str,
        description: str = "",
        expected: str = "",
        tags: tuple[str, ...] = (),
        axes: dict | None = None,
    ) -> "ScenarioSpec":
        """Capture a config as a spec (only non-default fields are stored)."""
        return cls(
            name=name,
            description=description,
            expected=expected,
            tags=tags,
            overrides=config_overrides(config),
            axes=dict(axes or {}),
        )

    def with_overrides(self, **extra) -> "ScenarioSpec":
        """A copy with ``extra`` config fields layered on top."""
        merged = dict(self.overrides)
        merged.update(extra)
        return replace(self, overrides=merged)

    # --------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Plain JSON-able representation; ``from_dict`` round-trips it."""
        return {
            "name": self.name,
            "description": self.description,
            "expected": self.expected,
            "tags": list(self.tags),
            "overrides": dict(self.overrides),
            "axes": dict(self.axes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (values re-typed)."""
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            expected=data.get("expected", ""),
            tags=tuple(data.get("tags", ())),
            overrides=dict(data.get("overrides", {})),
            axes=dict(data.get("axes", {})),
        )

    # ---------------------------------------------------------------- hashing

    def spec_hash(self) -> str:
        """Stable 16-hex-digit key of the *resolved* experiment.

        Hashes the full effective config (defaults filled in), so two specs
        describing the same experiment — regardless of name, prose, or
        which fields were spelled out — share a run-store cell, and a
        default's value changing in a future version changes the key
        (stale cached results are not silently reused).
        """
        payload = json.dumps(config_to_dict(self.to_config()), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def summary(self) -> str:
        """One-line human summary: name, mode, algorithm, key knobs."""
        cfg = self.to_config()
        parts = [f"mode={cfg.mode}", f"algorithm={cfg.algorithm}"]
        if cfg.compressor is not None:
            parts.append(f"compressor={cfg.compressor}")
        if cfg.contention != "none":
            parts.append(f"contention={cfg.contention}")
        if cfg.mode == "hier":
            parts.append(f"edges={cfg.num_edges}")
        parts.append(f"seed={cfg.seed}")
        return f"{self.name}: " + " ".join(parts)
