"""Cross-run aggregation over a sweep's (spec, history) cells.

A :class:`SweepReport` answers the questions a grid was run to ask:
which cells won (:meth:`best_cells`), what each axis did on its own
(:meth:`marginals` — mean over every other axis and seed), and where the
time-to-accuracy frontier lies (:meth:`time_to_accuracy_frontier` for a
fixed target, :meth:`pareto_frontier` for the full accuracy-vs-virtual-time
trade-off). Rendering lives in
:func:`repro.experiments.reporting.summarize_sweep` and
:func:`repro.viz.ascii.ascii_sweep_grid`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fl.history import History
from repro.scenarios.grid import cell_label
from repro.scenarios.spec import ScenarioSpec

__all__ = ["SweepReport"]


def _final(h: History) -> float | None:
    try:
        return h.final_accuracy()
    except ValueError:
        return None


def _best(h: History) -> float | None:
    try:
        return h.best_accuracy()
    except ValueError:
        return None


def _virtual_end(h: History) -> float | None:
    if not h.records:
        return None
    return h.records[-1].sim_end


@dataclass
class SweepReport:
    """The outcome of one sweep: ordered cells plus resume accounting.

    ``executed``/``reused`` count cells run fresh vs loaded from the run
    store (``executed + reused == len(cells)``).
    """

    cells: list[tuple[ScenarioSpec, History]] = field(default_factory=list)
    executed: int = 0
    reused: int = 0

    def __len__(self) -> int:
        return len(self.cells)

    @staticmethod
    def label(spec: ScenarioSpec) -> str:
        """Row label: the cell's grid coordinates, else its name."""
        return cell_label(spec.axes) if spec.axes else spec.name

    def axis_names(self) -> list[str]:
        """Every axis appearing in any cell, in first-seen order."""
        seen: dict[str, None] = {}
        for spec, _ in self.cells:
            for name in spec.axes:
                seen.setdefault(name)
        return list(seen)

    # ------------------------------------------------------------- rankings

    def best_cells(
        self, *, metric: str = "final", top: int | None = None
    ) -> list[tuple[ScenarioSpec, History, float]]:
        """Cells ranked by ``metric`` (``"final"`` or ``"best"`` accuracy).

        Cells without evaluations are omitted. Ties keep sweep order, so
        rankings are deterministic.
        """
        if metric not in ("final", "best"):
            raise ValueError(f"metric must be 'final' or 'best', got {metric!r}")
        score = _final if metric == "final" else _best
        scored = [
            (spec, h, s)
            for spec, h in self.cells
            if (s := score(h)) is not None
        ]
        scored.sort(key=lambda row: -row[2])
        return scored if top is None else scored[:top]

    def marginals(self) -> dict[str, dict[object, dict[str, float]]]:
        """Per-axis value → {mean_final, mean_best, n}, marginalized.

        Each axis value averages over every cell carrying it — i.e. over
        all other axes and seed replicates — the standard reading of a
        factorial sweep. Values keep their first-seen order.
        """
        out: dict[str, dict[object, dict[str, float]]] = {}
        for axis in self.axis_names():
            buckets: dict[object, list[tuple[float, float]]] = {}
            for spec, h in self.cells:
                if axis not in spec.axes:
                    continue
                f, b = _final(h), _best(h)
                if f is None or b is None:
                    continue
                buckets.setdefault(spec.axes[axis], []).append((f, b))
            out[axis] = {
                value: {
                    "mean_final": sum(f for f, _ in pairs) / len(pairs),
                    "mean_best": sum(b for _, b in pairs) / len(pairs),
                    "n": float(len(pairs)),
                }
                for value, pairs in buckets.items()
                if pairs
            }
        return out

    def robustness_curve(
        self, axis: str = "adversary_fraction"
    ) -> list[tuple[float, dict[str, float]]]:
        """Accuracy versus attack/fault intensity: the robustness axis.

        Rows are ``(axis value, {mean_final, mean_best, n})`` sorted by
        ascending intensity — marginalized over every other axis and seed,
        so a ``--grid adversary_fraction=0,0.1,0.3`` sweep reads off as one
        degradation curve per aggregator. Empty when no cell carries the
        axis.
        """
        buckets = self.marginals().get(axis, {})
        rows = []
        for value, stats in buckets.items():
            try:
                x = float(value)
            except (TypeError, ValueError):
                continue
            rows.append((x, stats))
        rows.sort(key=lambda r: r[0])
        return rows

    # ------------------------------------------------------------ frontiers

    def time_to_accuracy_frontier(
        self, target: float
    ) -> list[tuple[ScenarioSpec, float | None]]:
        """Cells ordered by virtual time to first reach ``target`` accuracy.

        Cells that never reach it sort last (time ``None``), so the head of
        the list *is* the frontier: the fastest routes to the target.
        """
        rows = [(spec, h.simtime_to_accuracy(target)) for spec, h in self.cells]
        order = sorted(
            range(len(rows)),
            key=lambda i: (rows[i][1] is None, rows[i][1] if rows[i][1] is not None else 0.0),
        )
        return [rows[i] for i in order]

    def pareto_frontier(self) -> list[tuple[ScenarioSpec, History, float, float]]:
        """Non-dominated cells on (total virtual time ↓, best accuracy ↑).

        A cell is on the frontier iff no other cell is at least as accurate
        in strictly less virtual time (and strictly better in one of the
        two). Returned sorted by virtual time.
        """
        rows = [
            (spec, h, t, acc)
            for spec, h in self.cells
            if (t := _virtual_end(h)) is not None and (acc := _best(h)) is not None
        ]
        rows.sort(key=lambda r: (r[2], -r[3]))
        frontier: list[tuple[ScenarioSpec, History, float, float]] = []
        best_acc = float("-inf")
        for row in rows:
            if row[3] > best_acc:
                frontier.append(row)
                best_acc = row[3]
        return frontier

    # ------------------------------------------------------------ exporting

    def to_dict(self) -> dict:
        """JSON-able summary (specs + headline metrics, not full curves)."""
        return {
            "executed": self.executed,
            "reused": self.reused,
            "cells": [
                {
                    "spec": spec.to_dict(),
                    "final_accuracy": _final(h),
                    "best_accuracy": _best(h),
                    "virtual_time": _virtual_end(h),
                    "rounds": len(h),
                }
                for spec, h in self.cells
            ],
        }
