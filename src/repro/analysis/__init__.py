"""Diagnostics: client drift and compression fidelity."""

from repro.analysis.drift import (
    cosine_similarity_matrix,
    gradient_diversity,
    mean_pairwise_cosine,
    update_norm_dispersion,
)
from repro.analysis.fairness import FairnessReport, fairness_report, per_client_accuracy
from repro.analysis.fidelity import aggregation_fidelity, relative_error, retained_mass
from repro.analysis.layerwise import layer_density, layer_singleton_fraction

__all__ = [
    "layer_density",
    "layer_singleton_fraction",
    "FairnessReport",
    "fairness_report",
    "per_client_accuracy",
    "cosine_similarity_matrix",
    "mean_pairwise_cosine",
    "gradient_diversity",
    "update_norm_dispersion",
    "retained_mass",
    "relative_error",
    "aggregation_fidelity",
]
