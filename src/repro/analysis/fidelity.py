"""Compression-fidelity diagnostics.

Quantifies what a compressor does to an update stream: relative error,
retained-mass fraction, and the effective server-side signal after masked
weighted averaging — the quantity OPWA is designed to restore (Sec. 4.1.3's
"diminished client update signals").
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedUpdate
from repro.core.aggregation import weighted_sparse_sum

__all__ = ["retained_mass", "relative_error", "aggregation_fidelity"]


def retained_mass(update: np.ndarray, compressed: CompressedUpdate, *, ord: int = 2) -> float:
    """Fraction of the update's Lp mass the compressed form carries."""
    dense = compressed.to_dense().astype(np.float64)
    total = float(np.linalg.norm(update.astype(np.float64), ord=ord))
    if total == 0.0:
        return 1.0
    return float(np.linalg.norm(dense, ord=ord)) / total


def relative_error(update: np.ndarray, compressed: CompressedUpdate) -> float:
    """Relative L2 reconstruction error ‖u − û‖/‖u‖."""
    dense = compressed.to_dense().astype(np.float64)
    denom = float(np.linalg.norm(update))
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(update.astype(np.float64) - dense)) / denom


def aggregation_fidelity(
    updates: list[np.ndarray],
    compressed: list[CompressedUpdate],
    weights: np.ndarray,
    *,
    mask: np.ndarray | None = None,
) -> float:
    """Cosine similarity between the true weighted average of dense updates
    and the (optionally OPWA-masked) aggregate of their compressed forms.

    This is the end-to-end quantity that matters to convergence: a mask that
    raises it moves the server step closer to the uncompressed direction —
    the paper's Eq. 7 rationale, measurable.
    """
    if len(updates) != len(compressed):
        raise ValueError(f"{len(updates)} dense vs {len(compressed)} compressed updates")
    weights = np.asarray(weights, dtype=np.float64)
    true = np.zeros(updates[0].shape[0], dtype=np.float64)
    for w, u in zip(weights, updates):
        true += w * u.astype(np.float64)
    approx = weighted_sparse_sum(compressed, weights, mask=mask)
    denom = np.linalg.norm(true) * np.linalg.norm(approx)
    if denom == 0.0:
        return 1.0 if not true.any() and not approx.any() else 0.0
    return float(true @ approx / denom)
