"""Per-client fairness of the global model.

Under non-IID data a single global accuracy hides dispersion: the model may
serve majority-class clients well and minority clients poorly. These
helpers evaluate the global model on each client's *local* data
distribution and summarize the spread (Li et al.'s fair-FL metrics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fl.simulation import Simulation
from repro.nn.params import set_flat_params

__all__ = ["FairnessReport", "per_client_accuracy", "fairness_report"]


@dataclass(frozen=True)
class FairnessReport:
    """Spread statistics of per-client accuracies."""

    accuracies: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.accuracies.mean())

    @property
    def std(self) -> float:
        return float(self.accuracies.std())

    @property
    def worst(self) -> float:
        """Worst-served client (Rawlsian fairness)."""
        return float(self.accuracies.min())

    @property
    def best(self) -> float:
        return float(self.accuracies.max())

    def bottom_decile_mean(self) -> float:
        """Mean accuracy of the worst 10 % of clients (at least one)."""
        k = max(1, int(np.ceil(0.1 * self.accuracies.size)))
        return float(np.sort(self.accuracies)[:k].mean())


def per_client_accuracy(sim: Simulation, batch_size: int = 256) -> np.ndarray:
    """Accuracy of the current global model on each client's local shard."""
    set_flat_params(sim.model, sim.global_params)
    for live, saved in zip(sim.model.state_arrays(), sim.global_states):
        live[...] = saved
    flatten = sim.config.model == "mlp"
    out = np.zeros(len(sim.clients))
    for i, client in enumerate(sim.clients):
        ds = client.dataset
        correct = 0
        for start in range(0, len(ds), batch_size):
            x = ds.x[start : start + batch_size]
            y = ds.y[start : start + batch_size]
            if flatten:
                x = x.reshape(x.shape[0], -1)
            logits = sim.model(x, training=False)
            correct += int((logits.argmax(axis=1) == y).sum())
        out[i] = correct / len(ds)
    return out


def fairness_report(sim: Simulation) -> FairnessReport:
    """Evaluate and summarize per-client accuracy of the global model."""
    return FairnessReport(accuracies=per_client_accuracy(sim))
