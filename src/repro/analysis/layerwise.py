"""Per-layer decomposition of compression and overlap statistics.

Global Top-K concentrates retained entries in large layers and can starve
small ones; the degree-of-overlap pattern likewise varies by layer. These
helpers split flat-vector statistics back into the model's named parameter
ranges (via ``repro.nn.params.param_slices``).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import SparseUpdate
from repro.core.overlap import overlap_counts

__all__ = ["layer_density", "layer_singleton_fraction"]


def layer_density(
    update: SparseUpdate, slices: list[tuple[str, slice, tuple[int, ...]]]
) -> dict[str, float]:
    """Retained fraction per named parameter range for one sparse update."""
    retained = np.zeros(update.dense_size, dtype=bool)
    retained[update.indices] = True
    out: dict[str, float] = {}
    for name, sl, _shape in slices:
        size = sl.stop - sl.start
        out[name] = float(retained[sl].sum()) / size if size else 0.0
    return out


def layer_singleton_fraction(
    updates: list[SparseUpdate], slices: list[tuple[str, slice, tuple[int, ...]]]
) -> dict[str, float]:
    """Fig. 4's singleton fraction computed per named parameter range.

    Ranges where no index was retained report ``nan`` (no retained
    population to take a fraction of).
    """
    counts = overlap_counts(updates)
    out: dict[str, float] = {}
    for name, sl, _shape in slices:
        seg = counts[sl]
        retained = int((seg > 0).sum())
        if retained == 0:
            out[name] = float("nan")
        else:
            out[name] = float((seg == 1).sum()) / retained
    return out
