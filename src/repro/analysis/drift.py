"""Client-drift diagnostics.

The paper's motivation rests on client drift under non-IID data ("client
shift problem", Sec. 3.2): local optima diverge from the global optimum, so
client updates disagree. These metrics quantify that disagreement from the
per-round client deltas, letting experiments *show* the heterogeneity that
Dirichlet β only asserts.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cosine_similarity_matrix",
    "mean_pairwise_cosine",
    "gradient_diversity",
    "update_norm_dispersion",
]


def _as_matrix(updates: list[np.ndarray]) -> np.ndarray:
    if len(updates) < 1:
        raise ValueError("need at least one update")
    mat = np.stack([np.asarray(u, dtype=np.float64) for u in updates])
    if mat.ndim != 2:
        raise ValueError("updates must be flat vectors")
    return mat


def cosine_similarity_matrix(updates: list[np.ndarray]) -> np.ndarray:
    """Pairwise cosine similarity of client updates (n×n, symmetric)."""
    mat = _as_matrix(updates)
    norms = np.linalg.norm(mat, axis=1, keepdims=True)
    norms = np.maximum(norms, 1e-12)
    unit = mat / norms
    return unit @ unit.T


def mean_pairwise_cosine(updates: list[np.ndarray]) -> float:
    """Average off-diagonal cosine similarity: 1 = aligned clients (IID-like),
    near 0 = orthogonal updates (severe drift)."""
    sim = cosine_similarity_matrix(updates)
    n = sim.shape[0]
    if n < 2:
        raise ValueError("need at least two updates for pairwise similarity")
    off = sim[~np.eye(n, dtype=bool)]
    return float(off.mean())


def gradient_diversity(updates: list[np.ndarray]) -> float:
    """Yin et al.'s gradient diversity: Σ‖u_i‖² / ‖Σ u_i‖².

    Equals 1/n for identical updates and grows as updates decorrelate; large
    diversity means averaging cancels signal — the regime where OPWA's
    amplification of unique parameters matters.
    """
    mat = _as_matrix(updates)
    num = float((mat**2).sum())
    denom = float((mat.sum(axis=0) ** 2).sum())
    if denom == 0.0:
        return float("inf")
    return num / denom


def update_norm_dispersion(updates: list[np.ndarray]) -> float:
    """Coefficient of variation of client update norms (system imbalance)."""
    mat = _as_matrix(updates)
    norms = np.linalg.norm(mat, axis=1)
    mean = norms.mean()
    if mean == 0.0:
        return 0.0
    return float(norms.std() / mean)
