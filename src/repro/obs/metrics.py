"""A labeled metrics registry: counters, gauges, histograms, snapshots.

:class:`MetricsRegistry` hands out instruments keyed by ``(name, labels)``
— ``registry.counter("wire_bits", kind="sparse")`` — created on first use.
Three instrument kinds:

- :class:`Counter` — monotonically increasing total (``inc``);
- :class:`Gauge` — last-set value, with its observed peak (``set``);
- :class:`Histogram` — fixed-bucket distribution (``observe``), exported
  Prometheus-style with cumulative ``le`` buckets plus count/sum/min/max.

:meth:`MetricsRegistry.snapshot` freezes every current value under a round
index, so per-round series (hydration misses per round, wire bits per
round) can be reconstructed from one export. Exports:
:meth:`~MetricsRegistry.export_json` (full registry + snapshots) and
:meth:`~MetricsRegistry.export_prometheus` (the text exposition format, for
eyeballs and scrape-compatible tooling).

The disabled path is :class:`NullMetrics`: its instrument getters return
one shared no-op instrument, so un-observed code paths cost an attribute
load and a call. Instruments never touch RNG state — the determinism
contract of :mod:`repro.obs` holds with metrics on or off.
"""

from __future__ import annotations

import json
import math

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (seconds-flavored; +inf implied).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def current(self) -> float:
        return self.value


class Gauge:
    """A last-set value, tracking its observed peak."""

    __slots__ = ("value", "peak")
    kind = "gauge"

    def __init__(self):
        self.value = 0.0
        self.peak = -math.inf

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.value > self.peak:
            self.peak = self.value

    def current(self) -> float:
        return self.value


class Histogram:
    """A fixed-bucket distribution of observations."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds}")
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # last = +inf
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def current(self) -> float:
        return self.count


class _NullInstrument:
    """One object serving as the disabled counter/gauge/histogram."""

    __slots__ = ()
    kind = "null"
    value = 0.0
    peak = 0.0
    count = 0
    total = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def current(self) -> float:
        return 0.0

    def mean(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: every instrument getter is a shared no-op."""

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, *, buckets=None, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self, round_index: int) -> None:
        pass


NULL_METRICS = NullMetrics()


def _key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """Instruments keyed by ``(name, labels)``, with per-round snapshots."""

    enabled = True

    def __init__(self):
        self._instruments: dict[tuple, object] = {}
        #: ``[{"round": r, "values": {"name{k=v}": value, ...}}, ...]``
        self.snapshots: list[dict] = []

    # ---------------------------------------------------------- instruments

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = _key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(**kwargs)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r}{labels} already registered as {inst.kind}, "
                f"requested {cls.kind}"
            )
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, *, buckets=None, **labels) -> Histogram:
        if buckets is None:
            return self._get(Histogram, name, labels)
        return self._get(Histogram, name, labels, bounds=tuple(buckets))

    def value(self, name: str, **labels) -> float:
        """Current value of one instrument (0.0 if never touched)."""
        inst = self._instruments.get(_key(name, labels))
        return inst.current() if inst is not None else 0.0

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        return iter(sorted(self._instruments.items()))

    # ------------------------------------------------------------ snapshots

    @staticmethod
    def _series_name(key: tuple) -> str:
        name, labels = key
        if not labels:
            return name
        inner = ",".join(f"{k}={v}" for k, v in labels)
        return f"{name}{{{inner}}}"

    def snapshot(self, round_index: int) -> None:
        """Freeze every instrument's current value under ``round_index``."""
        self.snapshots.append(
            {
                "round": int(round_index),
                "values": {
                    self._series_name(key): inst.current()
                    for key, inst in sorted(self._instruments.items())
                },
            }
        )

    # -------------------------------------------------------------- export

    def to_dict(self) -> dict:
        """The registry as one JSON-ready document."""
        metrics = []
        for (name, labels), inst in sorted(self._instruments.items()):
            row: dict = {"name": name, "labels": dict(labels), "kind": inst.kind}
            if isinstance(inst, Counter):
                row["value"] = inst.value
            elif isinstance(inst, Gauge):
                row["value"] = inst.value
                row["peak"] = None if inst.peak == -math.inf else inst.peak
            else:
                assert isinstance(inst, Histogram)
                row.update(
                    count=inst.count,
                    sum=inst.total,
                    min=None if inst.count == 0 else inst.min,
                    max=None if inst.count == 0 else inst.max,
                    mean=inst.mean(),
                    buckets=[
                        {"le": le, "count": c}
                        for le, c in zip((*inst.bounds, math.inf), inst.bucket_counts)
                    ],
                )
            metrics.append(row)
        return {"schema": 1, "metrics": metrics, "snapshots": self.snapshots}

    def export_json(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, default=str)
            fh.write("\n")

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (one final scrape)."""

        def fmt_labels(labels: dict, extra: dict | None = None) -> str:
            merged = {**labels, **(extra or {})}
            if not merged:
                return ""
            inner = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
            return "{" + inner + "}"

        by_name: dict[str, list] = {}
        for (name, labels), inst in sorted(self._instruments.items()):
            by_name.setdefault(name, []).append((dict(labels), inst))

        lines: list[str] = []
        for name, rows in by_name.items():
            kind = rows[0][1].kind
            lines.append(f"# TYPE {name} {kind}")
            for labels, inst in rows:
                if isinstance(inst, Counter):
                    lines.append(f"{name}_total{fmt_labels(labels)} {inst.value:g}")
                elif isinstance(inst, Gauge):
                    lines.append(f"{name}{fmt_labels(labels)} {inst.value:g}")
                else:
                    assert isinstance(inst, Histogram)
                    cumulative = 0
                    for le, c in zip((*inst.bounds, math.inf), inst.bucket_counts):
                        cumulative += c
                        le_txt = "+Inf" if le == math.inf else f"{le:g}"
                        lines.append(
                            f"{name}_bucket{fmt_labels(labels, {'le': le_txt})} {cumulative}"
                        )
                    lines.append(f"{name}_sum{fmt_labels(labels)} {inst.total:g}")
                    lines.append(f"{name}_count{fmt_labels(labels)} {inst.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def export_prometheus(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_prometheus())
