"""Hot-spot ranking over an exported trace.

:func:`profile_spans` aggregates a trace's wall-clock spans by name and
ranks them by **self time** — each span's duration minus the spans nested
inside it on the same lane — so a parent phase ("round") does not absorb
the credit for its children ("exec.round", "aggregate"). This is the
profile-then-optimize entry point the ROADMAP's hot-path item asks for:
``python -m repro profile trace.json`` prints the table.

:func:`lane_utilization` reports per-lane busy fractions (union of span
coverage over the trace's extent), which for process-backend traces is the
per-worker utilization — idle lanes mean the round's critical path is one
straggler task or the serial section between fan-outs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.tracer import Span, load_trace

__all__ = ["HotSpot", "profile_spans", "profile_trace", "lane_utilization", "format_profile"]


@dataclass(frozen=True)
class HotSpot:
    """Aggregated cost of one span name across the trace."""

    name: str
    cat: str
    count: int
    total_s: float  # inclusive wall time
    self_s: float  # exclusive wall time (minus nested same-lane spans)
    mean_s: float
    max_s: float


def _self_times(spans: list[Span]) -> list[float]:
    """Exclusive duration of each span (same order as ``spans``).

    Spans are grouped per lane; within a lane, a stack over the spans
    sorted by ``(start, -end)`` attributes each span's duration to itself
    minus the durations of spans strictly nested inside it. Overlapping
    non-nested spans (possible across worker lanes, not within one) are
    treated as siblings.
    """
    self_s = [0.0] * len(spans)
    by_tid: dict[int, list[int]] = {}
    for i, s in enumerate(spans):
        by_tid.setdefault(s.tid, []).append(i)
    for indices in by_tid.values():
        order = sorted(indices, key=lambda i: (spans[i].start, -spans[i].end))
        stack: list[int] = []  # indices of currently-open enclosing spans
        for i in order:
            s = spans[i]
            while stack and spans[stack[-1]].end <= s.start:
                stack.pop()
            self_s[i] += s.dur
            if stack and spans[stack[-1]].end >= s.end:
                self_s[stack[-1]] -= s.dur  # nested: parent loses the overlap
            stack.append(i)
    return self_s


def profile_spans(spans: list[Span], *, top: int | None = None) -> list[HotSpot]:
    """Rank span names by self time (descending)."""
    self_s = _self_times(spans)
    agg: dict[str, dict] = {}
    for s, own in zip(spans, self_s):
        row = agg.get(s.name)
        if row is None:
            row = agg[s.name] = {
                "cat": s.cat, "count": 0, "total": 0.0, "self": 0.0, "max": 0.0,
            }
        row["count"] += 1
        row["total"] += s.dur
        row["self"] += own
        if s.dur > row["max"]:
            row["max"] = s.dur
    spots = [
        HotSpot(
            name=name,
            cat=row["cat"],
            count=row["count"],
            total_s=row["total"],
            self_s=row["self"],
            mean_s=row["total"] / row["count"],
            max_s=row["max"],
        )
        for name, row in agg.items()
    ]
    spots.sort(key=lambda h: h.self_s, reverse=True)
    return spots if top is None else spots[:top]


def profile_trace(path, *, top: int | None = None) -> list[HotSpot]:
    """Load a trace file (Chrome JSON or JSONL) and rank its hot spots."""
    return profile_spans(load_trace(path), top=top)


def lane_utilization(spans: list[Span]) -> dict[int, float]:
    """Busy fraction per lane: union span coverage / trace extent."""
    if not spans:
        return {}
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    extent = t1 - t0
    if extent <= 0:
        return {s.tid: 0.0 for s in spans}
    by_tid: dict[int, list[Span]] = {}
    for s in spans:
        by_tid.setdefault(s.tid, []).append(s)
    out: dict[int, float] = {}
    for tid, lane in sorted(by_tid.items()):
        lane.sort(key=lambda s: s.start)
        busy = 0.0
        cur0, cur1 = lane[0].start, lane[0].end
        for s in lane[1:]:
            if s.start > cur1:
                busy += cur1 - cur0
                cur0, cur1 = s.start, s.end
            elif s.end > cur1:
                cur1 = s.end
        busy += cur1 - cur0
        out[tid] = busy / extent
    return out


def format_profile(spans: list[Span], *, top: int = 10) -> str:
    """The ``repro profile`` report: hot-spot table + lane utilization."""
    if not spans:
        return "trace contains no wall-clock spans"
    spots = profile_spans(spans, top=top)
    extent = max(s.end for s in spans) - min(s.start for s in spans)
    lines = [
        f"{'span':<22} {'count':>7} {'self s':>9} {'total s':>9} "
        f"{'mean ms':>9} {'max ms':>9} {'self %':>7}",
        "-" * 78,
    ]
    for h in spots:
        share = 100.0 * h.self_s / extent if extent > 0 else 0.0
        lines.append(
            f"{h.name:<22} {h.count:>7} {h.self_s:>9.3f} {h.total_s:>9.3f} "
            f"{h.mean_s * 1e3:>9.2f} {h.max_s * 1e3:>9.2f} {share:>6.1f}%"
        )
    util = lane_utilization(spans)
    lines.append("")
    lines.append(f"trace extent: {extent:.3f}s over {len(util)} lane(s)")
    for tid, frac in util.items():
        lines.append(f"  lane {tid:>7}: {100.0 * frac:5.1f}% busy")
    return "\n".join(lines)
