"""Unified observability: wall-clock tracing + metrics, one facade.

Everything the simulator can report about *itself* (as opposed to the
experiment — that's :class:`~repro.fl.history.History`) routes through an
:class:`Obs` bundle:

- ``obs.tracer`` — wall-clock spans (:mod:`repro.obs.tracer`), exported as
  Chrome-trace JSON (Perfetto-openable) and a JSONL event stream;
- ``obs.metrics`` — counters/gauges/histograms with per-round snapshots
  (:mod:`repro.obs.metrics`), exported as JSON and Prometheus text;
- ``obs.enabled`` — the one branch hot paths check.

The default everywhere is :data:`NULL_OBS`: both halves are the shared
null implementations, ``enabled`` is False, and every instrumentation site
degrades to an attribute load plus a branch — the measured overhead of the
disabled path is <1% (tracked by ``scripts/bench_suite.py``'s ``obs``
section). The hard contract, enforced by ``tests/obs/test_determinism.py``:
observability never touches a seeded RNG stream, so histories are
bit-identical with tracing on or off, on every backend, in every protocol
mode.

Wiring: build an :class:`Obs` and hand it to
:func:`repro.simtime.make_simulation` (or the ``Simulation`` classes
directly); the CLI does this for ``--trace``/``--metrics``. After the run,
:meth:`Obs.export` writes every requested artifact.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
)
from repro.obs.profile import (
    HotSpot,
    format_profile,
    lane_utilization,
    profile_spans,
    profile_trace,
)
from repro.obs.progress import SweepProgress
from repro.obs.tracer import (
    NULL_TRACER,
    Instant,
    NullTracer,
    Span,
    Tracer,
    load_trace,
)

__all__ = [
    "Obs",
    "NULL_OBS",
    "make_obs",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Instant",
    "load_trace",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "HotSpot",
    "profile_spans",
    "profile_trace",
    "lane_utilization",
    "format_profile",
    "SweepProgress",
]


class Obs:
    """One observability bundle: a tracer and a metrics registry.

    ``Obs()`` (no live halves) is disabled; :data:`NULL_OBS` is the shared
    disabled instance every simulation defaults to. ``trace_path`` /
    ``metrics_path`` remember where :meth:`export` should write.
    """

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        *,
        trace_path: str | None = None,
        metrics_path: str | None = None,
    ):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.enabled = tracer is not None or metrics is not None
        self.trace_path = trace_path
        self.metrics_path = metrics_path

    def export(self) -> list[str]:
        """Write every configured artifact; returns the paths written.

        ``trace_path`` gets the Chrome-trace JSON plus a sibling ``.jsonl``
        event stream; ``metrics_path`` gets the JSON registry dump plus a
        sibling ``.prom`` Prometheus text file.
        """
        written: list[str] = []
        if self.trace_path and isinstance(self.tracer, Tracer):
            self.tracer.export_chrome(self.trace_path)
            written.append(self.trace_path)
            jsonl = str(Path(self.trace_path).with_suffix(".jsonl"))
            self.tracer.export_jsonl(jsonl)
            written.append(jsonl)
        if self.metrics_path and isinstance(self.metrics, MetricsRegistry):
            self.metrics.export_json(self.metrics_path)
            written.append(self.metrics_path)
            prom = str(Path(self.metrics_path).with_suffix(".prom"))
            self.metrics.export_prometheus(prom)
            written.append(prom)
        return written


NULL_OBS = Obs()


def make_obs(trace: str | None = None, metrics: str | None = None) -> Obs:
    """The CLI's builder: live halves only for the paths actually given.

    Returns :data:`NULL_OBS` when neither path is set, so callers can pass
    the result straight to ``make_simulation`` without a None-check.
    """
    if trace is None and metrics is None:
        return NULL_OBS
    return Obs(
        tracer=Tracer() if trace is not None else None,
        metrics=MetricsRegistry() if metrics is not None else None,
        trace_path=trace,
        metrics_path=metrics,
    )
