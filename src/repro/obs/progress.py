"""Live progress line for sweep runs.

:class:`SweepProgress` plugs into :class:`~repro.scenarios.sweep.SweepRunner`
via its ``on_start`` / ``progress`` callbacks and repaints one ``\\r`` status
line: cells done/running/failed, cached-hit count, a rolling mean cell time,
and an ETA that accounts for the pool width. It writes to any file-like
stream (stderr by default) and leaves a final newline behind on ``close()``
so subsequent output starts clean.

The ETA uses wall-clock deltas from ``time.perf_counter`` only — nothing
here touches the seeded RNG path, matching the :mod:`repro.obs` contract.
"""

from __future__ import annotations

import sys
import time

__all__ = ["SweepProgress"]


class SweepProgress:
    """Render a one-line live view of a sweep's cell pipeline."""

    def __init__(self, total: int, *, parallel: int = 1, stream=None, clock=time.perf_counter):
        self.total = int(total)
        self.parallel = max(1, int(parallel))
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.done = 0
        self.failed = 0
        self.cached = 0
        self.running = 0
        self._started: dict[int, float] = {}
        self._cell_seconds: list[float] = []
        self._t0 = clock()
        self._last_line = ""

    # ------------------------------------------------------------- callbacks

    def on_start(self, index: int) -> None:
        """SweepRunner hook: cell ``index`` was dispatched."""
        self._started[index] = self.clock()
        self.running += 1
        self._render()

    def on_result(self, index: int, history: dict | None, *, cached: bool = False) -> None:
        """SweepRunner hook: cell ``index`` resolved (``None`` = failed)."""
        t0 = self._started.pop(index, None)
        if t0 is not None:
            self.running -= 1
            self._cell_seconds.append(self.clock() - t0)
        if cached:
            self.cached += 1
        if history is None:
            self.failed += 1
        else:
            self.done += 1
        self._render()

    # -------------------------------------------------------------- display

    def eta_seconds(self) -> float | None:
        """Remaining-time estimate, or ``None`` before any cell finishes."""
        finished = self.done + self.failed
        remaining = self.total - finished
        if remaining <= 0:
            return 0.0
        if not self._cell_seconds:
            return None
        mean = sum(self._cell_seconds) / len(self._cell_seconds)
        return mean * remaining / self.parallel

    @staticmethod
    def _fmt_eta(seconds: float | None) -> str:
        if seconds is None:
            return "--:--"
        seconds = max(0, int(seconds))
        if seconds >= 3600:
            return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"
        return f"{seconds // 60}:{seconds % 60:02d}"

    def line(self) -> str:
        finished = self.done + self.failed
        parts = [f"sweep {finished}/{self.total}"]
        if self.running:
            parts.append(f"{self.running} running")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self._cell_seconds:
            mean = sum(self._cell_seconds) / len(self._cell_seconds)
            parts.append(f"{mean:.1f}s/cell")
        parts.append(f"eta {self._fmt_eta(self.eta_seconds())}")
        return " | ".join(parts)

    def _render(self) -> None:
        line = self.line()
        pad = max(0, len(self._last_line) - len(line))
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()
        self._last_line = line

    def close(self) -> None:
        """Finish the line: repaint once more and move to a fresh row."""
        if self._last_line:
            self._render()
            self.stream.write("\n")
            self.stream.flush()
