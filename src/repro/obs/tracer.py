"""Wall-clock span tracing with Chrome-trace and JSONL export.

A :class:`Tracer` records *spans* — named wall-clock intervals with a
category, a lane (``tid``), and free-form args — and *instants* (zero-width
events). Spans cover the whole simulator taxonomy (see
``docs/ARCHITECTURE.md`` § Observability): round phases, per-client
train/compress tasks, transport resolution, hier sub-rounds, hydrations,
sweep cells. Export targets:

- :meth:`Tracer.export_chrome` — the Chrome trace event format
  (``chrome://tracing`` / https://ui.perfetto.dev open it directly);
- :meth:`Tracer.export_jsonl` — one JSON object per line, for ad-hoc
  ``jq``/pandas analysis and for :mod:`repro.obs.profile`.

Timestamps are ``time.perf_counter()`` seconds. On Linux that clock is
``CLOCK_MONOTONIC``, which is shared across processes — so spans measured
inside forked process-backend workers (funneled back to the parent through
:class:`~repro.exec.base.TaskResult`'s wall-clock fields) land on the same
timeline as the parent's own spans, each worker in its own ``tid`` lane.

Determinism contract: tracing never touches a seeded RNG stream and never
feeds back into the simulation — a traced run's history is bit-identical
to an untraced one. The disabled path is :class:`NullTracer`, whose
``span()`` returns one cached no-op context manager: the cost of an
un-traced instrumentation site is an attribute load and a branch.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

__all__ = ["Span", "Instant", "Tracer", "NullTracer", "NULL_TRACER", "load_trace"]

#: The trace clock (process-shared monotonic seconds on Linux).
trace_clock = time.perf_counter

#: The main lane. Worker task spans use the worker's pid as their lane.
MAIN_TID = 0

#: Chrome-trace ``pid`` of the wall-clock lanes.
WALL_PID = 1
#: Chrome-trace ``pid`` of the virtual-clock lanes (the simulation's
#: :class:`~repro.simtime.events.SpanLog`, exported side by side).
VIRTUAL_PID = 2


@dataclass(frozen=True)
class Span:
    """One named wall-clock interval."""

    name: str
    cat: str
    start: float  # trace-clock seconds
    end: float
    tid: int = MAIN_TID
    args: dict | None = None

    @property
    def dur(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """One zero-width event (e.g. a cache eviction)."""

    name: str
    cat: str
    t: float
    tid: int = MAIN_TID
    args: dict | None = None


class _SpanCM:
    """Context manager measuring one span (allocated per enabled ``span()``)."""

    __slots__ = ("_tracer", "_name", "_cat", "_tid", "_args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: int, args: dict | None):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._tid = tid
        self._args = args

    def __enter__(self) -> "_SpanCM":
        self._t0 = trace_clock()
        return self

    def __exit__(self, *exc) -> None:
        self._tracer.spans.append(
            Span(
                name=self._name,
                cat=self._cat,
                start=self._t0,
                end=trace_clock(),
                tid=self._tid,
                args=self._args,
            )
        )


class _NullCM:
    """The no-op context manager the disabled path hands out (one instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullCM":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_CM = _NullCM()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Shared as the :data:`NULL_TRACER` singleton so ``sim.obs.tracer.span``
    is safe to call unconditionally; hot per-client loops should still guard
    with ``if obs.enabled`` and skip building args dicts entirely.
    """

    enabled = False
    spans: tuple = ()
    instants: tuple = ()

    def span(self, name: str, *, cat: str = "sim", tid: int = MAIN_TID, **args):
        return _NULL_CM

    def add_span(self, name, start, end, *, cat="sim", tid=MAIN_TID, **args) -> None:
        pass

    def instant(self, name, *, cat="sim", tid=MAIN_TID, **args) -> None:
        pass

    def name_lane(self, tid, name) -> None:
        pass

    def add_virtual_spans(self, span_log, *, limit=None) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Buffering span recorder with Chrome-trace/JSONL export.

    ``t=0`` of the exported trace is the tracer's construction instant;
    spans are buffered in memory (a span is two floats, two strings, and an
    optional dict — a multi-round mega-fleet trace is tens of MB, not GB)
    and written once at export time.
    """

    enabled = True

    def __init__(self):
        self.epoch = trace_clock()
        self.pid = os.getpid()
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        #: Virtual-clock spans to export side by side (pid 2): tuples of
        #: (name, tid, start_s, end_s, args) on the *virtual* clock.
        self.virtual_spans: list[tuple[str, int, float, float, dict | None]] = []
        self._tid_names: dict[int, str] = {MAIN_TID: "main"}

    # ------------------------------------------------------------ recording

    def span(self, name: str, *, cat: str = "sim", tid: int = MAIN_TID, **args) -> _SpanCM:
        """Context manager recording ``name`` over the ``with`` body."""
        return _SpanCM(self, name, cat, tid, args or None)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        cat: str = "sim",
        tid: int = MAIN_TID,
        **args,
    ) -> None:
        """Record an interval measured elsewhere (worker task spans)."""
        self.spans.append(
            Span(name=name, cat=cat, start=float(start), end=float(end), tid=int(tid), args=args or None)
        )

    def instant(self, name: str, *, cat: str = "sim", tid: int = MAIN_TID, **args) -> None:
        self.instants.append(
            Instant(name=name, cat=cat, t=trace_clock(), tid=int(tid), args=args or None)
        )

    def name_lane(self, tid: int, name: str) -> None:
        """Label a ``tid`` lane in the exported trace (e.g. worker pids)."""
        self._tid_names[int(tid)] = name

    def add_virtual_spans(self, span_log, *, limit: int | None = None) -> None:
        """Mirror a :class:`~repro.simtime.events.SpanLog` into the trace.

        The virtual-clock client activity (train/upload intervals priced by
        the cost model) exports as a second Chrome-trace process so the
        wall-clock and virtual-clock pictures sit side by side in Perfetto.
        ``limit`` keeps mega-fleet traces bounded (first N spans).
        """
        spans = span_log.spans if limit is None else span_log.spans[:limit]
        for s in spans:
            self.virtual_spans.append(
                (s.kind, s.cid, s.start, s.end, {"cid": s.cid, "tag": s.tag})
            )

    # -------------------------------------------------------------- export

    def _lane_metadata(self, tids: set[int]) -> list[dict]:
        events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": WALL_PID,
                "tid": 0,
                "args": {"name": f"wall clock (pid {self.pid})"},
            }
        ]
        for tid in sorted(tids):
            label = self._tid_names.get(tid, f"worker-{tid}")
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": WALL_PID,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        if self.virtual_spans:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": VIRTUAL_PID,
                    "tid": 0,
                    "args": {"name": "virtual clock (simulated seconds as µs)"},
                }
            )
        return events

    def to_chrome(self) -> dict:
        """The trace as a Chrome trace-event dict (``json.dump``-ready)."""
        us = 1e6
        events = self._lane_metadata({s.tid for s in self.spans} | {i.tid for i in self.instants})
        for s in self.spans:
            ev = {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": (s.start - self.epoch) * us,
                "dur": s.dur * us,
                "pid": WALL_PID,
                "tid": s.tid,
            }
            if s.args:
                ev["args"] = s.args
            events.append(ev)
        for i in self.instants:
            ev = {
                "name": i.name,
                "cat": i.cat,
                "ph": "i",
                "s": "t",
                "ts": (i.t - self.epoch) * us,
                "pid": WALL_PID,
                "tid": i.tid,
            }
            if i.args:
                ev["args"] = i.args
            events.append(ev)
        for name, tid, start, end, args in self.virtual_spans:
            events.append(
                {
                    "name": name,
                    "cat": "virtual",
                    "ph": "X",
                    "ts": start * us,
                    "dur": (end - start) * us,
                    "pid": VIRTUAL_PID,
                    "tid": tid,
                    "args": args or {},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path) -> None:
        """Write the Chrome-trace JSON (open in Perfetto / chrome://tracing)."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)
            fh.write("\n")

    def export_jsonl(self, path) -> None:
        """Write the event stream: one JSON object per line."""
        with open(path, "w") as fh:
            for s in self.spans:
                fh.write(
                    json.dumps(
                        {
                            "type": "span",
                            "name": s.name,
                            "cat": s.cat,
                            "t0": s.start - self.epoch,
                            "t1": s.end - self.epoch,
                            "tid": s.tid,
                            "args": s.args or {},
                        }
                    )
                    + "\n"
                )
            for i in self.instants:
                fh.write(
                    json.dumps(
                        {
                            "type": "instant",
                            "name": i.name,
                            "cat": i.cat,
                            "t": i.t - self.epoch,
                            "tid": i.tid,
                            "args": i.args or {},
                        }
                    )
                    + "\n"
                )


def load_trace(path) -> list[Span]:
    """Read wall-clock spans back from either export format.

    Accepts the Chrome-trace JSON (``{"traceEvents": [...]}`` or a bare
    event list) and the JSONL stream; returns :class:`Span` objects with
    times in seconds relative to the trace epoch. Virtual-clock (pid 2)
    events and metadata are skipped — the profiler ranks wall-clock cost.
    """
    with open(path) as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None  # multi-line JSONL
    # A single-line JSONL file parses as one dict too — only a document
    # with "traceEvents" (or a bare event list) is the Chrome format.
    if isinstance(doc, list) or (isinstance(doc, dict) and "traceEvents" in doc):
        events = doc["traceEvents"] if isinstance(doc, dict) else doc
        spans = []
        for ev in events:
            if ev.get("ph") != "X" or ev.get("pid") == VIRTUAL_PID:
                continue
            t0 = ev["ts"] / 1e6
            spans.append(
                Span(
                    name=ev["name"],
                    cat=ev.get("cat", "sim"),
                    start=t0,
                    end=t0 + ev.get("dur", 0.0) / 1e6,
                    tid=int(ev.get("tid", MAIN_TID)),
                    args=ev.get("args") or None,
                )
            )
        return spans
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        ev = json.loads(line)
        if ev.get("type") != "span":
            continue
        spans.append(
            Span(
                name=ev["name"],
                cat=ev.get("cat", "sim"),
                start=ev["t0"],
                end=ev["t1"],
                tid=int(ev.get("tid", MAIN_TID)),
                args=ev.get("args") or None,
            )
        )
    return spans
