"""The paper's contribution: BCRS scheduling, Eq. 6 coefficients, the
degree-of-overlap metric, the OPWA mask, and the aggregation rules."""

from repro.core.aggregation import aggregate, apply_server_update, weighted_sparse_sum
from repro.core.bcrs import BCRSSchedule, schedule_ratios
from repro.core.coefficients import adjusted_coefficients, fedavg_coefficients, normalize_ratios
from repro.core.opwa import opwa_mask, opwa_mask_from_updates
from repro.core.overlap import OverlapDistribution, overlap_counts, overlap_distribution
from repro.core.server_opt import ServerAdam, ServerOptimizer, ServerSGD, make_server_optimizer

__all__ = [
    "BCRSSchedule",
    "schedule_ratios",
    "normalize_ratios",
    "fedavg_coefficients",
    "adjusted_coefficients",
    "overlap_counts",
    "OverlapDistribution",
    "overlap_distribution",
    "opwa_mask",
    "opwa_mask_from_updates",
    "weighted_sparse_sum",
    "apply_server_update",
    "aggregate",
    "ServerOptimizer",
    "ServerSGD",
    "ServerAdam",
    "make_server_optimizer",
]
