"""Server-side optimizers over the aggregated update (FedOpt family).

The paper's related work (Reddi et al., "Adaptive Federated Optimization",
its reference [39]) treats the aggregated client update as a *pseudo-
gradient* and applies a server optimizer to it. Algorithm 1's plain
``w ← w − η_s · Σ p_i Δw_i`` is ServerSGD with no momentum; this module adds
FedAvgM (server momentum) and FedAdam, which compose with BCRS/OPWA — the
mask and coefficients shape the pseudo-gradient, the server optimizer shapes
the step.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregation import apply_server_update
from repro.utils.validation import check_positive

__all__ = ["ServerOptimizer", "ServerSGD", "ServerAdam", "make_server_optimizer"]


class ServerOptimizer:
    """Maps (current params, pseudo-gradient) to the next global params.

    ``out``/``scratch`` select the in-place descent path of
    :func:`~repro.core.aggregation.apply_server_update` — ``out=params``
    is legal and bit-identical to the copying path.
    """

    def step(
        self,
        params: np.ndarray,
        pseudo_grad: np.ndarray,
        *,
        out: np.ndarray | None = None,
        scratch: np.ndarray | None = None,
    ) -> np.ndarray:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop optimizer state (restart)."""


class ServerSGD(ServerOptimizer):
    """``w ← w − lr · m_t`` with ``m_t = momentum · m_{t−1} + Δ`` (FedAvgM).

    ``lr=1, momentum=0`` reproduces Algorithm 1's aggregation exactly.
    """

    name = "sgd"

    def __init__(self, lr: float = 1.0, momentum: float = 0.0):
        check_positive("lr", lr)
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity: np.ndarray | None = None

    def step(
        self,
        params: np.ndarray,
        pseudo_grad: np.ndarray,
        *,
        out: np.ndarray | None = None,
        scratch: np.ndarray | None = None,
    ) -> np.ndarray:
        if self.momentum > 0:
            if self._velocity is None:
                self._velocity = np.zeros_like(pseudo_grad, dtype=np.float64)
            self._velocity *= self.momentum
            self._velocity += pseudo_grad
            update = self._velocity
        else:
            update = pseudo_grad
        return apply_server_update(params, update, self.lr, out=out, scratch=scratch)

    def reset(self) -> None:
        self._velocity = None


class ServerAdam(ServerOptimizer):
    """FedAdam: Adam over the pseudo-gradient (Reddi et al., 2020)."""

    name = "adam"

    def __init__(
        self,
        lr: float = 0.1,
        beta1: float = 0.9,
        beta2: float = 0.99,
        eps: float = 1e-3,
    ):
        check_positive("lr", lr)
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        check_positive("eps", eps)
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def step(
        self,
        params: np.ndarray,
        pseudo_grad: np.ndarray,
        *,
        out: np.ndarray | None = None,
        scratch: np.ndarray | None = None,
    ) -> np.ndarray:
        g = pseudo_grad.astype(np.float64)
        if self._m is None:
            self._m = np.zeros_like(g)
            self._v = np.zeros_like(g)
        self._t += 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * g
        self._v = self.beta2 * self._v + (1 - self.beta2) * g * g
        m_hat = self._m / (1 - self.beta1**self._t)
        v_hat = self._v / (1 - self.beta2**self._t)
        step = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        # server_step=1.0: fl(1·step) = step exactly, so the buffered path
        # reproduces fl(params − step) bit-for-bit.
        return apply_server_update(params, step, 1.0, out=out, scratch=scratch)

    def reset(self) -> None:
        self._m = self._v = None
        self._t = 0


def make_server_optimizer(name: str, **kwargs) -> ServerOptimizer:
    """Build a server optimizer by name (``"sgd"`` or ``"adam"``)."""
    if name == "sgd":
        return ServerSGD(**kwargs)
    if name == "adam":
        return ServerAdam(**kwargs)
    raise KeyError(f"unknown server optimizer {name!r}; available: ['sgd', 'adam']")
