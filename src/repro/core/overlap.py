"""Degree-of-overlap metric (Sec. 4.1.3, Fig. 3/4).

For the compressed updates of a round's selected clients, the *degree of
overlap* of a parameter index is the number of clients that retained it.
Under high compression the retention pattern is heterogeneous: at CR=0.01 the
paper measures ~87 % of retained indices appearing in only one client's
update, which uniform averaging then shrinks by ``1/|S_t|`` — the
under-updating OPWA compensates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import SparseUpdate

__all__ = ["overlap_counts", "OverlapDistribution", "overlap_distribution"]


def overlap_counts(updates: list[SparseUpdate]) -> np.ndarray:
    """Per-index retention count across clients (Alg. 3 CalculateOverlap).

    Returns an int64 vector of length ``dense_size``; entry ``j`` is the
    number of clients whose sparse update retained index ``j`` (0 if none).
    Vectorized as a single ``bincount`` over the concatenated index arrays.
    """
    if not updates:
        raise ValueError("need at least one update")
    d = updates[0].dense_size
    for u in updates:
        if u.dense_size != d:
            raise ValueError(f"dense_size mismatch: {u.dense_size} != {d}")
    all_indices = np.concatenate([u.indices for u in updates])
    return np.bincount(all_indices, minlength=d).astype(np.int64)


@dataclass(frozen=True)
class OverlapDistribution:
    """Histogram of degree of overlap among *retained* indices (Fig. 4)."""

    counts: np.ndarray  # counts[f-1] = number of indices retained by exactly f clients
    num_clients: int

    @property
    def total_retained(self) -> int:
        """Number of distinct indices retained by at least one client."""
        return int(self.counts.sum())

    def fractions(self) -> np.ndarray:
        """Share of retained indices per frequency (the Fig. 4 percentages)."""
        total = self.total_retained
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / total

    def singleton_fraction(self) -> float:
        """Fraction of retained indices that appear in exactly one client."""
        return float(self.fractions()[0])


def overlap_distribution(updates: list[SparseUpdate]) -> OverlapDistribution:
    """Compute the Fig. 4 histogram for one round's compressed updates."""
    counts = overlap_counts(updates)
    n = len(updates)
    retained = counts[counts > 0]
    hist = np.bincount(retained, minlength=n + 1)[1 : n + 1]
    return OverlapDistribution(counts=hist.astype(np.int64), num_clients=n)
