"""Overlap-aware Parameter Weighted Average mask — Algorithm 3 of the paper.

OPWA builds a parameter-wise mask ``M`` from the round's overlap counts:
indices retained by at most ``D`` clients (default 1) get their averaged
update multiplied by the enlarge rate ``γ``; all other indices keep weight 1.
This counteracts the dilution of rarely-retained parameters under uniform
averaging (Eq. 7: ``w_{t+1} = w_t − η · Σ p'_i · M(Δw_i^sparse)``).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import SparseUpdate
from repro.core.overlap import overlap_counts
from repro.utils.validation import check_positive

__all__ = ["opwa_mask", "opwa_mask_from_updates"]


def opwa_mask(
    counts: np.ndarray,
    gamma: float,
    *,
    required_overlap: int = 1,
    dtype=np.float32,
) -> np.ndarray:
    """Algorithm 3 GenerateMask.

    Parameters
    ----------
    counts:
        Per-index retention counts from :func:`repro.core.overlap.overlap_counts`.
    gamma:
        Enlarge rate ``γ`` applied to low-overlap parameters. The paper sweeps
        γ from 1 up to the client count N and finds the optimum roughly
        proportional to the number of *selected* clients (Fig. 12).
    required_overlap:
        The threshold ``D``: indices with ``1 <= count <= D`` are enlarged.
        Default 1, per Algorithm 3.
    """
    check_positive("gamma", gamma)
    if required_overlap < 1:
        raise ValueError(f"required_overlap must be >= 1, got {required_overlap}")
    counts = np.asarray(counts)
    if counts.ndim != 1:
        raise ValueError(f"counts must be 1-D, got shape {counts.shape}")
    mask = np.ones(counts.shape[0], dtype=dtype)
    low = (counts >= 1) & (counts <= required_overlap)
    mask[low] = gamma
    return mask


def opwa_mask_from_updates(
    updates: list[SparseUpdate],
    gamma: float,
    *,
    required_overlap: int = 1,
) -> np.ndarray:
    """Convenience: CalculateOverlap + GenerateMask in one call (Alg. 3)."""
    return opwa_mask(
        overlap_counts(updates), gamma, required_overlap=required_overlap
    )
