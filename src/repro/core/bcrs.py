"""Bandwidth-aware Compression Ratio Scheduling — Algorithm 2 of the paper.

Given the selected clients' links and a default compression ratio ``CR*``:

1. compute each client's uplink time at the uniform ratio,
   ``T_comm,i = L_i + 2·V·CR*/B_i`` (Alg. 2 line 7);
2. the slowest such time becomes the benchmark ``T_bench`` (lines 8–11);
3. every client's ratio is raised to exactly fill the benchmark window,
   ``CR_i = (T_bench − L_i)/(2·V) · B_i`` (line 13), clipped into
   ``[cr*, 1]``.

The slowest client keeps ``CR*``; faster clients retain more parameters at no
extra wall-clock cost (Fig. 1/2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.cost import SPARSE_VOLUME_FACTOR, LinkSpec, sparse_uplink_time
from repro.utils.validation import check_fraction, check_positive

__all__ = ["BCRSSchedule", "schedule_ratios"]


@dataclass(frozen=True)
class BCRSSchedule:
    """Output of one round of BCRS scheduling over the selected clients."""

    ratios: np.ndarray  # scheduled CR_i per selected client, same order as input
    t_bench: float  # the benchmark (slowest default-ratio) time, seconds
    benchmark_index: int  # position of the benchmark client within the selection
    default_times: np.ndarray  # T_comm,i at the uniform default ratio
    scheduled_times: np.ndarray  # T_comm,i at the scheduled ratios

    def __post_init__(self):
        if self.ratios.shape != self.default_times.shape:
            raise ValueError("ratios/default_times length mismatch")

    @property
    def num_clients(self) -> int:
        return int(self.ratios.shape[0])

    def saved_time(self) -> float:
        """Per-round waiting time BCRS converts into extra parameters.

        Under uniform compression, faster clients idle for
        ``T_bench − T_comm,i``; BCRS spends that window transmitting more data.
        """
        return float(np.sum(self.t_bench - self.default_times))


def schedule_ratios(
    links: list[LinkSpec],
    volume_bits: float,
    default_cr: float,
    *,
    cr_max: float = 1.0,
    benchmark: str = "max",
) -> BCRSSchedule:
    """Run Algorithm 2 for one round.

    Parameters
    ----------
    links:
        Uplinks of the *selected* clients, in selection order.
    volume_bits:
        Dense model-update volume ``V`` in bits.
    default_cr:
        The uniform ratio ``CR*`` a non-adaptive Top-K would use.
    cr_max:
        Upper clip for scheduled ratios (1.0 = at most the dense update).
    benchmark:
        ``"max"`` is the paper's rule (slowest client). ``"median"`` is an
        ablation that trades some straggler tolerance for less inflation of
        everyone's ratio when one link is pathologically slow; clients slower
        than a median benchmark keep ``default_cr``.
    """
    if not links:
        raise ValueError("need at least one selected client")
    check_fraction("default_cr", default_cr)
    check_fraction("cr_max", cr_max)
    check_positive("volume_bits", volume_bits)
    if default_cr > cr_max:
        raise ValueError(f"default_cr {default_cr} exceeds cr_max {cr_max}")

    default_times = np.array(
        [sparse_uplink_time(link, volume_bits, default_cr) for link in links]
    )
    if benchmark == "max":
        bench_idx = int(np.argmax(default_times))
        t_bench = float(default_times[bench_idx])
    elif benchmark == "median":
        order = np.argsort(default_times)
        bench_idx = int(order[len(order) // 2])
        t_bench = float(default_times[bench_idx])
    else:
        raise ValueError(f"unknown benchmark rule {benchmark!r}")

    bandwidths = np.array([l.bandwidth_bps for l in links])
    latencies = np.array([l.latency_s for l in links])
    # Alg. 2 line 13; clip handles clients slower than a non-max benchmark
    # (ratio below CR*) and very fast clients (ratio above cr_max).
    raw = (t_bench - latencies) / (SPARSE_VOLUME_FACTOR * volume_bits) * bandwidths
    ratios = np.clip(raw, default_cr, cr_max)

    scheduled_times = np.array(
        [sparse_uplink_time(link, volume_bits, cr) for link, cr in zip(links, ratios)]
    )
    return BCRSSchedule(
        ratios=ratios,
        t_bench=t_bench,
        benchmark_index=bench_idx,
        default_times=default_times,
        scheduled_times=scheduled_times,
    )
