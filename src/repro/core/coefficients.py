"""Client-averaging coefficients — Eq. 6 of the paper.

FedAvg weighs client ``i`` by its data frequency ``f_i = n_i / n``. BCRS
additionally accounts for how much of the update each client actually
transmitted, via the *normalized* scheduled compression ratio:

    p'_i = f_i / max(f_i, Norm(CR_i)) · α

With ``Norm`` the sum-normalization (ratios as a share of the round's total),
a client whose transmitted share exceeds its data share is scaled back, so
high-bandwidth clients cannot dominate the average simply because BCRS let
them upload more parameters; α is the server learning rate.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["NORM_MODES", "normalize_ratios", "adjusted_coefficients", "fedavg_coefficients"]


#: Valid ``Norm()`` variants for Eq. 6 (the ``norm_mode`` ablation axis).
NORM_MODES = ("sum", "max", "none")


def normalize_ratios(ratios: np.ndarray, mode: str = "sum") -> np.ndarray:
    """Normalize scheduled ratios — the ``Norm()`` of Eq. 6.

    The three modes are the ablation axis behind ``ExperimentConfig.norm_mode``
    (compared in the norm-choice ablation bench):

    ========  =============================  =====================================
    mode      definition                     effect in Eq. 6
    ========  =============================  =====================================
    "sum"     ``CR_i / Σ_j CR_j``            ratios become shares summing to 1,
                                             directly comparable to the data
                                             frequencies ``f_i`` (paper default)
    "max"     ``CR_i / max_j CR_j``          the best-connected client keeps 1;
                                             others are scaled relative to it, so
                                             fewer clients get damped
    "none"    ``CR_i`` unchanged             raw scheduled ratios; with small CR*
                                             almost no client exceeds ``f_i`` and
                                             Eq. 6 degrades toward ``α·1``
    ========  =============================  =====================================
    """
    ratios = np.asarray(ratios, dtype=np.float64)
    if ratios.ndim != 1 or ratios.size == 0:
        raise ValueError(f"ratios must be a non-empty 1-D array, got shape {ratios.shape}")
    if np.any(ratios <= 0):
        raise ValueError("ratios must be positive")
    if mode == "sum":
        return ratios / ratios.sum()
    if mode == "max":
        return ratios / ratios.max()
    if mode == "none":
        return ratios.copy()
    raise ValueError(
        f"unknown normalization mode {mode!r}; expected one of {NORM_MODES}"
    )


def fedavg_coefficients(data_frequencies: np.ndarray) -> np.ndarray:
    """Plain FedAvg weights: ``p_i = f_i`` (Alg. 1 line 13/14)."""
    f = np.asarray(data_frequencies, dtype=np.float64)
    if f.ndim != 1 or f.size == 0:
        raise ValueError("data_frequencies must be a non-empty 1-D array")
    if np.any(f < 0) or abs(f.sum() - 1.0) > 1e-6:
        raise ValueError("data_frequencies must be non-negative and sum to 1")
    return f.copy()


def adjusted_coefficients(
    data_frequencies: np.ndarray,
    ratios: np.ndarray,
    alpha: float,
    *,
    norm: str = "sum",
) -> np.ndarray:
    """Eq. 6: ``p'_i = f_i / max(f_i, Norm(CR_i)) · α``.

    Each coefficient is at most ``α`` (reached when the client's transmitted
    share does not exceed its data share).
    """
    f = fedavg_coefficients(data_frequencies)
    check_positive("alpha", alpha)
    ratios = np.asarray(ratios, dtype=np.float64)
    if ratios.shape != f.shape:
        raise ValueError(f"ratios shape {ratios.shape} != frequencies shape {f.shape}")
    normed = normalize_ratios(ratios, mode=norm)
    return f / np.maximum(f, normed) * alpha
