"""Server-side aggregation rules — Algorithm 1 lines 14–18.

All three rules consume the clients' (sparse) updates ``Δw_i = w_t − w_i``
and produce the next global model:

- **FedAvg** (line 14):     ``w ← w − η_s · Σ f_i · Δw_i``
- **BCRS** (line 16):       ``w ← w − η_s · Σ p'_i · Δw_i``
- **BCRS+OPWA** (line 18):  ``w ← w − η_s · Σ p'_i · M ⊙ Δw_i``

where ``η_s`` is the server step (1.0 recovers exact FedAvg for dense
updates), ``p'_i`` comes from Eq. 6 and ``M`` from Algorithm 3. Aggregation
concatenates every sparse update's (index, value) buffers and reduces them
with a single weighted ``bincount`` — one C-level pass over all retained
entries instead of a Python-loop scatter per client, and no dense
per-client temporaries (HPC guide: in-place accumulation, no copies).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedUpdate, SparseUpdate
from repro.core.arena import AggregationArena

__all__ = ["weighted_sparse_sum", "apply_server_update", "aggregate"]


def weighted_sparse_sum(
    updates: list[CompressedUpdate],
    weights: np.ndarray,
    *,
    mask: np.ndarray | None = None,
    out: np.ndarray | None = None,
    arena: AggregationArena | None = None,
) -> np.ndarray:
    """Compute ``Σ_i weights[i] · (mask ⊙ dense(updates[i]))``.

    Sparse updates are reduced in one pass: their index/value buffers are
    pre-concatenated (with the weight folded into each value block) and
    summed by a single ``np.bincount`` over the concatenated indices —
    scatter-add without any per-client Python-loop work. Dense updates fall
    back to vectorized AXPY. ``mask`` (the OPWA ``M``) applies at the
    parameter level.

    With an ``arena``, the concatenation happens in the arena's reused pack
    buffers (no fresh allocations, no per-update float64 temporaries) and,
    when ``out`` is not given, the result lands in the arena's accumulator —
    valid until the next arena-backed call. Every arena path performs the
    identical IEEE operations in the identical order, so results are
    bit-for-bit equal to the allocating path.
    """
    if not updates:
        raise ValueError("need at least one update")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (len(updates),):
        raise ValueError(f"weights shape {weights.shape} != ({len(updates)},)")
    d = updates[0].dense_size
    for u in updates:
        if u.dense_size != d:
            raise ValueError("updates disagree on dense_size")
    if mask is not None and mask.shape != (d,):
        raise ValueError(f"mask shape {mask.shape} != ({d},)")

    if out is None:
        if arena is not None:
            if arena.dense_size != d:
                raise ValueError(
                    f"arena dense_size {arena.dense_size} != updates' {d}"
                )
            out = arena.accumulator()
        else:
            out = np.zeros(d, dtype=np.float64)
    elif out.shape != (d,):
        raise ValueError(f"out shape {out.shape} != ({d},)")
    else:
        out[...] = 0.0

    sparse = [(w, u) for w, u in zip(weights, updates) if isinstance(u, SparseUpdate)]
    if sparse:
        if arena is not None:
            total = sum(u.indices.size for _, u in sparse)
            all_indices, all_values = arena.pack(total)
            offset = 0
            for w, u in sparse:
                n = u.indices.size
                all_indices[offset : offset + n] = u.indices
                block = all_values[offset : offset + n]
                # copyto + *= w is elementwise fl(v64 · w): identical to the
                # allocating path's w * values.astype(float64).
                np.copyto(block, u.values)
                block *= w
                offset += n
            if mask is not None and total:
                gathered = arena.gather(total, mask.dtype)
                np.take(mask, all_indices, out=gathered)
                all_values *= gathered
        else:
            all_indices = np.concatenate([u.indices for _, u in sparse])
            all_values = np.concatenate(
                [w * u.values.astype(np.float64) for w, u in sparse]
            )
            if mask is not None:
                all_values *= mask[all_indices]
        if all_indices.size:
            out += np.bincount(all_indices, weights=all_values, minlength=d)

    for w, u in zip(weights, updates):
        if not isinstance(u, SparseUpdate):
            dense = u.to_dense().astype(np.float64)
            if mask is not None:
                dense *= mask
            out += w * dense
    return out


def apply_server_update(
    global_params: np.ndarray,
    aggregated_update: np.ndarray,
    server_step: float = 1.0,
    *,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """``w_{t+1} = w_t − η_s · Σ(...)`` — the descent step of lines 14/16/18.

    ``out`` (float32, params-shaped) receives the stepped parameters in
    place — ``out=global_params`` is legal, reads complete before the write.
    ``scratch`` (float64, params-shaped) is the working vector, letting a
    caller with an :class:`~repro.core.arena.AggregationArena` avoid the
    float64 temporary on the widest array in the system. Either keyword
    selects the buffered path; results are bit-identical to the copying
    path (``a − s·b ≡ (−s)·b + a`` and ``copyto`` rounds exactly like
    ``astype`` — the exactness test in ``tests/core/test_arena.py`` pins
    this).
    """
    if global_params.shape != aggregated_update.shape:
        raise ValueError(
            f"shape mismatch {global_params.shape} vs {aggregated_update.shape}"
        )
    if out is None and scratch is None:
        return (
            global_params.astype(np.float64) - server_step * aggregated_update
        ).astype(np.float32)
    if scratch is None:
        scratch = np.empty(global_params.shape, dtype=np.float64)
    elif scratch.shape != global_params.shape or scratch.dtype != np.float64:
        raise ValueError("scratch must be a float64 array of the params' shape")
    # fl(−s·b) = −fl(s·b) (sign-exact), then fl(−s·b + a) ≡ fl(a − s·b).
    np.multiply(aggregated_update, -float(server_step), out=scratch)
    scratch += global_params
    if out is None:
        return scratch.astype(np.float32)
    if out.shape != global_params.shape:
        raise ValueError(f"out shape {out.shape} != {global_params.shape}")
    np.copyto(out, scratch, casting="unsafe")
    return out


def aggregate(
    global_params: np.ndarray,
    updates: list[CompressedUpdate],
    weights: np.ndarray,
    *,
    mask: np.ndarray | None = None,
    server_step: float = 1.0,
) -> np.ndarray:
    """One-call aggregation: weighted (optionally masked) sum, then the step."""
    total = weighted_sparse_sum(updates, weights, mask=mask)
    return apply_server_update(global_params, total, server_step)
