"""Server-side aggregation rules — Algorithm 1 lines 14–18.

All three rules consume the clients' (sparse) updates ``Δw_i = w_t − w_i``
and produce the next global model:

- **FedAvg** (line 14):     ``w ← w − η_s · Σ f_i · Δw_i``
- **BCRS** (line 16):       ``w ← w − η_s · Σ p'_i · Δw_i``
- **BCRS+OPWA** (line 18):  ``w ← w − η_s · Σ p'_i · M ⊙ Δw_i``

where ``η_s`` is the server step (1.0 recovers exact FedAvg for dense
updates), ``p'_i`` comes from Eq. 6 and ``M`` from Algorithm 3. Aggregation
concatenates every sparse update's (index, value) buffers and reduces them
with a single weighted ``bincount`` — one C-level pass over all retained
entries instead of a Python-loop scatter per client, and no dense
per-client temporaries (HPC guide: in-place accumulation, no copies).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedUpdate, SparseUpdate

__all__ = ["weighted_sparse_sum", "apply_server_update", "aggregate"]


def weighted_sparse_sum(
    updates: list[CompressedUpdate],
    weights: np.ndarray,
    *,
    mask: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Compute ``Σ_i weights[i] · (mask ⊙ dense(updates[i]))``.

    Sparse updates are reduced in one pass: their index/value buffers are
    pre-concatenated (with the weight folded into each value block) and
    summed by a single ``np.bincount`` over the concatenated indices —
    scatter-add without any per-client Python-loop work. Dense updates fall
    back to vectorized AXPY. ``mask`` (the OPWA ``M``) applies at the
    parameter level.
    """
    if not updates:
        raise ValueError("need at least one update")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (len(updates),):
        raise ValueError(f"weights shape {weights.shape} != ({len(updates)},)")
    d = updates[0].dense_size
    for u in updates:
        if u.dense_size != d:
            raise ValueError("updates disagree on dense_size")
    if mask is not None and mask.shape != (d,):
        raise ValueError(f"mask shape {mask.shape} != ({d},)")

    if out is None:
        out = np.zeros(d, dtype=np.float64)
    elif out.shape != (d,):
        raise ValueError(f"out shape {out.shape} != ({d},)")
    else:
        out[...] = 0.0

    sparse = [(w, u) for w, u in zip(weights, updates) if isinstance(u, SparseUpdate)]
    if sparse:
        all_indices = np.concatenate([u.indices for _, u in sparse])
        all_values = np.concatenate([w * u.values.astype(np.float64) for w, u in sparse])
        if mask is not None:
            all_values *= mask[all_indices]
        if all_indices.size:
            out += np.bincount(all_indices, weights=all_values, minlength=d)

    for w, u in zip(weights, updates):
        if not isinstance(u, SparseUpdate):
            dense = u.to_dense().astype(np.float64)
            if mask is not None:
                dense *= mask
            out += w * dense
    return out


def apply_server_update(
    global_params: np.ndarray,
    aggregated_update: np.ndarray,
    server_step: float = 1.0,
) -> np.ndarray:
    """``w_{t+1} = w_t − η_s · Σ(...)`` — the descent step of lines 14/16/18."""
    if global_params.shape != aggregated_update.shape:
        raise ValueError(
            f"shape mismatch {global_params.shape} vs {aggregated_update.shape}"
        )
    return (global_params.astype(np.float64) - server_step * aggregated_update).astype(
        np.float32
    )


def aggregate(
    global_params: np.ndarray,
    updates: list[CompressedUpdate],
    weights: np.ndarray,
    *,
    mask: np.ndarray | None = None,
    server_step: float = 1.0,
) -> np.ndarray:
    """One-call aggregation: weighted (optionally masked) sum, then the step."""
    total = weighted_sparse_sum(updates, weights, mask=mask)
    return apply_server_update(global_params, total, server_step)
