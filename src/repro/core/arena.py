"""Preallocated buffers for the sparse upload → aggregate hot path.

Once training is vectorized, a compressing round's server-side cost is
dominated by allocation-heavy array plumbing: every ``TopK.compress`` makes
fresh ``(indices, values)`` arrays, ``weighted_sparse_sum`` re-concatenates
all of them plus a per-update ``float64`` temporary, and the server step
materializes two more full-width temporaries. :class:`AggregationArena`
owns all of those buffers once and reuses them round after round:

- **compress banks** — one index buffer and one value buffer sized ``Σkᵢ``
  that compressors write into directly through their optional ``out=``
  block interface (:mod:`repro.compression.sparsifiers`). Banks are
  **double-buffered**: the round being aggregated and the previous round's
  ``last_round_updates`` never share storage, so overlap analysis of the
  finished round stays valid while the next round compresses.
- **pack buffers** — the concatenated ``(int64 indices, float64 weighted
  values)`` arrays :func:`~repro.core.aggregation.weighted_sparse_sum`
  bincounts over, plus a mask-gather scratch; packed block-by-block with
  the weight folded in, so no per-update temporaries and no
  ``np.concatenate``.
- **step scratch** — the ``float64`` working vector
  :func:`~repro.core.aggregation.apply_server_update` and the server
  optimizers use for their in-place ``out=`` path, eliminating the
  ``astype(float64)`` copy of the widest array in the system.

Determinism contract: every arena path performs exactly the same
elementwise IEEE operations in the same order as the allocating path, so
seeded histories are bit-identical with or without an arena
(``tests/core/test_aggregation.py`` pins this).

The arena is a *single-consumer* structure: one simulation (or one thread)
aggregates at a time. Compress blocks for one round may be filled
concurrently (they are disjoint slices), which is how the thread backend
uses them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AggregationArena"]


class _CompressBank:
    """One round's compressor-output storage: index + value block buffers."""

    __slots__ = ("idx", "val")

    def __init__(self) -> None:
        self.idx = np.empty(0, dtype=np.int64)
        self.val = np.empty(0, dtype=np.float32)

    def ensure(self, capacity: int) -> None:
        if self.idx.size < capacity:
            self.idx = np.empty(capacity, dtype=np.int64)
            self.val = np.empty(capacity, dtype=np.float32)


class AggregationArena:
    """Reusable buffers for one aggregation point of width ``dense_size``."""

    def __init__(self, dense_size: int):
        if dense_size < 1:
            raise ValueError(f"dense_size must be >= 1, got {dense_size}")
        self.dense_size = int(dense_size)
        # Aggregation-side pack buffers (grow to the largest Σkᵢ seen).
        self._pack_idx = np.empty(0, dtype=np.int64)
        self._pack_val = np.empty(0, dtype=np.float64)
        self._gather = np.empty(0, dtype=np.float32)
        # Full-width accumulators/scratch (allocated once, O(d)).
        self._acc = np.zeros(self.dense_size, dtype=np.float64)
        self.step_scratch = np.empty(self.dense_size, dtype=np.float64)
        # Double-buffered compressor banks + the current round's block plan.
        self._banks = (_CompressBank(), _CompressBank())
        self._bank_index = 0
        self._blocks: list[tuple[int, int] | None] = []
        # Densified-update matrix for order-statistic aggregators
        # (coordinate median / trimmed mean); grows to the largest cohort.
        self._rows = np.empty((0, self.dense_size), dtype=np.float64)

    # ------------------------------------------------------- compress blocks

    def plan_compress(self, ks: list[int | None]) -> None:
        """Lay out this round's compressor output blocks.

        ``ks[position]`` is the exact retained-entry count the compressor at
        that position will emit (``None`` = no block: dense upload, or a
        compressor whose output size is value-dependent). Flips to the other
        bank so views handed out last round stay intact.
        """
        self._bank_index ^= 1
        total = sum(k for k in ks if k is not None)
        bank = self._banks[self._bank_index]
        bank.ensure(total)
        blocks: list[tuple[int, int] | None] = []
        offset = 0
        for k in ks:
            if k is None:
                blocks.append(None)
            else:
                if k < 1:
                    raise ValueError(f"block size must be >= 1, got {k}")
                blocks.append((offset, k))
                offset += k
        self._blocks = blocks

    def compress_block(self, position: int) -> tuple[np.ndarray, np.ndarray] | None:
        """(index view, value view) planned for ``position`` — or ``None``.

        Views are disjoint slices of the active bank, so concurrent fills
        from different positions (the thread backend) are race-free.
        """
        if position >= len(self._blocks):
            return None
        block = self._blocks[position]
        if block is None:
            return None
        offset, k = block
        bank = self._banks[self._bank_index]
        return bank.idx[offset : offset + k], bank.val[offset : offset + k]

    # --------------------------------------------------------- pack buffers

    def pack(self, nnz: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of the concatenation buffers sized for ``nnz`` entries."""
        if self._pack_idx.size < nnz:
            self._pack_idx = np.empty(nnz, dtype=np.int64)
            self._pack_val = np.empty(nnz, dtype=np.float64)
        return self._pack_idx[:nnz], self._pack_val[:nnz]

    def gather(self, nnz: int, dtype=np.float32) -> np.ndarray:
        """Mask-gather scratch sized for ``nnz`` entries of ``dtype``.

        ``np.take(mask, idx, out=...)`` needs the out buffer to match the
        mask's dtype exactly; the subsequent ``values *= gathered`` upcasts
        elementwise just like the allocating path's ``mask[idx]``.
        """
        if self._gather.size < nnz or self._gather.dtype != np.dtype(dtype):
            self._gather = np.empty(nnz, dtype=dtype)
        return self._gather[:nnz]

    def accumulator(self) -> np.ndarray:
        """The zeroed full-width ``float64`` reduction target."""
        self._acc[...] = 0.0
        return self._acc

    def rows(self, n: int) -> np.ndarray:
        """A zeroed ``(n, dense_size)`` float64 matrix for densified updates.

        The order-statistic aggregators (:mod:`repro.robust.aggregators`)
        scatter each update into one row and reduce down the columns;
        reusing one grow-only matrix keeps a robust round allocation-free
        after warmup, like the pack buffers do for the mean path.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if self._rows.shape[0] < n:
            self._rows = np.empty((n, self.dense_size), dtype=np.float64)
        view = self._rows[:n]
        view[...] = 0.0
        return view

    # ------------------------------------------------------------- metrics

    def nbytes(self) -> int:
        """Total bytes currently held (observability/reporting)."""
        arrays = [self._pack_idx, self._pack_val, self._gather, self._acc, self.step_scratch, self._rows]
        for bank in self._banks:
            arrays += [bank.idx, bank.val]
        return int(sum(a.nbytes for a in arrays))
