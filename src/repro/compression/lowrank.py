"""Low-rank update compression (PowerSGD-style).

The paper's related work uses low-rank factorization as an alternative to
sparsification ([23, 36, 54]): a 2-D weight update ``ΔW ∈ R^{m×n}`` is
approximated as ``P Q^T`` with rank ``r ≪ min(m, n)``, transmitting
``r·(m+n)`` floats instead of ``m·n``. Vectors (biases, norm scales) and
conv kernels reshaped to 2-D travel at full precision — they are small.

The compressor is *layout-aware*: it takes the model's
:func:`repro.nn.params.param_slices` so it can reshape ranges of the flat
update vector back into matrices (the paper's pipeline stays flat-vector
end to end).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import CompressedUpdate
from repro.utils.rng import as_generator

__all__ = ["LowRankUpdate", "LowRankCompressor"]


def _matrix_shape(shape: tuple[int, ...]) -> tuple[int, int] | None:
    """2-D view for factorizable parameters: dense (in, out) stays as is,
    conv (oc, ic, kh, kw) flattens to (oc, ic·kh·kw); 1-D returns None."""
    if len(shape) == 2:
        return shape  # type: ignore[return-value]
    if len(shape) == 4:
        return shape[0], shape[1] * shape[2] * shape[3]
    return None


@dataclass(frozen=True)
class LowRankUpdate(CompressedUpdate):
    """Per-range factors; non-factorized ranges carried dense."""

    factors: tuple  # tuple of (slice, (m, n), P(m×r), Q(n×r))
    dense_ranges: tuple  # tuple of (slice, values)

    @property
    def bits(self) -> float:
        total = 0.0
        for _sl, _shape, p, q in self.factors:
            total += (p.size + q.size) * 32
        for _sl, values in self.dense_ranges:
            total += values.size * 32
        return total

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.dense_size, dtype=np.float32)
        for sl, (m, n), p, q in self.factors:
            out[sl] = (p @ q.T).reshape(-1)
        for sl, values in self.dense_ranges:
            out[sl] = values
        return out


class LowRankCompressor:
    """Rank-``r`` approximation per factorizable parameter range.

    Uses one round of subspace iteration (PowerSGD's core): sample a random
    ``n×r`` sketch, orthonormalize ``A·sketch``, project. Cheap (no full
    SVD) and accurate for the low-effective-rank updates SGD produces.
    ``ratio`` is ignored — the rate is set by ``rank``.
    """

    name = "lowrank"

    def __init__(
        self,
        slices: list[tuple[str, slice, tuple[int, ...]]],
        rank: int = 2,
        seed: int | np.random.Generator = 0,
    ):
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.slices = list(slices)
        self.rank = int(rank)
        self.rng = as_generator(seed)

    def compress(self, update: np.ndarray, ratio: float = 1.0) -> LowRankUpdate:
        update = np.ascontiguousarray(update, dtype=np.float32)
        d = update.shape[0]
        factors = []
        dense_ranges = []
        covered = 0
        for _name, sl, shape in self.slices:
            seg = update[sl]
            covered += seg.size
            mshape = _matrix_shape(shape)
            if mshape is None or min(mshape) <= self.rank:
                dense_ranges.append((sl, seg.copy()))
                continue
            m, n = mshape
            a = seg.reshape(m, n).astype(np.float64)
            sketch = self.rng.normal(size=(n, self.rank))
            y = a @ sketch  # (m, r)
            q_basis, _ = np.linalg.qr(y)  # orthonormal (m, r)
            qt = a.T @ q_basis  # (n, r)
            factors.append((sl, (m, n), q_basis.astype(np.float32), qt.astype(np.float32)))
        if covered != d:
            raise ValueError(
                f"slices cover {covered} of {d} entries — pass the model's param_slices"
            )
        return LowRankUpdate(dense_size=d, factors=tuple(factors), dense_ranges=tuple(dense_ranges))
