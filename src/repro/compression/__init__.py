"""Compression substrate: sparsifiers, quantizers, error feedback, registry."""

from repro.compression.base import (
    CompressedUpdate,
    Compressor,
    DenseUpdate,
    SparseUpdate,
    compression_error,
)
from repro.compression.ef import ErrorFeedback
from repro.compression.quantization import QSGDQuantizer, UniformQuantizer
from repro.compression.registry import available_compressors, make_compressor, register_compressor
from repro.compression.sign import SignCompressor, SignUpdate
from repro.compression.sparsifiers import RandomK, ThresholdSparsifier, TopK, k_from_ratio

__all__ = [
    "CompressedUpdate",
    "SparseUpdate",
    "DenseUpdate",
    "Compressor",
    "compression_error",
    "TopK",
    "RandomK",
    "ThresholdSparsifier",
    "k_from_ratio",
    "ErrorFeedback",
    "QSGDQuantizer",
    "UniformQuantizer",
    "make_compressor",
    "available_compressors",
    "register_compressor",
    "SignCompressor",
    "SignUpdate",
]
