"""Sparsifying compressors: Top-K, Random-K, hard threshold.

Top-K magnitude pruning is the paper's compressor (Alg. 1 line 12,
``TopK(Δw, CR_i)``); Random-K and threshold sparsification are the common
alternatives the framework also integrates (Sec. 1: "We also incorporate
several commonly used compression techniques into our compressed FL
framework").

Fixed-``k`` sparsifiers (Top-K, Random-K — their retained count is
``k_from_ratio(d, ratio)`` exactly, value-independent) additionally accept
an ``out=(index_buffer, value_buffer)`` block and write their output into
it instead of allocating fresh arrays — the
:class:`~repro.core.arena.AggregationArena` plans one such block per
selected client and the aggregation bincounts over the packed buffers
without re-concatenating. The class attribute ``fixed_k`` advertises the
capability (``ThresholdSparsifier``'s retained set is value-dependent, so
its output size cannot be preplanned). Values written through ``out`` are
bit-identical to the allocating path.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import SparseUpdate
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive

__all__ = ["TopK", "RandomK", "ThresholdSparsifier", "k_from_ratio"]


def k_from_ratio(dense_size: int, ratio: float) -> int:
    """Number of retained entries for a target retained fraction.

    Rounds to nearest and keeps at least one entry so an upload is never empty.
    """
    check_fraction("ratio", ratio)
    if dense_size < 1:
        raise ValueError(f"dense_size must be >= 1, got {dense_size}")
    return max(1, min(dense_size, int(round(dense_size * ratio))))


def _check_block(out: tuple[np.ndarray, np.ndarray], k: int) -> tuple[np.ndarray, np.ndarray]:
    """Validate a planned (index, value) output block against the actual k."""
    idx_buf, val_buf = out
    if idx_buf.shape != (k,) or val_buf.shape != (k,):
        raise ValueError(
            f"out block sized ({idx_buf.shape}, {val_buf.shape}) but the "
            f"compressor will emit k={k} entries"
        )
    return idx_buf, val_buf


class TopK:
    """Magnitude Top-K sparsification.

    Retains the ``k = ratio·d`` largest-|value| entries. Uses
    ``np.argpartition`` (O(d)) rather than a full sort (HPC guide: choose the
    cheaper algorithm).
    """

    name = "topk"
    #: Emits exactly ``k_from_ratio(d, ratio)`` entries — accepts ``out=``.
    fixed_k = True

    def compress(
        self,
        update: np.ndarray,
        ratio: float,
        out: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> SparseUpdate:
        update = np.ascontiguousarray(update, dtype=np.float32)
        d = update.shape[0]
        k = k_from_ratio(d, ratio)
        if k >= d:
            idx = np.arange(d, dtype=np.int64)
        else:
            idx = np.argpartition(np.abs(update), d - k)[d - k :]
            idx = np.sort(idx).astype(np.int64)
        if out is None:
            return SparseUpdate(dense_size=d, indices=idx, values=update[idx])
        idx_buf, val_buf = _check_block(out, k)
        idx_buf[...] = idx
        np.take(update, idx_buf, out=val_buf)
        return SparseUpdate(dense_size=d, indices=idx_buf, values=val_buf)


class RandomK:
    """Uniform Random-K sparsification with unbiased inverse-probability scaling.

    Each retained value is scaled by ``d/k`` so the sparsified update is an
    unbiased estimator of the dense one (Wangni et al., 2018).
    """

    name = "randomk"
    #: Emits exactly ``k_from_ratio(d, ratio)`` entries — accepts ``out=``.
    fixed_k = True

    def __init__(self, seed: int | np.random.Generator = 0, *, unbiased: bool = True):
        self.rng = as_generator(seed)
        self.unbiased = bool(unbiased)

    def compress(
        self,
        update: np.ndarray,
        ratio: float,
        out: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> SparseUpdate:
        update = np.ascontiguousarray(update, dtype=np.float32)
        d = update.shape[0]
        k = k_from_ratio(d, ratio)
        idx = np.sort(self.rng.choice(d, size=k, replace=False)).astype(np.int64)
        if out is None:
            values = update[idx]
            if self.unbiased:
                values = (values.astype(np.float64) * (d / k)).astype(np.float32)
            return SparseUpdate(dense_size=d, indices=idx, values=values)
        idx_buf, val_buf = _check_block(out, k)
        idx_buf[...] = idx
        if self.unbiased:
            scaled = update[idx].astype(np.float64)
            scaled *= d / k
            np.copyto(val_buf, scaled, casting="unsafe")
        else:
            np.take(update, idx_buf, out=val_buf)
        return SparseUpdate(dense_size=d, indices=idx_buf, values=val_buf)


class ThresholdSparsifier:
    """Keep entries with ``|value| >= threshold``; ``ratio`` caps the count.

    The adaptive-threshold family (e.g. hard-threshold sparsification): the
    kept set is value-dependent, so realized density varies round to round.
    ``ratio`` acts as a safety cap — if more than ``ratio·d`` entries clear the
    threshold, only the largest are kept.
    """

    name = "threshold"
    #: Retained set is value-dependent — output size cannot be preplanned.
    fixed_k = False

    def __init__(self, threshold: float):
        self.threshold = check_positive("threshold", threshold)

    def compress(self, update: np.ndarray, ratio: float) -> SparseUpdate:
        update = np.ascontiguousarray(update, dtype=np.float32)
        d = update.shape[0]
        cap = k_from_ratio(d, ratio)
        mask = np.abs(update) >= self.threshold
        idx = np.flatnonzero(mask)
        if idx.size > cap:
            order = np.argsort(np.abs(update[idx]))[::-1][:cap]
            idx = idx[order]
        elif idx.size == 0:
            idx = np.array([int(np.argmax(np.abs(update)))])
        idx = np.sort(idx).astype(np.int64)
        return SparseUpdate(dense_size=d, indices=idx, values=update[idx])
