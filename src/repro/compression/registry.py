"""Name → compressor-factory registry.

Lets experiment configs refer to compressors by string (``"topk"``,
``"ef_topk"``, ``"randomk"``, ``"qsgd8"``, ...) while keeping construction —
including per-client statefulness for error feedback — in one place.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.compression.base import Compressor
from repro.compression.ef import ErrorFeedback
from repro.compression.quantization import QSGDQuantizer, UniformQuantizer
from repro.compression.sign import SignCompressor
from repro.compression.sparsifiers import RandomK, ThresholdSparsifier, TopK

__all__ = ["make_compressor", "available_compressors", "register_compressor"]

_FACTORIES: dict[str, Callable[..., Compressor]] = {}


def register_compressor(name: str, factory: Callable[..., Compressor]) -> None:
    """Register a new compressor factory under ``name``.

    The factory receives ``(seed)`` as keyword argument and must return a
    fresh, independent compressor instance (stateful compressors like error
    feedback must not share state across clients).
    """
    if name in _FACTORIES:
        raise ValueError(f"compressor {name!r} already registered")
    _FACTORIES[name] = factory


def available_compressors() -> list[str]:
    """Sorted registered names."""
    return sorted(_FACTORIES)


def make_compressor(name: str, *, seed: int | np.random.Generator = 0) -> Compressor:
    """Instantiate a fresh compressor by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown compressor {name!r}; available: {available_compressors()}"
        ) from None
    return factory(seed=seed)


register_compressor("topk", lambda seed=0: TopK())
register_compressor("ef_topk", lambda seed=0: ErrorFeedback(TopK()))
register_compressor("randomk", lambda seed=0: RandomK(seed=seed))
register_compressor("ef_randomk", lambda seed=0: ErrorFeedback(RandomK(seed=seed)))
register_compressor("threshold", lambda seed=0: ThresholdSparsifier(threshold=1e-4))
register_compressor("qsgd8", lambda seed=0: QSGDQuantizer(bits=8, seed=seed))
register_compressor("qsgd4", lambda seed=0: QSGDQuantizer(bits=4, seed=seed))
register_compressor("uniform8", lambda seed=0: UniformQuantizer(bits=8))
register_compressor("sign", lambda seed=0: SignCompressor())
register_compressor("ef_sign", lambda seed=0: ErrorFeedback(SignCompressor()))
