"""1-bit sign compression (signSGD / EF-signSGD family).

Transmits only the sign of each coordinate plus one float scale — the mean
absolute value — so the reconstruction ``scale · sign(u)`` preserves the
update's L1 mass. With the error-feedback wrapper this is EF-signSGD
(Karimireddy et al., 2019), another "commonly used compression technique"
the framework integrates (Sec. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import CompressedUpdate

__all__ = ["SignUpdate", "SignCompressor"]


@dataclass(frozen=True)
class SignUpdate(CompressedUpdate):
    """Sign bits plus one scale: bits = d·1 + 32."""

    signs: np.ndarray  # int8 in {-1, 0, +1}
    scale: float

    def __post_init__(self):
        if self.signs.shape != (self.dense_size,):
            raise ValueError(f"signs shape {self.signs.shape} != ({self.dense_size},)")
        if self.scale < 0:
            raise ValueError(f"scale must be >= 0, got {self.scale}")

    @property
    def bits(self) -> float:
        return float(self.dense_size) * 1 + 32

    def to_dense(self) -> np.ndarray:
        return (self.scale * self.signs).astype(np.float32)


class SignCompressor:
    """``u → mean(|u|) · sign(u)``; ratio is ignored (rate is fixed at 1 bit)."""

    name = "sign"

    def compress(self, update: np.ndarray, ratio: float = 1.0) -> SignUpdate:
        update = np.ascontiguousarray(update, dtype=np.float32)
        d = update.shape[0]
        scale = float(np.mean(np.abs(update))) if d else 0.0
        return SignUpdate(
            dense_size=d,
            signs=np.sign(update).astype(np.int8),
            scale=scale,
        )
