"""Quantizing compressors (Sec. 2.2's orthogonal direction).

These reduce bits-per-value instead of entry count: QSGD-style stochastic
quantization (Alekhine et al.'s scheme as used by FedPAQ) and a deterministic
uniform quantizer. They emit :class:`DenseUpdate`s whose ``bits`` reflect the
reduced precision, so the same network cost model prices them.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import DenseUpdate
from repro.utils.rng import as_generator

__all__ = ["QSGDQuantizer", "UniformQuantizer"]


class QSGDQuantizer:
    """Stochastic uniform quantization to ``2^bits − 1`` levels per sign.

    Values are scaled by the vector's max-|v|, mapped onto a uniform grid and
    rounded stochastically so the quantized vector is unbiased.
    """

    name = "qsgd"

    def __init__(self, bits: int = 8, seed: int | np.random.Generator = 0):
        if not 1 <= bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {bits}")
        self.bits = int(bits)
        self.rng = as_generator(seed)

    def compress(self, update: np.ndarray, ratio: float = 1.0) -> DenseUpdate:
        update = np.ascontiguousarray(update, dtype=np.float32)
        d = update.shape[0]
        scale = float(np.max(np.abs(update))) if d else 0.0
        if scale == 0.0:
            return DenseUpdate(dense_size=d, values=update.copy(), value_bits=self.bits)
        levels = (1 << self.bits) - 1
        normalized = np.abs(update) / scale * levels
        floor = np.floor(normalized)
        prob = normalized - floor
        quantized = floor + (self.rng.random(d) < prob)
        values = (np.sign(update) * quantized * (scale / levels)).astype(np.float32)
        return DenseUpdate(dense_size=d, values=values, value_bits=self.bits)


class UniformQuantizer:
    """Deterministic round-to-nearest uniform quantization (biased, low variance)."""

    name = "uniform_quant"

    def __init__(self, bits: int = 8):
        if not 1 <= bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {bits}")
        self.bits = int(bits)

    def compress(self, update: np.ndarray, ratio: float = 1.0) -> DenseUpdate:
        update = np.ascontiguousarray(update, dtype=np.float32)
        d = update.shape[0]
        scale = float(np.max(np.abs(update))) if d else 0.0
        if scale == 0.0:
            return DenseUpdate(dense_size=d, values=update.copy(), value_bits=self.bits)
        levels = (1 << self.bits) - 1
        quantized = np.round(update / scale * levels)
        values = (quantized * (scale / levels)).astype(np.float32)
        return DenseUpdate(dense_size=d, values=values, value_bits=self.bits)
