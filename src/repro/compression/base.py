"""Compression interfaces and the sparse update wire format.

All compressors map a dense flat ``float32`` update vector to a
:class:`CompressedUpdate` carrying (a) enough information to reconstruct a
dense vector and (b) an exact bit count for the network cost model. Sparse
formats store ``(indices, values)`` pairs — matching the factor-2 volume in
the paper's cost model (Alg. 2 line 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["CompressedUpdate", "SparseUpdate", "DenseUpdate", "Compressor", "compression_error"]


@dataclass(frozen=True)
class CompressedUpdate:
    """Abstract transmitted update."""

    dense_size: int

    def to_dense(self) -> np.ndarray:
        raise NotImplementedError

    @property
    def bits(self) -> float:
        """Transmitted volume in bits (for the network cost model)."""
        raise NotImplementedError


@dataclass(frozen=True)
class SparseUpdate(CompressedUpdate):
    """Sparse (indices, values) representation of a flat update vector."""

    indices: np.ndarray  # int64, sorted, unique
    values: np.ndarray  # float32
    index_bits: int = 32
    value_bits: int = 32

    def __post_init__(self):
        if self.indices.shape != self.values.shape or self.indices.ndim != 1:
            raise ValueError(
                f"indices/values must be matching 1-D arrays, got "
                f"{self.indices.shape} and {self.values.shape}"
            )
        if self.indices.size:
            if int(self.indices.min()) < 0 or int(self.indices.max()) >= self.dense_size:
                raise ValueError("indices out of range")
            if np.any(np.diff(self.indices) <= 0):
                raise ValueError("indices must be strictly increasing")

    @property
    def nnz(self) -> int:
        """Number of retained entries."""
        return int(self.indices.size)

    @property
    def density(self) -> float:
        """Retained fraction — the realized compression ratio."""
        return self.nnz / self.dense_size if self.dense_size else 0.0

    @property
    def bits(self) -> float:
        return float(self.nnz) * (self.index_bits + self.value_bits)

    def to_dense(self, out: np.ndarray | None = None) -> np.ndarray:
        """Scatter values into a dense vector."""
        if out is None:
            out = np.zeros(self.dense_size, dtype=np.float32)
        elif out.shape != (self.dense_size,):
            raise ValueError(f"out has shape {out.shape}, expected ({self.dense_size},)")
        else:
            out[...] = 0
        out[self.indices] = self.values
        return out


@dataclass(frozen=True)
class DenseUpdate(CompressedUpdate):
    """Uncompressed (or quantized-dense) update."""

    values: np.ndarray  # float32 dense vector
    value_bits: int = 32

    def __post_init__(self):
        if self.values.shape != (self.dense_size,):
            raise ValueError(f"values shape {self.values.shape} != ({self.dense_size},)")

    @property
    def bits(self) -> float:
        return float(self.dense_size) * self.value_bits

    def to_dense(self) -> np.ndarray:
        return self.values.astype(np.float32, copy=True)


@runtime_checkable
class Compressor(Protocol):
    """Maps a dense update to a transmissible :class:`CompressedUpdate`.

    ``ratio`` is the target retained fraction for sparsifiers; quantizers may
    ignore it (their savings come from fewer bits per value).
    """

    def compress(self, update: np.ndarray, ratio: float) -> CompressedUpdate: ...


def compression_error(update: np.ndarray, compressed: CompressedUpdate) -> float:
    """Relative L2 reconstruction error ``||u - û|| / ||u||``."""
    dense = compressed.to_dense()
    denom = float(np.linalg.norm(update))
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(update - dense)) / denom
