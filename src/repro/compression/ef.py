"""Error-feedback compression (EF-TopK baseline, Sec. 5.1).

Error feedback (Karimireddy et al.; Li & Li 2023 in the paper's references)
keeps the residual ``e = u_corrected − compress(u_corrected)`` locally and
adds it to the next round's update, so information dropped by a biased
compressor is eventually transmitted. Wrapping :class:`~repro.compression.sparsifiers.TopK`
yields the paper's EFTOPK baseline.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedUpdate, Compressor, SparseUpdate

__all__ = ["ErrorFeedback"]


class ErrorFeedback:
    """Stateful per-client wrapper adding residual memory to any compressor.

    The residual buffer is updated **in place**: the memory array doubles as
    the corrected update (``memory += update``), and after compression the
    transmitted values are subtracted back out — sparse outputs touch only
    their ``nnz`` entries, so no dense reconstruction and no fresh
    allocations on the hot path. Bit-identical to the historical
    ``corrected − compress(corrected).to_dense()`` formulation
    (``c − 0 = c`` exactly at untouched entries).
    """

    def __init__(self, inner: Compressor):
        self.inner = inner
        self._memory: np.ndarray | None = None

    @property
    def name(self) -> str:
        inner_name = getattr(self.inner, "name", type(self.inner).__name__)
        return f"ef_{inner_name}"

    @property
    def fixed_k(self) -> bool:
        """Whether the wrapped compressor can preplan its output block."""
        return bool(getattr(self.inner, "fixed_k", False))

    @property
    def memory(self) -> np.ndarray | None:
        """Current residual (None before the first compression)."""
        return self._memory

    def reset(self) -> None:
        """Drop accumulated residual (e.g. when a client is re-initialized)."""
        self._memory = None

    def compress(
        self,
        update: np.ndarray,
        ratio: float,
        out: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> CompressedUpdate:
        update = np.ascontiguousarray(update, dtype=np.float32)
        if self._memory is None:
            self._memory = np.zeros_like(update)
        elif self._memory.shape != update.shape:
            raise ValueError(
                f"update size changed: memory {self._memory.shape} vs update {update.shape}"
            )
        self._memory += update
        corrected = self._memory
        if out is not None:
            compressed = self.inner.compress(corrected, ratio, out=out)
        else:
            compressed = self.inner.compress(corrected, ratio)
        # Residual = what the compressor failed to transmit this round.
        if isinstance(compressed, SparseUpdate):
            # Sparse indices are unique, so the scatter-subtract hits each
            # retained entry once: fl(c − v) there, c (exactly) elsewhere.
            self._memory[compressed.indices] -= compressed.values
        else:
            self._memory -= compressed.to_dense()
        return compressed
