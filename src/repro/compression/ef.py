"""Error-feedback compression (EF-TopK baseline, Sec. 5.1).

Error feedback (Karimireddy et al.; Li & Li 2023 in the paper's references)
keeps the residual ``e = u_corrected − compress(u_corrected)`` locally and
adds it to the next round's update, so information dropped by a biased
compressor is eventually transmitted. Wrapping :class:`~repro.compression.sparsifiers.TopK`
yields the paper's EFTOPK baseline.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedUpdate, Compressor

__all__ = ["ErrorFeedback"]


class ErrorFeedback:
    """Stateful per-client wrapper adding residual memory to any compressor."""

    def __init__(self, inner: Compressor):
        self.inner = inner
        self._memory: np.ndarray | None = None

    @property
    def name(self) -> str:
        inner_name = getattr(self.inner, "name", type(self.inner).__name__)
        return f"ef_{inner_name}"

    @property
    def memory(self) -> np.ndarray | None:
        """Current residual (None before the first compression)."""
        return self._memory

    def reset(self) -> None:
        """Drop accumulated residual (e.g. when a client is re-initialized)."""
        self._memory = None

    def compress(self, update: np.ndarray, ratio: float) -> CompressedUpdate:
        update = np.ascontiguousarray(update, dtype=np.float32)
        if self._memory is None:
            self._memory = np.zeros_like(update)
        elif self._memory.shape != update.shape:
            raise ValueError(
                f"update size changed: memory {self._memory.shape} vs update {update.shape}"
            )
        corrected = update + self._memory
        compressed = self.inner.compress(corrected, ratio)
        # Residual = what the compressor failed to transmit this round.
        self._memory = corrected - compressed.to_dense()
        return compressed
