"""Stateless numerical building blocks for the numpy NN substrate.

Everything here is vectorized; convolutions go through im2col/col2im so the
inner loops are matrix multiplies (BLAS), per the HPC guidance of keeping hot
paths out of Python.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "one_hot",
    "im2col",
    "col2im",
    "conv_output_size",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int, dtype=np.float32) -> np.ndarray:
    """Encode integer ``labels`` of shape (N,) as an (N, num_classes) matrix."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must be in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    out[np.arange(labels.shape[0]), labels] = 1
    return out


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output size {out} for input {size}, "
            f"kernel {kernel}, stride {stride}, pad {pad}"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> tuple[np.ndarray, int, int]:
    """Unfold NCHW input into a (N*OH*OW, C*KH*KW) matrix of receptive fields.

    Returns ``(cols, oh, ow)``. The matrix layout pairs with a reshaped weight
    ``(C*KH*KW, OC)`` so the convolution is a single GEMM.
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    # Strided view over sliding windows: shape (N, C, KH, KW, OH, OW).
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )
    cols = windows.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold a (N*OH*OW, C*KH*KW) matrix back into NCHW, summing overlaps.

    Adjoint of :func:`im2col`; used for convolution input gradients.
    """
    n, c, h, w = x_shape
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    cols = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    # Accumulate each kernel offset as one strided slice assignment — the loop
    # is over KH*KW (tiny), never over pixels.
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            out[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if pad > 0:
        out = out[:, :, pad:-pad, pad:-pad]
    return out
