"""Containers: Sequential composition and residual blocks."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, Layer, Parameter, ReLU

__all__ = ["Sequential", "BasicBlock"]


class Sequential(Layer):
    """Apply layers in order; backward walks them in reverse."""

    def __init__(self, *layers: Layer):
        self.layers: list[Layer] = list(layers)

    def append(self, layer: Layer) -> "Sequential":
        """Add ``layer`` at the end (builder style)."""
        self.layers.append(layer)
        return self

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> list[Parameter]:
        out: list[Parameter] = []
        for layer in self.layers:
            out.extend(layer.parameters())
        return out

    def state_arrays(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for layer in self.layers:
            out.extend(layer.state_arrays())
        return out

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, i: int) -> Layer:
        return self.layers[i]


class BasicBlock(Layer):
    """ResNet basic block: conv-bn-relu-conv-bn plus (projected) skip, then ReLU.

    Matches the ResNet-18 building block of He et al. (2016), which the paper
    evaluates with; here it is used in the scaled-down ``MiniResNet``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
        *,
        stride: int = 1,
        name: str = "block",
    ):
        self.conv1 = Conv2d(
            in_channels, out_channels, 3, rng, stride=stride, padding=1, bias=False, name=f"{name}.conv1"
        )
        self.bn1 = BatchNorm2d(out_channels, name=f"{name}.bn1")
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, rng, stride=1, padding=1, bias=False, name=f"{name}.conv2")
        self.bn2 = BatchNorm2d(out_channels, name=f"{name}.bn2")
        self.downsample: Sequential | None = None
        if stride != 1 or in_channels != out_channels:
            self.downsample = Sequential(
                Conv2d(in_channels, out_channels, 1, rng, stride=stride, bias=False, name=f"{name}.proj"),
                BatchNorm2d(out_channels, name=f"{name}.proj_bn"),
            )
        self._out_mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        identity = x if self.downsample is None else self.downsample.forward(x, training=training)
        out = self.conv1.forward(x, training=training)
        out = self.bn1.forward(out, training=training)
        out = self.relu1.forward(out, training=training)
        out = self.conv2.forward(out, training=training)
        out = self.bn2.forward(out, training=training)
        out = out + identity
        mask = out > 0
        if training:
            self._out_mask = mask
        return np.where(mask, out, 0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out_mask is None:
            raise RuntimeError("backward called before a training forward pass")
        g = np.where(self._out_mask, grad_out, 0)
        self._out_mask = None
        g_main = self.bn2.backward(g)
        g_main = self.conv2.backward(g_main)
        g_main = self.relu1.backward(g_main)
        g_main = self.bn1.backward(g_main)
        g_main = self.conv1.backward(g_main)
        g_skip = g if self.downsample is None else self.downsample.backward(g)
        return g_main + g_skip

    def parameters(self) -> list[Parameter]:
        out = (
            self.conv1.parameters()
            + self.bn1.parameters()
            + self.conv2.parameters()
            + self.bn2.parameters()
        )
        if self.downsample is not None:
            out.extend(self.downsample.parameters())
        return out

    def state_arrays(self) -> list[np.ndarray]:
        out = self.bn1.state_arrays() + self.bn2.state_arrays()
        if self.downsample is not None:
            out.extend(self.downsample.state_arrays())
        return out
