"""Flat-vector views of model parameters.

FL communication operates on a single contiguous float32 vector per model
(the mpi4py guide's buffer-object idiom): clients send/receive flat vectors,
and the substrate packs/unpacks them here.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer

__all__ = [
    "num_parameters",
    "get_flat_params",
    "set_flat_params",
    "get_flat_grads",
    "param_slices",
    "clone_state",
    "restore_state",
]


def num_parameters(model: Layer) -> int:
    """Total scalar parameter count of ``model``."""
    return int(sum(p.size for p in model.parameters()))


def param_slices(model: Layer) -> list[tuple[str, slice, tuple[int, ...]]]:
    """Describe the flat layout: (name, slice in the flat vector, shape)."""
    out: list[tuple[str, slice, tuple[int, ...]]] = []
    offset = 0
    for p in model.parameters():
        out.append((p.name, slice(offset, offset + p.size), p.data.shape))
        offset += p.size
    return out


def get_flat_params(model: Layer, out: np.ndarray | None = None) -> np.ndarray:
    """Copy all parameters into one contiguous float32 vector."""
    n = num_parameters(model)
    if out is None:
        out = np.empty(n, dtype=np.float32)
    elif out.shape != (n,):
        raise ValueError(f"out has shape {out.shape}, expected ({n},)")
    offset = 0
    for p in model.parameters():
        out[offset : offset + p.size] = p.data.ravel()
        offset += p.size
    return out


def set_flat_params(model: Layer, flat: np.ndarray) -> None:
    """Load parameters from a flat vector (inverse of :func:`get_flat_params`)."""
    n = num_parameters(model)
    flat = np.asarray(flat, dtype=np.float32)
    if flat.shape != (n,):
        raise ValueError(f"flat has shape {flat.shape}, expected ({n},)")
    offset = 0
    for p in model.parameters():
        p.data[...] = flat[offset : offset + p.size].reshape(p.data.shape)
        offset += p.size


def get_flat_grads(model: Layer, out: np.ndarray | None = None) -> np.ndarray:
    """Copy all gradients into one contiguous float32 vector."""
    n = num_parameters(model)
    if out is None:
        out = np.empty(n, dtype=np.float32)
    elif out.shape != (n,):
        raise ValueError(f"out has shape {out.shape}, expected ({n},)")
    offset = 0
    for p in model.parameters():
        out[offset : offset + p.size] = p.grad.ravel()
        offset += p.size
    return out


def clone_state(model: Layer) -> tuple[np.ndarray, list[np.ndarray]]:
    """Snapshot parameters and persistent state (BN running stats)."""
    return get_flat_params(model), [a.copy() for a in model.state_arrays()]


def restore_state(model: Layer, snapshot: tuple[np.ndarray, list[np.ndarray]]) -> None:
    """Restore a snapshot produced by :func:`clone_state`."""
    flat, states = snapshot
    set_flat_params(model, flat)
    live = model.state_arrays()
    if len(live) != len(states):
        raise ValueError(f"state count mismatch: {len(live)} vs {len(states)}")
    for dst, src in zip(live, states):
        dst[...] = src
