"""Loss functions returning (scalar loss, gradient w.r.t. logits)."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, softmax

__all__ = ["cross_entropy", "mse_loss", "accuracy"]


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over a batch of integer labels.

    Returns ``(loss, dloss/dlogits)`` where the gradient already includes the
    1/N batch-mean factor.
    """
    labels = np.asarray(labels)
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} does not match batch {n}")
    lsm = log_softmax(logits, axis=1)
    loss = -float(lsm[np.arange(n), labels].mean())
    grad = softmax(logits, axis=1)
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    return loss, grad.astype(logits.dtype)


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. ``pred``."""
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff**2))
    grad = (2.0 / diff.size) * diff
    return loss, grad.astype(pred.dtype)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy for a batch."""
    return float((logits.argmax(axis=1) == np.asarray(labels)).mean())
