"""From-scratch numpy neural-network substrate (see DESIGN.md §2).

Provides the differentiable models the FL engine trains: layers with explicit
forward/backward passes, losses, SGD, flat-parameter packing, and a model zoo
(MLP, small CNN, ResNet-style MiniResNet).
"""

from repro.nn.functional import conv_output_size, im2col, col2im, log_softmax, one_hot, softmax
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    GroupNorm,
    Layer,
    LayerNorm,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Parameter,
    ReLU,
)
from repro.nn.losses import accuracy, cross_entropy, mse_loss
from repro.nn.models import build_gn_cnn, build_mini_resnet, build_mlp, build_model, build_small_cnn
from repro.nn.optim import SGD, Adam, ConstantLR, CosineLR, StepLR
from repro.nn.params import (
    clone_state,
    get_flat_grads,
    get_flat_params,
    num_parameters,
    param_slices,
    restore_state,
    set_flat_params,
)
from repro.nn.sequential import BasicBlock, Sequential

__all__ = [
    "softmax", "log_softmax", "one_hot", "im2col", "col2im", "conv_output_size",
    "Layer", "Parameter", "Linear", "Conv2d", "BatchNorm2d", "GroupNorm",
    "LayerNorm", "ReLU", "LeakyReLU", "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d",
    "Flatten", "Dropout", "Sequential", "BasicBlock",
    "cross_entropy", "mse_loss", "accuracy",
    "SGD", "Adam", "ConstantLR", "StepLR", "CosineLR",
    "num_parameters", "param_slices", "get_flat_params", "set_flat_params",
    "get_flat_grads", "clone_state", "restore_state",
    "build_mlp", "build_small_cnn", "build_gn_cnn", "build_mini_resnet", "build_model",
]
