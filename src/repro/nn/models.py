"""Model zoo used by the experiments.

The paper trains ResNet-18 on CIFAR-sized images; this repo substitutes
scaled-down but architecturally faithful models (see DESIGN.md §2). All
builders take an explicit RNG for reproducible initialization.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    GroupNorm,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.sequential import BasicBlock, Sequential
from repro.utils.rng import as_generator

__all__ = [
    "build_mlp",
    "build_small_cnn",
    "build_gn_cnn",
    "build_mini_resnet",
    "build_model",
    "MODEL_BUILDERS",
]


def build_mlp(
    input_dim: int,
    num_classes: int,
    *,
    hidden: tuple[int, ...] = (128, 64),
    seed: int | np.random.Generator = 0,
) -> Sequential:
    """Fully-connected ReLU network over flattened inputs."""
    rng = as_generator(seed)
    layers: list = [Flatten()]
    prev = input_dim
    for i, h in enumerate(hidden):
        layers.append(Linear(prev, h, rng, name=f"fc{i}"))
        layers.append(ReLU())
        prev = h
    layers.append(Linear(prev, num_classes, rng, name="head"))
    return Sequential(*layers)


def build_small_cnn(
    in_channels: int,
    image_size: int,
    num_classes: int,
    *,
    width: int = 16,
    seed: int | np.random.Generator = 0,
) -> Sequential:
    """Conv-BN-ReLU ×2 with pooling, then a linear head (LeNet-scale)."""
    rng = as_generator(seed)
    return Sequential(
        Conv2d(in_channels, width, 3, rng, padding=1, bias=False, name="conv1"),
        BatchNorm2d(width, name="bn1"),
        ReLU(),
        MaxPool2d(2),
        Conv2d(width, 2 * width, 3, rng, padding=1, bias=False, name="conv2"),
        BatchNorm2d(2 * width, name="bn2"),
        ReLU(),
        GlobalAvgPool2d(),
        Linear(2 * width, num_classes, rng, name="head"),
    )


def build_gn_cnn(
    in_channels: int,
    num_classes: int,
    *,
    width: int = 16,
    groups: int = 4,
    seed: int | np.random.Generator = 0,
) -> Sequential:
    """GroupNorm CNN: the BatchNorm-free architecture for non-IID FL.

    BatchNorm's batch statistics are a known failure mode under label skew
    (each client normalizes by its own biased batch distribution); GroupNorm
    is batch-independent and carries *no persistent buffers*, so the server
    has nothing extra to average — the standard recommendation for federated
    vision models (Hsieh et al., 2020).
    """
    rng = as_generator(seed)
    return Sequential(
        Conv2d(in_channels, width, 3, rng, padding=1, bias=False, name="conv1"),
        GroupNorm(groups, width, name="gn1"),
        ReLU(),
        MaxPool2d(2),
        Conv2d(width, 2 * width, 3, rng, padding=1, bias=False, name="conv2"),
        GroupNorm(groups, 2 * width, name="gn2"),
        ReLU(),
        GlobalAvgPool2d(),
        Linear(2 * width, num_classes, rng, name="head"),
    )


def build_mini_resnet(
    in_channels: int,
    num_classes: int,
    *,
    width: int = 16,
    blocks_per_stage: tuple[int, ...] = (1, 1, 1),
    seed: int | np.random.Generator = 0,
) -> Sequential:
    """ResNet-18-style network scaled for small synthetic images.

    Stem conv then ``len(blocks_per_stage)`` stages of :class:`BasicBlock`s,
    doubling channels and halving resolution per stage, then global average
    pooling and a linear classifier — the same topology family as the paper's
    ResNet-18, with fewer/narrower blocks so CPU training is feasible.
    """
    rng = as_generator(seed)
    layers: list = [
        Conv2d(in_channels, width, 3, rng, padding=1, bias=False, name="stem"),
        BatchNorm2d(width, name="stem_bn"),
        ReLU(),
    ]
    channels = width
    for stage, n_blocks in enumerate(blocks_per_stage):
        out_channels = width * (2**stage)
        for b in range(n_blocks):
            stride = 2 if (b == 0 and stage > 0) else 1
            layers.append(
                BasicBlock(channels, out_channels, rng, stride=stride, name=f"s{stage}b{b}")
            )
            channels = out_channels
    layers.extend([GlobalAvgPool2d(), Linear(channels, num_classes, rng, name="head")])
    return Sequential(*layers)


MODEL_BUILDERS = {
    "mlp": build_mlp,
    "small_cnn": build_small_cnn,
    "gn_cnn": build_gn_cnn,
    "mini_resnet": build_mini_resnet,
}


def build_model(
    name: str,
    *,
    in_channels: int,
    image_size: int,
    num_classes: int,
    seed: int | np.random.Generator = 0,
    **kwargs,
) -> Sequential:
    """Build a model by registry name with dataset geometry."""
    if name == "mlp":
        return build_mlp(in_channels * image_size * image_size, num_classes, seed=seed, **kwargs)
    if name == "small_cnn":
        return build_small_cnn(in_channels, image_size, num_classes, seed=seed, **kwargs)
    if name == "gn_cnn":
        return build_gn_cnn(in_channels, num_classes, seed=seed, **kwargs)
    if name == "mini_resnet":
        return build_mini_resnet(in_channels, num_classes, seed=seed, **kwargs)
    raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}")
