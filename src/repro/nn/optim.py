"""Optimizers and learning-rate schedules for the numpy NN substrate."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["SGD", "Adam", "StepLR", "CosineLR", "ConstantLR"]


class SGD:
    """SGD with optional momentum and decoupled weight decay.

    Updates happen in place on ``Parameter.data`` (HPC guide: avoid copies in
    hot loops).
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.params = list(params)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params] if momentum > 0 else None

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        for i, p in enumerate(self.params):
            g = p.grad
            if self.weight_decay > 0:
                g = g + self.weight_decay * p.data
            if self._velocity is not None:
                v = self._velocity[i]
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam:
    """Adam with decoupled weight decay (AdamW-style).

    State updates are fully in-place on preallocated moment buffers.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        *,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        if eps <= 0:
            raise ValueError(f"eps must be > 0, got {eps}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.params = list(params)
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._t += 1
        bc1 = 1 - self.beta1**self._t
        bc2 = 1 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g * g
            if self.weight_decay > 0:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class ConstantLR:
    """Constant learning rate schedule."""

    def __init__(self, lr: float):
        self.lr = float(lr)

    def __call__(self, step: int) -> float:
        return self.lr


class StepLR:
    """Multiply the base LR by ``gamma`` every ``step_size`` steps."""

    def __init__(self, base_lr: float, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError(f"step_size must be > 0, got {step_size}")
        self.base_lr = float(base_lr)
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def __call__(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class CosineLR:
    """Cosine annealing from ``base_lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, base_lr: float, total_steps: int, min_lr: float = 0.0):
        if total_steps <= 0:
            raise ValueError(f"total_steps must be > 0, got {total_steps}")
        self.base_lr = float(base_lr)
        self.total_steps = int(total_steps)
        self.min_lr = float(min_lr)

    def __call__(self, step: int) -> float:
        t = min(step, self.total_steps) / self.total_steps
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * t))
