"""Weight initializers for the numpy NN substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "zeros", "ones"]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute fan-in/fan-out for dense ((in, out)) or conv ((oc, ic, kh, kw)) shapes."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator, dtype=np.float32) -> np.ndarray:
    """He-normal initialization (gain for ReLU)."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(dtype)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, dtype=np.float32) -> np.ndarray:
    """He-uniform initialization (gain for ReLU)."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, dtype=np.float32) -> np.ndarray:
    """Glorot-uniform initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def zeros(shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
    """All-zeros tensor (biases, BN shift)."""
    return np.zeros(shape, dtype=dtype)


def ones(shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
    """All-ones tensor (BN scale)."""
    return np.ones(shape, dtype=dtype)
