"""Layers with explicit forward/backward passes.

Each :class:`Layer` caches what its backward pass needs during ``forward`` and
exposes trainable tensors as :class:`Parameter` objects. Gradients accumulate
into ``Parameter.grad`` so an optimizer can step over ``model.parameters()``.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init as initializers
from repro.nn.functional import col2im, conv_output_size, im2col

__all__ = [
    "Parameter",
    "Layer",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "GroupNorm",
    "LayerNorm",
    "ReLU",
    "LeakyReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
]


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    __slots__ = ("name", "data", "grad")

    def __init__(self, name: str, data: np.ndarray):
        self.name = name
        self.data = np.ascontiguousarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)

    @property
    def size(self) -> int:
        """Number of scalar entries."""
        return self.data.size

    def zero_grad(self) -> None:
        """Reset the accumulated gradient in place."""
        self.grad[...] = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter({self.name}, shape={self.data.shape})"


class Layer:
    """Base class: ``forward`` caches, ``backward`` consumes the cache."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """Trainable parameters of this layer (empty by default)."""
        return []

    def state_arrays(self) -> list[np.ndarray]:
        """Non-trainable persistent state (e.g. BN running stats)."""
        return []

    def __call__(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)


class Linear(Layer):
    """Affine map ``y = x @ W + b`` for inputs of shape (N, in_features)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        *,
        bias: bool = True,
        name: str = "linear",
    ):
        self.weight = Parameter(f"{name}.weight", initializers.kaiming_uniform((in_features, out_features), rng))
        self.bias = Parameter(f"{name}.bias", initializers.zeros((out_features,))) if bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._x = x
        y = x @ self.weight.data
        if self.bias is not None:
            y += self.bias.data
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before a training forward pass")
        self.weight.grad += self._x.T @ grad_out
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        grad_in = grad_out @ self.weight.data.T
        self._x = None
        return grad_in

    def parameters(self) -> list[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])


class Conv2d(Layer):
    """2-D convolution over NCHW inputs, implemented as im2col + GEMM."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        *,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        name: str = "conv",
    ):
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        shape = (out_channels, in_channels, self.kernel_size, self.kernel_size)
        self.weight = Parameter(f"{name}.weight", initializers.kaiming_normal(shape, rng))
        self.bias = Parameter(f"{name}.bias", initializers.zeros((out_channels,))) if bias else None
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n = x.shape[0]
        k, s, p = self.kernel_size, self.stride, self.padding
        cols, oh, ow = im2col(x, k, k, s, p)
        w2d = self.weight.data.reshape(self.out_channels, -1).T  # (C*K*K, OC)
        out = cols @ w2d
        if self.bias is not None:
            out += self.bias.data
        if training:
            self._cols = cols
            self._x_shape = x.shape
        return out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        k, s, p = self.kernel_size, self.stride, self.padding
        n, oc, oh, ow = grad_out.shape
        g2d = grad_out.transpose(0, 2, 3, 1).reshape(n * oh * ow, oc)
        gw = self._cols.T @ g2d  # (C*K*K, OC)
        self.weight.grad += gw.T.reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += g2d.sum(axis=0)
        gcols = g2d @ self.weight.data.reshape(oc, -1)  # (N*OH*OW, C*K*K)
        grad_in = col2im(gcols, self._x_shape, k, k, s, p)
        self._cols = None
        self._x_shape = None
        return grad_in

    def parameters(self) -> list[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])


class BatchNorm2d(Layer):
    """Batch normalization over NCHW inputs with running statistics."""

    def __init__(self, num_features: int, *, momentum: float = 0.1, eps: float = 1e-5, name: str = "bn"):
        self.gamma = Parameter(f"{name}.gamma", initializers.ones((num_features,)))
        self.beta = Parameter(f"{name}.beta", initializers.zeros((num_features,)))
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean += self.momentum * (mean - self.running_mean)
            self.running_var += self.momentum * (var - self.running_var)
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = self.gamma.data[None, :, None, None] * x_hat + self.beta.data[None, :, None, None]
        if training:
            self._cache = (x_hat, inv_std)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x_hat, inv_std = self._cache
        n, _, h, w = grad_out.shape
        m = n * h * w
        self.gamma.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_out.sum(axis=(0, 2, 3))
        g = grad_out * self.gamma.data[None, :, None, None]
        # Standard batchnorm backward, fully vectorized per channel.
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_in = (inv_std[None, :, None, None] / m) * (m * g - sum_g - x_hat * sum_gx)
        self._cache = None
        return grad_in

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]

    def state_arrays(self) -> list[np.ndarray]:
        return [self.running_mean, self.running_var]


class GroupNorm(Layer):
    """Group normalization over NCHW inputs (batch-size independent)."""

    def __init__(self, num_groups: int, num_channels: int, *, eps: float = 1e-5, name: str = "gn"):
        if num_channels % num_groups != 0:
            raise ValueError(f"num_channels {num_channels} not divisible by num_groups {num_groups}")
        self.num_groups = int(num_groups)
        self.num_channels = int(num_channels)
        self.eps = float(eps)
        self.gamma = Parameter(f"{name}.gamma", initializers.ones((num_channels,)))
        self.beta = Parameter(f"{name}.beta", initializers.zeros((num_channels,)))
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        g = self.num_groups
        xg = x.reshape(n, g, c // g * h * w)
        mean = xg.mean(axis=2, keepdims=True)
        var = xg.var(axis=2, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = ((xg - mean) * inv_std).reshape(n, c, h, w)
        out = self.gamma.data[None, :, None, None] * x_hat + self.beta.data[None, :, None, None]
        if training:
            self._cache = (x_hat, inv_std, (n, c, h, w))
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x_hat, inv_std, (n, c, h, w) = self._cache
        g = self.num_groups
        m = c // g * h * w
        self.gamma.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_out.sum(axis=(0, 2, 3))
        gy = (grad_out * self.gamma.data[None, :, None, None]).reshape(n, g, m)
        xh = x_hat.reshape(n, g, m)
        sum_g = gy.sum(axis=2, keepdims=True)
        sum_gx = (gy * xh).sum(axis=2, keepdims=True)
        grad_in = (inv_std / m) * (m * gy - sum_g - xh * sum_gx)
        self._cache = None
        return grad_in.reshape(n, c, h, w)

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]


class LayerNorm(Layer):
    """Layer normalization over the last dimension of (N, F) inputs."""

    def __init__(self, num_features: int, *, eps: float = 1e-5, name: str = "ln"):
        self.gamma = Parameter(f"{name}.gamma", initializers.ones((num_features,)))
        self.beta = Parameter(f"{name}.beta", initializers.zeros((num_features,)))
        self.eps = float(eps)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        out = self.gamma.data * x_hat + self.beta.data
        if training:
            self._cache = (x_hat, inv_std)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        x_hat, inv_std = self._cache
        f = grad_out.shape[-1]
        self.gamma.grad += (grad_out * x_hat).sum(axis=tuple(range(grad_out.ndim - 1)))
        self.beta.grad += grad_out.sum(axis=tuple(range(grad_out.ndim - 1)))
        g = grad_out * self.gamma.data
        sum_g = g.sum(axis=-1, keepdims=True)
        sum_gx = (g * x_hat).sum(axis=-1, keepdims=True)
        grad_in = (inv_std / f) * (f * g - sum_g - x_hat * sum_gx)
        self._cache = None
        return grad_in

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self):
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return np.where(mask, x, 0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        grad_in = np.where(self._mask, grad_out, 0)
        self._mask = None
        return grad_in


class LeakyReLU(Layer):
    """Leaky ReLU with negative slope ``alpha``."""

    def __init__(self, alpha: float = 0.01):
        self.alpha = float(alpha)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return np.where(mask, x, self.alpha * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        grad_in = np.where(self._mask, grad_out, self.alpha * grad_out)
        self._mask = None
        return grad_in


class MaxPool2d(Layer):
    """Max pooling over NCHW inputs."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else self.kernel_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        oh = conv_output_size(h, k, s, 0)
        ow = conv_output_size(w, k, s, 0)
        sn, sc, sh, sw = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, oh, ow, k, k),
            strides=(sn, sc, sh * s, sw * s, sh, sw),
            writeable=False,
        )
        flat = windows.reshape(n, c, oh, ow, k * k)
        argmax = flat.argmax(axis=4)
        out = np.take_along_axis(flat, argmax[..., None], axis=4)[..., 0]
        if training:
            self._cache = (argmax, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        argmax, x_shape = self._cache
        n, c, h, w = x_shape
        k, s = self.kernel_size, self.stride
        oh, ow = argmax.shape[2], argmax.shape[3]
        grad_in = np.zeros(x_shape, dtype=grad_out.dtype)
        # Scatter gradients to the winning positions with one np.add.at call.
        ki, kj = np.divmod(argmax, k)
        ni, ci, oi, oj = np.indices(argmax.shape, sparse=False)
        rows = oi * s + ki
        cols = oj * s + kj
        np.add.at(grad_in, (ni, ci, rows, cols), grad_out)
        self._cache = None
        return grad_in


class AvgPool2d(Layer):
    """Average pooling over NCHW inputs."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else self.kernel_size
        self._x_shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        oh = conv_output_size(h, k, s, 0)
        ow = conv_output_size(w, k, s, 0)
        sn, sc, sh, sw = x.strides
        windows = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, oh, ow, k, k),
            strides=(sn, sc, sh * s, sw * s, sh, sw),
            writeable=False,
        )
        if training:
            self._x_shape = x.shape
        return windows.mean(axis=(4, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, h, w = self._x_shape
        k, s = self.kernel_size, self.stride
        oh, ow = grad_out.shape[2], grad_out.shape[3]
        grad_in = np.zeros(self._x_shape, dtype=grad_out.dtype)
        scaled = grad_out / (k * k)
        for i in range(k):
            for j in range(k):
                grad_in[:, :, i : i + s * oh : s, j : j + s * ow : s] += scaled
        self._x_shape = None
        return grad_in


class GlobalAvgPool2d(Layer):
    """Collapse NCHW to (N, C) by spatial averaging."""

    def __init__(self):
        self._x_shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        n, c, h, w = self._x_shape
        grad_in = np.broadcast_to(grad_out[:, :, None, None] / (h * w), self._x_shape).copy()
        self._x_shape = None
        return grad_in


class Flatten(Layer):
    """Flatten all but the batch dimension."""

    def __init__(self):
        self._x_shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        grad_in = grad_out.reshape(self._x_shape)
        self._x_shape = None
        return grad_in


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time."""

    def __init__(self, p: float, rng: np.random.Generator):
        if not 0 <= p < 1:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = float(p)
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        grad_in = grad_out * self._mask
        self._mask = None
        return grad_in
