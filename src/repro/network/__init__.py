"""Network substrate: cost model, transport layer, link sampling, metrics."""

from repro.network.transport import (
    CONTENTION_MODES,
    IngressPipe,
    Payload,
    Transport,
    TransferRecord,
)
from repro.network.cost import (
    SPARSE_VOLUME_FACTOR,
    LinkSpec,
    model_bits,
    sparse_uplink_time,
    uplink_time,
)
from repro.network.links import MBIT, PAPER_LINK_MODEL, LinkModel, TimeVaryingLink, sample_links
from repro.network.metrics import RoundTimes, TimeAccumulator
from repro.network.topology import StarTopology

__all__ = [
    "LinkSpec",
    "model_bits",
    "uplink_time",
    "sparse_uplink_time",
    "SPARSE_VOLUME_FACTOR",
    "LinkModel",
    "PAPER_LINK_MODEL",
    "MBIT",
    "sample_links",
    "TimeVaryingLink",
    "RoundTimes",
    "TimeAccumulator",
    "StarTopology",
    "Payload",
    "TransferRecord",
    "IngressPipe",
    "Transport",
    "CONTENTION_MODES",
]
