"""Star-topology helper around client links.

FL is server-centric, so the physical topology is a star; this module keeps
client↔link bookkeeping in one place and can export the star as a networkx
graph for inspection/visualization.
"""

from __future__ import annotations

import numpy as np

from repro.network.cost import LinkSpec, sparse_uplink_time, uplink_time

__all__ = ["StarTopology"]


class StarTopology:
    """Server at the hub, one uplink spec per client."""

    def __init__(self, links: list[LinkSpec]):
        if not links:
            raise ValueError("need at least one client link")
        self.links = list(links)

    @property
    def num_clients(self) -> int:
        return len(self.links)

    def link(self, client_id: int) -> LinkSpec:
        """The uplink of ``client_id``."""
        return self.links[client_id]

    def bandwidths(self) -> np.ndarray:
        """Vector of client bandwidths (bits/s)."""
        return np.array([l.bandwidth_bps for l in self.links])

    def latencies(self) -> np.ndarray:
        """Vector of client latencies (s)."""
        return np.array([l.latency_s for l in self.links])

    def uplink_times(self, volume_bits: float, client_ids: list[int] | None = None) -> np.ndarray:
        """Dense-upload times for the given clients (default: all)."""
        ids = range(self.num_clients) if client_ids is None else client_ids
        return np.array([uplink_time(self.links[i], volume_bits) for i in ids])

    def sparse_uplink_times(
        self,
        dense_volume_bits: float,
        crs: np.ndarray,
        client_ids: list[int],
    ) -> np.ndarray:
        """Sparse-upload times for ``client_ids`` with per-client ratios ``crs``."""
        crs = np.asarray(crs, dtype=np.float64)
        if len(client_ids) != crs.shape[0]:
            raise ValueError(f"{len(client_ids)} clients but {crs.shape[0]} ratios")
        return np.array(
            [
                sparse_uplink_time(self.links[i], dense_volume_bits, cr)
                for i, cr in zip(client_ids, crs)
            ]
        )

    def to_networkx(self):
        """Export as a networkx star graph with link attributes (optional dep)."""
        import networkx as nx

        g = nx.Graph()
        g.add_node("server")
        for i, link in enumerate(self.links):
            g.add_node(f"client{i}")
            g.add_edge(
                "server",
                f"client{i}",
                bandwidth_bps=link.bandwidth_bps,
                latency_s=link.latency_s,
            )
        return g
