"""The unified transport layer: payloads, contention, and flow records.

Every transfer the simulator prices goes through this module:

- a :class:`Payload` says *what* crosses a link — the exact wire volume in
  bits (from the emitted :class:`~repro.compression.base.CompressedUpdate`
  whenever one exists) plus its encoding kind;
- a :class:`Transport` says *how long* it takes — either on an exclusive
  link (``contention="none"``: the paper's Eq. 4 ``T = L + V/B``,
  arithmetic bit-identical to the historical pricing paths) or through a
  shared server-ingress pipe (``contention="fair"``: a capacity
  ``server_ingress_mbps`` max-min fair-shared among concurrent uploads,
  finish times computed by progressive water-filling as flows start and
  finish — the alpha-beta model's natural extension from the MPICH
  collective-communication literature the paper draws on);
- a :class:`TransferRecord` says *what happened* — start/end/volume — and
  feeds the per-round flow ledgers (:class:`repro.fl.history.RoundComm`).

Planned-ratio pricing (``SPARSE_VOLUME_FACTOR × V × CR``) survives only as
the documented fallback for ``volume_override_bits`` runs (the trained
model is smaller than the priced one, so emitted bit counts are
meaningless) and for BCRS's plan-time ratio scheduling
(:mod:`repro.core.bcrs`), which must price ratios before any update exists.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.compression.base import CompressedUpdate, DenseUpdate, SparseUpdate
from repro.network.cost import (
    SPARSE_VOLUME_FACTOR,
    LinkSpec,
    downlink_time,
    uplink_time,
)
from repro.utils.rng import RngFactory
from repro.utils.validation import check_fraction, check_positive

__all__ = [
    "Payload",
    "TransferRecord",
    "IngressPipe",
    "Transport",
    "FaultInjector",
    "CONTENTION_MODES",
    "MBIT",
]

MBIT = 1e6  # bits per Mbit

#: How concurrent uploads share the server's ingress.
CONTENTION_MODES = ("none", "fair")

#: Payload encodings the pricing layer distinguishes.
PAYLOAD_KINDS = ("dense", "sparse", "quantized", "custom")

#: Admission slop: a flow may start this far behind the resolved fluid
#: frontier (float noise from inclusive deadline pops), never more.
_ADMIT_SLACK = 1e-6


@dataclass(frozen=True)
class Payload:
    """What crosses a link: exact wire volume in bits plus encoding kind."""

    bits: float
    kind: str = "dense"

    def __post_init__(self):
        if self.bits < 0:
            raise ValueError(f"payload bits must be >= 0, got {self.bits}")
        if self.kind not in PAYLOAD_KINDS:
            raise ValueError(f"kind must be one of {PAYLOAD_KINDS}, got {self.kind!r}")

    @property
    def nbytes(self) -> float:
        return self.bits / 8.0

    @staticmethod
    def dense(volume_bits: float) -> "Payload":
        """An uncompressed model/update of ``volume_bits``."""
        return Payload(bits=float(volume_bits), kind="dense")

    @staticmethod
    def planned(volume_bits: float, ratio: float | None) -> "Payload":
        """Ratio-only fallback pricing (no emitted update to measure).

        ``ratio=None`` is a dense transfer; otherwise the paper's
        ``SPARSE_VOLUME_FACTOR × V × CR`` (index, value)-pair approximation
        — kept for ``volume_override_bits`` runs and plan-time estimates.
        """
        if ratio is None:
            return Payload.dense(volume_bits)
        check_fraction("ratio", ratio)
        return Payload(bits=SPARSE_VOLUME_FACTOR * float(volume_bits) * float(ratio), kind="sparse")

    @staticmethod
    def sparse(nnz: int, *, index_bits: int = 32, value_bits: int = 32) -> "Payload":
        """Exact sparse wire volume: ``nnz × (index_bits + value_bits)``."""
        if nnz < 0:
            raise ValueError(f"nnz must be >= 0, got {nnz}")
        return Payload(bits=float(nnz) * (index_bits + value_bits), kind="sparse")

    @staticmethod
    def from_update(update: CompressedUpdate) -> "Payload":
        """The exact emitted volume of a compressed update.

        This is where quantized (reduced ``value_bits``) and sparse
        ((index, value)-pair) formats get payload-accurate pricing instead
        of being charged as 32-bit dense vectors.
        """
        if isinstance(update, SparseUpdate):
            kind = "sparse"
        elif isinstance(update, DenseUpdate):
            kind = "quantized" if update.value_bits < 32 else "dense"
        else:
            kind = "custom"
        return Payload(bits=float(update.bits), kind=kind)


@dataclass(frozen=True)
class TransferRecord:
    """One priced transfer: when it ran, how long, and what it moved.

    ``seconds`` is the transfer's duration — on exclusive links the analytic
    ``L + V/B`` (stored directly so historical float arithmetic is preserved
    bit-for-bit); on a contended pipe, ``end - start``. ``contended`` marks
    transfers that went through a fair-shared ingress.
    """

    start: float
    end: float
    seconds: float
    bits: float
    direction: str = "uplink"
    contended: bool = False


@dataclass
class _Flow:
    """One upload in flight through a shared ingress."""

    fid: int
    bits: float
    link_bps: float
    entry: float  # transmission begins (start + link latency)
    remaining: float


class IngressPipe:
    """A shared ingress: concurrent flows drain at max-min fair rates.

    ``capacity_bps=None`` degrades to exclusive links — each flow finishes
    at its analytic (or explicitly given) time and the pipe is merely a
    deterministic completion queue ordered by ``(finish, admission seq)``,
    exactly the ``(time, insertion order)`` contract of the event queue it
    replaces in the protocols.

    With a capacity, the pipe runs a progressive water-filling fluid
    simulation: at any instant each active flow transmits at
    ``min(own link rate, max-min fair share of the capacity)``; admissions
    and completions re-solve the allocation. Completion order is a pure
    function of the admitted flows (ties break by admission sequence), so
    contended runs stay bit-identical across execution backends.

    Callers must admit flows in non-decreasing *decision time* order: a
    flow's ``start`` may never precede the already-resolved fluid frontier
    (the protocols guarantee this — uploads start after the dispatch that
    creates them).
    """

    def __init__(self, capacity_bps: float | None = None, *, trace: bool = False):
        if capacity_bps is not None:
            check_positive("capacity_bps", capacity_bps)
        self.capacity_bps = capacity_bps
        self.trace = trace
        self._next_fid = 0
        self._clock = 0.0  # resolved fluid frontier (fair mode)
        self._pending: list[_Flow] = []  # admitted, transmission not begun
        self._active: list[_Flow] = []  # transmitting at the frontier
        self._out: list[tuple[float, int]] = []  # resolved (finish, fid) heap
        self._finish: dict[int, float] = {}
        #: Fluid trace (only with ``trace=True`` — it grows with every
        #: event): (t0, t1, ((fid, rate_bps), ...)) segments, letting
        #: property tests check the capacity and per-link rate invariants.
        self.segments: list[tuple[float, float, tuple[tuple[int, float], ...]]] = []

    # ------------------------------------------------------------ admission

    def admit(
        self,
        bits: float,
        link: LinkSpec,
        start: float,
        *,
        finish: float | None = None,
    ) -> int:
        """Enter one upload; returns its flow id.

        Exclusive pipes resolve immediately: ``finish`` (when the caller
        already priced the transfer — preserving its float arithmetic) or
        ``start + L + V/B``. Fair pipes ignore ``finish`` and let the fluid
        simulation decide.
        """
        if bits < 0:
            raise ValueError(f"flow bits must be >= 0, got {bits}")
        fid = self._next_fid
        self._next_fid += 1
        if self.capacity_bps is None:
            end = finish if finish is not None else start + uplink_time(link, bits)
            self._finish[fid] = end
            heapq.heappush(self._out, (end, fid))
            return fid
        if start < self._clock - _ADMIT_SLACK:
            raise RuntimeError(
                f"retroactive admission: flow starts at {start} but the fluid "
                f"frontier is already at {self._clock}"
            )
        entry = max(start + link.latency_s, self._clock)
        self._pending.append(
            _Flow(fid=fid, bits=float(bits), link_bps=link.bandwidth_bps, entry=entry, remaining=float(bits))
        )
        return fid

    def cancel(self, fid: int) -> None:
        """Abandon a flow (semisync ``late_policy="drop"``): frees its share."""
        self._pending = [f for f in self._pending if f.fid != fid]
        self._active = [f for f in self._active if f.fid != fid]
        if any(e[1] == fid for e in self._out):
            self._out = [e for e in self._out if e[1] != fid]
            heapq.heapify(self._out)
        self._finish.pop(fid, None)

    # ------------------------------------------------------------- fluid sim

    def _rates(self) -> dict[int, float]:
        """Max-min fair allocation over the active flows.

        Water-filling: flows are considered slowest-link first; each gets
        ``min(own link rate, equal share of the remaining capacity)``. No
        flow ever exceeds its own last-mile rate, and the total never
        exceeds the ingress capacity — fair sharing can only *delay*
        relative to an exclusive link.
        """
        remaining = float(self.capacity_bps)
        rates: dict[int, float] = {}
        flows = sorted(self._active, key=lambda f: (f.link_bps, f.fid))
        n = len(flows)
        for i, f in enumerate(flows):
            share = remaining / (n - i)
            rate = min(f.link_bps, share)
            rates[f.fid] = rate
            remaining -= rate
        return rates

    def _activate(self) -> None:
        started = [f for f in self._pending if f.entry <= self._clock]
        if started:
            self._pending = [f for f in self._pending if f.entry > self._clock]
            self._active.extend(sorted(started, key=lambda f: f.fid))

    def _drain(self, rates: dict[int, float], t: float) -> None:
        dt = t - self._clock
        if dt <= 0:
            return
        if self.trace:
            self.segments.append(
                (self._clock, t, tuple(sorted((f.fid, rates[f.fid]) for f in self._active)))
            )
        for f in self._active:
            f.remaining = max(f.remaining - rates[f.fid] * dt, 0.0)

    def _advance(self, limit: float | None) -> bool:
        """Process one fluid event (entry or completion), never past ``limit``.

        Returns False when the frontier reached ``limit`` (or went idle)
        without an event.
        """
        self._activate()
        next_entry = min((f.entry for f in self._pending), default=math.inf)
        if not self._active:
            if next_entry is math.inf or (limit is not None and next_entry > limit):
                if limit is not None and limit > self._clock:
                    self._clock = limit
                return False
            self._clock = next_entry
            self._activate()
            return True
        rates = self._rates()
        finishes = [
            (self._clock + f.remaining / rates[f.fid] if rates[f.fid] > 0 else math.inf, f.fid)
            for f in self._active
        ]
        t_fin = min(t for t, _ in finishes)
        if t_fin is math.inf and next_entry is math.inf:
            raise RuntimeError("ingress stalled: active flows with zero rate")
        t_next = min(t_fin, next_entry)
        if limit is not None and t_next > limit:
            # A limit behind the frontier must never rewind the clock —
            # drained bits would be double-counted on the next advance.
            self._drain(rates, limit)
            if limit > self._clock:
                self._clock = limit
            return False
        self._drain(rates, t_next)
        self._clock = t_next
        if t_fin <= t_next:
            done = sorted(fid for t, fid in finishes if t == t_fin)
            by_fid = {f.fid: f for f in self._active}
            for fid in done:
                self._active.remove(by_fid[fid])
                self._finish[fid] = t_next
                heapq.heappush(self._out, (t_next, fid))
        self._activate()
        return True

    # ------------------------------------------------------------ completion

    def peek_next(self) -> tuple[float, int] | None:
        """Earliest unconsumed completion as ``(finish, fid)``, or None.

        Fair pipes resolve the fluid simulation forward until one flow
        completes — safe because callers admit no flow that starts in the
        resolved past (see the class contract).
        """
        while not self._out and (self._active or self._pending):
            if not self._advance(None):
                break
        return self._out[0] if self._out else None

    def pop_next(self) -> tuple[float, int] | None:
        """Consume the earliest completion (streaming: the caller now owns
        the finish time, so the pipe forgets it — long-lived protocol pipes
        stay bounded by the in-flight flow count)."""
        nxt = self.peek_next()
        if nxt is None:
            return None
        ev = heapq.heappop(self._out)
        self._finish.pop(ev[1], None)
        return ev

    def pop_until(self, t: float) -> list[tuple[float, int]]:
        """All completions with ``finish <= t``, in (finish, seq) order."""
        if self.capacity_bps is not None:
            while self._advance(t):
                pass
        out = []
        while self._out and self._out[0][0] <= t:
            ev = heapq.heappop(self._out)
            self._finish.pop(ev[1], None)
            out.append(ev)
        return out

    def drain(self) -> list[tuple[float, int]]:
        """Resolve and consume every remaining completion.

        Unlike the streaming pops, finish times stay queryable via
        :meth:`finish_time` afterwards — drain is the terminal operation of
        a round-scoped (throwaway) pipe.
        """
        out = []
        while self.peek_next() is not None:
            out.append(heapq.heappop(self._out))
        return out

    def finish_time(self, fid: int) -> float:
        """Resolved finish of ``fid`` (KeyError if in flight or already
        consumed by a streaming pop)."""
        return self._finish[fid]

    def __len__(self) -> int:
        return len(self._pending) + len(self._active) + len(self._out)


class FaultInjector:
    """Deterministic per-upload fault fates: deliver, drop, or truncate.

    A fate is a pure function of ``(seed, epoch, cid)`` through a dedicated
    counter-based RNG stream (:meth:`repro.utils.rng.RngFactory.counter`),
    so seeded faulty runs stay bit-identical across execution backends and
    sweep parallelism, and fates can be decided in any order — the sync
    barrier prices a whole round at once while the event-driven protocols
    decide per dispatch, and both read the identical draws.

    ``epoch`` disambiguates repeated uploads by one client: synchronized
    protocols pass the round index (hierarchical ones a flat sub-round
    index), event-driven protocols a per-dispatch sequence number.

    - **drop**: the payload burns its wire time (it contends, it is billed)
      but never reaches the aggregator — the update contributes nothing.
    - **truncate**: a prefix of the sparse payload survives; the delivered
      update is re-priced at its delivered bits. Partial *dense* blocks are
      discarded deterministically (a truncated dense vector has no usable
      framing), i.e. they degrade to a drop.
    """

    def __init__(
        self,
        seed: int,
        drop_prob: float = 0.0,
        truncate_prob: float = 0.0,
        *,
        stream: str = "fault",
    ):
        for name, prob in (("drop_prob", drop_prob), ("truncate_prob", truncate_prob)):
            # Probabilities, not fractions: 0 (and 1, for always-on) are legal.
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {prob}")
        if drop_prob + truncate_prob > 1.0:
            raise ValueError(
                f"drop_prob + truncate_prob must be <= 1, got "
                f"{drop_prob} + {truncate_prob}"
            )
        self.drop_prob = float(drop_prob)
        self.truncate_prob = float(truncate_prob)
        self._rngs = RngFactory(seed)
        self._stream = stream

    @classmethod
    def from_config(cls, config) -> "FaultInjector | None":
        """The injector a config describes — ``None`` when fault-free.

        Returning ``None`` (not an inert injector) keeps the honest path
        free of any per-upload RNG work: existing seeded histories replay
        byte-for-byte when both probabilities are zero.
        """
        if config.drop_prob == 0.0 and config.truncate_prob == 0.0:
            return None
        return cls(config.seed, config.drop_prob, config.truncate_prob)

    def fate(self, epoch: int, cid: int) -> tuple[str, float]:
        """The fate of client ``cid``'s upload in ``epoch``.

        Returns ``("deliver", 1.0)``, ``("drop", 0.0)``, or
        ``("truncate", frac)`` with ``frac`` the surviving payload fraction.
        """
        rng = self._rngs.counter(f"{self._stream}-{int(epoch)}", int(cid))
        u = float(rng.random())
        if u < self.drop_prob:
            return ("drop", 0.0)
        if u < self.drop_prob + self.truncate_prob:
            return ("truncate", float(rng.random()))
        return ("deliver", 1.0)

    @staticmethod
    def truncate(update: CompressedUpdate, frac: float) -> SparseUpdate | None:
        """The delivered prefix of a truncated upload, or ``None`` if unusable.

        Sparse payloads stream (index, value) pairs, so the first
        ``⌊frac·nnz⌋`` entries form a valid smaller update (prefix of a
        strictly increasing index vector). Dense/quantized payloads have no
        partial-block semantics and degrade to a drop. Buffers are copied:
        the source may be an arena bank view whose storage is recycled.
        """
        if not isinstance(update, SparseUpdate):
            return None
        k = int(frac * update.nnz)
        if k < 1:
            return None
        return SparseUpdate(
            dense_size=update.dense_size,
            indices=update.indices[:k].copy(),
            values=update.values[:k].copy(),
            index_bits=update.index_bits,
            value_bits=update.value_bits,
        )


class Transport:
    """Prices every transfer of a simulation under one contention policy.

    ``contention="none"`` keeps today's exclusive-link semantics — every
    pricing expression is arithmetic-identical to the pre-transport paths,
    so seeded histories reproduce bit-for-bit. ``contention="fair"``
    fair-shares ``server_ingress_bps`` among concurrent uploads; downlink
    broadcasts stay exclusive (server egress is provisioned, the
    measured bottleneck is ingress).

    Synchronized protocols price each round as its own contention epoch
    (:meth:`resolve_uploads` / :meth:`round_pipe`); event-driven protocols
    hold a persistent named :meth:`pipe` whose flows span rounds.
    """

    def __init__(self, contention: str = "none", server_ingress_bps: float | None = None):
        if contention not in CONTENTION_MODES:
            raise ValueError(
                f"contention must be one of {CONTENTION_MODES}, got {contention!r}"
            )
        if contention == "fair":
            if server_ingress_bps is None:
                raise ValueError("contention='fair' requires server_ingress_bps")
            check_positive("server_ingress_bps", server_ingress_bps)
        self.contention = contention
        self.server_ingress_bps = server_ingress_bps
        self._pipes: dict[str, IngressPipe] = {}

    @classmethod
    def from_config(cls, config) -> "Transport":
        """Build the transport an :class:`ExperimentConfig` describes."""
        bps = (
            None
            if config.server_ingress_mbps is None
            else config.server_ingress_mbps * MBIT
        )
        return cls(contention=config.contention, server_ingress_bps=bps)

    @property
    def contended(self) -> bool:
        return self.contention == "fair"

    # ------------------------------------------------------------ exclusive

    def uplink_seconds(self, link: LinkSpec, payload: Payload) -> float:
        """Exclusive-link upload time: Eq. 4 with the payload's exact bits."""
        return uplink_time(link, payload.bits)

    def broadcast_seconds(
        self, link: LinkSpec | None, payload: Payload, *, bandwidth_factor: float = 1.0
    ) -> float:
        """Server→client/edge broadcast time (``None`` link = free tier)."""
        if link is None:
            return 0.0
        return downlink_time(link, payload.bits, bandwidth_factor=bandwidth_factor)

    # ------------------------------------------------------------ contended

    def pipe(self, name: str = "server") -> IngressPipe:
        """The persistent named ingress (created on first use)."""
        if name not in self._pipes:
            self._pipes[name] = IngressPipe(
                self.server_ingress_bps if self.contended else None
            )
        return self._pipes[name]

    def round_pipe(self) -> IngressPipe:
        """A fresh ingress scoped to one synchronized round/sub-round."""
        return IngressPipe(self.server_ingress_bps if self.contended else None)

    def resolve_uploads(
        self,
        flows: list[tuple[Payload, LinkSpec, float]],
        *,
        direction: str = "uplink",
    ) -> list[TransferRecord]:
        """Price one synchronized batch of uploads as a contention epoch.

        ``flows`` is ``[(payload, link, start), ...]``. Exclusive transports
        price each flow analytically; fair transports water-fill the batch
        through a fresh ingress pipe. Records come back in input order.
        """
        if not self.contended:
            out = []
            for payload, link, start in flows:
                seconds = self.uplink_seconds(link, payload)
                out.append(
                    TransferRecord(
                        start=start,
                        end=start + seconds,
                        seconds=seconds,
                        bits=payload.bits,
                        direction=direction,
                    )
                )
            return out
        pipe = self.round_pipe()
        fids = [
            pipe.admit(payload.bits, link, start) for payload, link, start in flows
        ]
        pipe.drain()
        return [
            TransferRecord(
                start=start,
                end=pipe.finish_time(fid),
                seconds=pipe.finish_time(fid) - start,
                bits=payload.bits,
                direction=direction,
                contended=True,
            )
            for fid, (payload, link, start) in zip(fids, flows)
        ]
