"""Round-time metrics (paper Sec. 5.2).

The paper accumulates three quantities over communication rounds:

- **Actual Time** — the communication time the algorithm actually incurs in a
  round (for BCRS, every client finishes near the benchmark; for uniform
  compression it is the straggler's time).
- **Maximum Communication Time** — the straggler's time; its accumulation is
  FedAvg's total transmission duration.
- **Minimum Communication Time** — the fastest client's time; its accumulation
  is the no-straggler optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundTimes", "TimeAccumulator"]


@dataclass(frozen=True)
class RoundTimes:
    """Per-round communication-time summary over the selected clients.

    ``downlink`` is the round's broadcast (server→client) component,
    *already included* in the other three fields when downlink accounting
    is enabled — it is recorded separately so the uplink/downlink split
    stays recoverable (0.0 when only uplink is charged).
    """

    actual: float
    maximum: float
    minimum: float
    downlink: float = 0.0

    def __post_init__(self):
        if not (self.minimum <= self.maximum):
            raise ValueError(f"minimum {self.minimum} > maximum {self.maximum}")
        if self.actual < 0:
            raise ValueError(f"actual time must be >= 0, got {self.actual}")
        if self.downlink < 0:
            raise ValueError(f"downlink time must be >= 0, got {self.downlink}")

    @staticmethod
    def from_client_times(times: np.ndarray, actual: float | None = None) -> "RoundTimes":
        """Summarize per-client times; ``actual`` defaults to the straggler."""
        times = np.asarray(times, dtype=np.float64)
        if times.size == 0:
            raise ValueError("need at least one client time")
        mx = float(times.max())
        return RoundTimes(actual=mx if actual is None else float(actual), maximum=mx, minimum=float(times.min()))


@dataclass
class TimeAccumulator:
    """Accumulate :class:`RoundTimes` across rounds (Sec. 5.2 metrics)."""

    actual_total: float = 0.0
    max_total: float = 0.0
    min_total: float = 0.0
    downlink_total: float = 0.0
    rounds: int = 0
    _actual_series: list[float] = field(default_factory=list)

    def update(self, rt: RoundTimes) -> None:
        """Add one round's times."""
        self.actual_total += rt.actual
        self.max_total += rt.maximum
        self.min_total += rt.minimum
        self.downlink_total += rt.downlink
        self.rounds += 1
        self._actual_series.append(self.actual_total)

    @property
    def actual_series(self) -> np.ndarray:
        """Cumulative actual time after each round (Fig. 10 x-axis)."""
        return np.asarray(self._actual_series)

    def straggler_gap(self) -> float:
        """Accumulated Max − Min: the waiting time a perfect scheduler removes."""
        return self.max_total - self.min_total
