"""The paper's communication cost model (Sec. 3.2, Eq. 4; Alg. 2 line 7).

``T_comm = L + V / B`` where latency ``L`` is per-message and independent of
size, ``V`` is the transmitted volume in bits, and bandwidth ``B`` is in bits
per second — the Thakur-Rabenseifner-Gropp alpha-beta model the paper adopts
from MPICH collective-communication analysis.

For *sparsified* uploads the paper charges ``2 × V × CR / B``: each retained
parameter ships an (index, value) pair, doubling the per-entry volume
relative to a dense vector of the same retained fraction.

The factor-2 expression is *ratio-only planning*: the simulator's actual
transfers are priced by :mod:`repro.network.transport` from the exact wire
volume of the emitted update (``nnz × (index_bits + value_bits)`` for sparse
formats, ``d × value_bits`` for quantized ones). ``SPARSE_VOLUME_FACTOR``
remains the documented fallback wherever no update exists yet — BCRS's
plan-time ratio scheduling (:mod:`repro.core.bcrs`) and
``volume_override_bits`` runs that price a larger model than they train.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_fraction, check_positive

__all__ = [
    "LinkSpec",
    "uplink_time",
    "downlink_time",
    "sparse_uplink_time",
    "model_bits",
    "SPARSE_VOLUME_FACTOR",
]

#: Paper's factor for sparse transfers (index + value per retained entry).
#: Fallback for ratio-only planning; actual transfers price the emitted
#: update's exact bits via repro.network.transport.Payload.
SPARSE_VOLUME_FACTOR = 2.0


@dataclass(frozen=True)
class LinkSpec:
    """One client's link: uplink bandwidth in bits/s, latency in seconds.

    ``downlink_bps`` is the measured downstream bandwidth; ``None`` (the
    default, so existing two-argument constructions keep working) means the
    downlink equals the uplink and :func:`downlink_time`'s
    ``bandwidth_factor`` models the asymmetry instead.
    """

    bandwidth_bps: float
    latency_s: float
    downlink_bps: float | None = None

    def __post_init__(self):
        check_positive("bandwidth_bps", self.bandwidth_bps)
        check_positive("latency_s", self.latency_s, strict=False)
        if self.downlink_bps is not None:
            check_positive("downlink_bps", self.downlink_bps)


def model_bits(num_parameters: int, *, bits_per_value: int = 32) -> float:
    """Dense transmitted volume ``V`` in bits for a parameter vector."""
    if num_parameters < 0:
        raise ValueError(f"num_parameters must be >= 0, got {num_parameters}")
    if bits_per_value <= 0:
        raise ValueError(f"bits_per_value must be > 0, got {bits_per_value}")
    return float(num_parameters) * bits_per_value


def uplink_time(link: LinkSpec, volume_bits: float) -> float:
    """Eq. 4: ``T = L + V/B`` for a message of ``volume_bits``."""
    if volume_bits < 0:
        raise ValueError(f"volume_bits must be >= 0, got {volume_bits}")
    return link.latency_s + volume_bits / link.bandwidth_bps


def downlink_time(
    link: LinkSpec, volume_bits: float, *, bandwidth_factor: float = 1.0
) -> float:
    """Broadcast (server→client) time: ``T = L + V / B_down``.

    The paper charges only the uplink (Sec. 3.3: broadcast shares one
    transmission and downstream bandwidth is typically ~10× upstream), but
    time-to-accuracy accounting needs the server→client volume priced too.
    The downlink bandwidth is the link's measured ``downlink_bps`` when
    present; otherwise ``bandwidth_factor`` scales the uplink bandwidth
    (e.g. 10.0 for the asymmetric-residential assumption). Latency is
    direction-symmetric.
    """
    check_positive("bandwidth_factor", bandwidth_factor)
    if volume_bits < 0:
        raise ValueError(f"volume_bits must be >= 0, got {volume_bits}")
    down_bps = (
        link.downlink_bps
        if link.downlink_bps is not None
        else link.bandwidth_bps * bandwidth_factor
    )
    return link.latency_s + volume_bits / down_bps


def sparse_uplink_time(link: LinkSpec, dense_volume_bits: float, cr: float) -> float:
    """Alg. 2 line 7: ``T = L + 2·V·CR / B`` for a sparsified upload.

    ``cr`` is the *retained fraction* (the paper's compression ratio); the
    factor 2 accounts for transmitting (index, value) pairs.
    """
    check_fraction("cr", cr)
    if dense_volume_bits < 0:
        raise ValueError(f"dense_volume_bits must be >= 0, got {dense_volume_bits}")
    return link.latency_s + SPARSE_VOLUME_FACTOR * dense_volume_bits * cr / link.bandwidth_bps
