"""Per-client link sampling (paper Sec. 5.2).

"Clients are initialized with randomly generated bandwidth with a mean of
1 Mbit/s and a standard deviation of 0.2 Mbit/s in a normal distribution.
The latencies of clients are uniformly distributed with a range of
(50 ms, 200 ms]."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.cost import LinkSpec
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["LinkModel", "PAPER_LINK_MODEL", "sample_links", "TimeVaryingLink"]

MBIT = 1e6  # bits per Mbit


@dataclass(frozen=True)
class LinkModel:
    """Distribution parameters for sampling client links."""

    bandwidth_mean_bps: float = 1.0 * MBIT
    bandwidth_std_bps: float = 0.2 * MBIT
    latency_low_s: float = 0.050
    latency_high_s: float = 0.200
    bandwidth_floor_bps: float = 0.05 * MBIT  # truncate the Normal away from <=0

    def __post_init__(self):
        check_positive("bandwidth_mean_bps", self.bandwidth_mean_bps)
        check_positive("bandwidth_std_bps", self.bandwidth_std_bps, strict=False)
        check_positive("bandwidth_floor_bps", self.bandwidth_floor_bps)
        if not 0 <= self.latency_low_s < self.latency_high_s:
            raise ValueError("need 0 <= latency_low < latency_high")

    def sample(self, rng: np.random.Generator) -> LinkSpec:
        """Draw one client link."""
        bw = float(rng.normal(self.bandwidth_mean_bps, self.bandwidth_std_bps))
        bw = max(bw, self.bandwidth_floor_bps)
        # Uniform over (low, high]: mirror numpy's [low, high) interval.
        lat = float(self.latency_high_s - rng.uniform(0.0, self.latency_high_s - self.latency_low_s))
        return LinkSpec(bandwidth_bps=bw, latency_s=lat)


#: The exact configuration of the paper's measurements section.
PAPER_LINK_MODEL = LinkModel()


def sample_links(
    num_clients: int,
    model: LinkModel = PAPER_LINK_MODEL,
    seed: int | np.random.Generator = 0,
) -> list[LinkSpec]:
    """Sample one static link per client (paper initializes links once)."""
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    rng = as_generator(seed)
    return [model.sample(rng) for _ in range(num_clients)]


class TimeVaryingLink:
    """A link whose bandwidth drifts round-to-round (extension beyond the paper).

    Bandwidth follows a mean-reverting multiplicative random walk around the
    initial value; latency is fixed. Models mobile/edge clients whose
    connectivity fluctuates, stressing BCRS's per-round rescheduling.
    """

    def __init__(
        self,
        base: LinkSpec,
        rng: np.random.Generator,
        *,
        volatility: float = 0.1,
        reversion: float = 0.3,
        floor_bps: float = 0.05 * MBIT,
    ):
        if not 0 <= reversion <= 1:
            raise ValueError(f"reversion must be in [0, 1], got {reversion}")
        check_positive("volatility", volatility, strict=False)
        self.base = base
        self.rng = rng
        self.volatility = float(volatility)
        self.reversion = float(reversion)
        self.floor_bps = float(floor_bps)
        self._current_bw = base.bandwidth_bps

    def step(self) -> LinkSpec:
        """Advance one round and return the current link state."""
        shock = self.rng.normal(0.0, self.volatility)
        drift = self.reversion * (np.log(self.base.bandwidth_bps) - np.log(self._current_bw))
        self._current_bw = max(self._current_bw * float(np.exp(drift + shock)), self.floor_bps)
        return LinkSpec(bandwidth_bps=self._current_bw, latency_s=self.base.latency_s)
