"""Inline-SVG chart kit for the HTML report generator.

Dependency-free and **byte-deterministic**: every primitive is a pure
function of its inputs — no timestamps, no random ids, coordinates rounded
through one formatter — so golden tests can pin whole pages. The plotting
entry point mirrors :func:`repro.viz.ascii.ascii_plot`'s API (named series
of ``(x, y)`` arrays on a shared axis frame) so both renderers consume the
same series dicts; the other primitives mirror their ASCII counterparts
(``svg_bars`` ↔ ``ascii_bars``, ``svg_heatmap`` ↔ ``ascii_sweep_grid``,
``svg_timeline`` ↔ ``ascii_timeline``).

Colors are CSS custom properties (``var(--c0)`` …) defined by the page
stylesheet (:data:`repro.report.page.PAGE_CSS`), which supplies light and
dark values — marks reference roles, not hex, so one stylesheet swap
re-themes every chart. The heatmap is the exception: its sequential ramp
is value-mapped to fixed hex tiles that carry their own background in
either mode.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "esc",
    "fmt_num",
    "nice_ticks",
    "Frame",
    "svg_plot",
    "svg_bars",
    "svg_heatmap",
    "svg_timeline",
    "sparkline",
    "series_color",
    "SEQUENTIAL_RAMP",
]

#: Categorical slots (light mode); the page CSS maps --c0..--c7 to these
#: and swaps dark-stepped values in under ``prefers-color-scheme: dark``.
PALETTE_LIGHT = (
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
)
PALETTE_DARK = (
    "#3987e5", "#d95926", "#199e70", "#c98500",
    "#d55181", "#008300", "#9085e9", "#e66767",
)

#: One-hue sequential ramp (blue 100→700) for magnitude encodings.
SEQUENTIAL_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)
#: Ramp index at which tile labels flip from ink to white.
_RAMP_INK_FLIP = 6


def series_color(i: int) -> str:
    """CSS color for categorical series slot ``i`` (fixed order, wraps)."""
    return f"var(--c{i % len(PALETTE_LIGHT)})"


def esc(text: object) -> str:
    """Escape text for XML/HTML content and attribute values."""
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def fmt_num(x: float) -> str:
    """Compact deterministic number label: ints stay ints, floats get 4 sig figs."""
    x = float(x)
    if x == 0:
        return "0"
    if abs(x) < 1e15 and x == int(x):
        return str(int(x))
    return f"{x:.4g}"


def fmt_bytes(n: float) -> str:
    """Human volume: 512B, 24.2kB, 1.5MB, 2.1GB (mirrors viz.ascii)."""
    for cut, suffix in ((1e9, "GB"), (1e6, "MB"), (1e3, "kB")):
        if abs(n) >= cut:
            return f"{n / cut:.3g}{suffix}"
    return f"{n:.3g}B"


def _c(v: float) -> str:
    """One coordinate, rounded to a stable 2-decimal string."""
    return f"{v:.2f}"


def nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """At most ~``n`` round tick values covering ``[lo, hi]``."""
    if hi < lo:
        lo, hi = hi, lo
    if hi == lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(1, n)
    mag = 10.0 ** math.floor(math.log10(raw))
    step = 10.0 * mag
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        if span / (mult * mag) <= n:
            step = mult * mag
            break
    first = math.ceil(lo / step)
    last = math.floor(hi / step + 1e-9)
    return [first * step + k * step for k in range(int(last - first) + 1)]


class Frame:
    """Shared axis/scale layer: margins, linear scales, gridlines, labels.

    Every chart primitive draws inside one Frame so axes, tick styling, and
    coordinate rounding are identical across chart kinds.
    """

    def __init__(
        self,
        *,
        width: int = 600,
        height: int = 280,
        x_lo: float,
        x_hi: float,
        y_lo: float,
        y_hi: float,
        x_label: str = "x",
        y_label: str = "y",
        margin_l: int = 58,
        margin_r: int = 16,
        margin_t: int = 14,
        margin_b: int = 44,
        x_fmt=fmt_num,
        y_fmt=fmt_num,
    ):
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        self.width, self.height = int(width), int(height)
        self.x_lo, self.x_hi = float(x_lo), float(x_hi)
        self.y_lo, self.y_hi = float(y_lo), float(y_hi)
        self.x_label, self.y_label = x_label, y_label
        self.l, self.r, self.t, self.b = margin_l, margin_r, margin_t, margin_b
        self.x_fmt, self.y_fmt = x_fmt, y_fmt

    @property
    def plot_w(self) -> float:
        return self.width - self.l - self.r

    @property
    def plot_h(self) -> float:
        return self.height - self.t - self.b

    def sx(self, x: float) -> float:
        return self.l + (float(x) - self.x_lo) / (self.x_hi - self.x_lo) * self.plot_w

    def sy(self, y: float) -> float:
        return self.t + (1.0 - (float(y) - self.y_lo) / (self.y_hi - self.y_lo)) * self.plot_h

    def open(self) -> str:
        return (
            f'<svg viewBox="0 0 {self.width} {self.height}" width="{self.width}" '
            f'height="{self.height}" xmlns="http://www.w3.org/2000/svg" '
            f'role="img" aria-label="{esc(self.y_label)} vs {esc(self.x_label)}">'
        )

    def axes(self) -> str:
        """Hairline y-gridlines + tick labels + axis labels + baseline."""
        parts = []
        y0 = self.t + self.plot_h
        for ty in nice_ticks(self.y_lo, self.y_hi):
            py = self.sy(ty)
            parts.append(
                f'<line class="grid" x1="{_c(self.l)}" y1="{_c(py)}" '
                f'x2="{_c(self.l + self.plot_w)}" y2="{_c(py)}"/>'
            )
            parts.append(
                f'<text class="tick" x="{_c(self.l - 6)}" y="{_c(py + 3)}" '
                f'text-anchor="end">{esc(self.y_fmt(ty))}</text>'
            )
        for tx in nice_ticks(self.x_lo, self.x_hi):
            px = self.sx(tx)
            parts.append(
                f'<text class="tick" x="{_c(px)}" y="{_c(y0 + 14)}" '
                f'text-anchor="middle">{esc(self.x_fmt(tx))}</text>'
            )
        parts.append(
            f'<line class="axis" x1="{_c(self.l)}" y1="{_c(y0)}" '
            f'x2="{_c(self.l + self.plot_w)}" y2="{_c(y0)}"/>'
        )
        parts.append(
            f'<text class="axis-label" x="{_c(self.l + self.plot_w / 2)}" '
            f'y="{_c(self.height - 6)}" text-anchor="middle">{esc(self.x_label)}</text>'
        )
        parts.append(
            f'<text class="axis-label" transform="rotate(-90 12 {_c(self.t + self.plot_h / 2)})" '
            f'x="12" y="{_c(self.t + self.plot_h / 2)}" text-anchor="middle">'
            f"{esc(self.y_label)}</text>"
        )
        return "".join(parts)


def _extent(series: dict) -> tuple[float, float, float, float]:
    xs = np.concatenate([np.asarray(x, dtype=np.float64) for x, _ in series.values()])
    ys = np.concatenate([np.asarray(y, dtype=np.float64) for _, y in series.values()])
    if xs.size == 0:
        raise ValueError("series are empty")
    return float(xs.min()), float(xs.max()), float(ys.min()), float(ys.max())


def svg_plot(
    series: dict[str, tuple],
    *,
    width: int = 600,
    height: int = 280,
    x_label: str = "x",
    y_label: str = "y",
    kinds: dict[str, str] | None = None,
    x_fmt=fmt_num,
    y_fmt=fmt_num,
) -> str:
    """Named (x, y) series on one axis frame — the `ascii_plot` of SVG.

    ``kinds`` maps a series name to ``"line"`` (default), ``"step"``
    (post-step), or ``"scatter"``; unlisted series draw as lines. Series
    take categorical color slots in dict order (fixed, never cycled).
    Every point carries a native ``<title>`` tooltip.
    """
    if not series:
        raise ValueError("need at least one series")
    kinds = kinds or {}
    x_lo, x_hi, y_lo, y_hi = _extent(series)
    fr = Frame(
        width=width, height=height, x_lo=x_lo, x_hi=x_hi, y_lo=y_lo, y_hi=y_hi,
        x_label=x_label, y_label=y_label, x_fmt=x_fmt, y_fmt=y_fmt,
    )
    parts = [fr.open(), fr.axes()]
    for slot, (name, (x, y)) in enumerate(series.items()):
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape:
            raise ValueError(f"series {name!r}: x/y length mismatch")
        kind = kinds.get(name, "line")
        color = series_color(slot)
        pts = [(fr.sx(xi), fr.sy(yi)) for xi, yi in zip(x, y)]
        if kind == "scatter":
            for (px, py), xi, yi in zip(pts, x, y):
                parts.append(
                    f'<circle class="dot" cx="{_c(px)}" cy="{_c(py)}" r="4" '
                    f'style="fill:{color}">'
                    f"<title>{esc(name)}: ({esc(x_fmt(xi))}, {esc(y_fmt(yi))})</title>"
                    "</circle>"
                )
            continue
        if kind == "step" and len(pts) > 1:
            d = [f"M{_c(pts[0][0])},{_c(pts[0][1])}"]
            for (px0, _), (px1, py1) in zip(pts, pts[1:]):
                d.append(f"H{_c(px1)}V{_c(py1)}")
            path = "".join(d)
        else:
            path = "M" + "L".join(f"{_c(px)},{_c(py)}" for px, py in pts)
        parts.append(f'<path class="line" d="{path}" style="stroke:{color}"/>')
        # End marker (≥8px with a surface ring) + point tooltips.
        px, py = pts[-1]
        parts.append(
            f'<circle class="dot" cx="{_c(px)}" cy="{_c(py)}" r="4" '
            f'style="fill:{color}"/>'
        )
        for (px, py), xi, yi in zip(pts, x, y):
            parts.append(
                f'<circle class="hit" cx="{_c(px)}" cy="{_c(py)}" r="7">'
                f"<title>{esc(name)}: ({esc(x_fmt(xi))}, {esc(y_fmt(yi))})</title>"
                "</circle>"
            )
    parts.append("</svg>")
    return "".join(parts)


def _bar_path(x: float, y: float, w: float, h: float, r: float = 4.0) -> str:
    """Horizontal bar path: square at the baseline, rounded data-end."""
    if w <= r:
        return (
            f"M{_c(x)},{_c(y)}H{_c(x + w)}V{_c(y + h)}H{_c(x)}Z"
        )
    return (
        f"M{_c(x)},{_c(y)}H{_c(x + w - r)}"
        f"Q{_c(x + w)},{_c(y)} {_c(x + w)},{_c(y + r)}"
        f"V{_c(y + h - r)}"
        f"Q{_c(x + w)},{_c(y + h)} {_c(x + w - r)},{_c(y + h)}"
        f"H{_c(x)}Z"
    )


def svg_bars(
    values: dict[str, float],
    *,
    width: int = 600,
    unit: str = "",
    fmt=fmt_num,
    slot: int = 0,
) -> str:
    """Horizontal labelled bars — the `ascii_bars` of SVG.

    One hue for the whole set (the bars are one series); value at the tip;
    4px rounded data-end, square baseline; 18px bars with air between.
    """
    if not values:
        raise ValueError("need at least one value")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar values must be >= 0")
    bar_h, gap, label_w, value_w = 18, 10, 170, 88
    height = len(values) * (bar_h + gap) + gap
    peak = max(values.values()) or 1.0
    plot_w = width - label_w - value_w
    color = series_color(slot)
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg" role="img" aria-label="bar chart">'
    ]
    y = gap
    for name, v in values.items():
        w = v / peak * plot_w
        parts.append(
            f'<text class="tick" x="{_c(label_w - 8)}" y="{_c(y + bar_h - 5)}" '
            f'text-anchor="end">{esc(name)}</text>'
        )
        parts.append(
            f'<path class="bar" d="{_bar_path(label_w, y, w, bar_h)}" '
            f'style="fill:{color}"><title>{esc(name)}: {esc(fmt(v))}{esc(unit)}</title></path>'
        )
        parts.append(
            f'<text class="tick" x="{_c(label_w + w + 6)}" y="{_c(y + bar_h - 5)}">'
            f"{esc(fmt(v))}{esc(unit)}</text>"
        )
        y += bar_h + gap
    parts.append("</svg>")
    return "".join(parts)


def _ramp_color(frac: float) -> tuple[str, bool]:
    """(sequential hex, needs-white-label) for a value at ``frac`` ∈ [0, 1]."""
    idx = int(round(frac * (len(SEQUENTIAL_RAMP) - 1)))
    idx = max(0, min(len(SEQUENTIAL_RAMP) - 1, idx))
    return SEQUENTIAL_RAMP[idx], idx >= _RAMP_INK_FLIP


def svg_heatmap(
    x_values: list,
    y_values: list,
    cells: dict[tuple, float],
    *,
    x_label: str = "x",
    y_label: str = "y",
    fmt=fmt_num,
    cell_w: int = 84,
    cell_h: int = 34,
) -> str:
    """Value grid as sequential-ramp tiles — the `ascii_sweep_grid` of SVG.

    ``cells`` maps ``(x, y)`` to a value; missing cells render as muted
    dashes. Each tile is labelled (white or ink by the tile's luminance)
    and carries a ``<title>`` tooltip. 2px surface gaps separate tiles.
    """
    if not cells:
        raise ValueError("need at least one cell")
    label_w, top_h = 120, 26
    width = label_w + len(x_values) * cell_w + 10
    height = top_h + len(y_values) * cell_h + 30
    vals = list(cells.values())
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg" role="img" '
        f'aria-label="{esc(y_label)} by {esc(x_label)} heatmap">'
    ]
    for j, x in enumerate(x_values):
        parts.append(
            f'<text class="tick" x="{_c(label_w + j * cell_w + cell_w / 2)}" '
            f'y="{_c(top_h - 8)}" text-anchor="middle">{esc(x)}</text>'
        )
    for i, yv in enumerate(y_values):
        cy = top_h + i * cell_h
        parts.append(
            f'<text class="tick" x="{_c(label_w - 8)}" y="{_c(cy + cell_h / 2 + 3)}" '
            f'text-anchor="end">{esc(yv)}</text>'
        )
        for j, xv in enumerate(x_values):
            cx = label_w + j * cell_w
            v = cells.get((xv, yv))
            if v is None:
                parts.append(
                    f'<text class="muted" x="{_c(cx + cell_w / 2)}" '
                    f'y="{_c(cy + cell_h / 2 + 3)}" text-anchor="middle">--</text>'
                )
                continue
            hexcol, white = _ramp_color((v - lo) / span)
            ink = "#ffffff" if white else "#0b0b0b"
            parts.append(
                f'<rect x="{_c(cx + 1)}" y="{_c(cy + 1)}" width="{cell_w - 2}" '
                f'height="{cell_h - 2}" rx="3" fill="{hexcol}">'
                f"<title>{esc(x_label)}={esc(xv)}, {esc(y_label)}={esc(yv)}: "
                f"{esc(fmt(v))}</title></rect>"
            )
            parts.append(
                f'<text x="{_c(cx + cell_w / 2)}" y="{_c(cy + cell_h / 2 + 4)}" '
                f'text-anchor="middle" fill="{ink}" font-size="11">{esc(fmt(v))}</text>'
            )
    parts.append(
        f'<text class="axis-label" x="{_c(label_w + len(x_values) * cell_w / 2)}" '
        f'y="{_c(height - 8)}" text-anchor="middle">{esc(x_label)} '
        f"(shade spans [{esc(fmt(lo))}, {esc(fmt(hi))}])</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


#: Fixed span-category → categorical slot (identity follows the category).
_CAT_SLOTS = {"sim": 0, "exec": 1, "net": 2, "hier": 3, "pop": 4, "sweep": 5, "virtual": 6}


def svg_timeline(
    lanes: list[tuple[str, list[tuple[float, float, str, str]]]],
    *,
    t0: float,
    t1: float,
    width: int = 760,
    lane_h: int = 20,
    t_fmt=fmt_num,
) -> str:
    """Per-lane span timeline — the `ascii_timeline` of SVG.

    ``lanes`` is ``[(label, [(start, end, name, cat), ...]), ...]``; spans
    are colored by category (fixed mapping) and tooltipped with name and
    duration. ``[t0, t1]`` is the rendered window.
    """
    if not lanes:
        raise ValueError("need at least one lane")
    if t1 <= t0:
        t1 = t0 + 1.0
    label_w, gap = 110, 6
    height = len(lanes) * (lane_h + gap) + gap + 26
    plot_w = width - label_w - 14
    scale = plot_w / (t1 - t0)
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg" role="img" aria-label="span timeline">'
    ]
    y = gap
    for label, spans in lanes:
        parts.append(
            f'<rect class="lane" x="{label_w}" y="{_c(y)}" width="{_c(plot_w)}" '
            f'height="{lane_h}"/>'
        )
        parts.append(
            f'<text class="tick" x="{_c(label_w - 8)}" y="{_c(y + lane_h - 6)}" '
            f'text-anchor="end">{esc(label)}</text>'
        )
        for start, end, name, cat in spans:
            if end < t0 or start > t1:
                continue
            a = label_w + (max(start, t0) - t0) * scale
            w = max((min(end, t1) - max(start, t0)) * scale, 1.0)
            color = series_color(_CAT_SLOTS.get(cat, 7))
            parts.append(
                f'<rect x="{_c(a)}" y="{_c(y + 2)}" width="{_c(w)}" '
                f'height="{lane_h - 4}" rx="2" style="fill:{color}">'
                f"<title>{esc(name)} [{esc(cat)}]: {esc(t_fmt(start))} – "
                f"{esc(t_fmt(end))} ({esc(fmt_num(end - start))}s)</title></rect>"
            )
        y += lane_h + gap
    parts.append(
        f'<text class="tick" x="{label_w}" y="{_c(y + 12)}">{esc(t_fmt(t0))}s</text>'
    )
    parts.append(
        f'<text class="tick" x="{_c(label_w + plot_w)}" y="{_c(y + 12)}" '
        f'text-anchor="end">{esc(t_fmt(t1))}s</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def sparkline(ys, *, width: int = 150, height: int = 30) -> str:
    """Tiny inline trend line: de-emphasis stroke, accent end-dot."""
    ys = np.asarray(list(ys), dtype=np.float64)
    if ys.size == 0:
        return '<span class="muted">--</span>'
    lo, hi = float(ys.min()), float(ys.max())
    if hi == lo:
        hi = lo + 1.0
    pad = 4.0
    n = max(ys.size - 1, 1)
    pts = [
        (
            pad + i / n * (width - 2 * pad),
            pad + (1.0 - (v - lo) / (hi - lo)) * (height - 2 * pad),
        )
        for i, v in enumerate(ys)
    ]
    path = "M" + "L".join(f"{_c(px)},{_c(py)}" for px, py in pts)
    px, py = pts[-1]
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg" class="spark" role="img" '
        f'aria-label="sparkline">'
        f'<path class="spark-line" d="{path}"/>'
        f'<circle class="dot" cx="{_c(px)}" cy="{_c(py)}" r="3" style="fill:var(--c0)"/>'
        "</svg>"
    )
