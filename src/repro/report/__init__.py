"""Self-contained HTML experiment reports (inline SVG + CSS, no deps).

The pipeline is artifact → section → SVG: :mod:`repro.report.svg` is the
chart kit (one axis/scale layer shared by line/step/scatter/bar/heatmap/
timeline primitives, mirroring the ``viz.ascii`` API), :mod:`repro.report
.sections` renders one ``<section>`` per artifact kind, and :func:`render_
report` assembles whichever artifacts exist into one byte-deterministic
page. CLI entry points: ``--html PATH`` on ``run``/``comm``/``sweep``/
``scenario run``, and the post-hoc ``report`` verb.
"""

from repro.report.page import PAGE_CSS, render_report, write_report
from repro.report.sections import (
    history_section,
    manifest_section,
    metrics_section,
    sweep_section,
    trace_section,
)
from repro.report.svg import (
    Frame,
    nice_ticks,
    series_color,
    sparkline,
    svg_bars,
    svg_heatmap,
    svg_plot,
    svg_timeline,
)

__all__ = [
    "PAGE_CSS",
    "render_report",
    "write_report",
    "manifest_section",
    "history_section",
    "sweep_section",
    "trace_section",
    "metrics_section",
    "Frame",
    "nice_ticks",
    "series_color",
    "sparkline",
    "svg_plot",
    "svg_bars",
    "svg_heatmap",
    "svg_timeline",
]
