"""HTML section renderers: one per artifact kind, each usable alone.

Each function takes one artifact the stack already produces — a
:class:`~repro.fl.history.History`, a
:class:`~repro.scenarios.report.SweepReport`, a list of wall-clock
:class:`~repro.obs.tracer.Span`, or a :class:`~repro.obs.metrics
.MetricsRegistry` (or its ``to_dict()`` document) — and returns one
``<section>`` fragment of inline SVG + HTML tables.
:func:`repro.report.page.render_report` assembles whichever fragments
exist into one page; everything here is byte-deterministic for fixed
inputs (see :mod:`repro.report.svg`).
"""

from __future__ import annotations

import math

from repro.obs.profile import lane_utilization, profile_spans
from repro.report.svg import (
    esc,
    fmt_bytes,
    fmt_num,
    series_color,
    sparkline,
    svg_bars,
    svg_heatmap,
    svg_plot,
    svg_timeline,
)

__all__ = [
    "manifest_section",
    "history_section",
    "sweep_section",
    "robustness_section",
    "trace_section",
    "metrics_section",
]

#: Sweep axes read as attack/fault intensities: each gets a degradation
#: curve in :func:`robustness_section` when it appears in the grid.
ROBUSTNESS_AXES = (
    "adversary_fraction",
    "drop_prob",
    "truncate_prob",
    "edge_crash_prob",
)


# ------------------------------------------------------------- html helpers


def html_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain table; numeric alignment is handled by the page CSS."""
    head = "".join(f"<th>{esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{esc(c)}</td>" for c in row) + "</tr>" for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def legend_html(names: list[str]) -> str:
    """Swatch-per-series legend (only emitted for ≥ 2 series)."""
    if len(names) < 2:
        return ""
    items = "".join(
        f'<span class="key"><span class="swatch" '
        f'style="background:{series_color(i)}"></span>{esc(name)}</span>'
        for i, name in enumerate(names)
    )
    return f'<div class="legend">{items}</div>'


def figure(title: str, svg: str, *, legend: list[str] | None = None) -> str:
    return (
        f"<figure><figcaption>{esc(title)}</figcaption>"
        + legend_html(legend or [])
        + svg
        + "</figure>"
    )


def _tiles(pairs: list[tuple[str, str]]) -> str:
    """A row of stat tiles: (label, value) pairs."""
    return '<div class="tiles">' + "".join(
        f'<div class="tile"><div class="tile-label">{esc(label)}</div>'
        f'<div class="tile-value">{esc(value)}</div></div>'
        for label, value in pairs
    ) + "</div>"


def _section(anchor: str, heading: str, *parts: str) -> str:
    return (
        f'<section id="{esc(anchor)}"><h2>{esc(heading)}</h2>'
        + "".join(parts)
        + "</section>"
    )


def _num(x, nd: int = 4) -> str:
    return "--" if x is None else f"{x:.{nd}f}"


# --------------------------------------------------------------- manifest


def manifest_section(manifest: dict, *, anchor: str = "manifest") -> str:
    """The run-manifest header: what was run, under which knobs.

    ``manifest`` is plain key → value data (spec hash, seed, backend, mode,
    git describe, …) supplied by the caller — never computed here, so the
    rendering stays deterministic.
    """
    items = "".join(
        f'<div class="kv"><span class="kv-k">{esc(k)}</span>'
        f'<span class="kv-v">{esc(v)}</span></div>'
        for k, v in manifest.items()
    )
    return f'<section id="{esc(anchor)}"><div class="manifest">{items}</div></section>'


# ---------------------------------------------------------------- history


def history_section(history, *, heading: str = "Run history", anchor: str = "history") -> str:
    """Accuracy curves, loss, per-round comm ledger, staleness — one run.

    Works on any :class:`~repro.fl.history.History`, including legacy ones
    without sim spans or flow ledgers (those charts are simply omitted).
    """
    parts: list[str] = []
    rounds, accs = history.accuracy_series()
    virt = history.records[-1].sim_end if history.records else None
    totals = history.comm_totals()
    tiles = [("rounds", str(len(history)))]
    if accs.size:
        tiles.append(("final accuracy", f"{float(accs[-1]):.4f}"))
        tiles.append(("best accuracy", f"{float(accs.max()):.4f}"))
    if virt is not None:
        tiles.append(("virtual time", f"{virt:.1f}s"))
    if totals["rounds"] > 0:
        tiles.append(("wire volume", fmt_bytes(totals["total_bytes"])))
    parts.append(_tiles(tiles))

    if accs.size:
        parts.append(figure(
            "Accuracy vs round",
            svg_plot({"accuracy": (rounds, accs)}, x_label="round", y_label="accuracy"),
        ))
        t, a = history.accuracy_vs_simtime()
        if t.size:
            parts.append(figure(
                "Accuracy vs virtual time",
                svg_plot(
                    {"accuracy": (t, a)},
                    x_label="virtual seconds", y_label="accuracy",
                    kinds={"accuracy": "step"},
                ),
            ))

    losses = [(r.round_index, r.train_loss) for r in history.records]
    if losses:
        lx, ly = zip(*losses)
        parts.append(figure(
            "Train loss vs round",
            svg_plot({"train loss": (lx, ly)}, x_label="round", y_label="loss"),
        ))

    comm_rows = [(r.round_index, r.comm) for r in history.records if r.comm is not None]
    if comm_rows:
        series = {}
        for direction in ("uplink", "downlink", "backhaul"):
            ys = [sum(b for _, b in getattr(c, direction)) / 8.0 for _, c in comm_rows]
            if any(ys):
                series[direction] = ([ri for ri, _ in comm_rows], ys)
        if series:
            parts.append(figure(
                "Comm ledger: wire bytes per round",
                svg_plot(
                    series, x_label="round", y_label="bytes",
                    y_fmt=fmt_bytes,
                ),
                legend=list(series),
            ))
        rows = []
        n = len(comm_rows)
        for direction in ("uplink", "downlink", "backhaul"):
            total = sum(sum(b for _, b in getattr(c, direction)) for _, c in comm_rows) / 8.0
            count = sum(len(getattr(c, direction)) for _, c in comm_rows)
            rows.append([direction, str(count), fmt_bytes(total), fmt_bytes(total / n)])
        parts.append(html_table(["direction", "transfers", "bytes", "per round"], rows))

    stale = [
        (r.round_index, r.mean_staleness)
        for r in history.records
        if r.mean_staleness is not None
    ]
    if stale:
        sx, sy = zip(*stale)
        parts.append(figure(
            "Mean staleness vs round",
            svg_plot({"staleness": (sx, sy)}, x_label="round", y_label="model-version lag"),
        ))
    return _section(anchor, heading, *parts)


# ------------------------------------------------------------------ sweep


def sweep_section(
    report,
    *,
    target: float | None = None,
    heading: str = "Sweep",
    anchor: str = "sweep",
    top: int = 10,
) -> str:
    """Best-cell ranking, per-axis marginals, frontiers, and the grid.

    Renders a :class:`~repro.scenarios.report.SweepReport`: ranking table,
    one small-multiple bar chart per axis (mean final accuracy per value),
    the accuracy-vs-virtual-time Pareto frontier (scatter + step), the
    time-to-``target`` frontier when a target is given, and — when the grid
    has ≥ 2 axes — the first two axes as a heatmap.
    """
    parts = [_tiles([
        ("cells", str(len(report))),
        ("executed", str(report.executed)),
        ("loaded from store", str(report.reused)),
        ("axes", ", ".join(report.axis_names()) or "--"),
    ])]

    ranked = report.best_cells(metric="final", top=top)
    if ranked:
        rows = []
        for spec, h, final in ranked:
            end = h.records[-1].sim_end if h.records else None
            rows.append([
                report.label(spec), str(len(h)), _num(final),
                _num(h.best_accuracy()), "--" if end is None else f"{end:.1f}s",
            ])
        parts.append(f"<h3>Top cells (of {len(report)}) by final accuracy</h3>")
        parts.append(html_table(
            ["cell", "rounds", "final_acc", "best_acc", "virtual_time"], rows
        ))
    else:
        parts.append('<p class="muted">No evaluated cells.</p>')

    marginals = report.marginals()
    charts = []
    for axis, values in marginals.items():
        if not values:
            continue
        charts.append(figure(
            f"Marginal over {axis} (mean final accuracy)",
            svg_bars(
                {str(v): stats["mean_final"] for v, stats in values.items()},
                width=420, fmt=lambda x: f"{x:.4f}",
            ),
        ))
    if charts:
        parts.append("<h3>Per-axis marginals</h3>")
        parts.append('<div class="multiples">' + "".join(charts) + "</div>")

    pareto = report.pareto_frontier()
    if pareto:
        all_pts = [
            (h.records[-1].sim_end, _best_or_none(h))
            for _, h in report.cells
            if h.records and h.records[-1].sim_end is not None
        ]
        all_pts = [(t, a) for t, a in all_pts if a is not None]
        series = {"cells": tuple(zip(*all_pts))} if all_pts else {}
        series["frontier"] = (
            [t for *_, t, _ in pareto], [a for *_, _, a in pareto]
        )
        parts.append(figure(
            "Pareto frontier: best accuracy vs virtual time",
            svg_plot(
                series, x_label="virtual seconds", y_label="best accuracy",
                kinds={"cells": "scatter", "frontier": "step"},
            ),
            legend=list(series),
        ))

    if target is not None:
        frontier = report.time_to_accuracy_frontier(target)
        reached = {
            report.label(spec): t for spec, t in frontier if t is not None
        }
        parts.append(f"<h3>Virtual time to accuracy ≥ {target:g}</h3>")
        if reached:
            parts.append(figure(
                f"Time to accuracy ≥ {target:g} (lower is better)",
                svg_bars(reached, unit="s", fmt=lambda x: f"{x:.1f}"),
            ))
        missed = [report.label(spec) for spec, t in frontier if t is None]
        if missed:
            parts.append(
                '<p class="muted">never reached: ' + esc(", ".join(missed)) + "</p>"
            )

    axes = report.axis_names()
    if len(axes) >= 2:
        x_axis, y_axis = axes[0], axes[1]
        acc: dict[tuple, list[float]] = {}
        xs: dict = {}
        ys: dict = {}
        for spec, h in report.cells:
            if x_axis not in spec.axes or y_axis not in spec.axes:
                continue
            final = _final_or_none(h)
            if final is None:
                continue
            x, y = spec.axes[x_axis], spec.axes[y_axis]
            xs.setdefault(x)
            ys.setdefault(y)
            acc.setdefault((x, y), []).append(final)
        if acc:
            means = {k: sum(v) / len(v) for k, v in acc.items()}
            parts.append(figure(
                f"Grid: mean final accuracy over {y_axis} × {x_axis}",
                svg_heatmap(
                    list(xs), list(ys), means,
                    x_label=x_axis, y_label=y_axis, fmt=lambda v: f"{v:.4f}",
                ),
            ))
    return _section(anchor, heading, *parts)


def robustness_section(
    report, *, heading: str = "Robustness", anchor: str = "robustness"
) -> str:
    """Accuracy-degradation curves over the sweep's robustness axes.

    One chart per :data:`ROBUSTNESS_AXES` member present in the grid
    (byzantine fraction, drop/truncate probability, edge crash
    probability): mean final/best accuracy at each intensity, marginalized
    over every other axis and seed — e.g. a
    ``--grid adversary_fraction=0,0.1,0.3 aggregator=mean,trimmed_mean``
    sweep reads off as how fast each aggregation rule degrades under
    attack. Returns ``""`` when the sweep carries no robustness axis, so
    the page assembler can call it unconditionally.
    """
    parts: list[str] = []
    for axis in ROBUSTNESS_AXES:
        curve = report.robustness_curve(axis)
        if not curve:
            continue
        xs = [x for x, _ in curve]
        finals = [stats["mean_final"] for _, stats in curve]
        bests = [stats["mean_best"] for _, stats in curve]
        parts.append(figure(
            f"Accuracy vs {axis}",
            svg_plot(
                {"mean final": (xs, finals), "mean best": (xs, bests)},
                x_label=axis, y_label="accuracy",
            ),
            legend=["mean final", "mean best"],
        ))
        parts.append(html_table(
            [axis, "mean_final", "mean_best", "cells"],
            [
                [f"{x:g}", _num(stats["mean_final"]), _num(stats["mean_best"]),
                 str(int(stats["n"]))]
                for x, stats in curve
            ],
        ))
    if not parts:
        return ""
    return _section(anchor, heading, *parts)


def _final_or_none(h) -> float | None:
    try:
        return h.final_accuracy()
    except ValueError:
        return None


def _best_or_none(h) -> float | None:
    try:
        return h.best_accuracy()
    except ValueError:
        return None


# ------------------------------------------------------------------ trace


def trace_section(
    spans,
    *,
    top: int = 10,
    max_lanes: int = 12,
    max_spans_per_lane: int = 400,
    heading: str = "Trace",
    anchor: str = "trace",
) -> str:
    """Span timeline, hot-spot table, lane utilization — one trace.

    ``spans`` are wall-clock :class:`~repro.obs.tracer.Span` objects (as
    returned by :func:`~repro.obs.tracer.load_trace` or read off a live
    :class:`~repro.obs.tracer.Tracer`). Lanes and per-lane spans are capped
    deterministically (lowest tids, earliest spans) so mega-fleet traces
    render bounded pages; the caps are stated in the rendered output.
    """
    spans = list(spans)
    if not spans:
        return _section(anchor, heading, '<p class="muted">No wall-clock spans.</p>')
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    extent = t1 - t0

    by_tid: dict[int, list] = {}
    for s in spans:
        by_tid.setdefault(s.tid, []).append(s)
    tids = sorted(by_tid)
    shown_tids = tids[:max_lanes]
    lanes = []
    clipped = len(tids) - len(shown_tids)
    for tid in shown_tids:
        lane = sorted(by_tid[tid], key=lambda s: (s.start, s.end, s.name))
        if len(lane) > max_spans_per_lane:
            clipped += 1  # count lanes with clipped spans too
            lane = lane[:max_spans_per_lane]
        lanes.append((
            "main" if tid == 0 else f"lane {tid}",
            [(s.start - t0, s.end - t0, s.name, s.cat) for s in lane],
        ))

    parts = [_tiles([
        ("spans", str(len(spans))),
        ("lanes", str(len(tids))),
        ("extent", f"{extent:.3f}s"),
    ])]
    parts.append(figure(
        "Wall-clock span timeline (hover for span details)",
        svg_timeline(lanes, t0=0.0, t1=extent, t_fmt=lambda v: f"{v:.3f}"),
    ))
    if clipped:
        parts.append(
            f'<p class="muted">timeline clipped to the first {max_lanes} lanes / '
            f"{max_spans_per_lane} spans per lane; the hot-spot table below "
            "covers the full trace.</p>"
        )

    spots = profile_spans(spans, top=top)
    rows = []
    for h in spots:
        share = 100.0 * h.self_s / extent if extent > 0 else 0.0
        rows.append([
            h.name, h.cat, str(h.count), f"{h.self_s:.3f}", f"{h.total_s:.3f}",
            f"{h.mean_s * 1e3:.2f}", f"{h.max_s * 1e3:.2f}", f"{share:.1f}%",
        ])
    parts.append(f"<h3>Hot spots (top {top} by self time)</h3>")
    parts.append(html_table(
        ["span", "cat", "count", "self s", "total s", "mean ms", "max ms", "self %"],
        rows,
    ))

    util = lane_utilization(spans)
    parts.append("<h3>Lane utilization (busy fraction of the trace extent)</h3>")
    parts.append(figure(
        "Lane utilization",
        svg_bars(
            {
                ("main" if tid == 0 else f"lane {tid}"): 100.0 * frac
                for tid, frac in util.items()
            },
            unit="%", fmt=lambda x: f"{x:.1f}", slot=2,
        ),
    ))
    return _section(anchor, heading, *parts)


# ---------------------------------------------------------------- metrics


def _series_name(name: str, labels: dict) -> str:
    """``name{k=v}`` — must match MetricsRegistry's snapshot keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def _histogram_quantile(row: dict, q: float) -> float | None:
    """Estimate quantile ``q`` from a to_dict histogram row (buckets +
    min/max), interpolating linearly inside the winning bucket."""
    count = row.get("count", 0)
    if not count:
        return None
    target = q * count
    cum = 0
    lo = row.get("min") or 0.0
    for bucket in row["buckets"]:
        le, c = bucket["le"], bucket["count"]
        if c:
            if cum + c >= target:
                hi = row.get("max") if le == math.inf else le
                if hi is None:
                    return lo
                observed_max = row.get("max")
                if observed_max is not None:
                    hi = min(hi, observed_max)  # bucket bound can be looser
                frac = (target - cum) / c
                return lo + frac * (max(hi, lo) - lo)
            lo = le if le != math.inf else lo
        cum += c
    return row.get("max")


def metrics_section(
    metrics, *, heading: str = "Metrics", anchor: str = "metrics"
) -> str:
    """Per-round sparklines and distribution summaries — one registry.

    ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry` or its
    ``to_dict()`` document (the ``--metrics`` JSON export). Counters and
    histograms plot their per-round *delta* (what happened that round);
    gauges plot the snapshot value as-is. Histogram rows additionally get
    count/mean/min/max and interpolated p50/p90/p99 estimates.
    """
    doc = metrics.to_dict() if hasattr(metrics, "to_dict") else metrics
    rows_by_series = {
        _series_name(row["name"], row.get("labels", {})): row
        for row in doc.get("metrics", [])
    }
    snapshots = doc.get("snapshots", [])

    parts = [_tiles([
        ("instruments", str(len(rows_by_series))),
        ("snapshots", str(len(snapshots))),
    ])]

    if snapshots:
        series_names: dict[str, None] = {}
        for snap in snapshots:
            for name in snap["values"]:
                series_names.setdefault(name)
        table_rows = []
        for name in series_names:
            values = [snap["values"].get(name, 0.0) for snap in snapshots]
            row = rows_by_series.get(name)
            kind = row["kind"] if row else "counter"
            if kind in ("counter", "histogram"):
                plotted = [values[0]] + [
                    b - a for a, b in zip(values, values[1:])
                ]
                shown_kind = f"{kind} Δ/round"
            else:
                plotted = values
                shown_kind = kind
            cell = (
                f"<tr><td>{esc(name)}</td><td>{esc(shown_kind)}</td>"
                f"<td>{sparkline(plotted)}</td>"
                f"<td>{esc(fmt_num(values[-1]))}</td></tr>"
            )
            table_rows.append(cell)
        parts.append("<h3>Per-round series</h3>")
        parts.append(
            "<table><thead><tr><th>series</th><th>kind</th><th>per-round</th>"
            "<th>last</th></tr></thead><tbody>"
            + "".join(table_rows)
            + "</tbody></table>"
        )

    hist_rows = []
    for name, row in rows_by_series.items():
        if row["kind"] != "histogram":
            continue
        hist_rows.append([
            name, str(row["count"]), fmt_num(row["mean"]),
            "--" if row["min"] is None else fmt_num(row["min"]),
            "--" if row["max"] is None else fmt_num(row["max"]),
            _fmt_q(_histogram_quantile(row, 0.50)),
            _fmt_q(_histogram_quantile(row, 0.90)),
            _fmt_q(_histogram_quantile(row, 0.99)),
        ])
    if hist_rows:
        parts.append("<h3>Histograms</h3>")
        parts.append(html_table(
            ["histogram", "count", "mean", "min", "max", "~p50", "~p90", "~p99"],
            hist_rows,
        ))

    gauge_rows = [
        [name, fmt_num(row["value"]), "--" if row.get("peak") is None else fmt_num(row["peak"])]
        for name, row in rows_by_series.items()
        if row["kind"] == "gauge"
    ]
    if gauge_rows:
        parts.append("<h3>Gauges</h3>")
        parts.append(html_table(["gauge", "value", "peak"], gauge_rows))
    return _section(anchor, heading, *parts)


def _fmt_q(x: float | None) -> str:
    return "--" if x is None else fmt_num(x)
