"""Page assembly: one self-contained HTML document per experiment.

:func:`render_report` takes whichever artifacts exist — a ``History``, a
``SweepReport``, a span list, a ``MetricsRegistry`` document — renders one
``<section>`` each (:mod:`repro.report.sections`) and wraps them in a
single document with inline CSS and inline SVG only: zero external URLs,
no scripts, no fonts, no timestamps. The output is byte-deterministic for
fixed inputs; anything environmental (git describe, seed, backend) enters
only through the caller-supplied ``manifest`` dict.
"""

from __future__ import annotations

from repro.report.sections import (
    history_section,
    manifest_section,
    metrics_section,
    robustness_section,
    sweep_section,
    trace_section,
)
from repro.report.svg import PALETTE_DARK, PALETTE_LIGHT, esc

__all__ = ["PAGE_CSS", "render_report", "write_report"]


def _palette_vars(palette) -> str:
    return ";".join(f"--c{i}:{hexcol}" for i, hexcol in enumerate(palette))


#: Inline stylesheet: light tokens at :root, dark values re-stepped (not
#: auto-flipped) under ``prefers-color-scheme: dark``. Defines every class
#: the SVG kit emits plus the page chrome.
PAGE_CSS = (
    ":root{"
    + _palette_vars(PALETTE_LIGHT)
    + ";--surface:#ffffff;--panel:#f6f7f9;--ink:#1a1a1a;--muted:#667085;"
    "--hairline:#e4e7ec;--lane:#eef1f5}"
    "@media (prefers-color-scheme: dark){:root{"
    + _palette_vars(PALETTE_DARK)
    + ";--surface:#121417;--panel:#1b1f24;--ink:#e6e8ea;--muted:#98a2b3;"
    "--hairline:#2b3138;--lane:#20262d}}"
    "html{background:var(--surface)}"
    "body{margin:0 auto;max-width:860px;padding:24px 20px 60px;"
    "font:14px/1.5 system-ui,sans-serif;color:var(--ink);"
    "background:var(--surface)}"
    "h1{font-size:21px;margin:0 0 4px}"
    "h2{font-size:17px;margin:28px 0 10px;padding-top:14px;"
    "border-top:1px solid var(--hairline)}"
    "h3{font-size:14px;margin:18px 0 6px}"
    ".manifest{display:flex;flex-wrap:wrap;gap:6px 22px;margin:10px 0 4px;"
    "padding:10px 14px;background:var(--panel);border-radius:8px}"
    ".kv-k{color:var(--muted);margin-right:6px}"
    ".kv-v{font-family:ui-monospace,monospace}"
    ".tiles{display:flex;flex-wrap:wrap;gap:10px;margin:8px 0 14px}"
    ".tile{background:var(--panel);border-radius:8px;padding:8px 14px;min-width:96px}"
    ".tile-label{font-size:11px;color:var(--muted)}"
    ".tile-value{font-size:18px;font-variant-numeric:tabular-nums}"
    "figure{margin:14px 0}"
    "figcaption{font-size:12px;color:var(--muted);margin-bottom:4px}"
    ".legend{display:flex;flex-wrap:wrap;gap:4px 16px;font-size:12px;margin:2px 0 6px}"
    ".key{display:inline-flex;align-items:center;gap:6px}"
    ".swatch{width:10px;height:10px;border-radius:3px;display:inline-block}"
    ".multiples{display:flex;flex-wrap:wrap;gap:8px 24px}"
    "table{border-collapse:collapse;margin:8px 0 14px;font-size:13px;"
    "font-variant-numeric:tabular-nums}"
    "th{text-align:left;color:var(--muted);font-weight:600}"
    "th,td{padding:4px 14px 4px 0;border-bottom:1px solid var(--hairline)}"
    ".muted{color:var(--muted)}"
    "svg{max-width:100%;height:auto}"
    "svg text{font:11px system-ui,sans-serif;fill:var(--muted)}"
    ".grid{stroke:var(--hairline);stroke-width:1}"
    ".axis{stroke:var(--muted);stroke-width:1}"
    ".axis-label{fill:var(--ink)}"
    ".line{fill:none;stroke-width:2;stroke-linejoin:round;stroke-linecap:round}"
    ".dot{stroke:var(--surface);stroke-width:2}"
    ".hit{fill:transparent}"
    ".bar{stroke:none}"
    ".lane{fill:var(--lane)}"
    ".spark-line{fill:none;stroke:var(--c0);stroke-width:1.5;opacity:.75}"
    "footer{margin-top:32px;padding-top:10px;border-top:1px solid var(--hairline);"
    "font-size:12px;color:var(--muted)}"
)


def render_report(
    *,
    history=None,
    sweep=None,
    trace=None,
    metrics=None,
    manifest: dict | None = None,
    title: str = "Experiment report",
    target_acc: float | None = None,
) -> str:
    """Render whichever artifacts exist into one self-contained page.

    At least one of ``history`` / ``sweep`` / ``trace`` / ``metrics`` must
    be given. ``manifest`` is caller-supplied key → value run provenance
    (spec hash, seed, backend, mode, git describe) shown under the title;
    ``target_acc`` adds the time-to-accuracy frontier to the sweep section.
    Returns the full HTML document as a string.
    """
    if history is None and sweep is None and trace is None and metrics is None:
        raise ValueError("render_report needs at least one artifact")
    body = [f"<h1>{esc(title)}</h1>"]
    if manifest:
        body.append(manifest_section(manifest))
    if history is not None:
        body.append(history_section(history))
    if sweep is not None:
        body.append(sweep_section(sweep, target=target_acc))
        robust = robustness_section(sweep)  # "" without a robustness axis
        if robust:
            body.append(robust)
    if trace is not None:
        body.append(trace_section(trace))
    if metrics is not None:
        body.append(metrics_section(metrics))
    body.append(
        "<footer>Self-contained report (inline SVG + CSS, no external "
        "resources). Charts adapt to light/dark via "
        "<code>prefers-color-scheme</code>; hover marks for values.</footer>"
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        f"<title>{esc(title)}</title>"
        f"<style>{PAGE_CSS}</style></head><body>"
        + "".join(body)
        + "</body></html>\n"
    )


def write_report(path, **kwargs) -> None:
    """Render and write the page (see :func:`render_report`)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_report(**kwargs))
