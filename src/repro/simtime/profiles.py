"""Per-device timing profiles: what a dispatch costs on the virtual clock.

A dispatched client passes through a three-stage pipeline — download the
global model, compute the local update, upload it — and every stage is
priced from seeded draws:

- **compute**: :class:`ComputeSpec` charges ``overhead + s_per_sample ×
  samples × epochs`` seconds; per-client speeds come from a lognormal draw
  around the configured median (device heterogeneity), or from a
  :class:`TraceProfile` replaying measured speeds;
- **comm**: the paper's alpha-beta cost model (:mod:`repro.network.cost`) —
  uplink via Eq. 4 / Alg. 2 line 7, downlink via the broadcast variant.

Every number is a pure function of the config seed, so event timestamps are
bit-identical across execution backends.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.network.cost import LinkSpec, downlink_time, sparse_uplink_time, uplink_time
from repro.network.transport import Payload
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = [
    "ComputeSpec",
    "TraceProfile",
    "DeviceProfile",
    "sample_device_profiles",
    "pipeline_times",
]


@dataclass(frozen=True)
class ComputeSpec:
    """A device's local-training speed: seconds per (sample × epoch)."""

    s_per_sample: float
    overhead_s: float = 0.0  # fixed per-dispatch cost (model load, setup)

    def __post_init__(self):
        check_positive("s_per_sample", self.s_per_sample)
        check_positive("overhead_s", self.overhead_s, strict=False)

    def train_time(self, num_samples: int, epochs: int) -> float:
        """Virtual seconds to run ``epochs`` passes over ``num_samples``."""
        if num_samples < 0 or epochs < 0:
            raise ValueError(f"need num_samples, epochs >= 0, got {num_samples}, {epochs}")
        return self.overhead_s + self.s_per_sample * num_samples * epochs


class TraceProfile:
    """Trace-driven compute speeds: replay measured per-dispatch multipliers.

    Wraps a base :class:`ComputeSpec` and scales each successive dispatch's
    compute time by the next entry of ``trace`` (cycling) — e.g. a device
    that throttles every other invocation replays ``(1.0, 2.5)``. Stateful:
    the k-th call uses ``trace[k % len(trace)]``, so the sequence of costs
    is deterministic given the (deterministic) dispatch order.
    """

    def __init__(self, base: ComputeSpec, trace: Sequence[float]):
        if len(trace) == 0:
            raise ValueError("trace must be non-empty")
        trace = tuple(float(m) for m in trace)
        if any(m <= 0 for m in trace):
            raise ValueError(f"trace multipliers must be > 0, got {trace}")
        self.base = base
        self.trace = trace
        self._calls = 0

    @property
    def overhead_s(self) -> float:
        return self.base.overhead_s

    def train_time(self, num_samples: int, epochs: int) -> float:
        """Next dispatch's compute time, advancing the trace cursor."""
        mult = self.trace[self._calls % len(self.trace)]
        self._calls += 1
        return self.base.overhead_s + self.base.s_per_sample * mult * num_samples * epochs


@dataclass
class DeviceProfile:
    """One client's full timing identity: compute speed + link draw.

    ``compute`` is a :class:`ComputeSpec` or :class:`TraceProfile` (duck
    typed on ``train_time``); ``link`` is the client's uplink draw. Comm
    methods accept a ``link`` override so time-varying links can be priced
    at their current state without rebuilding the profile.
    """

    cid: int
    compute: ComputeSpec | TraceProfile
    link: LinkSpec

    def train_time(self, num_samples: int, epochs: int) -> float:
        return self.compute.train_time(num_samples, epochs)

    def upload_time(
        self,
        volume_bits: float,
        ratio: float | None,
        *,
        link: LinkSpec | None = None,
        payload: Payload | None = None,
    ) -> float:
        """Uplink time of one update on an exclusive link.

        With a :class:`~repro.network.transport.Payload` the transfer is
        priced from its *exact* wire bits (Eq. 4 on what was actually
        emitted — quantized and sparse encodings included); without one it
        falls back to the planned-ratio approximation (dense volume, or
        ``SPARSE_VOLUME_FACTOR × V × CR`` for ``ratio`` set).
        """
        link = self.link if link is None else link
        if payload is not None:
            return uplink_time(link, payload.bits)
        if ratio is None:
            return uplink_time(link, volume_bits)
        return sparse_uplink_time(link, volume_bits, float(ratio))

    def download_time(
        self, volume_bits: float, *, bandwidth_factor: float = 1.0, link: LinkSpec | None = None
    ) -> float:
        """Broadcast (server→client) time for the dense global model."""
        link = self.link if link is None else link
        return downlink_time(link, volume_bits, bandwidth_factor=bandwidth_factor)


def sample_device_profiles(
    links: Sequence[LinkSpec],
    *,
    median_s_per_sample: float,
    heterogeneity: float = 0.0,
    overhead_s: float = 0.0,
    seed: int | np.random.Generator = 0,
) -> list[DeviceProfile]:
    """Draw one :class:`DeviceProfile` per link.

    Per-client compute speed is lognormal around the median:
    ``s_i = median × exp(heterogeneity × z_i)`` with ``z_i ~ N(0, 1)`` —
    ``heterogeneity=0`` gives a homogeneous fleet, ``≈0.5`` a realistic
    mobile spread (fastest/slowest ratio of ~5–10× at N=100).
    """
    check_positive("median_s_per_sample", median_s_per_sample)
    check_positive("heterogeneity", heterogeneity, strict=False)
    rng = as_generator(seed)
    z = rng.standard_normal(len(links))
    return [
        DeviceProfile(
            cid=i,
            compute=ComputeSpec(
                s_per_sample=float(median_s_per_sample * np.exp(heterogeneity * z[i])),
                overhead_s=overhead_s,
            ),
            link=link,
        )
        for i, link in enumerate(links)
    ]


def pipeline_times(
    device: DeviceProfile,
    *,
    volume_bits: float,
    ratio: float | None,
    num_samples: int,
    epochs: int,
    include_downlink: bool,
    downlink_factor: float,
    link: LinkSpec | None = None,
    payload: Payload | None = None,
) -> tuple[float, float, float]:
    """(download, train, upload) virtual durations for one dispatch.

    The downlink stage is 0 when ``include_downlink`` is off, matching the
    paper's uplink-only accounting (Sec. 3.3); pass the client's *current*
    ``link`` when links drift round-to-round, and the upload's ``payload``
    to price the exact emitted bits instead of the ratio plan.
    """
    down = (
        device.download_time(volume_bits, bandwidth_factor=downlink_factor, link=link)
        if include_downlink
        else 0.0
    )
    train = device.train_time(num_samples, epochs)
    up = device.upload_time(volume_bits, ratio, link=link, payload=payload)
    return down, train, up
