"""Virtual-clock discrete-event scheduling for federated rounds.

The synchronous engine (:mod:`repro.fl.simulation`) runs lock-step rounds:
the slowest selected client sets the pace. This package adds a deterministic
*virtual clock* so the simulator can exploit, not just plot, the paper's
cost model (Eq. 4):

- :mod:`repro.simtime.events` — a discrete-event queue whose ordering is a
  pure function of (timestamp, insertion order), so event-driven runs are
  bit-identical across execution backends;
- :mod:`repro.simtime.profiles` — per-device timing: :class:`ComputeSpec`
  (seconds per sample), :class:`DeviceProfile` (compute + link draw),
  :class:`TraceProfile` (trace-driven speeds);
- :mod:`repro.simtime.protocols` — two event-driven training protocols
  whose upload completions come from the transport layer's ingress pipe
  (:mod:`repro.network.transport` — exclusive links or fair-shared server
  ingress): :class:`AsyncSimulation` (FedBuff-style buffered aggregation
  with staleness-weighted updates) and :class:`SemiSyncSimulation`
  (deadline-based rounds where late updates carry over or drop).

Select a protocol with ``ExperimentConfig(mode="sync"|"semisync"|"async")``
and build it via :func:`make_simulation`.
"""

from __future__ import annotations

from repro.simtime.events import ClientSpan, Event, EventQueue, SpanLog
from repro.simtime.profiles import (
    ComputeSpec,
    DeviceProfile,
    TraceProfile,
    pipeline_times,
    sample_device_profiles,
)

__all__ = [
    "Event",
    "EventQueue",
    "ClientSpan",
    "SpanLog",
    "ComputeSpec",
    "DeviceProfile",
    "TraceProfile",
    "sample_device_profiles",
    "pipeline_times",
    "AsyncSimulation",
    "SemiSyncSimulation",
    "make_simulation",
]


def __getattr__(name):
    # The protocols subclass repro.fl.simulation.Simulation, which itself
    # imports repro.simtime.{events,profiles}; importing them lazily keeps
    # ``import repro.simtime`` (and therefore ``import repro.fl.simulation``)
    # acyclic.
    if name in ("AsyncSimulation", "SemiSyncSimulation"):
        from repro.simtime import protocols

        return getattr(protocols, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def make_simulation(config, obs=None, context=None):
    """Build the simulation class selected by ``config.mode``.

    ``"sync"`` returns the lock-step :class:`~repro.fl.simulation.Simulation`;
    ``"semisync"`` and ``"async"`` return the event-driven protocols;
    ``"hier"`` returns the hierarchical cloud–edge–client protocol
    (:class:`~repro.hier.simulation.HierSimulation`). All share the seeded
    data/model/link construction, record into the same
    :class:`~repro.fl.history.History`, and honor the determinism contract
    (seeded runs bit-identical across execution backends).

    ``obs`` is an optional :class:`repro.obs.Obs` bundle; it only ever
    observes — histories are bit-identical with or without it. ``context``
    is an optional prebuilt :class:`~repro.fl.context.SimulationContext`
    (cross-cell dataset caching) — likewise invisible in the history.
    """
    from repro.fl.simulation import Simulation
    from repro.simtime.protocols import AsyncSimulation, SemiSyncSimulation

    if config.mode == "sync":
        return Simulation(config, obs=obs, context=context)
    if config.mode == "semisync":
        return SemiSyncSimulation(config, obs=obs, context=context)
    if config.mode == "async":
        return AsyncSimulation(config, obs=obs, context=context)
    if config.mode == "hier":
        from repro.hier.simulation import HierSimulation

        return HierSimulation(config, obs=obs, context=context)
    raise ValueError(f"unknown mode {config.mode!r}")
