"""The deterministic discrete-event core: a virtual clock's ordered queue.

Determinism contract (extends the :mod:`repro.exec` contract to virtual
time): event order is a pure function of ``(time, insertion sequence)``.
Ties at the same virtual timestamp pop in insertion order, and insertion
order is itself deterministic in a seeded run, so the full event trace —
and everything derived from it (dispatch order, aggregation membership,
staleness) — is bit-identical across execution backends.

Upload arrivals themselves are now scheduled by the transport layer's
:class:`~repro.network.transport.IngressPipe`, which honors the same
``(finish, admission order)`` contract while supporting contended
(fair-shared) finish times; this queue remains the general-purpose
scheduling primitive (and the :class:`SpanLog` stays the event log every
protocol writes).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventQueue", "ClientSpan", "SpanLog"]


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled occurrence on the virtual clock.

    Ordering compares ``(time, seq)`` only; ``kind``/``cid``/``payload``
    are cargo. ``seq`` is assigned by the queue at push time.
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    cid: int = field(compare=False, default=-1)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A min-heap of :class:`Event` with deterministic tie-breaking."""

    def __init__(self):
        self._heap: list[Event] = []
        self._seq = 0

    def push(self, time: float, kind: str, cid: int = -1, payload: Any = None) -> Event:
        """Schedule ``kind`` at virtual ``time`` and return the event."""
        if not math.isfinite(time) or time < 0:
            raise ValueError(f"event time must be finite and >= 0, got {time}")
        ev = Event(time=float(time), seq=self._seq, kind=kind, cid=int(cid), payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest event (FIFO within a timestamp)."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """The earliest event without removing it."""
        if not self._heap:
            raise IndexError("peek at an empty EventQueue")
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass(frozen=True)
class ClientSpan:
    """One client's contiguous activity interval on the virtual clock."""

    cid: int
    kind: str  # "train" | "upload"
    start: float
    end: float
    tag: int = -1  # round index (sync/semisync) or model version (async)

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"span end {self.end} < start {self.start}")


class SpanLog:
    """Append-only log of :class:`ClientSpan` — the scheduler's event log.

    The ASCII timeline view (:func:`repro.viz.ascii.ascii_timeline`) renders
    directly from this; tests compare logs across backends to enforce the
    virtual-time determinism contract.
    """

    def __init__(self):
        self.spans: list[ClientSpan] = []

    def add(self, cid: int, kind: str, start: float, end: float, tag: int = -1) -> ClientSpan:
        span = ClientSpan(cid=int(cid), kind=kind, start=float(start), end=float(end), tag=int(tag))
        self.spans.append(span)
        return span

    def window(self, t0: float, t1: float) -> list[ClientSpan]:
        """Spans overlapping ``[t0, t1]`` (for a timeline view of that window)."""
        if t1 < t0:
            raise ValueError(f"need t0 <= t1, got [{t0}, {t1}]")
        return [s for s in self.spans if s.end >= t0 and s.start <= t1]

    def for_client(self, cid: int) -> list[ClientSpan]:
        return [s for s in self.spans if s.cid == cid]

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)
