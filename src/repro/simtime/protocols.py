"""Event-driven federated protocols: async (FedBuff) and semi-sync rounds.

Both protocols reuse the seeded construction of
:class:`~repro.fl.simulation.Simulation` (data, partition, model, links,
compressors, server optimizer) and replace the lock-step round loop with a
virtual clock:

- a *dispatch* hands a client the current global model and runs its local
  training immediately through the execution backend (the numerical result
  does not depend on virtual time, only on the model snapshot);
- the *virtual cost* of that dispatch — download + compute + upload — is
  priced from the client's :class:`~repro.simtime.profiles.DeviceProfile`
  through the unified transport (:mod:`repro.network.transport`): the
  download/compute stages are exclusive, the upload enters the server's
  ingress pipe, which either resolves it immediately (``contention="none"``,
  Eq. 4 on the payload's exact bits) or water-fills it against every other
  in-flight upload (``contention="fair"``);
- the server reacts to upload completions: :class:`AsyncSimulation`
  aggregates every ``buffer_size`` arrivals with staleness-discounted
  weights (FedBuff), :class:`SemiSyncSimulation` closes each round at a
  deadline and lets late updates carry over (stale) or drop.

Determinism: dispatch order, arrival order, and aggregation membership are
pure functions of the config seed (completion ties break by admission
order), so seeded runs are bit-identical across serial/thread/process
backends — the same contract :mod:`repro.exec` enforces for the synchronous
engine, extended to contended transfers.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.compression.base import CompressedUpdate, SparseUpdate
from repro.exec import ClientTask, TaskResult
from repro.fl.config import ExperimentConfig
from repro.fl.history import RoundComm, RoundRecord
from repro.fl.simulation import Simulation
from repro.compression.sparsifiers import k_from_ratio
from repro.network.metrics import RoundTimes
from repro.network.transport import FaultInjector, Payload
from repro.utils.rng import RngFactory

__all__ = ["AsyncSimulation", "SemiSyncSimulation"]

#: Arrival-inclusion tolerance: an upload finishing exactly at the deadline
#: (up to float rounding) still makes the round.
_EPS = 1e-9


@dataclass
class _Pending:
    """One in-flight (dispatched, not yet aggregated) client update.

    ``result`` may be deferred: the arrival *time* is a pure function of the
    device profile, so training can run later (batched) as long as it uses
    the parameters of ``version`` — which the server mutates only at
    aggregation, after every deferred dispatch of that version is trained.
    """

    cid: int
    ratio: float | None
    version: int  # global-model version the client trained from
    t_dispatch: float
    t_arrival: float  # exclusive-link prediction; overwritten on contended pipes
    duration: float  # download + compute + upload (exclusive-link prediction)
    upload: float  # the communication (uplink) part alone
    downlink: float
    result: TaskResult | None = None
    payload: Payload | None = None  # what the upload puts on the wire
    fid: int = -1  # transport flow id of the upload
    up_start: float = 0.0  # when the upload entered the ingress
    #: Fault-injection fate, decided at dispatch (pure function of
    #: (seed, dispatch seq, cid)): "deliver" | "drop" | "truncate".
    fate: str = "deliver"
    frac: float = 1.0  # truncate: surviving payload fraction
    delivered: CompressedUpdate | None = None  # truncated update, once known


class _EventDrivenSimulation(Simulation):
    """Shared machinery: dispatch pipeline, staleness weighting, aggregation."""

    #: Carryover keeps a _Pending's update alive across aggregation windows
    #: (semisync ``late_policy="carryover"``), which outlives the arena's
    #: double-buffered compress banks — compressors allocate as before.
    #: (The arena's aggregation-side buffers are still used.)
    _arena_compress = False

    def __init__(self, config: ExperimentConfig, obs=None, context=None):
        super().__init__(config, obs=obs, context=context)
        # The server's ingress: upload completions come back from this pipe
        # in deterministic (finish, admission) order — exclusive links
        # reproduce the historical event-queue arrival order bit-for-bit,
        # fair contention water-fills the in-flight flows.
        self._pipe = self.transport.pipe("server")
        self._flights: dict[int, _Pending] = {}  # flow id → in-flight dispatch
        self._window_down: list[int] = []  # cids broadcast to since last record
        self.now = 0.0
        self.version = 0  # bumps once per aggregation
        self._untrained: list[_Pending] = []  # dispatched, training deferred
        #: Per-dispatch fault-fate sequence: dispatch order is deterministic,
        #: so (seq, cid) indexes a unique counter-RNG draw per upload.
        self._fault_seq = 0
        #: Drop-fated arrivals since the last record: their bits were spent
        #: on the wire (the ledger must charge them) but nothing aggregates.
        self._window_lost: list[_Pending] = []

    # ------------------------------------------------------------- dispatch

    def _train_now(self, tasks: list[ClientTask]) -> list[TaskResult]:
        """Run client tasks through the execution backend as one batch."""
        return self._run_tasks(
            tasks, self.global_params, self.global_states, self._train_spec
        )

    def _dispatch(
        self, cid: int, ratio: float | None, t: float, result: TaskResult | None = None
    ) -> _Pending:
        """Enter a dispatch's upload into the server ingress.

        With ``result=None`` training is deferred until :meth:`_flush_training`
        (one backend batch per aggregation window instead of one per dispatch);
        the upload is then priced from the predicted Top-K wire size, which
        for deterministic-``k`` sparsifiers equals the emitted bits.

        Fault injection decides the upload's fate here, at dispatch: a
        truncated upload is re-priced at its delivered bits (so its arrival
        shifts earlier), a dropped one burns its full wire price in flight.
        """
        update = None if result is None else result.update
        fate, frac = "deliver", 1.0
        delivered: CompressedUpdate | None = None
        payload_override: Payload | None = None
        if self.faults is not None:
            fate, frac = self.faults.fate(self._fault_seq, int(cid))
            self._fault_seq += 1
            if fate == "truncate":
                if update is not None:
                    delivered = FaultInjector.truncate(update, frac)
                    if delivered is None:
                        fate = "drop"  # nothing decodable survives
                    else:
                        payload_override = self._payload_for(delivered, ratio)
                elif self._price_from_updates and ratio is not None:
                    # Deferred training: predict the truncated wire size from
                    # the deterministic Top-K count the compressor will emit.
                    k = int(frac * k_from_ratio(self.dense_size, float(ratio)))
                    if k < 1:
                        fate = "drop"
                    else:
                        payload_override = Payload.sparse(k)
                else:
                    # Dense / planned-volume uploads have no partial decoding:
                    # a truncated block is discarded whole.
                    fate = "drop"
        down, train_t, up, payload = self._price_dispatch(
            cid, ratio, t, tag=self.version, update=update, payload=payload_override
        )
        duration = down + train_t + up
        up_start = (t + down) + train_t
        pend = _Pending(
            cid=cid,
            ratio=ratio,
            version=self.version,
            t_dispatch=t,
            t_arrival=t + duration,
            duration=duration,
            upload=up,
            downlink=down,
            result=result,
            payload=payload,
            up_start=up_start,
            fate=fate,
            frac=frac,
            delivered=delivered,
        )
        if result is None:
            self._untrained.append(pend)
        if self.transport.contended:
            pend.fid = self._pipe.admit(payload.bits, self.links[cid], up_start)
        else:
            # Exclusive links: hand the pipe the already-priced finish so the
            # historical arrival arithmetic survives bit-for-bit.
            pend.fid = self._pipe.admit(
                payload.bits, self.links[cid], up_start, finish=pend.t_arrival
            )
        self._flights[pend.fid] = pend
        self._window_down.append(cid)
        if self.obs.enabled:
            self.obs.metrics.gauge("ingress_depth").set(len(self._pipe))
        return pend

    def _resolve_arrival(self, t_fin: float, fid: int) -> _Pending:
        """Consume one upload completion from the ingress pipe."""
        pend = self._flights.pop(fid)
        if self.transport.contended:
            pend.t_arrival = t_fin
            pend.upload = t_fin - pend.up_start
            self.spans.add(pend.cid, "upload", pend.up_start, t_fin, tag=pend.version)
        return pend

    def _delivered_update(self, pend: _Pending) -> CompressedUpdate | None:
        """The update the server actually receives (None = lost in flight).

        Deferred-training truncations resolve lazily here, after
        :meth:`_flush_training` has produced the full update.
        """
        if pend.fate == "drop":
            return None
        if pend.fate != "truncate":
            return pend.result.update
        if pend.delivered is None:
            pend.delivered = FaultInjector.truncate(pend.result.update, pend.frac)
            if pend.delivered is None:
                pend.fate = "drop"
                return None
        return pend.delivered

    def _window_comm(self, contributions: list[_Pending]) -> RoundComm:
        """Flow ledger of one aggregation window: contributed uplink bits,
        bits spent by drop-fated uploads (transmitted, never aggregated),
        plus (when downlink accounting is on) this window's broadcasts."""
        up_map: dict[int, float] = {}
        for p in contributions:
            up_map[p.cid] = up_map.get(p.cid, 0.0) + p.payload.bits
        for p in self._window_lost:
            up_map[p.cid] = up_map.get(p.cid, 0.0) + p.payload.bits
        self._window_lost = []
        down_map: dict[int, float] = {}
        if self.config.include_downlink:
            for cid in self._window_down:
                down_map[cid] = down_map.get(cid, 0.0) + self.volume_bits
        self._window_down = []
        return RoundComm.from_maps(uplink=up_map, downlink=down_map)

    def _flush_training(self) -> None:
        """Train every deferred dispatch, batched per aggregation window.

        All deferred dispatches share the current model version (the server
        only steps at aggregation, and aggregation always flushes first), so
        training them together from today's ``global_params`` is bit-identical
        to having trained each at its dispatch instant.

        A fast client can be dispatched twice within one window; the exec
        backends assume a client appears at most once per ``run_round`` call
        (the thread pool shards by position, so duplicates would race on the
        client's shared loader/compressor state). Duplicates are therefore
        split into sequential waves — unique cids per wave, a client's tasks
        in dispatch order across waves.
        """
        pending, self._untrained = self._untrained, []
        while pending:
            wave: list[_Pending] = []
            seen: set[int] = set()
            rest: list[_Pending] = []
            for p in pending:
                if p.cid in seen:
                    rest.append(p)
                else:
                    seen.add(p.cid)
                    wave.append(p)
            tasks = [
                ClientTask(position=pos, cid=p.cid, ratio=p.ratio)
                for pos, p in enumerate(wave)
            ]
            for p, result in zip(wave, self._train_now(tasks)):
                p.result = result
            pending = rest

    # ------------------------------------------------------------ aggregate

    def _contribution_freqs(self, contributions: list[_Pending]) -> np.ndarray:
        """Data frequencies f_i over the contributors (normalized)."""
        sizes = self.population.sizes_of([p.cid for p in contributions])
        return sizes / sizes.sum()

    def _staleness_weights(self, contributions: list[_Pending]) -> np.ndarray:
        """Data-frequency weights discounted by ``(1+s)^-a`` and normalized.

        ``s`` is the model-version lag at aggregation time (0 = trained on
        the current model); ``a`` is ``config.staleness_exponent`` —
        FedBuff's ``1/sqrt(1+s)`` at the default 0.5.
        """
        freqs = self._contribution_freqs(contributions)
        lags = np.array([self.version - p.version for p in contributions], dtype=np.float64)
        w = freqs * (1.0 + lags) ** (-self.config.staleness_exponent)
        return w / w.sum()

    def _comm_times(
        self, contributions: list[_Pending], dispatched: list[_Pending]
    ) -> RoundTimes:
        """Sec. 5.2 comm semantics on the event-driven protocols.

        Per-client comm = downlink + upload (downlink is *included* in the
        three headline fields, matching the sync plans and the RoundTimes
        invariant). ``actual`` is the slowest aggregated transfer;
        max/min range over this window's dispatches (falling back to the
        contributors when nothing was dispatched). The window's wall-clock
        span — which adds compute — lives in ``sim_start``/``sim_end``.
        """
        ranged = dispatched or contributions
        comm = [p.downlink + p.upload for p in ranged]
        # An all-lost window still spans the slowest completed transfer —
        # the dropped bits were transmitted even though nothing aggregated.
        actual_pool = contributions or ranged
        return RoundTimes(
            actual=max(p.downlink + p.upload for p in actual_pool),
            maximum=max(comm),
            minimum=min(comm),
            downlink=max(p.downlink for p in ranged),
        )

    def _apply_aggregate(self, contributions: list[_Pending], weights: np.ndarray) -> tuple[float | None, list[CompressedUpdate]]:
        """Server update from ``contributions``: masked sparse sum + opt step.

        Returns (OPWA singleton fraction diagnostic, the updates used).
        Mirrors the synchronous round's aggregation (Alg. 1 lines 14–18)
        including persistent-buffer (BN) averaging.
        """
        updates = [self._delivered_update(p) for p in contributions]
        self.last_round_updates = updates
        with self.obs.tracer.span("aggregate", cat="sim", contributions=len(contributions)):
            singleton = self._aggregate_updates(
                updates, weights, getattr(self.algorithm, "use_opwa", False)
            )
            self._average_states(
                self._contribution_freqs(contributions),
                [p.result.state_arrays for p in contributions],
            )
        self.version += 1
        return singleton, updates

    def _record(
        self,
        *,
        contributions: list[_Pending],
        weights: np.ndarray,
        updates: list[CompressedUpdate],
        singleton: float | None,
        times: RoundTimes,
        sim_start: float,
        sim_end: float,
        selected: tuple[int, ...],
    ) -> RoundRecord:
        """Build/append the aggregation's record (evaluation on cadence)."""
        lags = [self.version - 1 - p.version for p in contributions]
        comm = self._window_comm(contributions)
        if self._should_evaluate():
            with self.obs.tracer.span("evaluate", cat="sim"):
                test_acc = self.evaluate()
        else:
            test_acc = None
        record = RoundRecord(
            round_index=self.round_index,
            selected=selected,
            train_loss=(
                float(np.mean([p.result.mean_loss for p in contributions]))
                if contributions
                else 0.0
            ),
            test_accuracy=test_acc,
            times=times,
            ratios=tuple(
                float(u.density) if isinstance(u, SparseUpdate) else 1.0 for u in updates
            ),
            weights=tuple(float(w) for w in weights),
            singleton_fraction=singleton,
            train_seconds=sum(p.result.train_seconds for p in contributions),
            compress_seconds=sum(p.result.compress_seconds for p in contributions),
            sim_start=sim_start,
            sim_end=sim_end,
            mean_staleness=float(np.mean(lags)) if lags else 0.0,
            comm=comm,
            num_participants=(
                len(contributions) if self.faults is not None else None
            ),
        )
        self.history.append(record)
        self.round_index += 1
        self.sim_clock = sim_end
        if self.obs.enabled:
            self._observe_round_end()
        return record

    def _uniform_ratio(self) -> float | None:
        """Per-dispatch compression ratio: uniform CR* when the algorithm
        compresses, dense otherwise.

        BCRS's per-round ratio *scheduling* assumes a synchronized benchmark
        window and does not transfer to event-driven dispatch; under
        ``mode="async"`` a BCRS config degrades to uniform Top-K (OPWA still
        applies at aggregation).
        """
        if self.algorithm.compressor_name is None:
            return None
        return float(self.config.compression_ratio)


class AsyncSimulation(_EventDrivenSimulation):
    """FedBuff-style asynchronous FL on the virtual clock.

    ``M = config.async_concurrency`` clients are always in flight; each
    arrival is buffered and its client's slot immediately refilled with a
    uniformly-sampled idle client. Every ``K = config.async_buffer_size``
    arrivals the server aggregates the buffer with staleness-discounted
    weights, bumps the model version, and records one
    :class:`~repro.fl.history.RoundRecord` (so ``config.rounds`` counts
    aggregations). No client ever waits on a straggler: fast devices cycle
    many times per slow-device upload, which is exactly the regime the
    paper's Fig. 10 time-to-accuracy curves motivate.
    """

    def __init__(self, config: ExperimentConfig, obs=None, context=None):
        super().__init__(config, obs=obs, context=context)
        if config.time_varying_links:
            # Link drift is a per-round process; async has no rounds to pin
            # it to. Refuse rather than silently freeze the links.
            raise ValueError(
                "time_varying_links is not supported in async mode — drift "
                "is defined per synchronized round; use mode='sync' or "
                "'semisync'"
            )
        if config.algorithm in ("bcrs", "bcrs_opwa", "deadline_topk"):
            # These algorithms' plan-time scheduling (BCRS ratio windows,
            # deadline straggler drops) assumes synchronized rounds; under
            # async dispatch they degrade to uniform-ratio Top-K. Say so
            # instead of letting the history silently mislabel the run.
            warnings.warn(
                f"algorithm {config.algorithm!r} under mode='async' runs "
                "uniform Top-K at compression_ratio (per-round scheduling "
                "does not transfer to event-driven dispatch"
                + ("; OPWA still applies)" if config.algorithm == "bcrs_opwa" else ")"),
                stacklevel=3,
            )
        self._rng = RngFactory(config.seed).stream("async-dispatch")
        self._buffer: list[_Pending] = []
        self._in_flight: set[int] = set()
        self._last_agg = 0.0
        self._primed = False

    def _prime(self) -> None:
        """First call only: start M distinct clients, in id order, at the
        current clock (0 on a fresh run, the restored clock after a
        checkpoint load)."""
        self._primed = True
        self._last_agg = self.now
        first = np.sort(
            self._rng.choice(
                self.config.num_clients, size=self.config.async_concurrency, replace=False
            )
        )
        for cid in first:
            self._launch(int(cid), self.now)

    def _launch(self, cid: int, t: float) -> None:
        # Training is deferred: the whole aggregation window trains as one
        # backend batch in _flush_training (arrival times need only the
        # device profile), so parallel backends see real batches.
        self._dispatch(cid, self._uniform_ratio(), t)
        self._in_flight.add(cid)

    def run_round(self) -> RoundRecord:
        """Advance virtual time until K arrivals, then aggregate them."""
        with self.obs.tracer.span("round", cat="sim", round=self.round_index):
            return self._advance_window()

    def _advance_window(self) -> RoundRecord:
        if not self._primed:
            self._prime()
        K = self.config.async_buffer_size
        while len(self._buffer) < K:
            nxt = self._pipe.pop_next()
            if nxt is None:
                raise RuntimeError("async protocol has no uploads in flight")
            t_fin, fid = nxt
            self.now = t_fin
            pend = self._resolve_arrival(t_fin, fid)
            self._in_flight.discard(pend.cid)
            # A drop-fated upload still fills its buffer slot: the window is
            # K upload *completions*, and faults only remove contributions
            # (mirroring sync, where the cohort is fixed by selection). An
            # all-dropped window then records an empty round instead of
            # waiting forever for a deliverable arrival.
            self._buffer.append(pend)
            # Refill the slot: uniform over idle clients (the arrived client
            # is idle again, so the pool is never empty).
            idle = [c for c in range(self.config.num_clients) if c not in self._in_flight]
            self._launch(idle[int(self._rng.integers(len(idle)))], self.now)

        self._flush_training()  # everything dispatched this window, batched
        window, self._buffer = self._buffer, []
        # Deferred truncations resolve now that the updates exist; one that
        # yields nothing decodable degrades to a drop (dense updates, k < 1).
        contributions = [p for p in window if self._delivered_update(p) is not None]
        self._window_lost.extend(p for p in window if p.fate == "drop")
        if contributions:
            weights = self._staleness_weights(contributions)
            singleton, updates = self._apply_aggregate(contributions, weights)
        else:
            weights = np.empty(0, dtype=np.float64)
            singleton, updates = None, []
        pool = contributions or window
        times = self._comm_times(pool, pool)
        record = self._record(
            contributions=contributions,
            weights=weights,
            updates=updates,
            singleton=singleton,
            times=times,
            sim_start=self._last_agg,
            sim_end=self.now,
            selected=tuple(p.cid for p in window),
        )
        self._last_agg = self.now
        return record


class SemiSyncSimulation(_EventDrivenSimulation):
    """Deadline-based semi-synchronous rounds on the virtual clock.

    Each round dispatches up to ``clients_per_round`` idle clients and
    closes at ``deadline_s`` virtual seconds (or, when unset, at the
    ``deadline_quantile`` of the dispatched clients' predicted finish
    times). Whatever arrived by the deadline is aggregated; late updates
    either **carry over** — the device keeps uploading and its (stale)
    update joins the round in whose window it lands, discounted by
    ``(1+s)^-a`` — or **drop** (``late_policy``). A round that would
    aggregate nothing extends to the earliest outstanding arrival instead,
    so progress is guaranteed.
    """

    def __init__(self, config: ExperimentConfig, obs=None, context=None):
        super().__init__(config, obs=obs, context=context)
        self._rng = RngFactory(config.seed).stream("semisync-sampler")
        self._busy: set[int] = set()  # carryover clients still uploading

    def _select(self) -> list[int]:
        idle = [c for c in range(self.config.num_clients) if c not in self._busy]
        k = min(self.config.clients_per_round, len(idle))
        if k == 0:
            return []
        chosen = self._rng.choice(len(idle), size=k, replace=False)
        return sorted(int(idle[i]) for i in chosen)

    def run_round(self) -> RoundRecord:
        with self.obs.tracer.span("round", cat="sim", round=self.round_index):
            return self._advance_round()

    def _advance_round(self) -> RoundRecord:
        cfg = self.config
        t0 = self.now
        selected = self._select()

        if self._varying is not None:
            self.links = [tv.step() for tv in self._varying]

        # Plan + train the round's fresh dispatches in one backend batch
        # (selection order = position order, per the exec contract).
        own: list[_Pending] = []
        plan_weights: dict[int, float] = {}
        if selected:
            sel_links = [self.links[i] for i in selected]
            sizes = self.population.sizes_of(selected)
            freqs = sizes / sizes.sum()
            plan = self.algorithm.plan(sel_links, freqs, self.volume_bits)
            tasks = [
                ClientTask(
                    position=pos,
                    cid=cid,
                    ratio=None if plan.ratios is None else float(plan.ratios[pos]),
                )
                for pos, cid in enumerate(selected)
            ]
            results = self._train_now(tasks)
            for pos, (cid, res) in enumerate(zip(selected, results)):
                pend = self._dispatch(
                    cid, None if plan.ratios is None else float(plan.ratios[pos]), t0, res
                )
                own.append(pend)
                plan_weights[cid] = float(plan.weights[pos])

        # Deadline: fixed, or the quantile of this round's predicted finishes.
        if cfg.deadline_s is not None:
            deadline = float(cfg.deadline_s)
        elif own:
            deadline = float(
                np.quantile([p.duration for p in own], cfg.deadline_quantile)
            )
        else:
            deadline = 0.0  # no dispatches: the round exists only to drain arrivals
        t_end = t0 + deadline

        if not self._flights:
            raise RuntimeError("semi-sync round has no dispatches and no pending arrivals")
        arrivals = self._pipe.pop_until(t_end + _EPS)
        if not arrivals:
            # Nothing would land in the window → extend to the earliest
            # completion (exact even under contention: no flow can be
            # admitted before the next round, which starts at the new end).
            t_end = self._pipe.peek_next()[0]
            arrivals = self._pipe.pop_until(t_end + _EPS)

        arrived: list[_Pending] = []
        for t_fin, fid in arrivals:
            pend = self._resolve_arrival(t_fin, fid)
            self._busy.discard(pend.cid)
            arrived.append(pend)
        # Drop-fated completions finished transmitting (the device is idle
        # again, its bits hit the ledger) but contribute nothing.
        contributions = [p for p in arrived if self._delivered_update(p) is not None]
        self._window_lost.extend(p for p in arrived if p.fate == "drop")
        own_arrived = {p.cid for p in arrived if p.version == self.version}

        # Late updates: carry over (device keeps uploading; its flow stays
        # in the ingress and the client stays busy) or drop (abandoned at
        # the deadline; the flow is cancelled, freeing its ingress share).
        late = [p for p in own if p.cid not in own_arrived]
        if cfg.late_policy == "carryover":
            self._busy.update(p.cid for p in late)
        else:
            for p in late:
                self._pipe.cancel(p.fid)
                del self._flights[p.fid]
                if self.transport.contended and t_end > p.up_start:
                    # What the device did transmit before abandoning.
                    self.spans.add(p.cid, "upload", p.up_start, t_end, tag=p.version)

        # Weights on a common scale: the staleness-discounted data
        # frequencies (normalized over the contributors) decide how much
        # mass the fresh arrivals get versus the carryovers; within the
        # fresh subset, the plan's coefficients (Eq. 6 adjustments)
        # redistribute that mass. Mixing raw plan weights (normalized over
        # all *dispatched* clients) with stale_w directly would let a lone
        # carryover outweigh every on-time update.
        if contributions:
            stale_w = self._staleness_weights(contributions)
            fresh = [j for j, p in enumerate(contributions) if p.version == self.version]
            w = stale_w.copy()
            if fresh:
                pw = np.array(
                    [plan_weights[contributions[j].cid] for j in fresh], dtype=np.float64
                )
                # The plan's zeros are exclusions (deadline_topk drops
                # stragglers) and must stay zero here too — including a
                # plan-dropped update at frequency weight would make sync and
                # semisync disagree on aggregation *membership*, not just
                # timing. All-zero fresh arrivals cede the round to carryovers.
                w[fresh] = (
                    stale_w[fresh].sum() * pw / pw.sum() if pw.sum() > 0 else 0.0
                )
            if w.sum() == 0:  # every contributor excluded and no carryovers
                w = stale_w  # degenerate fallback, mirroring the plan's own
            weights = w / w.sum()
            singleton, updates = self._apply_aggregate(contributions, weights)
        else:
            # Every completed upload this window was lost in flight: a
            # well-defined empty round — model and version unchanged.
            weights = np.empty(0, dtype=np.float64)
            singleton, updates = None, []

        times = self._comm_times(contributions or arrived, own)
        self.now = t_end
        return self._record(
            contributions=contributions,
            weights=weights,
            updates=updates,
            singleton=singleton,
            times=times,
            sim_start=t0,
            sim_end=t_end,
            selected=tuple(selected),
        )
