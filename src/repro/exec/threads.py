"""Thread-pool backend.

Worker threads share the client and compressor objects (per-client state
advances in exactly one place) but each owns a private model replica, since
``local_train`` mutates the model in place. A client appears in at most one
task per round, so two threads never touch the same client or compressor
concurrently — the per-client RNG/EF streams advance exactly as in serial
execution and seeded runs stay bit-identical.

Python's GIL serializes the interpreter, so the speedup here is bounded by
how much time the numeric kernels spend outside it (NumPy releases the GIL
in large BLAS calls). For CPU-bound training prefer the process backend;
the thread backend stays useful for GIL-releasing workloads and as a
low-overhead sanity point between serial and process.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.exec.base import (
    ClientTask,
    ExecutionBackend,
    TaskResult,
    TrainSpec,
    WorkerContext,
    resolve_workers,
)

__all__ = ["ThreadBackend"]


class ThreadBackend(ExecutionBackend):
    """Persistent thread pool with one model replica per worker."""

    name = "thread"

    def __init__(self, context_factory: Callable[[], WorkerContext], workers: int | None = None):
        self.workers = resolve_workers(workers)
        self._factory = context_factory
        self._contexts: dict[int, WorkerContext] = {}
        self._pool: ThreadPoolExecutor | None = None
        self._poisoned = False

    def _context(self, k: int) -> WorkerContext:
        """Worker ``k``'s context, built on first use — a round with fewer
        tasks than workers never pays for the unused model replicas."""
        if k not in self._contexts:
            self._contexts[k] = self._factory()
        return self._contexts[k]

    def run_round(
        self,
        tasks: Sequence[ClientTask],
        global_params: np.ndarray | None,
        global_states: list[np.ndarray] | None,
        spec: TrainSpec,
    ) -> list[TaskResult]:
        if self._poisoned:
            raise RuntimeError(
                "thread backend failed in a previous round; per-client state "
                "may have advanced for part of that round, so retrying would "
                "diverge — build a fresh simulation"
            )
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )

        def run_chunk(ctx: WorkerContext, chunk: list[ClientTask]) -> list[TaskResult]:
            return [ctx.execute(t, global_params, global_states, spec) for t in chunk]

        # Round-robin task chunks; each chunk runs on one context/thread.
        futures = [
            self._pool.submit(run_chunk, self._context(k), list(tasks[k :: self.workers]))
            for k in range(self.workers)
            if tasks[k :: self.workers]
        ]
        try:
            results = [r for f in futures for r in f.result()]
        except BaseException:
            # Other chunks kept running and advanced shared per-client
            # state; a continued run could not be reproduced serially.
            for f in futures:
                f.cancel()
            self._poisoned = True
            raise
        results.sort(key=lambda r: r.position)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._contexts = {}
