"""Multiprocessing backend — true parallelism for CPU-bound client training.

Design:

- **Fork-based persistent workers.** The pool forks once, on first use, so
  every worker inherits the full :class:`WorkerContext` (clients,
  compressors, one model replica) by copy-on-write — nothing is pickled at
  startup and the dataset is not duplicated over pipes. The client and
  compressor pools are lazy, so what is inherited is the population's
  column table, not client objects: each worker hydrates only the
  ``cid % workers`` slice of each round's cohort, and the parent process
  never hydrates at all.
- **Stable client sharding.** Client ``cid`` is always executed by worker
  ``cid % workers``. Per-client state (batch-loader RNG stream,
  error-feedback residual) therefore lives in exactly one process and
  advances in selection order, exactly as in serial execution — seeded runs
  are bit-identical across backends. Changing ``workers`` mid-run would
  break this, so the count is fixed at construction.
- **Shared read-only global parameters.** Each round the parent writes the
  global parameter vector and persistent buffers into one POSIX
  shared-memory block; workers map it once and read zero-copy views. Only
  the small task list travels over the pipe. If shared memory is
  unavailable the backend transparently falls back to shipping the arrays
  in the task message.

The backend requires the ``fork`` start method (Linux, macOS); ``spawn``
would have to rebuild client state from pickles and is deliberately not
supported — use the thread or serial backend there.
"""

from __future__ import annotations

import multiprocessing as mp
import weakref
from collections.abc import Callable, Sequence
from multiprocessing import shared_memory

import numpy as np

from repro.exec.base import (
    ClientTask,
    ExecutionBackend,
    TaskResult,
    TrainSpec,
    WorkerContext,
    resolve_workers,
)

__all__ = ["ProcessBackend"]

_CMD_ROUND = "round"
_CMD_ATTACH = "attach"
_CMD_STOP = "stop"


def _np_views(buf, layout: list[tuple[int, tuple[int, ...], str]]) -> list[np.ndarray]:
    """Array views over a shared buffer described by (offset, shape, dtype)."""
    return [
        np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
        for offset, shape, dtype in layout
    ]


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    The parent owns the segment and unlinks it exactly once at close();
    letting each worker's tracker also claim it produces spurious
    "leaked shared_memory" warnings and double unlinks at exit. Python 3.13
    has ``SharedMemory(..., track=False)`` for this; pre-3.13 the register
    call must be suppressed around the attach.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(rname, rtype):
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = register
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _worker_loop(conn, context: WorkerContext) -> None:
    """Serve rounds until told to stop. Runs in the forked child."""
    shm = None
    views: list[np.ndarray] | None = None
    try:
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == _CMD_STOP:
                break
            if cmd == _CMD_ATTACH:
                _, name, layout = msg
                shm = _attach_untracked(name)
                views = _np_views(shm.buf, layout)
                continue
            # cmd == _CMD_ROUND. The payload says explicitly where this
            # round's globals live — "shared" must never be inferred from a
            # previously-attached segment, or a later globals-free round
            # would silently train from the prior round's parameters.
            _, tasks, spec, payload = msg
            kind = payload[0]
            if kind == "inline":
                global_params, global_states = payload[1], payload[2]
            elif kind == "shared":
                global_params, global_states = views[0], list(views[1:])
            else:  # "none"
                global_params, global_states = None, None
            try:
                results = [
                    context.execute(t, global_params, global_states, spec) for t in tasks
                ]
                conn.send(("ok", results))
            except Exception as exc:  # surface worker failures to the parent
                import traceback

                conn.send(("err", f"{exc}\n{traceback.format_exc()}"))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        if shm is not None:
            shm.close()
        conn.close()


class _Pool:
    """Owned process/pipe/shm state, separable from the backend for cleanup."""

    def __init__(self) -> None:
        self.procs: list = []
        self.conns: list = []
        self.shm: shared_memory.SharedMemory | None = None

    def cleanup(self) -> None:
        for conn in self.conns:
            try:
                conn.send((_CMD_STOP,))
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
        for conn in self.conns:
            conn.close()
        self.procs, self.conns = [], []
        if self.shm is not None:
            self.shm.close()
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass
            self.shm = None


class ProcessBackend(ExecutionBackend):
    """Forked worker pool with shared-memory parameter broadcast."""

    name = "process"

    def __init__(self, context_factory: Callable[[], WorkerContext], workers: int | None = None):
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "the process backend requires the 'fork' start method; "
                "use backend='thread' or 'serial' on this platform"
            )
        self.workers = resolve_workers(workers)
        self._factory = context_factory
        self._pool: _Pool | None = None
        self._layout: list[tuple[int, tuple[int, ...], str]] | None = None
        self._finalizer = None
        self._poisoned = False

    # ------------------------------------------------------------------ setup

    def _ensure_started(self) -> None:
        if self._pool is not None:
            return
        ctx = mp.get_context("fork")
        context = self._factory()  # forked into every worker below
        pool = _Pool()
        for _ in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_loop, args=(child_conn, context), daemon=True
            )
            proc.start()
            child_conn.close()
            pool.procs.append(proc)
            pool.conns.append(parent_conn)
        self._pool = pool
        self._finalizer = weakref.finalize(self, _Pool.cleanup, pool)

    def _ensure_shared(
        self, global_params: np.ndarray, global_states: list[np.ndarray]
    ) -> bool:
        """Allocate + announce the shared block; False → use inline fallback."""
        if self._layout is not None:
            return True
        assert self._pool is not None
        arrays = [global_params, *global_states]
        layout: list[tuple[int, tuple[int, ...], str]] = []
        offset = 0
        for a in arrays:
            layout.append((offset, a.shape, a.dtype.str))
            offset += a.nbytes
        try:
            self._pool.shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        except (OSError, ValueError):
            return False
        self._layout = layout
        for conn in self._pool.conns:
            conn.send((_CMD_ATTACH, self._pool.shm.name, layout))
        return True

    def _broadcast(
        self,
        global_params: np.ndarray | None,
        global_states: list[np.ndarray] | None,
    ) -> tuple:
        """Publish round inputs; returns the payload tag for the task message:
        ``("shared",)`` (read the shm views), ``("inline", params, states)``
        (shm unavailable), or ``("none",)`` (this round has no globals)."""
        if global_params is None:
            return ("none",)
        states = global_states or []
        if self._ensure_shared(global_params, states):
            assert self._pool is not None and self._pool.shm is not None
            views = _np_views(self._pool.shm.buf, self._layout or [])
            for view, src in zip(views, [global_params, *states]):
                view[...] = src
            return ("shared",)
        return ("inline", global_params, states)

    # ------------------------------------------------------------------ round

    def run_round(
        self,
        tasks: Sequence[ClientTask],
        global_params: np.ndarray | None,
        global_states: list[np.ndarray] | None,
        spec: TrainSpec,
    ) -> list[TaskResult]:
        if self._poisoned:
            raise RuntimeError(
                "process backend failed in a previous round; the healthy "
                "workers' per-client state has already advanced, so retrying "
                "would diverge — build a fresh simulation"
            )
        self._ensure_started()
        assert self._pool is not None
        payload = self._broadcast(global_params, global_states)

        # Stable sharding: client cid always runs on worker cid % workers.
        shards: list[list[ClientTask]] = [[] for _ in range(self.workers)]
        for task in tasks:
            shards[task.cid % self.workers].append(task)

        active = [w for w, shard in enumerate(shards) if shard]
        # Drain every active worker before raising: an unconsumed reply would
        # be read as a later round's result if the caller retries run_round.
        # A dead worker (pipe EOF/break) can't be drained at all, so that
        # path poisons the backend too.
        results: list[TaskResult] = []
        errors: list[tuple[int, str]] = []
        try:
            for w in active:
                self._pool.conns[w].send((_CMD_ROUND, shards[w], spec, payload))
            for w in active:
                status, reply = self._pool.conns[w].recv()
                if status == "ok":
                    results.extend(reply)
                else:
                    errors.append((w, reply))
        except (EOFError, BrokenPipeError, OSError) as exc:
            self._poisoned = True
            raise RuntimeError(
                "process-backend worker died mid-round; per-client state on "
                "the surviving workers may have advanced — build a fresh "
                "simulation"
            ) from exc
        except BaseException:
            # Anything else mid-protocol (KeyboardInterrupt in recv(), an
            # unpickling error, …) leaves replies queued in the pipes; a
            # retried round would read them as its own results.
            self._poisoned = True
            raise
        if errors:
            # A partial round already advanced per-client state on the
            # healthy workers; further rounds would silently diverge.
            self._poisoned = True
            w, message = errors[0]
            raise RuntimeError(f"process-backend worker {w} failed:\n{message}")
        results.sort(key=lambda r: r.position)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.cleanup()
            self._pool = None
            self._layout = None
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
