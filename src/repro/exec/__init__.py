"""Pluggable parallel execution engine for the round loop.

One round of federated training decomposes into independent client tasks;
this package provides interchangeable backends that execute them:

========== ============================================================
backend    behaviour
========== ============================================================
"serial"   in-process, in-order — the reference; zero overhead
"thread"   thread pool, per-thread model replicas (GIL-bound for pure
           Python; wins when kernels release the GIL)
"process"  forked worker pool, shared-memory parameter broadcast —
           true parallelism for CPU-bound training
========== ============================================================

All backends preserve per-client RNG and compressor state, so a seeded run
yields bit-identical :class:`~repro.fl.history.History` records on every
backend — every field except the wall-clock ``train_seconds``/
``compress_seconds`` measurements, which are real elapsed times and
necessarily backend-dependent. Select via
``ExperimentConfig(backend=..., workers=...)`` or the CLI's
``--backend``/``--workers`` flags.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.exec.base import (
    ClientTask,
    ExecutionBackend,
    TaskResult,
    TrainSpec,
    WorkerContext,
    resolve_workers,
)
from repro.exec.process import ProcessBackend
from repro.exec.serial import SerialBackend
from repro.exec.threads import ThreadBackend

__all__ = [
    "BACKENDS",
    "ClientTask",
    "TaskResult",
    "TrainSpec",
    "WorkerContext",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "resolve_workers",
]

#: Registered backend names (also validated by ``ExperimentConfig``).
BACKENDS = ("serial", "thread", "process")


def make_backend(
    name: str,
    *,
    context: WorkerContext,
    context_factory: Callable[[], WorkerContext],
    workers: int | None = None,
) -> ExecutionBackend:
    """Build an execution backend by registry name.

    ``context`` is the caller's own context (used by the serial backend so
    its behaviour is exactly the pre-backend code path); ``context_factory``
    builds contexts with fresh model replicas for the parallel backends.
    """
    if name == "serial":
        return SerialBackend(context)
    if name == "thread":
        return ThreadBackend(context_factory, workers)
    if name == "process":
        return ProcessBackend(context_factory, workers)
    raise ValueError(f"unknown execution backend {name!r}; expected one of {BACKENDS}")
