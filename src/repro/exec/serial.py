"""Serial backend — the reference implementation every other backend must match.

Executes tasks in selection order on the caller's own context (the
simulation's model instance), which is exactly the pre-backend behaviour of
``Simulation.run_round``: bit-identical histories by construction.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exec.base import ClientTask, ExecutionBackend, TaskResult, TrainSpec, WorkerContext

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """In-process, in-order execution on a single shared context."""

    name = "serial"

    def __init__(self, context: WorkerContext):
        self.context = context

    def run_round(
        self,
        tasks: Sequence[ClientTask],
        global_params: np.ndarray | None,
        global_states: list[np.ndarray] | None,
        spec: TrainSpec,
    ) -> list[TaskResult]:
        return [self.context.execute(t, global_params, global_states, spec) for t in tasks]
