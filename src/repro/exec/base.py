"""Execution-backend interfaces: how a round's client work is described.

A round of Algorithm 1 fans out into independent *client tasks* — "train
client ``i`` from the current global model and compress its update at ratio
``CR_i``" — whose only shared inputs (global parameters, persistent buffers)
are read-only for the duration of the round. That independence is what makes
the round parallelizable: every backend consumes the same
:class:`ClientTask` list and returns the same :class:`TaskResult` list, so
the round loop in :mod:`repro.fl.simulation` is backend-agnostic.

Determinism contract: a client's stochasticity lives entirely in per-client
state — its :class:`~repro.data.loader.BatchLoader` RNG stream and its
(possibly stateful, e.g. error-feedback) compressor. Backends must route
every task for client ``i`` through the single object pair owning that
state, in selection order, so a seeded run produces bit-identical results on
every backend.

The "clients" and "compressors" a :class:`WorkerContext` carries are lazy
pools (:mod:`repro.population.hydration`): indexing ``clients[cid]`` hydrates
the client from the population's column table on first touch. Because each
per-client stream is a pure function of ``(seed, stream, cid)``, hydrating
inside a worker yields the same object state as hydrating in the parent —
backends need no materialization step before fan-out.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.compression.base import CompressedUpdate, Compressor, DenseUpdate

__all__ = [
    "ClientTask",
    "TaskResult",
    "TrainSpec",
    "WorkerContext",
    "ExecutionBackend",
    "resolve_workers",
]


@dataclass(frozen=True)
class TrainSpec:
    """Round-invariant local-training hyperparameters (Alg. 1 lines 21–27)."""

    lr: float
    epochs: int
    momentum: float = 0.0
    weight_decay: float = 0.0
    proximal_mu: float = 0.0
    optimizer: str = "sgd"
    #: Ship the raw dense delta back alongside the compressed update
    #: (needed by the decentralized engine's mixing step).
    return_delta: bool = False
    #: Byzantine behavior (repro.robust). Carried on the spec — not the
    #: worker — so forked process workers corrupt the identical clients:
    #: membership is a pure function of ``(seed, cid)``, evaluated wherever
    #: the task runs. ``adversary=None`` (the default) touches nothing.
    adversary: str | None = None
    adversary_fraction: float = 0.0
    adversary_scale: float = 10.0
    seed: int = 0

    @classmethod
    def from_config(cls, config, *, return_delta: bool = False) -> "TrainSpec":
        """Extract the local-optimizer knobs from an ``ExperimentConfig``."""
        return cls(
            lr=config.lr,
            epochs=config.local_epochs,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
            proximal_mu=config.proximal_mu,
            optimizer=config.local_optimizer,
            return_delta=return_delta,
            adversary=config.adversary,
            adversary_fraction=config.adversary_fraction,
            adversary_scale=config.adversary_scale,
            seed=config.seed,
        )


@dataclass(frozen=True)
class ClientTask:
    """One unit of round work: train one client, compress its update.

    ``ratio`` is the scheduled compression ratio ``CR_i`` (``None`` = dense
    upload). Engines where every client starts from its own model
    (decentralized D-PSGD) pass the stacked per-client parameter matrix as
    the round's ``global_params`` and set ``params_row`` to this client's
    row — the matrix then travels once through the process backend's
    shared-memory broadcast instead of once per task over a pipe.
    ``params`` embeds an explicit start vector in the task itself (heavier;
    kept for ad-hoc tasks). Precedence: ``params`` > ``params_row`` >
    the round's global parameters.
    """

    position: int  # index into the round's selected list (result ordering)
    cid: int  # client id — keys per-client loader/compressor state
    ratio: float | None
    params: np.ndarray | None = None
    params_row: int | None = None


@dataclass
class TaskResult:
    """Everything the server needs back from one client task."""

    position: int
    cid: int
    update: CompressedUpdate
    state_arrays: list[np.ndarray]  # post-training persistent buffers
    mean_loss: float
    num_batches: int
    train_seconds: float  # per-task wall clock (summed into Fig. 6)
    compress_seconds: float
    delta: np.ndarray | None = None  # raw dense delta iff spec.return_delta
    #: Trace-clock instants bounding the task (``time.perf_counter`` is
    #: CLOCK_MONOTONIC on Linux, shared across forked workers, so these are
    #: directly comparable to the parent tracer's epoch). ``wall_start`` →
    #: ``wall_compress`` is the train span; ``wall_compress`` →
    #: ``wall_start + train + compress`` is the compress span.
    wall_start: float = 0.0
    wall_compress: float = 0.0
    worker_pid: int = 0  # lane id for the trace (os.getpid() in the worker)


class WorkerContext:
    """The per-worker execution state: clients, compressors, one model.

    Exactly one context must own a given client's (loader, compressor) state
    at a time — the backends arrange that. The model is a scratch instance:
    :meth:`execute` loads the task's parameters and buffers into it before
    training, so any architecturally-identical replica yields identical
    results.
    """

    def __init__(
        self,
        clients: Sequence,
        compressors: Sequence[Compressor] | None,
        model,
        arena=None,
    ):
        self.clients = clients
        self.compressors = compressors
        self.model = model
        #: Optional :class:`~repro.core.arena.AggregationArena`. When the
        #: round planned a compress block for this task's position, the
        #: compressor writes its (indices, values) directly into the arena's
        #: bank instead of allocating — blocks are disjoint slices, so
        #: thread workers sharing one arena never race. Process backends
        #: must leave this ``None``: forked workers cannot see the parent's
        #: post-fork block plans.
        self.arena = arena

    def execute(
        self,
        task: ClientTask,
        global_params: np.ndarray | None,
        global_states: list[np.ndarray] | None,
        spec: TrainSpec,
    ) -> TaskResult:
        """Run one client task to completion (train, then compress)."""
        if task.params is not None:
            params = task.params
        elif task.params_row is not None:
            if global_params is None:
                raise ValueError(
                    f"task for client {task.cid} indexes params_row "
                    f"{task.params_row} but no global parameters were given"
                )
            params = global_params[task.params_row]
        else:
            params = global_params
        if params is None:
            raise ValueError(f"task for client {task.cid} has no parameters")
        client = self.clients[task.cid]

        wall_start = t0 = time.perf_counter()
        res = client.local_train(
            self.model,
            params,
            lr=spec.lr,
            epochs=spec.epochs,
            momentum=spec.momentum,
            weight_decay=spec.weight_decay,
            proximal_mu=spec.proximal_mu,
            optimizer=spec.optimizer,
            global_states=global_states,
        )
        train_seconds = time.perf_counter() - t0

        # Byzantine delta corruption (repro.robust): after local training,
        # before compression — the compressor faithfully transmits the
        # poisoned vector. Strictly gated: spec.adversary=None (default)
        # skips even the membership draw.
        if spec.adversary is not None and spec.adversary != "label_flip":
            from repro.robust.attacks import apply_delta_attack, is_adversary

            if is_adversary(spec.seed, task.cid, spec.adversary_fraction):
                apply_delta_attack(
                    res.delta, spec.adversary, scale=spec.adversary_scale
                )

        wall_compress = t0 = time.perf_counter()
        if task.ratio is None:
            update: CompressedUpdate = DenseUpdate(
                dense_size=res.delta.shape[0], values=res.delta
            )
        else:
            if self.compressors is None:
                raise ValueError(
                    f"task for client {task.cid} requests compression at ratio "
                    f"{task.ratio} but no compressors were configured"
                )
            block = (
                self.arena.compress_block(task.position)
                if self.arena is not None
                else None
            )
            if block is not None:
                update = self.compressors[task.cid].compress(
                    res.delta, float(task.ratio), out=block
                )
            else:
                update = self.compressors[task.cid].compress(
                    res.delta, float(task.ratio)
                )
        compress_seconds = time.perf_counter() - t0

        return TaskResult(
            position=task.position,
            cid=task.cid,
            update=update,
            state_arrays=res.state_arrays,
            mean_loss=res.mean_loss,
            num_batches=res.num_batches,
            train_seconds=train_seconds,
            compress_seconds=compress_seconds,
            delta=res.delta if spec.return_delta else None,
            wall_start=wall_start,
            wall_compress=wall_compress,
            worker_pid=os.getpid(),
        )


class ExecutionBackend(ABC):
    """Executes one round's client tasks; see the module determinism contract."""

    #: Registry name ("serial" | "thread" | "process").
    name: str = "abstract"

    @abstractmethod
    def run_round(
        self,
        tasks: Sequence[ClientTask],
        global_params: np.ndarray | None,
        global_states: list[np.ndarray] | None,
        spec: TrainSpec,
    ) -> list[TaskResult]:
        """Execute ``tasks`` and return results sorted by ``position``."""

    def close(self) -> None:
        """Release worker resources (idempotent). Default: nothing to do."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def resolve_workers(workers: int | None, *, default_cap: int = 8) -> int:
    """Worker count: explicit value, else ``min(cpu_count, default_cap)``."""
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return int(workers)
    return max(1, min(os.cpu_count() or 1, default_cap))
