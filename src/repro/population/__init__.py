"""Fleet-scale client populations: columns for everyone, objects for the cohort.

:class:`~repro.population.table.Population` stores per-client scalars as
numpy columns (O(fleet) bytes, not objects);
:class:`~repro.population.hydration.ClientPool` and
:class:`~repro.population.hydration.CompressorPool` hydrate full per-client
objects lazily for the sampled cohort only. See the module docstrings for
the two shard regimes and the RNG derivation contract.
"""

from repro.population.hydration import ClientPool, CompressorPool, default_cache_size
from repro.population.table import DeviceColumns, LinkColumns, Population

__all__ = [
    "Population",
    "LinkColumns",
    "DeviceColumns",
    "ClientPool",
    "CompressorPool",
    "default_cache_size",
]
