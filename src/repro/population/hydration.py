"""Lazy client/compressor pools: hydrate the cohort, not the fleet.

The pools are drop-in replacements for the eager ``list[Client]`` /
``list[Compressor]`` the simulations used to build — same indexing protocol
(``pool[cid]``), same length, same iteration — but a full object exists only
while a client is *hot*:

- :class:`ClientPool` holds an LRU of hydrated :class:`~repro.fl.client.
  Client` objects. Hydrating client ``cid`` rebuilds its shard from the
  population's :meth:`~repro.population.table.Population.shard_indices` and
  wires in the client's **persistent** batch-loader generator, which lives
  in a side table outside the LRU. Eviction therefore only drops the shard
  arrays and loader object; re-hydration resumes the identical RNG stream,
  so cache size is semantically invisible — a fact the equivalence suite
  pins by running goldens under a cache of 2.
- :class:`CompressorPool` hydrates compressors on first use and keeps them
  forever: error-feedback residuals *are* client state and have no
  reconstruction rule, so a compressor that has compressed once can never
  be dropped. Only ever-sampled clients pay this cost.

Stream derivation matches the population's shard regime: the partitioned
regime keeps the historical ``RngFactory.child`` SeedSequence families
(``"client"``/``"compressor"``) for bit-for-bit golden equivalence; the
virtual regime derives both from counter-based Philox streams
(:meth:`~repro.utils.rng.RngFactory.counter`), the O(1) scheme that scales
to million-client fleets. Both are pure functions of ``(seed, cid)``, so
hydration order — across rounds, threads, or forked process workers — can
never change a client's draws.

Thread/process notes: a ``threading.Lock`` guards pool bookkeeping because
the thread backend shares one pool among all worker contexts (each client
still runs at most one task at a time, so the *objects* need no locking,
exactly as before the refactor). The fork-based process backend inherits
the pools copy-on-write; each worker then hydrates only the cids of its
``cid % workers`` shard, which is what keeps worker memory at
O(cohort / workers).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.compression.registry import make_compressor
from repro.population.table import Population
from repro.utils.rng import RngFactory

__all__ = ["ClientPool", "CompressorPool", "DEFAULT_CACHE"]

#: LRU floor: small fleets fit entirely, so legacy tests that iterate
#: ``sim.clients`` see every client resident at once.
DEFAULT_CACHE = 64

#: LRU ceiling for the default policy (explicit ``hydration_cache`` wins):
#: bounds resident shard memory even when the cohort is huge.
DEFAULT_CACHE_CAP = 4096


def default_cache_size(cohort: int) -> int:
    """Default LRU capacity: the round's cohort, clamped to sane bounds."""
    return max(DEFAULT_CACHE, min(int(cohort), DEFAULT_CACHE_CAP))


def _client_cls():
    # Imported lazily: repro.fl.simulation imports this module, and pulling
    # repro.fl.client in at module scope would run repro.fl's package init
    # mid-import of repro.population — a cycle. Pool construction happens
    # long after both packages are fully initialized.
    from repro.fl.client import Client

    return Client


class ClientPool:
    """Sequence-like lazy ``Client`` pool over a :class:`Population`."""

    def __init__(
        self,
        population: Population,
        train_set,
        batch_size: int,
        *,
        flatten_inputs: bool,
        cache_size: int,
        label_flip_fraction: float = 0.0,
    ):
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        if not 0.0 <= label_flip_fraction <= 1.0:
            raise ValueError(
                f"label_flip_fraction must be in [0, 1], got {label_flip_fraction}"
            )
        self._population = population
        self._train_set = train_set
        self._batch_size = int(batch_size)
        self._flatten = bool(flatten_inputs)
        self._cache_size = int(cache_size)
        #: Label-flip poisoning (repro.robust): adversarial clients — a pure
        #: function of (population.seed, cid) — train on shards whose labels
        #: are flipped *at hydration*, so poisoning costs O(cohort) and the
        #: world-cached corpus arrays stay untouched (``subset`` copies).
        self._flip_fraction = float(label_flip_fraction)
        self._num_classes = (
            int(train_set.y.max()) + 1 if self._flip_fraction > 0.0 else 0
        )
        self._rngs = RngFactory(population.seed)
        self._counter_streams = population.partition is None
        self._cache: OrderedDict[int, object] = OrderedDict()
        #: cid → loader generator; survives eviction (the one piece of
        #: client state that advances during training).
        self._loader_rngs: dict[int, np.random.Generator] = {}
        self._lock = threading.Lock()
        #: Total Client constructions ever (rehydrations included) — the
        #: materialization observable the no-eager-fleet tests assert on.
        self.hydrations = 0
        # Always-on cache accounting (plain int bumps — the cost of keeping
        # these unconditional is noise next to shard reconstruction).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.peak_resident = 0
        self._obs = None

    def __len__(self) -> int:
        return self._population.num_clients

    def __iter__(self):
        return (self[cid] for cid in range(len(self)))

    def _loader_rng(self, cid: int) -> np.random.Generator:
        rng = self._loader_rngs.get(cid)
        if rng is None:
            if self._counter_streams:
                rng = self._rngs.counter("client", cid)
            else:
                rng = self._rngs.child("client", cid)
            self._loader_rngs[cid] = rng
        return rng

    def __getitem__(self, cid: int):
        cid = int(cid)
        if not 0 <= cid < len(self):
            raise IndexError(f"client id {cid} out of range [0, {len(self)})")
        obs = self._obs
        with self._lock:
            client = self._cache.get(cid)
            if client is not None:
                self._cache.move_to_end(cid)
                self.hits += 1
                if obs is not None:
                    obs.metrics.counter("hydration", outcome="hit").inc()
                return client
            self.misses += 1
            if obs is not None:
                hydrate_cm = obs.tracer.span("hydrate", cat="pop", cid=cid)
                hydrate_cm.__enter__()
            shard = self._train_set.subset(self._population.shard_indices(cid))
            if self._flip_fraction > 0.0:
                from repro.robust.attacks import flip_labels, is_adversary

                if is_adversary(self._population.seed, cid, self._flip_fraction):
                    flip_labels(shard.y, self._num_classes)
            client = _client_cls()(
                cid,
                shard,
                self._batch_size,
                self._loader_rng(cid),
                flatten_inputs=self._flatten,
            )
            self._cache[cid] = client
            self.hydrations += 1
            while len(self._cache) > self._cache_size:
                evicted_cid, _ = self._cache.popitem(last=False)
                self.evictions += 1
                if obs is not None:
                    obs.tracer.instant("evict", cat="pop", cid=evicted_cid)
                    obs.metrics.counter("hydration", outcome="eviction").inc()
            # Peak is post-eviction steady state, so it never exceeds the
            # configured cache size.
            if len(self._cache) > self.peak_resident:
                self.peak_resident = len(self._cache)
            if obs is not None:
                hydrate_cm.__exit__(None, None, None)
                obs.metrics.counter("hydration", outcome="miss").inc()
                obs.metrics.gauge("resident_clients").set(len(self._cache))
            return client

    def observe(self, obs) -> None:
        """Attach an :class:`repro.obs.Obs` bundle (no-op when disabled).

        Forked process workers inherit the parent's pool copy-on-write; the
        parent's tracer would silently swallow worker-side appends, so the
        attachment is per-process state and workers report through
        :class:`~repro.exec.base.TaskResult` instead.
        """
        self._obs = obs if obs is not None and obs.enabled else None

    def stats(self) -> dict:
        """Cache accounting: hits/misses/evictions/resident/peak."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hydrations": self.hydrations,
                "resident": len(self._cache),
                "peak_resident": self.peak_resident,
                "cache_size": self._cache_size,
            }

    @property
    def resident(self) -> int:
        """Clients currently hydrated (≤ cache size)."""
        return len(self._cache)


class CompressorPool:
    """Lazy per-client compressors; hydrated once, retained forever."""

    def __init__(self, name: str, population: Population):
        self._name = str(name)
        self._population = population
        self._rngs = RngFactory(population.seed)
        self._counter_streams = population.partition is None
        self._pool: dict[int, object] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._population.num_clients

    def __iter__(self):
        return (self[cid] for cid in range(len(self)))

    def __getitem__(self, cid: int):
        cid = int(cid)
        if not 0 <= cid < len(self):
            raise IndexError(f"client id {cid} out of range [0, {len(self)})")
        with self._lock:
            comp = self._pool.get(cid)
            if comp is None:
                if self._counter_streams:
                    seed = self._rngs.counter("compressor", cid)
                else:
                    seed = self._rngs.child("compressor", cid)
                comp = make_compressor(self._name, seed=seed)
                self._pool[cid] = comp
            return comp

    @property
    def resident(self) -> int:
        """Compressors hydrated so far (ever-sampled clients)."""
        return len(self._pool)
