"""Struct-of-arrays client population: per-client scalars as numpy columns.

The simulator's client fleet used to be a ``list[Client]`` — one Python
object per participant holding a copied data shard, a batch-loader RNG and
(optionally) a compressor — so memory scaled with *fleet* size even though
only the round's sampled cohort ever trains. :class:`Population` replaces
the per-client objects with flat numpy columns:

====================  =====================================================
column                meaning
====================  =====================================================
``bandwidth_bps``     last-mile uplink bandwidth (paper Sec. 5.2 draw)
``latency_s``         last-mile latency
``s_per_sample``      local-training speed (lognormal around the median)
``data_sizes``        shard size ``n_k`` (drives FedAvg frequencies)
``available``         current availability mask (churn models write it)
``edge_of``           serving edge aggregator (−1 until a hierarchy binds)
====================  =====================================================

Samplers, availability models, BCRS planning and the round loop read these
columns vectorized; full :class:`~repro.fl.client.Client` objects are
*hydrated* on demand — only for the sampled cohort — by the pools in
:mod:`repro.population.hydration`. Memory is therefore O(active cohort) +
O(columns), not O(fleet) objects.

Two shard regimes:

- **partitioned** (``config.virtual_shards=False``): client shards exactly
  partition the training corpus via :class:`~repro.data.partition.
  Partition`, and the link/compute columns replay the historical draw
  order scalar-for-scalar — seeded runs reproduce the pre-population
  ``list[Client]`` histories bit-for-bit (``tests/population/`` pins this
  against frozen goldens).
- **virtual** (``virtual_shards=True``): the fleet can dwarf the corpus.
  Shard sizes are one vectorized draw; each client's shard *contents* are
  sampled from the corpus on hydration via the counter-based
  :meth:`~repro.utils.rng.RngFactory.counter` stream, so no index list is
  ever stored per client. Link columns are drawn vectorized too — this is
  what makes a million-client table construct in milliseconds.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.data.partition import Partition
from repro.network.cost import LinkSpec
from repro.network.links import LinkModel, PAPER_LINK_MODEL
from repro.simtime.profiles import ComputeSpec, DeviceProfile
from repro.utils.rng import RngFactory

__all__ = ["Population", "LinkColumns", "DeviceColumns", "SHARD_STREAM"]

#: Counter-based stream name for virtual shard contents (one Philox stream
#: per client id, reconstructible on any worker in any order).
SHARD_STREAM = "virtual-shard"


def _legacy_link_columns(
    num_clients: int, model: LinkModel, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Replay :func:`~repro.network.links.sample_links`'s exact draw order.

    One interleaved (normal, uniform) pair per client — the scalar sequence
    every pre-population golden history was recorded under. Ziggurat
    rejection sampling consumes a variable number of raw words per normal
    draw, so this interleaving cannot be vectorized without changing the
    values; fleets that need vectorized construction use the virtual regime.
    """
    bw = np.empty(num_clients, dtype=np.float64)
    lat = np.empty(num_clients, dtype=np.float64)
    for i in range(num_clients):
        spec = model.sample(rng)
        bw[i] = spec.bandwidth_bps
        lat[i] = spec.latency_s
    return bw, lat


def _fleet_link_columns(
    num_clients: int, model: LinkModel, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized link draws for virtual-shard fleets (same distributions,
    column-at-a-time order — new seeds, not the legacy scalar sequence)."""
    bw = np.maximum(
        rng.normal(model.bandwidth_mean_bps, model.bandwidth_std_bps, num_clients),
        model.bandwidth_floor_bps,
    )
    span = model.latency_high_s - model.latency_low_s
    lat = model.latency_high_s - rng.uniform(0.0, span, num_clients)
    return bw, lat


class LinkColumns(Sequence):
    """Sequence-of-:class:`LinkSpec` view over the (bandwidth, latency) columns.

    Indexing materializes one frozen ``LinkSpec`` on demand — cohort-sized
    consumers (``[links[i] for i in selected]``) stay cheap while nothing
    ever holds fleet-many link objects.
    """

    def __init__(self, bandwidth_bps: np.ndarray, latency_s: np.ndarray):
        self._bw = bandwidth_bps
        self._lat = latency_s

    def __len__(self) -> int:
        return len(self._bw)

    def __getitem__(self, i) -> LinkSpec:
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        return LinkSpec(bandwidth_bps=float(self._bw[i]), latency_s=float(self._lat[i]))


class DeviceColumns:
    """Lazy :class:`DeviceProfile` view over the compute + link columns."""

    def __init__(self, population: "Population"):
        self._pop = population

    def __len__(self) -> int:
        return self._pop.num_clients

    def __getitem__(self, cid: int) -> DeviceProfile:
        pop = self._pop
        return DeviceProfile(
            cid=int(cid),
            compute=ComputeSpec(
                s_per_sample=float(pop.s_per_sample[cid]),
                overhead_s=pop.compute_overhead_s,
            ),
            link=pop.links[cid],
        )

    def __iter__(self):
        return (self[cid] for cid in range(len(self)))


@dataclass
class Population:
    """The fleet as columns; see the module docstring for the regimes."""

    seed: int
    bandwidth_bps: np.ndarray
    latency_s: np.ndarray
    s_per_sample: np.ndarray
    data_sizes: np.ndarray
    compute_overhead_s: float = 0.0
    #: Shard source: a real corpus partition (legacy-exact), or ``None`` in
    #: the virtual regime where shards are drawn procedurally on hydration.
    partition: Partition | None = None
    #: Corpus size virtual shards draw from (ignored when partitioned).
    corpus_size: int = 0
    available: np.ndarray = field(default=None)  # type: ignore[assignment]
    edge_of: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        n = len(self.bandwidth_bps)
        for name in ("latency_s", "s_per_sample", "data_sizes"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name!r} has length {len(getattr(self, name))}, expected {n}")
        if self.partition is None and self.corpus_size < 1:
            raise ValueError("virtual populations need a positive corpus_size")
        if np.any(self.data_sizes < 1):
            raise ValueError("every client needs at least one sample")
        if self.available is None:
            self.available = np.ones(n, dtype=bool)
        if self.edge_of is None:
            self.edge_of = np.full(n, -1, dtype=np.int32)
        self._rngs = RngFactory(self.seed)
        self.links = LinkColumns(self.bandwidth_bps, self.latency_s)
        self.devices = DeviceColumns(self)

    # ------------------------------------------------------------- building

    @classmethod
    def from_config(
        cls,
        config,
        *,
        partition: Partition | None,
        link_model: LinkModel = PAPER_LINK_MODEL,
    ) -> "Population":
        """Assemble the population an ``ExperimentConfig`` describes.

        Streams consumed (all independent of each other and of every other
        engine stream): ``links`` for the link columns, ``compute`` for the
        speed column, plus — virtual regime only — ``shard-sizes`` for the
        size column. The partitioned regime replays the historical scalar
        draw order so pre-population histories are reproduced bit-for-bit.
        """
        rngs = RngFactory(config.seed)
        n = config.num_clients
        if config.virtual_shards:
            bw, lat = _fleet_link_columns(n, link_model, rngs.stream("links"))
            sizes = rngs.stream("shard-sizes").integers(
                config.virtual_shard_min, config.virtual_shard_max + 1, size=n
            )
        else:
            if partition is None:
                raise ValueError("partitioned populations need the corpus partition")
            bw, lat = _legacy_link_columns(n, link_model, rngs.stream("links"))
            sizes = partition.sizes()
        z = rngs.stream("compute").standard_normal(n)
        if config.virtual_shards:
            s_per_sample = config.compute_s_per_sample * np.exp(
                config.compute_heterogeneity * z
            )
        else:
            # Scalar np.exp, one client at a time — the historical
            # sample_device_profiles arithmetic. numpy's SIMD exp loop can
            # differ from the scalar path in the last ulp, which would break
            # bit-for-bit golden equivalence.
            s_per_sample = np.array(
                [
                    float(config.compute_s_per_sample * np.exp(config.compute_heterogeneity * z[i]))
                    for i in range(n)
                ],
                dtype=np.float64,
            )
        return cls(
            seed=config.seed,
            bandwidth_bps=np.asarray(bw, dtype=np.float64),
            latency_s=np.asarray(lat, dtype=np.float64),
            s_per_sample=np.asarray(s_per_sample, dtype=np.float64),
            data_sizes=np.asarray(sizes, dtype=np.int64),
            partition=partition if not config.virtual_shards else None,
            corpus_size=config.num_train if config.virtual_shards else 0,
        )

    # ------------------------------------------------------------- reading

    @property
    def num_clients(self) -> int:
        return len(self.bandwidth_bps)

    def sizes_of(self, ids) -> np.ndarray:
        """Float64 shard sizes of ``ids`` — the round loop's ``n_k`` reads,
        vectorized over the cohort without touching client objects."""
        return self.data_sizes[np.asarray(ids, dtype=np.int64)].astype(np.float64)

    def frequencies_of(self, ids) -> np.ndarray:
        """Normalized FedAvg frequencies ``f_i`` over the cohort ``ids``."""
        sizes = self.sizes_of(ids)
        return sizes / sizes.sum()

    def group_size(self, ids) -> int:
        """Total samples held by the clients in ``ids`` (edge-tier weights)."""
        return int(self.data_sizes[np.asarray(ids, dtype=np.int64)].sum())

    def shard_indices(self, cid: int) -> np.ndarray:
        """Corpus indices of client ``cid``'s shard.

        Partitioned: the stored partition row. Virtual: ``data_sizes[cid]``
        draws (with replacement) from the corpus via the client's
        counter-based stream — recomputed identically on every hydration,
        on any worker, in any order.
        """
        if self.partition is not None:
            return self.partition.client_indices[cid]
        rng = self._rngs.counter(SHARD_STREAM, int(cid))
        return rng.integers(0, self.corpus_size, size=int(self.data_sizes[cid]))

    def available_ids(self) -> np.ndarray:
        """Ids currently marked available (sorted, vectorized)."""
        return np.flatnonzero(self.available)

    def bind_edges(self, groups: Sequence[Sequence[int]]) -> None:
        """Record the hierarchy's client→edge assignment in the ``edge_of``
        column (vectorized lookups for per-edge cohort slicing)."""
        for e, group in enumerate(groups):
            self.edge_of[np.asarray(group, dtype=np.int64)] = e

    def memory_bytes(self) -> int:
        """Total bytes held by the numpy columns (the O(fleet) footprint)."""
        cols = (
            self.bandwidth_bps,
            self.latency_s,
            self.s_per_sample,
            self.data_sizes,
            self.available,
            self.edge_of,
        )
        return int(sum(c.nbytes for c in cols))
