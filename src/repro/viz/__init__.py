"""Terminal visualization (ASCII charts) for curves and breakdowns."""

from repro.viz.ascii import ascii_bars, ascii_plot, ascii_tier_tree, ascii_timeline

__all__ = ["ascii_plot", "ascii_bars", "ascii_timeline", "ascii_tier_tree"]
