"""Terminal visualization (ASCII charts) for curves and breakdowns."""

from repro.viz.ascii import ascii_bars, ascii_plot

__all__ = ["ascii_plot", "ascii_bars"]
