"""Terminal plotting: multi-series line charts and bar charts in ASCII.

No matplotlib in this environment, so the figure benches and CLI render
curves as text. Deterministic output makes the charts testable.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ascii_plot",
    "ascii_bars",
    "ascii_timeline",
    "ascii_tier_tree",
    "ascii_comm_table",
    "ascii_sweep_grid",
]

_MARKERS = "abcdefghijklmnopqrstuvwxyz"


def ascii_plot(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    *,
    width: int = 70,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series on a shared-axis character grid.

    Each series gets a letter marker; later series overwrite earlier ones on
    collisions. Returns the chart plus a legend.
    """
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(_MARKERS):
        raise ValueError(f"too many series ({len(series)} > {len(_MARKERS)})")
    if width < 10 or height < 4:
        raise ValueError("width must be >= 10 and height >= 4")

    xs_all = np.concatenate([np.asarray(x, dtype=np.float64) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=np.float64) for _, y in series.values()])
    if xs_all.size == 0:
        raise ValueError("series are empty")
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    y_lo, y_hi = float(ys_all.min()), float(ys_all.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for marker, (name, (x, y)) in zip(_MARKERS, series.items()):
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape:
            raise ValueError(f"series {name!r}: x/y length mismatch")
        cols = np.clip(((x - x_lo) / (x_hi - x_lo) * (width - 1)).round().astype(int), 0, width - 1)
        rows = np.clip(((y - y_lo) / (y_hi - y_lo) * (height - 1)).round().astype(int), 0, height - 1)
        for r, c in zip(rows, cols):
            grid[height - 1 - r][c] = marker
        legend.append(f"  {marker} = {name}")

    top = f"{y_hi:.3g} ┤"
    bottom = f"{y_lo:.3g} ┤"
    pad = max(len(top), len(bottom))
    lines = []
    for i, row in enumerate(grid):
        prefix = top if i == 0 else (bottom if i == height - 1 else " " * (pad - 1) + "│")
        lines.append(prefix.rjust(pad) + "".join(row))
    lines.append(" " * (pad - 1) + "└" + "─" * width)
    lines.append(" " * pad + f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}")
    lines.append(f"{y_label} vs {x_label}")
    lines.extend(legend)
    return "\n".join(lines)


#: Timeline glyph per span kind; later spans overwrite earlier on collision.
_SPAN_GLYPHS = {"train": "█", "upload": "░"}


def ascii_timeline(
    spans,
    *,
    t0: float | None = None,
    t1: float | None = None,
    width: int = 72,
) -> str:
    """Per-client activity timeline from the scheduler's span log.

    ``spans`` is an iterable of :class:`repro.simtime.events.ClientSpan`
    (or anything with ``cid``/``kind``/``start``/``end``); one row per
    client, ``█`` while training, ``░`` while uploading — making stragglers,
    async re-dispatch cadence, and semi-sync deadline cuts visible at a
    glance. ``[t0, t1]`` crops the window (default: the spans' extent).
    """
    spans = list(spans)
    if not spans:
        raise ValueError("need at least one span")
    if width < 10:
        raise ValueError("width must be >= 10")
    lo = min(s.start for s in spans) if t0 is None else float(t0)
    hi = max(s.end for s in spans) if t1 is None else float(t1)
    if hi <= lo:
        hi = lo + 1.0

    cids = sorted({s.cid for s in spans})
    scale = width / (hi - lo)
    rows = {cid: [" "] * width for cid in cids}
    for s in spans:
        glyph = _SPAN_GLYPHS.get(s.kind, "?")
        if s.end < lo or s.start > hi:
            continue
        a = max(int((max(s.start, lo) - lo) * scale), 0)
        b = min(int(np.ceil((min(s.end, hi) - lo) * scale)), width)
        if s.end > s.start and b <= a:  # sub-cell span: still show one cell
            b = min(a + 1, width)
        for c in range(a, b):
            rows[s.cid][c] = glyph
    label_w = len(f"c{cids[-1]}")
    lines = [f"c{cid}".rjust(label_w) + " │" + "".join(row) + "│" for cid, row in rows.items()]
    lines.append(" " * label_w + " └" + "─" * width)
    lines.append(
        " " * (label_w + 2) + f"{lo:.3g}s".ljust(width - 8) + f"{hi:.3g}s"
    )
    lines.append("█ train   ░ upload")
    return "\n".join(lines)


def _fmt_bps(bps: float) -> str:
    """Human bandwidth: 1.2Mb/s, 100Mb/s, 2.5Gb/s."""
    if bps >= 1e9:
        return f"{bps / 1e9:.3g}Gb/s"
    if bps >= 1e6:
        return f"{bps / 1e6:.3g}Mb/s"
    return f"{bps / 1e3:.3g}kb/s"


def ascii_tier_tree(topology, breakdown=None) -> str:
    """Render a cloud → edges → clients tier tree with per-tier timings.

    ``topology`` is a :class:`repro.hier.topology.TierTopology` (duck typed:
    ``groups``, ``client_links``, ``backhaul_links``). ``breakdown`` is the
    optional per-edge timing of one cloud round — an iterable of
    :class:`repro.fl.history.EdgeRecord` (``edge``/``sub_spans``/
    ``backhaul_s``/``end``), as carried by hierarchical round records — and
    adds each edge's sub-round spans and backhaul time next to its links.
    """
    by_edge = {} if breakdown is None else {b.edge: b for b in breakdown}
    lines = ["cloud"]
    num_edges = len(topology.groups)
    for e, group in enumerate(topology.groups):
        last_edge = e == num_edges - 1
        stem = "└─" if last_edge else "├─"
        link = topology.backhaul_links[e]
        backhaul = (
            "free backhaul"
            if link is None
            else f"backhaul {_fmt_bps(link.bandwidth_bps)} {link.latency_s * 1e3:.3g}ms"
        )
        timing = ""
        if e in by_edge:
            b = by_edge[e]
            spans = " ".join(f"{s:.3g}s" for s in b.sub_spans)
            timing = f"   sub-rounds [{spans}]  backhaul {b.backhaul_s:.3g}s  done {b.end:.3g}s"
        lines.append(f" {stem} edge {e}   {backhaul}{timing}")
        trunk = "    " if last_edge else " │  "
        for j, cid in enumerate(group):
            leaf = "└─" if j == len(group) - 1 else "├─"
            cl = topology.client_links[cid]
            lines.append(
                f"{trunk}{leaf} c{cid}  {_fmt_bps(cl.bandwidth_bps)} "
                f"{cl.latency_s * 1e3:.3g}ms"
            )
    return "\n".join(lines)


def _fmt_bytes(n: float) -> str:
    """Human volume: 512B, 24.2kB, 1.5MB, 2.1GB."""
    for cut, suffix in ((1e9, "GB"), (1e6, "MB"), (1e3, "kB")):
        if n >= cut:
            return f"{n / cut:.3g}{suffix}"
    return f"{n:.3g}B"


def ascii_comm_table(history, *, top: int = 5) -> str:
    """End-to-end flow accounting table from a run's transport ledgers.

    ``history`` is duck-typed: an object with ``records`` whose entries
    carry a :class:`~repro.fl.history.RoundComm` in ``comm`` (None entries
    — legacy histories — are skipped). One row per direction (wire bytes,
    transfer count, share of the total), plus the ``top`` clients by
    accumulated uplink bytes — the devices actually paying for the run.
    """
    totals = {"uplink": 0.0, "downlink": 0.0, "backhaul": 0.0}
    counts = {"uplink": 0, "downlink": 0, "backhaul": 0}
    per_client: dict[int, float] = {}
    rounds = 0
    for r in history.records:
        comm = r.comm
        if comm is None:
            continue
        rounds += 1
        for direction in totals:
            entries = getattr(comm, direction)
            totals[direction] += sum(b for _, b in entries) / 8.0
            counts[direction] += len(entries)
        for cid, bits in comm.uplink:
            per_client[cid] = per_client.get(cid, 0.0) + bits / 8.0
    if rounds == 0:
        return "(no flow ledgers recorded)"

    grand = sum(totals.values()) or 1.0
    headers = ["direction", "transfers", "bytes", "share", "per round"]
    rows = [
        [
            d,
            str(counts[d]),
            _fmt_bytes(totals[d]),
            f"{100.0 * totals[d] / grand:.1f}%",
            _fmt_bytes(totals[d] / rounds),
        ]
        for d in ("uplink", "downlink", "backhaul")
    ]
    rows.append(
        ["total", str(sum(counts.values())), _fmt_bytes(sum(totals.values())), "100.0%",
         _fmt_bytes(sum(totals.values()) / rounds)]
    )
    widths = [max(len(h), max(len(r[i]) for r in rows)) for i, h in enumerate(headers)]

    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = [fmt(headers), "  ".join("-" * w for w in widths)] + [fmt(r) for r in rows]
    if per_client:
        talkers = sorted(per_client.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        lines.append(
            "top uplink clients: "
            + "  ".join(f"c{cid} {_fmt_bytes(v)}" for cid, v in talkers)
        )
    return "\n".join(lines)


def ascii_sweep_grid(
    report,
    x_axis: str,
    y_axis: str,
    *,
    metric: str = "final",
) -> str:
    """Render a 2-axis sweep as a value grid: rows = ``y_axis``, columns =
    ``x_axis``, each cell the mean accuracy over every other axis and seed.

    ``report`` is a :class:`~repro.scenarios.report.SweepReport` (duck
    typed: ``cells`` of ``(spec, history)``). ``metric`` is ``"final"`` or
    ``"best"``. Cells with no data render ``--``; a shaded mini-bar next to
    each value makes the gradient visible without color.
    """
    if metric not in ("final", "best"):
        raise ValueError(f"metric must be 'final' or 'best', got {metric!r}")
    acc: dict[tuple, list[float]] = {}
    xs: dict[object, None] = {}
    ys: dict[object, None] = {}
    for spec, history in report.cells:
        if x_axis not in spec.axes or y_axis not in spec.axes:
            continue
        try:
            value = history.final_accuracy() if metric == "final" else history.best_accuracy()
        except ValueError:
            continue
        x, y = spec.axes[x_axis], spec.axes[y_axis]
        xs.setdefault(x)
        ys.setdefault(y)
        acc.setdefault((x, y), []).append(value)
    if not acc:
        raise ValueError(f"no cells carry both axes {x_axis!r} and {y_axis!r}")

    means = {k: sum(v) / len(v) for k, v in acc.items()}
    lo, hi = min(means.values()), max(means.values())
    span = (hi - lo) or 1.0
    shades = " ░▒▓█"

    def cell(x, y) -> str:
        m = means.get((x, y))
        if m is None:
            return "--"
        shade = shades[int(round((m - lo) / span * (len(shades) - 1)))]
        return f"{m:.4f} {shade}"

    headers = [f"{y_axis} \\ {x_axis}"] + [str(x) for x in xs]
    rows = [[str(y)] + [cell(x, y) for x in xs] for y in ys]
    widths = [max(len(h), max(len(r[i]) for r in rows)) for i, h in enumerate(headers)]

    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = [fmt(headers), "  ".join("-" * w for w in widths)] + [fmt(r) for r in rows]
    lines.append(f"mean {metric} accuracy; shade spans [{lo:.4f}, {hi:.4f}]")
    return "\n".join(lines)


def ascii_bars(values: dict[str, float], *, width: int = 50, unit: str = "") -> str:
    """Horizontal bar chart for labelled scalars (the Fig. 6 style)."""
    if not values:
        raise ValueError("need at least one value")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar values must be >= 0")
    peak = max(values.values()) or 1.0
    label_w = max(len(k) for k in values)
    lines = []
    for k, v in values.items():
        bar = "█" * int(round(v / peak * width))
        lines.append(f"{k.ljust(label_w)}  {bar} {v:.3g}{unit}")
    return "\n".join(lines)
