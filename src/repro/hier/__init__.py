"""Hierarchical cloud–edge–client federation.

- :mod:`repro.hier.topology` — :class:`TierTopology`: cloud → E edge
  aggregators → clients, with distinct per-tier link draws (last-mile
  client↔edge links vs. edge↔cloud backhaul);
- :mod:`repro.hier.simulation` — :class:`HierSimulation`: K₁ client↔edge
  sub-rounds per cloud round, per-edge BCRS/OPWA aggregation, backhaul
  uploads priced on the virtual clock, two-level (edge then cloud) FedAvg.

Select with ``ExperimentConfig(mode="hier", num_edges=...)`` and build via
:func:`repro.simtime.make_simulation`. The defaults (one edge, one
sub-round, free backhaul) reproduce the flat protocol bit-for-bit.
"""

from __future__ import annotations

from repro.hier.topology import (
    TierTopology,
    assign_edges,
    build_tier_topology,
    sample_backhaul_links,
)

__all__ = [
    "TierTopology",
    "assign_edges",
    "build_tier_topology",
    "sample_backhaul_links",
    "HierSimulation",
]


def __getattr__(name):
    # HierSimulation subclasses repro.fl.simulation.Simulation; lazy import
    # keeps ``import repro.hier`` cheap and acyclic (same pattern as
    # repro.simtime's protocol classes).
    if name == "HierSimulation":
        from repro.hier.simulation import HierSimulation

        return HierSimulation
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
