"""Hierarchical cloud–edge–client federation (mode="hier").

One *cloud round* of :class:`HierSimulation`:

1. every edge runs ``K₁ = edge_rounds`` client↔edge sub-rounds: it samples
   clients from its own group, the algorithm plans ratios/coefficients over
   the group's last-mile links — so **BCRS schedules against each edge
   group's own slowest member**, not the global straggler — clients train
   from the edge model, and the edge aggregates with the overlap/OPWA
   machinery scoped to its group (per-edge server optimizer);
2. each edge then uploads its model over its backhaul link, and the cloud
   averages the edge models by group data size (two-level aggregation, the
   HierFAVG discipline);
3. the whole round is priced on the virtual clock: edges advance in
   parallel, each sub-round's barrier is the group's slowest aggregated
   member (``edge_sync="sync"``) or a deadline-quantile cut that drops
   stragglers (``edge_sync="semisync"``), and the cloud waits for the
   slowest edge's backhaul upload.

Degenerate-equivalence contract: with ``num_edges=1``, ``edge_rounds=1``
and a free backhaul (the config defaults), every round record is
**bit-for-bit identical** to the flat :class:`~repro.fl.simulation.
Simulation` under the same seed — same selections, losses, times, weights,
and virtual spans. ``tests/hier/`` enforces this, along with the usual
contract that seeded runs are bit-identical across execution backends.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedUpdate, SparseUpdate
from repro.exec import ClientTask
from repro.fl.config import ExperimentConfig
from repro.fl.history import EdgeRecord, RoundComm, RoundRecord
from repro.fl.simulation import Simulation
from repro.hier.topology import TierTopology, build_tier_topology
from repro.network.metrics import RoundTimes
from repro.network.transport import Payload
from repro.utils.rng import RngFactory

__all__ = ["HierSimulation"]

#: Deadline-inclusion tolerance for semi-sync edge sub-rounds (a client
#: finishing exactly at the cut, up to float rounding, still makes it).
_EPS = 1e-9


class HierSimulation(Simulation):
    """Two-tier federated rounds: per-edge sub-rounds + cloud averaging."""

    #: ``last_round_updates`` accumulates across every (edge, sub-round)
    #: pair of a cloud round; one double-buffered bank per plan would be
    #: overwritten mid-round, so hier compressors keep allocating. (The
    #: arena's aggregation-side buffers are still used, per edge.)
    _arena_compress = False

    def __init__(self, config: ExperimentConfig, obs=None, context=None):
        super().__init__(config, obs=obs, context=context)
        if self.faults is not None:
            # Client-uplink faults assume the flat server ingress; the
            # hierarchical failure model is the edge aggregator itself.
            raise ValueError(
                "drop_prob/truncate_prob are not supported in hier mode — "
                "edge failures are modeled by edge_crash_prob"
            )
        rngs = RngFactory(config.seed)
        # Edge-crash fates draw from a dedicated counter stream keyed by
        # (cloud round, edge) — stateless, so zero probability means zero
        # draws and the degenerate-equivalence contract is untouched.
        self._crash_rngs = rngs
        self.topology: TierTopology = build_tier_topology(config, self.links, rngs)
        # One server optimizer per edge (identical hyperparameters); its
        # state (momentum/Adam moments) persists across cloud rounds.
        self.edge_opts = [self._make_server_opt() for _ in self.topology.groups]
        # Record the client→edge assignment in the population table, and
        # weight the cloud tier by each group's data — summed from the size
        # column, so a fleet-scale hierarchy never hydrates clients here.
        self.population.bind_edges(self.topology.groups)
        sizes = np.array(
            [self.population.group_size(group) for group in self.topology.groups],
            dtype=np.float64,
        )
        self.edge_freqs = sizes / sizes.sum()

    # ------------------------------------------------------------ sub-round

    def _sample_group(self, group: tuple[int, ...]) -> np.ndarray:
        """Fraction-C uniform selection within one edge group.

        All edges draw from the *flat sampler's* stream in (sub-round, edge)
        order; with one edge spanning every client this consumes the stream
        exactly like the flat protocol — the degenerate contract's hinge.
        """
        k = max(1, int(round(len(group) * self.config.participation)))
        ids = self.sampler.rng.choice(len(group), size=k, replace=False)
        return np.sort(np.asarray(group)[ids])

    def _edge_sub_round(self, edge: int, t_start: float):
        """One client↔edge sub-round: sample, plan, train, aggregate.

        Returns (sub-round virtual span, plan times, record fragments).
        ``t_start`` is the edge's current position on the virtual clock;
        client spans are logged there.
        """
        cfg = self.config
        group = self.topology.groups[edge]
        selected = self._sample_group(group)
        sel_links = [self.links[i] for i in selected]

        sizes = self.population.sizes_of(selected)
        freqs = sizes / sizes.sum()
        # BCRS benchmarks against this group's own slowest member.
        plan = self.algorithm.plan(sel_links, freqs, self.volume_bits)

        tasks = [
            ClientTask(
                position=pos,
                cid=int(cid),
                ratio=None if plan.ratios is None else float(plan.ratios[pos]),
            )
            for pos, cid in enumerate(selected)
        ]
        results = self._run_tasks(
            tasks, self._edge_params[edge], self._edge_states[edge], self._train_spec
        )
        updates: list[CompressedUpdate] = [r.update for r in results]

        # Price every dispatch at the edge's clock through the transport:
        # payload-accurate uploads, and under fair contention one shared
        # ingress epoch per (edge, sub-round) — each edge aggregator owns
        # its own ingress capacity.
        durs, up_bits, down_bits = self._price_round(
            selected, plan.ratios, updates, t_start, tag=self.round_index
        )
        durations = np.array(durs)

        weights = np.asarray(plan.weights, dtype=np.float64)
        if cfg.edge_sync == "semisync" and len(selected) > 1:
            # The edge closes at ``deadline_s`` (or, unset, at the deadline
            # quantile of its members' pipeline times); stragglers are
            # dropped from this sub-round. Unlike the flat semisync mode
            # there is no carryover: lock-step sub-rounds have no later
            # window for a stale arrival to join, so ``late_policy`` does
            # not apply at the edges.
            deadline = (
                float(cfg.deadline_s)
                if cfg.deadline_s is not None
                else float(np.quantile(durations, cfg.deadline_quantile))
            )
            arrived = durations <= deadline + _EPS
            w = weights * arrived
            if w.sum() == 0.0:
                # Every planned contributor missed the cut: extend to the
                # fastest *planned* member rather than resurrect an update
                # the plan deliberately zero-weighted (deadline_topk drops).
                planned = np.flatnonzero(weights > 0)
                pool = planned if planned.size else np.arange(len(selected))
                fastest = int(pool[np.argmin(durations[pool])])
                w = np.zeros_like(weights)
                w[fastest] = 1.0
                arrived[fastest] = True
            weights = w / w.sum()
            used = [pos for pos in range(len(selected)) if weights[pos] > 0]
            span = max(deadline, max(durations[pos] for pos in used))
            agg_updates = [updates[pos] for pos in used]
            agg_weights = weights[used]
            state_freqs = freqs[arrived] / freqs[arrived].sum()
            state_arrays = [r.state_arrays for r, a in zip(results, arrived) if a]
        else:
            # Lock-step barrier at the group's slowest *aggregated* member
            # (plan-dropped stragglers still burn device time but are not
            # waited on) — the flat protocol's semantics, scoped to a group.
            span = max(
                (durations[pos] for pos in range(len(selected)) if weights[pos] > 0),
                default=0.0,
            )
            agg_updates = updates
            agg_weights = weights
            state_freqs = freqs
            state_arrays = [r.state_arrays for r in results]

        self._edge_params[edge], singleton = self._aggregate_into(
            self._edge_params[edge],
            self.edge_opts[edge],
            agg_updates,
            agg_weights,
            plan.use_opwa,
        )
        if self._edge_states[edge]:
            self._average_states_into(self._edge_states[edge], state_freqs, state_arrays)

        realized = (
            tuple(float(u.density) for u in updates if isinstance(u, SparseUpdate))
            if plan.ratios is not None
            else tuple(1.0 for _ in updates)
        )
        fragments = {
            "selected": tuple(int(i) for i in selected),
            "weights": tuple(float(w) for w in weights),
            "ratios": realized,
            "losses": [r.mean_loss for r in results],
            "train_seconds": sum(r.train_seconds for r in results),
            "compress_seconds": sum(r.compress_seconds for r in results),
            "singleton": singleton,
            "updates": updates,
            "up_bits": up_bits,
            "down_bits": down_bits,
        }
        return float(span), plan.times, fragments

    # ------------------------------------------------------------------ round

    def run_round(self) -> RoundRecord:
        """One cloud round: K₁ sub-rounds per edge, then cloud averaging."""
        with self.obs.tracer.span("round", cat="sim", round=self.round_index):
            record = self._cloud_round()
        if self.obs.enabled:
            self._observe_round_end()
        return record

    def _cloud_round(self) -> RoundRecord:
        cfg = self.config
        E = self.topology.num_edges
        if self._varying is not None:
            self.links = [tv.step() for tv in self._varying]

        sim_start = self.sim_clock
        # Edge-aggregator crash events: each edge fails this cloud round
        # with probability edge_crash_prob, decided by a counter-RNG draw
        # keyed on (round, edge). A crashed edge runs no sub-rounds and
        # sends no backhaul; the cloud reweights the survivors' models.
        crashed = [False] * E
        if cfg.edge_crash_prob > 0.0:
            crashed = [
                float(
                    self._crash_rngs.counter(
                        f"edge-crash-{self.round_index}", e
                    ).random()
                )
                < cfg.edge_crash_prob
                for e in range(E)
            ]
        alive = [e for e in range(E) if not crashed[e]]

        # Every edge starts from this round's global model.
        self._edge_params = [self.global_params.copy() for _ in range(E)]
        self._edge_states = [
            [a.copy() for a in self.global_states] for _ in range(E)
        ]

        # Cloud→edge broadcast opens the round (charged only when downlink
        # accounting is on, mirroring the client tier). Backhaul links are
        # provisioned symmetric, so no residential downlink factor; the
        # broadcast is exclusive (contention models the shared *ingress*).
        dense_model = Payload.dense(self.volume_bits)
        backhaul_down = [
            self.transport.broadcast_seconds(self.topology.backhaul_links[e], dense_model)
            if cfg.include_downlink and not crashed[e]
            else 0.0
            for e in range(E)
        ]
        elapsed = list(backhaul_down)  # per-edge virtual time since sim_start
        sub_spans: list[list[float]] = [[] for _ in range(E)]
        actual_sum = [0.0] * E
        max_sum = [0.0] * E
        min_sum = [0.0] * E
        down_sum = [0.0] * E
        selected_all: list[int] = []
        weights_all: list[float] = []
        ratios_all: list[float] = []
        losses_all: list[float] = []
        singletons: list[float] = []
        edge_selected: list[list[int]] = [[] for _ in range(E)]
        train_seconds = compress_seconds = 0.0
        round_updates: list[CompressedUpdate] = []
        up_map: dict[int, float] = {}
        down_map: dict[int, float] = {}

        # Sub-rounds advance lock-step across edges only in *stream order*:
        # edges are independent in virtual time (each has its own clock),
        # but the (sub-round, edge) iteration fixes the sampling sequence.
        for _k in range(cfg.edge_rounds):
            for e in range(E):
                if crashed[e]:
                    continue
                with self.obs.tracer.span(
                    "hier.subround", cat="hier", edge=e, sub_round=_k
                ):
                    span, times, frag = self._edge_sub_round(e, sim_start + elapsed[e])
                elapsed[e] += span
                sub_spans[e].append(span)
                actual_sum[e] += times.actual
                max_sum[e] += times.maximum
                min_sum[e] += times.minimum
                down_sum[e] += times.downlink
                selected_all.extend(frag["selected"])
                edge_selected[e].extend(frag["selected"])
                weights_all.extend(frag["weights"])
                ratios_all.extend(frag["ratios"])
                losses_all.extend(frag["losses"])
                if frag["singleton"] is not None:
                    singletons.append(frag["singleton"])
                train_seconds += frag["train_seconds"]
                compress_seconds += frag["compress_seconds"]
                round_updates.extend(frag["updates"])
                for cid, bits in zip(frag["selected"], frag["up_bits"]):
                    up_map[cid] = up_map.get(cid, 0.0) + bits
                for cid, bits in zip(frag["selected"], frag["down_bits"]):
                    down_map[cid] = down_map.get(cid, 0.0) + bits
        self.last_round_updates = round_updates

        # Edge→cloud uploads (dense edge models over the backhaul), then the
        # cloud averages edge models by group data size — two-level FedAvg.
        # Under fair contention the E backhaul uploads share the *cloud's*
        # ingress capacity (one water-filled epoch per cloud round).
        if self.transport.contended:
            billed = [
                (e, self.topology.backhaul_links[e])
                for e in alive
                if self.topology.backhaul_links[e] is not None
            ]
            with self.obs.tracer.span("hier.backhaul", cat="hier", edges=len(billed)):
                recs = self.transport.resolve_uploads(
                    [(dense_model, link, sim_start + elapsed[e]) for e, link in billed],
                    direction="backhaul",
                )
            backhaul_up = [0.0] * E
            for (e, _), rec in zip(billed, recs):
                backhaul_up[e] = rec.seconds
        else:
            backhaul_up = [
                self.topology.backhaul_uplink_time(e, self.volume_bits)
                if not crashed[e]
                else 0.0
                for e in range(E)
            ]
        edge_totals = [elapsed[e] + backhaul_up[e] for e in range(E)]

        backhaul_map: dict[int, float] = {}
        for e in alive:
            if self.topology.backhaul_links[e] is not None:
                backhaul_map[e] = self.volume_bits * (2.0 if cfg.include_downlink else 1.0)

        # Cloud merge over the surviving edges, reweighted by their share of
        # the data. The no-crash path keeps edge_freqs bit-for-bit (no
        # renormalization); an all-crashed round leaves the model unchanged.
        if len(alive) == E:
            freqs_alive = self.edge_freqs
        elif alive:
            freqs_alive = self.edge_freqs[alive]
            freqs_alive = freqs_alive / freqs_alive.sum()
        if alive:
            merged = [self.global_params]  # the edge tier's averaging kernel,
            self._average_states_into(  # applied once at the cloud tier
                merged, freqs_alive, [[self._edge_params[e]] for e in alive]
            )
            self.global_params = merged[0]
            if self.global_states:
                self._average_states_into(
                    self.global_states,
                    freqs_alive,
                    [self._edge_states[e] for e in alive],
                )

        if self._should_evaluate():
            with self.obs.tracer.span("evaluate", cat="sim"):
                test_acc = self.evaluate()
        else:
            test_acc = None

        backhaul_s = [backhaul_up[e] + backhaul_down[e] for e in range(E)]
        if alive:
            times = RoundTimes(
                actual=max(actual_sum[e] + backhaul_s[e] for e in alive),
                maximum=max(max_sum[e] + backhaul_s[e] for e in alive),
                minimum=min(min_sum[e] + backhaul_s[e] for e in alive),
                downlink=max(down_sum[e] + backhaul_down[e] for e in alive),
            )
        else:
            times = RoundTimes(0.0, 0.0, 0.0, 0.0)
        round_span = max(edge_totals)
        self.sim_clock = sim_start + round_span

        breakdown = tuple(
            EdgeRecord(
                edge=e,
                selected=tuple(edge_selected[e]),
                sub_spans=tuple(sub_spans[e]),
                backhaul_s=backhaul_s[e],
                start=sim_start,
                end=sim_start + edge_totals[e],
            )
            for e in range(E)
        )
        record = RoundRecord(
            round_index=self.round_index,
            selected=tuple(selected_all),
            train_loss=float(np.mean(losses_all)) if losses_all else 0.0,
            test_accuracy=test_acc,
            times=times,
            ratios=tuple(ratios_all),
            weights=tuple(weights_all),
            singleton_fraction=float(np.mean(singletons)) if singletons else None,
            train_seconds=train_seconds,
            compress_seconds=compress_seconds,
            sim_start=sim_start,
            sim_end=self.sim_clock,
            mean_staleness=0.0,
            edge_breakdown=breakdown,
            comm=RoundComm.from_maps(
                uplink=up_map, downlink=down_map, backhaul=backhaul_map
            ),
            num_participants=(
                len(selected_all) if cfg.edge_crash_prob > 0.0 else None
            ),
        )
        self.history.append(record)
        self.round_index += 1
        return record
