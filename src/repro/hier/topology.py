"""Multi-tier topology: cloud → edge aggregators → clients.

Production FL deployments rarely talk last-mile links directly into a
datacenter: clients attach to an *edge aggregator* (base station, campus
gateway, regional PoP) over heterogeneous last-mile links, and the edges
reach the cloud over a much fatter — but not free — backhaul. The
:class:`TierTopology` captures both tiers with distinct per-tier
:class:`~repro.network.cost.LinkSpec` draws:

- **client↔edge**: the per-client last-mile links (paper Sec. 5.2 model);
- **edge↔cloud**: per-edge backhaul links drawn lognormally around a
  configured median, or ``None`` for a *free* backhaul (zero transfer time
  — the degenerate configuration under which the hierarchical protocol
  reduces exactly to the flat one).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.network.cost import LinkSpec, downlink_time, uplink_time
from repro.utils.rng import as_generator

__all__ = ["TierTopology", "assign_edges", "sample_backhaul_links", "build_tier_topology"]

MBIT = 1e6  # bits per Mbit


def assign_edges(
    num_clients: int,
    num_edges: int,
    mode: str = "contiguous",
    *,
    links: Sequence[LinkSpec] | None = None,
    seed: int | np.random.Generator = 0,
) -> tuple[tuple[int, ...], ...]:
    """Partition client ids into ``num_edges`` non-empty groups.

    - ``"contiguous"``: ids split into consecutive chunks (deterministic,
      the degenerate-friendly default);
    - ``"random"``: a seeded permutation split into chunks — models
      geography-independent placement;
    - ``"bandwidth"``: clients sorted by last-mile bandwidth then chunked,
      so each edge serves a homogeneous bandwidth class (requires ``links``)
      — the placement that maximizes what per-edge BCRS can recover, since
      each group's benchmark client is close to its peers.

    Groups are internally sorted by client id.
    """
    if not 1 <= num_edges <= num_clients:
        raise ValueError(
            f"need 1 <= num_edges <= num_clients, got {num_edges} of {num_clients}"
        )
    if mode == "contiguous":
        order = np.arange(num_clients)
    elif mode == "random":
        order = as_generator(seed).permutation(num_clients)
    elif mode == "bandwidth":
        if links is None:
            raise ValueError("edge_assignment='bandwidth' needs the client links")
        if len(links) != num_clients:
            raise ValueError(f"{len(links)} links for {num_clients} clients")
        # Stable sort keeps equal-bandwidth ties in id order (deterministic).
        order = np.argsort([l.bandwidth_bps for l in links], kind="stable")
    else:
        raise ValueError(f"unknown edge assignment {mode!r}")
    return tuple(
        tuple(int(c) for c in np.sort(chunk))
        for chunk in np.array_split(order, num_edges)
    )


def sample_backhaul_links(
    num_edges: int,
    *,
    bandwidth_mbps: float | None,
    latency_s: float = 0.0,
    heterogeneity: float = 0.0,
    seed: int | np.random.Generator = 0,
) -> tuple[LinkSpec | None, ...]:
    """Draw one edge↔cloud link per edge (``None`` bandwidth = free tier).

    Bandwidth and latency are lognormal around the configured *medians*
    (``heterogeneity`` is the sigma; 0 = identical backhauls), mirroring the
    client-tier compute sampling discipline: drawn once, from a dedicated
    stream.
    """
    if num_edges < 1:
        raise ValueError(f"num_edges must be >= 1, got {num_edges}")
    if bandwidth_mbps is None:
        return tuple(None for _ in range(num_edges))
    rng = as_generator(seed)
    z = rng.standard_normal((num_edges, 2))
    return tuple(
        LinkSpec(
            bandwidth_bps=float(bandwidth_mbps * MBIT * np.exp(heterogeneity * z[e, 0])),
            latency_s=float(latency_s * np.exp(heterogeneity * z[e, 1])),
        )
        for e in range(num_edges)
    )


@dataclass(frozen=True)
class TierTopology:
    """Cloud at the root, ``E`` edges, each serving a group of clients.

    ``groups[e]`` are the sorted client ids attached to edge ``e``;
    ``client_links[c]`` is client ``c``'s last-mile (client↔edge) link;
    ``backhaul_links[e]`` is edge ``e``'s edge↔cloud link, or ``None`` for a
    free backhaul whose transfers cost exactly zero virtual seconds.
    """

    groups: tuple[tuple[int, ...], ...]
    client_links: tuple[LinkSpec, ...]
    backhaul_links: tuple[LinkSpec | None, ...]

    def __post_init__(self):
        if not self.groups:
            raise ValueError("need at least one edge group")
        if len(self.backhaul_links) != len(self.groups):
            raise ValueError(
                f"{len(self.backhaul_links)} backhaul links for {len(self.groups)} edges"
            )
        seen: list[int] = sorted(c for g in self.groups for c in g)
        if any(not g for g in self.groups):
            raise ValueError("every edge must serve at least one client")
        if seen != list(range(len(self.client_links))):
            raise ValueError("groups must partition the client id range exactly once")

    @property
    def num_edges(self) -> int:
        return len(self.groups)

    @property
    def num_clients(self) -> int:
        return len(self.client_links)

    def edge_of(self, cid: int) -> int:
        """The edge serving client ``cid``."""
        for e, g in enumerate(self.groups):
            if cid in g:
                return e
        raise KeyError(f"client {cid} is in no edge group")

    def backhaul_uplink_time(self, edge: int, volume_bits: float) -> float:
        """Edge→cloud transfer time of a dense ``volume_bits`` payload."""
        link = self.backhaul_links[edge]
        return 0.0 if link is None else uplink_time(link, volume_bits)

    def backhaul_downlink_time(
        self, edge: int, volume_bits: float, *, bandwidth_factor: float = 1.0
    ) -> float:
        """Cloud→edge broadcast time of the dense global model."""
        link = self.backhaul_links[edge]
        if link is None:
            return 0.0
        return downlink_time(link, volume_bits, bandwidth_factor=bandwidth_factor)

    def to_networkx(self):
        """Export the two-tier tree with link attributes (optional dep)."""
        import networkx as nx

        g = nx.Graph()
        g.add_node("cloud")
        for e, group in enumerate(self.groups):
            link = self.backhaul_links[e]
            g.add_node(f"edge{e}")
            g.add_edge(
                "cloud",
                f"edge{e}",
                bandwidth_bps=None if link is None else link.bandwidth_bps,
                latency_s=None if link is None else link.latency_s,
            )
            for c in group:
                g.add_node(f"client{c}")
                g.add_edge(
                    f"edge{e}",
                    f"client{c}",
                    bandwidth_bps=self.client_links[c].bandwidth_bps,
                    latency_s=self.client_links[c].latency_s,
                )
        return g


def build_tier_topology(config, client_links: Sequence[LinkSpec], rngs) -> TierTopology:
    """Assemble the tier topology an ``ExperimentConfig`` describes.

    Uses dedicated RNG streams (``edge-assign``, ``backhaul``) so adding the
    hierarchy never perturbs the flat protocol's draws.
    """
    groups = assign_edges(
        config.num_clients,
        config.num_edges,
        config.edge_assignment,
        links=client_links,
        seed=rngs.stream("edge-assign"),
    )
    backhaul = sample_backhaul_links(
        config.num_edges,
        bandwidth_mbps=config.backhaul_bandwidth_mbps,
        latency_s=config.backhaul_latency_s,
        heterogeneity=config.backhaul_heterogeneity,
        seed=rngs.stream("backhaul"),
    )
    return TierTopology(
        groups=groups, client_links=tuple(client_links), backhaul_links=backhaul
    )
