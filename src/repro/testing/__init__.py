"""Test-support machinery shipped with the library.

:mod:`repro.testing.goldens` is the golden-history harness: it runs a
config, captures its deterministic trace, and compares it bit-for-bit
against a frozen JSON artifact — the mechanism behind both the population
equivalence suite (``tests/population``) and the robustness goldens
(``tests/goldens``), plus the ``scripts/regen_goldens.py`` regenerator.
"""

from repro.testing.goldens import (
    check_golden,
    load_golden,
    regen_requested,
    run_trace,
    write_golden,
)

__all__ = [
    "check_golden",
    "load_golden",
    "regen_requested",
    "run_trace",
    "write_golden",
]
