"""The golden-history harness: freeze a seeded run, replay it bit-for-bit.

A *golden* is the deterministic trace of one seeded config — the full
:func:`~repro.io.history_io.history_to_dict` payload with the two
wall-clock fields zeroed, plus the virtual-time span log — stored as JSON.
:func:`run_trace` captures it, :func:`check_golden` compares a fresh
capture against the stored artifact and fails on the first diverging
record, so any change to sampling, training, compression, aggregation,
fault injection, or virtual-time pricing shows up as a readable diff.

Regeneration is explicit: running the suite with ``REGEN_GOLDEN=1`` (or
``scripts/regen_goldens.py``, which sets it) rewrites the goldens instead
of comparing. Suites pinning *frozen* artifacts that can never be rebuilt
from the current tree — e.g. the pre-refactor population traces — pass
``regen=False`` to opt out of the environment switch.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.io.history_io import history_to_dict
from repro.simtime import make_simulation

__all__ = [
    "REGEN_ENV",
    "check_golden",
    "load_golden",
    "regen_requested",
    "run_trace",
    "write_golden",
]

#: Environment variable that switches :func:`check_golden` from comparing
#: to rewriting.
REGEN_ENV = "REGEN_GOLDEN"


def regen_requested() -> bool:
    """Whether this run should rewrite goldens instead of comparing."""
    return bool(os.environ.get(REGEN_ENV))


def run_trace(config) -> dict:
    """Run ``config`` and capture its deterministic trace (golden format).

    The config is run as given — callers pin ``backend`` (and anything
    else execution-related) themselves, since the whole point is replaying
    the same trace from different execution strategies.
    """
    with make_simulation(config) as sim:
        history = sim.run()
        spans = [[s.cid, s.kind, s.start, s.end, s.tag] for s in sim.spans]
    payload = history_to_dict(history)
    for rec in payload["records"]:
        # Wall-clock fields are nondeterministic by nature; goldens store
        # zeros so traces stay bitwise-comparable.
        rec["train_seconds"] = 0.0
        rec["compress_seconds"] = 0.0
    return {"history": payload, "spans": spans}


def load_golden(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def write_golden(path: str | Path, trace: dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace))


def check_golden(
    path: str | Path,
    trace: dict,
    *,
    name: str | None = None,
    regen: bool | None = None,
) -> None:
    """Assert ``trace`` matches the golden at ``path`` bit-for-bit.

    With ``regen=None`` (the default) the ``REGEN_GOLDEN`` environment
    variable decides whether to rewrite instead of compare; ``regen=False``
    pins a frozen artifact that must never be rebuilt from this tree.
    """
    path = Path(path)
    label = name if name is not None else path.stem
    if regen if regen is not None else regen_requested():
        write_golden(path, trace)
        return
    if not path.exists():
        raise AssertionError(
            f"golden {label!r} missing at {path} — run with {REGEN_ENV}=1 "
            "(or scripts/regen_goldens.py) to create it"
        )
    golden = load_golden(path)
    # Record-level compare first for a readable diff, then the whole trace.
    assert trace["history"]["records"] == golden["history"]["records"], (
        f"run diverged from golden {label!r}"
    )
    assert trace == golden, f"run diverged from golden {label!r}"
