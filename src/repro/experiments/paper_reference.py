"""The paper's reported numbers, for side-by-side printing in benches.

Source: Tang et al., ICPP 2024 — Table 2 (main accuracies), Table 3 (time to
40 % accuracy on CIFAR-10, β=0.1), Table 4 (OPWA γ sweep), Fig. 4 (overlap
distribution percentages), Fig. 6 (round time breakdown).
"""

from __future__ import annotations

__all__ = [
    "TABLE2",
    "TABLE3",
    "TABLE4",
    "FIG4_SINGLETON_FRACTIONS",
    "FIG6_BREAKDOWN",
    "SPEEDUP_RANGE",
]

#: Table 2 — {dataset: {(beta, cr): {algorithm: accuracy}}}
TABLE2: dict[str, dict[tuple[float, float], dict[str, float]]] = {
    "cifar10": {
        (0.1, 0.1): {"fedavg": 0.568, "topk": 0.4669, "eftopk": 0.4553, "bcrs": 0.493, "bcrs_opwa": 0.6029},
        (0.1, 0.01): {"fedavg": 0.568, "topk": 0.2555, "eftopk": 0.247, "bcrs": 0.305, "bcrs_opwa": 0.4845},
        (0.5, 0.1): {"fedavg": 0.7637, "topk": 0.6853, "eftopk": 0.6848, "bcrs": 0.7124, "bcrs_opwa": 0.7437},
        (0.5, 0.01): {"fedavg": 0.7637, "topk": 0.3268, "eftopk": 0.3123, "bcrs": 0.4828, "bcrs_opwa": 0.5528},
    },
    "svhn": {
        (0.1, 0.1): {"fedavg": 0.6235, "topk": 0.4052, "eftopk": 0.5151, "bcrs": 0.6619, "bcrs_opwa": 0.7063},
        (0.1, 0.01): {"fedavg": 0.6235, "topk": 0.304, "eftopk": 0.264, "bcrs": 0.3493, "bcrs_opwa": 0.5259},
        (0.5, 0.1): {"fedavg": 0.9113, "topk": 0.8905, "eftopk": 0.8918, "bcrs": 0.8925, "bcrs_opwa": 0.9031},
        (0.5, 0.01): {"fedavg": 0.9113, "topk": 0.7771, "eftopk": 0.7738, "bcrs": 0.7945, "bcrs_opwa": 0.8728},
    },
    "cifar100": {
        (0.1, 0.1): {"fedavg": 0.4921, "topk": 0.4234, "eftopk": 0.4262, "bcrs": 0.2382, "bcrs_opwa": 0.4892},
        (0.1, 0.01): {"fedavg": 0.4921, "topk": 0.2418, "eftopk": 0.2504, "bcrs": 0.3053, "bcrs_opwa": 0.4775},
        (0.5, 0.1): {"fedavg": 0.5686, "topk": 0.4965, "eftopk": 0.4962, "bcrs": 0.5415, "bcrs_opwa": 0.5499},
        (0.5, 0.01): {"fedavg": 0.5686, "topk": 0.2616, "eftopk": 0.2629, "bcrs": 0.4345, "bcrs_opwa": 0.4966},
    },
}

#: Table 3 — seconds to 40 % accuracy on CIFAR-10, β=0.1.
#: {algorithm: {cr: (actual, max, min)}} — None where the paper leaves blanks.
TABLE3: dict[str, dict[float, tuple[float | None, float | None, float | None]]] = {
    "fedavg": {0.1: (3677.238, 3677.238, 104.514), 0.01: (3677.238, 3677.238, 104.514)},
    "topk": {0.1: (281.364, 1386.653, 28.317), 0.01: (86.985, 3634.929, 74.482)},
    "eftopk": {0.1: (157.412, 1521.802, 31.073), 0.01: (52.062, 3719.547, 76.245)},
    "bcrs": {0.1: (17.938, None, None), 0.01: (25.755, None, None)},
}

#: Table 4 — OPWA accuracy by enlarge rate γ on CIFAR-10 (N=10, C=0.5).
#: {(beta, cr): {gamma: accuracy}}; FedAvg reference 0.568 (β=0.1), 0.7637 (β=0.5).
TABLE4: dict[tuple[float, float], dict[int, float]] = {
    (0.1, 0.1): {3: 0.5682, 5: 0.5972, 7: 0.5958},
    (0.1, 0.01): {3: 0.3461, 5: 0.4222, 7: 0.4832},
    (0.5, 0.1): {3: 0.6841, 5: 0.7242, 7: 0.7375},
    (0.5, 0.01): {3: 0.3282, 5: 0.4809, 7: 0.5582},
}

#: Fig. 4 — fraction of retained parameters appearing in exactly one client's
#: compressed update: {(beta, cr): singleton fraction}.
FIG4_SINGLETON_FRACTIONS: dict[tuple[float, float], float] = {
    (0.1, 0.01): 0.8707,
    (0.1, 0.1): 0.5860,
    (0.5, 0.01): 0.8819,
    (0.5, 0.1): 0.6073,
}

#: Fig. 6 — average seconds per round {cr: (compress, train, uncompressed comm, bcrs comm)}.
FIG6_BREAKDOWN: dict[float, tuple[float, float, float, float]] = {
    0.01: (0.26, 10.04, 48.15, 1.14),
    0.1: (0.28, 9.83, 48.15, 9.78),
}

#: Abstract claim: 2.02–3.37× speedup over TopK to target accuracy.
SPEEDUP_RANGE: tuple[float, float] = (2.02, 3.37)
