"""Derived evaluation metrics over run histories."""

from __future__ import annotations

import numpy as np

from repro.fl.history import History

__all__ = ["accuracy_auc", "speedup_to_target", "rounds_speedup"]


def accuracy_auc(history: History) -> float:
    """Area under the accuracy-vs-round curve, normalized to [0, 1].

    A single scalar capturing *how fast* a run converges, not just where it
    ends; robust to final-round noise when comparing algorithms.
    """
    rounds, accs = history.accuracy_series()
    if rounds.size == 0:
        raise ValueError("no evaluations recorded")
    if rounds.size == 1:
        return float(accs[0])
    span = float(rounds[-1] - rounds[0])
    if span == 0:
        return float(accs[-1])
    return float(np.trapezoid(accs, rounds) / span)


def speedup_to_target(
    baseline: History, candidate: History, target: float
) -> float | None:
    """Communication-time speedup of ``candidate`` over ``baseline`` to reach
    ``target`` accuracy (the paper's 2.02–3.37× claim). None if either run
    never reaches the target."""
    t_base = baseline.time_to_accuracy(target)["actual"]
    t_cand = candidate.time_to_accuracy(target)["actual"]
    if t_base is None or t_cand is None:
        return None
    if t_cand == 0:
        return float("inf")
    return float(t_base / t_cand)


def rounds_speedup(baseline: History, candidate: History, target: float) -> float | None:
    """Round-count speedup of ``candidate`` over ``baseline`` to ``target``."""
    r_base = baseline.rounds_to_accuracy(target)
    r_cand = candidate.rounds_to_accuracy(target)
    if r_base is None or r_cand is None:
        return None
    if r_cand == 0:
        return float("inf")
    return float(r_base) / float(r_cand)
