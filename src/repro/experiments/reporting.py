"""Render measured results next to the paper's reported numbers."""

from __future__ import annotations

from repro.fl.history import History

__all__ = [
    "format_table",
    "accuracy_row",
    "time_to_accuracy_row",
    "series_text",
    "paired_row",
    "summarize_comparison",
    "summarize_modes",
    "summarize_hier",
    "summarize_comm",
    "summarize_sweep",
]


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text table with aligned columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), sep] + [fmt(r) for r in rows])


def _num(x: float | None, nd: int = 4) -> str:
    return "--" if x is None else f"{x:.{nd}f}"


def accuracy_row(name: str, history: History, paper_value: float | None) -> list[str]:
    """[algorithm, measured final acc, paper acc] for a Table 2-style row."""
    return [name, _num(history.final_accuracy()), _num(paper_value)]


def time_to_accuracy_row(
    name: str, history: History, target: float, paper: tuple | None = None
) -> list[str]:
    """[algorithm, actual, max, min (measured) | paper actual] — Table 3 rows."""
    t = history.time_to_accuracy(target)
    row = [name, _num(t["actual"], 2), _num(t["max"], 2), _num(t["min"], 2)]
    if paper is not None:
        row.append(_num(paper[0], 2))
    return row


def paired_row(label: str, measured: float | None, paper: float | None, nd: int = 4) -> list[str]:
    """Generic [label, measured, paper] row."""
    return [label, _num(measured, nd), _num(paper, nd)]


def series_text(history: History, *, every: int = 10, width: int = 40) -> str:
    """ASCII accuracy-vs-round curve (the figure panels, printably)."""
    rounds, accs = history.accuracy_series()
    if rounds.size == 0:
        return "(no evaluations)"
    lines = []
    for r, a in zip(rounds, accs):
        if r % every and r != rounds[-1]:
            continue
        bar = "#" * int(round(a * width))
        lines.append(f"round {int(r):>4d}  acc {a:.3f}  {bar}")
    return "\n".join(lines)


def summarize_modes(results: dict[str, History], *, target: float | None = None) -> str:
    """Mode-race summary: accuracy, virtual time, and time-to-target.

    ``results`` maps mode name → history (see
    :func:`repro.experiments.runner.run_modes`). ``virtual_time`` is the
    clock at the last round's end — download + compute + upload, the axis
    on which sync/semisync/async are comparable; ``t_to_target`` is when
    ``target`` accuracy was first reached on that axis.
    """
    headers = ["mode", "rounds", "final_acc", "best_acc", "virtual_time"]
    if target is not None:
        headers.append(f"t_to_acc>={target:g}")
    rows = []
    for mode, h in results.items():
        end = h.records[-1].sim_end if h.records else None
        row = [
            mode,
            str(len(h)),
            _num(h.final_accuracy()),
            _num(h.best_accuracy()),
            "--" if end is None else f"{end:.1f}s",
        ]
        if target is not None:
            t = h.simtime_to_accuracy(target)
            row.append("--" if t is None else f"{t:.1f}s")
        rows.append(row)
    return format_table(headers, rows)


def summarize_hier(results: dict[int, History], *, target: float | None = None) -> str:
    """Edge-tier sweep summary: accuracy and per-tier virtual timings.

    ``results`` maps ``num_edges`` → history (see
    :func:`repro.experiments.runner.run_hier`). ``backhaul`` is the mean
    per-round edge↔cloud transfer time over the slowest edge; rows with one
    edge and a free backhaul are the flat baseline.
    """
    headers = ["edges", "rounds", "final_acc", "best_acc", "virtual_time", "backhaul/rnd"]
    if target is not None:
        headers.append(f"t_to_acc>={target:g}")
    rows = []
    for edges, h in results.items():
        end = h.records[-1].sim_end if h.records else None
        per_round_backhaul = [
            max(e.backhaul_s for e in r.edge_breakdown)
            for r in h.records
            if r.edge_breakdown
        ]
        mean_backhaul = (
            sum(per_round_backhaul) / len(per_round_backhaul)
            if per_round_backhaul
            else None
        )
        row = [
            str(edges),
            str(len(h)),
            _num(h.final_accuracy()),
            _num(h.best_accuracy()),
            "--" if end is None else f"{end:.1f}s",
            "--" if mean_backhaul is None else f"{mean_backhaul:.2f}s",
        ]
        if target is not None:
            t = h.simtime_to_accuracy(target)
            row.append("--" if t is None else f"{t:.1f}s")
        rows.append(row)
    return format_table(headers, rows)


def summarize_comm(history: History, *, top: int = 5) -> str:
    """Flow-accounting summary of one run: the transport ledger table plus
    the headline totals (wire bytes moved, virtual seconds, effective
    goodput) — what the CLI ``comm`` subcommand prints.
    """
    from repro.viz.ascii import ascii_comm_table

    lines = [ascii_comm_table(history, top=top)]
    totals = history.comm_totals()
    if totals["rounds"] > 0 and history.records:
        end = history.records[-1].sim_end
        mb = totals["total_bytes"] / 1e6
        lines.append("")
        line = (
            f"{mb:.2f}MB over {int(totals['rounds'])} rounds"
        )
        if end is not None and end > 0:
            line += (
                f"; {end:.1f} virtual seconds"
                f" -> {8.0 * totals['total_bytes'] / end / 1e6:.2f} Mbit/s"
                " effective aggregate throughput"
            )
        lines.append(line)
    return "\n".join(lines)


def summarize_sweep(report, *, target: float | None = None, top: int = 8) -> str:
    """Render a :class:`~repro.scenarios.report.SweepReport` as text tables.

    Three sections: the ``top`` cells ranked by final accuracy, one
    marginal table per grid axis (mean over every other axis and seed),
    and — when ``target`` is given — the virtual time-to-target frontier.
    A trailing line accounts for resume (cells run vs loaded from the run
    store).
    """
    lines = []
    ranked = report.best_cells(metric="final", top=top)
    rows = []
    for spec, h, final in ranked:
        end = h.records[-1].sim_end if h.records else None
        rows.append([
            report.label(spec),
            str(len(h)),
            _num(final),
            _num(h.best_accuracy()),
            "--" if end is None else f"{end:.1f}s",
        ])
    if rows:
        lines.append(f"top cells (of {len(report)}) by final accuracy:")
        lines.append(format_table(
            ["cell", "rounds", "final_acc", "best_acc", "virtual_time"], rows
        ))
    else:
        lines.append("(no evaluated cells)")

    for axis, values in report.marginals().items():
        rows = [
            [f"{axis}={value}", _num(stats["mean_final"]), _num(stats["mean_best"]),
             str(int(stats["n"]))]
            for value, stats in values.items()
        ]
        if rows:
            lines.append("")
            lines.append(f"marginal over {axis} (mean across other axes/seeds):")
            lines.append(format_table(["value", "mean_final", "mean_best", "cells"], rows))

    if target is not None:
        rows = [
            [report.label(spec), "--" if t is None else f"{t:.1f}s"]
            for spec, t in report.time_to_accuracy_frontier(target)
        ]
        lines.append("")
        lines.append(f"virtual time to accuracy >= {target:g}:")
        lines.append(format_table(["cell", "t_to_target"], rows))

    lines.append("")
    lines.append(f"{report.executed} cell(s) run, {report.reused} loaded from store")
    return "\n".join(lines)


def summarize_comparison(results: dict[str, History]) -> str:
    """One-line-per-algorithm summary of a run group."""
    rows = [
        [alg, _num(h.final_accuracy()), _num(h.best_accuracy()), f"{h.time.actual_total:.1f}s"]
        for alg, h in results.items()
    ]
    return format_table(["algorithm", "final_acc", "best_acc", "comm_time"], rows)
