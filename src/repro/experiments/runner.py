"""Run experiment groups: algorithm comparisons, sweeps, and mode races.

Every run goes through a simulation built by
:func:`repro.simtime.make_simulation` as a context manager so parallel
execution backends (``repro.exec``) release their worker pools between
runs; select a backend via the base config
(``base.with_(backend="process", workers=4)``) and a round protocol via
``base.with_(mode="async")``.

Multi-dimensional grids belong to :mod:`repro.scenarios` —
:func:`run_grid` here is the convenience bridge that expands, executes
(optionally in parallel with resume), and reports in one call.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.fl.config import MODES, ExperimentConfig
from repro.fl.history import History
from repro.simtime import make_simulation

__all__ = [
    "run_comparison",
    "sweep",
    "run_modes",
    "run_hier",
    "run_scenario",
    "run_grid",
    "PROTOCOL_RACE_MODES",
]

#: The mode-race default: the three flat protocols. ``hier`` is excluded —
#: at ``num_edges=1`` it duplicates sync; sweep it with :func:`run_hier`.
PROTOCOL_RACE_MODES = ("sync", "semisync", "async")


def run_comparison(
    base: ExperimentConfig,
    algorithms: Iterable[str],
    *,
    compression_ratio: float | None = None,
) -> dict[str, History]:
    """Run ``base`` once per algorithm (identical data/links/sampling seeds).

    Because every run shares the seed, differences in outcomes are
    attributable to the algorithm alone — the paper's comparison protocol.
    The execution backend never changes outcomes (seeded runs are
    bit-identical across backends), only wall-clock time.

    Args:
        base: The shared configuration; its ``algorithm`` field is
            overridden per run, everything else (seed included) is held
            fixed.
        algorithms: Names from :data:`repro.fl.config.ALGORITHMS` to run.
        compression_ratio: When given, applied to every algorithm except
            ``fedavg`` (which always runs dense at ratio 1.0).

    Returns:
        Algorithm name → its run :class:`~repro.fl.history.History`, in
        ``algorithms`` order.
    """
    out: dict[str, History] = {}
    for alg in algorithms:
        if alg == "fedavg":
            # Dense baseline: drop any compressor override in the same
            # replace — the frozen config validates at construction and
            # fedavg rejects an override.
            cfg = base.with_(algorithm=alg, compression_ratio=1.0, compressor=None)
        else:
            cfg = base.with_(algorithm=alg)
            if compression_ratio is not None:
                cfg = cfg.with_(compression_ratio=compression_ratio)
        with make_simulation(cfg) as sim:
            out[alg] = sim.run()
    return out


def sweep(
    base: ExperimentConfig,
    param: str,
    values: Iterable,
) -> dict[object, History]:
    """Run ``base`` once per value of one config field (e.g. γ, α, N).

    The single-axis, in-process special case; for multi-axis grids, seed
    replication, parallel execution, or resume, use :func:`run_grid`.

    Args:
        base: The shared configuration (seed held fixed across values).
        param: An :class:`~repro.fl.config.ExperimentConfig` field name.
        values: The values to assign, already typed for the field (CLI
            strings are typed via
            :func:`repro.scenarios.spec.coerce_field`).

    Returns:
        Value → its run :class:`~repro.fl.history.History`, in ``values``
        order.
    """
    out: dict[object, History] = {}
    for v in values:
        with make_simulation(base.with_(**{param: v})) as sim:
            out[v] = sim.run()
    return out


def run_modes(
    base: ExperimentConfig,
    modes: Iterable[str] = PROTOCOL_RACE_MODES,
) -> dict[str, History]:
    """Race the round protocols on one config: same seed, same budget.

    Every mode sees identical data, model init, links, and device profiles;
    only *when* client work lands differs. Compare with
    ``History.accuracy_vs_simtime()`` / ``simtime_to_accuracy(target)`` —
    the virtual-clock axis prices download + compute + upload uniformly
    across modes, which is the time-to-accuracy question (Fig. 10) the
    scheduler exists to answer.

    Args:
        base: The shared configuration; its ``mode`` field is overridden
            per run.
        modes: Which protocols to race (default: sync, semisync, async —
            see :data:`PROTOCOL_RACE_MODES`). Each must be in
            :data:`repro.fl.config.MODES`.

    Returns:
        Mode name → its run :class:`~repro.fl.history.History`, in
        ``modes`` order.

    Raises:
        ValueError: If a requested mode is unknown.
    """
    out: dict[str, History] = {}
    for mode in modes:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        with make_simulation(base.with_(mode=mode)) as sim:
            out[mode] = sim.run()
    return out


def run_hier(
    base: ExperimentConfig,
    edge_counts: Iterable[int],
) -> dict[int, History]:
    """Sweep the edge-tier width on one config: same seed per run.

    Each entry runs ``base`` under ``mode="hier"`` with that many edge
    aggregators; everything else (data, model init, client links, device
    profiles, backhaul knobs) is held fixed, so differences in virtual
    time-to-accuracy are attributable to the topology alone. ``1`` with the
    default free backhaul is the flat-protocol baseline (bit-identical to
    ``mode="sync"`` by the degenerate-equivalence contract).

    Args:
        base: The shared configuration; ``mode`` is forced to ``"hier"``
            and ``num_edges`` overridden per run.
        edge_counts: Edge-tier widths to race; each must be in
            ``[1, base.num_clients]`` (validated by the config).

    Returns:
        Edge count → its run :class:`~repro.fl.history.History`, in
        ``edge_counts`` order.
    """
    out: dict[int, History] = {}
    for e in edge_counts:
        with make_simulation(base.with_(mode="hier", num_edges=int(e))) as sim:
            out[int(e)] = sim.run()
    return out


def run_scenario(name_or_spec, **overrides) -> History:
    """Run one registered (or ad-hoc) scenario end to end.

    Args:
        name_or_spec: A name in the default scenario registry
            (:func:`repro.scenarios.available_scenarios`) or a
            :class:`~repro.scenarios.ScenarioSpec` instance.
        **overrides: Config fields layered over the scenario (e.g.
            ``rounds=2`` for a smoke run, ``seed=7`` for a replicate);
            values are typed through the config's field types.

    Returns:
        The run's :class:`~repro.fl.history.History`.

    Raises:
        KeyError: If ``name_or_spec`` names no registered scenario.
    """
    from repro.scenarios import ScenarioSpec, get_scenario

    spec = (
        name_or_spec
        if isinstance(name_or_spec, ScenarioSpec)
        else get_scenario(str(name_or_spec))
    )
    if overrides:
        spec = spec.with_overrides(**overrides)
    with make_simulation(spec.to_config()) as sim:
        return sim.run()


def run_grid(
    base,
    axes: dict,
    *,
    seeds=None,
    parallel: int = 1,
    executor: str | None = None,
    store=None,
):
    """Expand a grid over ``base`` and run it (parallel, resumable).

    The one-call bridge into :mod:`repro.scenarios`: equivalent to
    ``SweepRunner(expand_grid(base, axes, seeds=seeds), ...).run()``.

    Args:
        base: An :class:`~repro.fl.config.ExperimentConfig` or
            :class:`~repro.scenarios.ScenarioSpec` supplying every field
            the axes don't vary.
        axes: Config field → list of values (cartesian product; values
            typed through the field types).
        seeds: Seed replication — an int ``k`` (base seed .. base seed
            + k − 1), an explicit sequence, or None for the base seed only.
        parallel: Max cells in flight (1 = sequential).
        executor: ``"serial"`` | ``"thread"`` | ``"process"`` cell pool
            (default: process when ``parallel > 1``).
        store: Optional :class:`~repro.scenarios.RunStore` (or directory
            path) enabling resume: completed cells load instead of re-run.

    Returns:
        A :class:`~repro.scenarios.SweepReport` with the cells in
        expansion order.
    """
    from repro.scenarios import RunStore, SweepRunner, expand_grid

    if isinstance(store, str):
        store = RunStore(store)
    cells = expand_grid(base, axes, seeds=seeds)
    return SweepRunner(
        cells, parallel=parallel, executor=executor, store=store
    ).run()
