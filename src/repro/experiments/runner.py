"""Run experiment groups: algorithm comparisons, sweeps, and mode races.

Every run goes through a simulation built by
:func:`repro.simtime.make_simulation` as a context manager so parallel
execution backends (``repro.exec``) release their worker pools between
runs; select a backend via the base config
(``base.with_(backend="process", workers=4)``) and a round protocol via
``base.with_(mode="async")``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.fl.config import MODES, ExperimentConfig
from repro.fl.history import History
from repro.simtime import make_simulation

__all__ = ["run_comparison", "sweep", "run_modes", "run_hier", "PROTOCOL_RACE_MODES"]

#: The mode-race default: the three flat protocols. ``hier`` is excluded —
#: at ``num_edges=1`` it duplicates sync; sweep it with :func:`run_hier`.
PROTOCOL_RACE_MODES = ("sync", "semisync", "async")


def run_comparison(
    base: ExperimentConfig,
    algorithms: Iterable[str],
    *,
    compression_ratio: float | None = None,
) -> dict[str, History]:
    """Run ``base`` once per algorithm (identical data/links/sampling seeds).

    Because every run shares the seed, differences in outcomes are
    attributable to the algorithm alone — the paper's comparison protocol.
    The execution backend never changes outcomes (seeded runs are
    bit-identical across backends), only wall-clock time.
    """
    out: dict[str, History] = {}
    for alg in algorithms:
        cfg = base.with_(algorithm=alg)
        if compression_ratio is not None and alg != "fedavg":
            cfg = cfg.with_(compression_ratio=compression_ratio)
        if alg == "fedavg":
            cfg = cfg.with_(compression_ratio=1.0)
        with make_simulation(cfg) as sim:
            out[alg] = sim.run()
    return out


def sweep(
    base: ExperimentConfig,
    param: str,
    values: Iterable,
) -> dict[object, History]:
    """Run ``base`` once per value of one config field (e.g. γ, α, N)."""
    out: dict[object, History] = {}
    for v in values:
        with make_simulation(base.with_(**{param: v})) as sim:
            out[v] = sim.run()
    return out


def run_modes(
    base: ExperimentConfig,
    modes: Iterable[str] = PROTOCOL_RACE_MODES,
) -> dict[str, History]:
    """Race the round protocols on one config: same seed, same budget.

    Every mode sees identical data, model init, links, and device profiles;
    only *when* client work lands differs. Compare with
    ``History.accuracy_vs_simtime()`` / ``simtime_to_accuracy(target)`` —
    the virtual-clock axis prices download + compute + upload uniformly
    across modes, which is the time-to-accuracy question (Fig. 10) the
    scheduler exists to answer.
    """
    out: dict[str, History] = {}
    for mode in modes:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        with make_simulation(base.with_(mode=mode)) as sim:
            out[mode] = sim.run()
    return out


def run_hier(
    base: ExperimentConfig,
    edge_counts: Iterable[int],
) -> dict[int, History]:
    """Sweep the edge-tier width on one config: same seed per run.

    Each entry runs ``base`` under ``mode="hier"`` with that many edge
    aggregators; everything else (data, model init, client links, device
    profiles, backhaul knobs) is held fixed, so differences in virtual
    time-to-accuracy are attributable to the topology alone. ``1`` with the
    default free backhaul is the flat-protocol baseline (bit-identical to
    ``mode="sync"`` by the degenerate-equivalence contract).
    """
    out: dict[int, History] = {}
    for e in edge_counts:
        with make_simulation(base.with_(mode="hier", num_edges=int(e))) as sim:
            out[int(e)] = sim.run()
    return out
