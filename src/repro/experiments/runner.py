"""Run experiment groups: algorithm comparisons and hyperparameter sweeps.

Every run goes through :class:`~repro.fl.simulation.Simulation` as a context
manager so parallel execution backends (``repro.exec``) release their worker
pools between runs; select a backend via the base config
(``base.with_(backend="process", workers=4)``).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.fl.config import ExperimentConfig
from repro.fl.history import History
from repro.fl.simulation import Simulation

__all__ = ["run_comparison", "sweep"]


def run_comparison(
    base: ExperimentConfig,
    algorithms: Iterable[str],
    *,
    compression_ratio: float | None = None,
) -> dict[str, History]:
    """Run ``base`` once per algorithm (identical data/links/sampling seeds).

    Because every run shares the seed, differences in outcomes are
    attributable to the algorithm alone — the paper's comparison protocol.
    The execution backend never changes outcomes (seeded runs are
    bit-identical across backends), only wall-clock time.
    """
    out: dict[str, History] = {}
    for alg in algorithms:
        cfg = base.with_(algorithm=alg)
        if compression_ratio is not None and alg != "fedavg":
            cfg = cfg.with_(compression_ratio=compression_ratio)
        if alg == "fedavg":
            cfg = cfg.with_(compression_ratio=1.0)
        with Simulation(cfg) as sim:
            out[alg] = sim.run()
    return out


def sweep(
    base: ExperimentConfig,
    param: str,
    values: Iterable,
) -> dict[object, History]:
    """Run ``base`` once per value of one config field (e.g. γ, α, N)."""
    out: dict[object, History] = {}
    for v in values:
        with Simulation(base.with_(**{param: v})) as sim:
            out[v] = sim.run()
    return out
