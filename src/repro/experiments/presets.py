"""Experiment presets mirroring the paper's configurations.

``paper_config`` reproduces the Sec. 5.1 setting at the scaled-down geometry
of DESIGN.md §2 (synthetic datasets, MLP/CNN models). ``bench_config``
further shrinks rounds/samples so the full table/figure suite finishes on
CPU; set ``REPRO_BENCH_SCALE`` > 1 to run closer to the paper's budget.
"""

from __future__ import annotations

import os

from repro.fl.config import ExperimentConfig

__all__ = ["paper_config", "bench_config", "bench_scale", "DATASET_NAME_MAP"]

#: Paper dataset → synthetic stand-in.
DATASET_NAME_MAP = {
    "cifar10": "synth-cifar10",
    "cifar100": "synth-cifar100",
    "svhn": "synth-svhn",
}

#: Tuned hyperparameters per algorithm (the paper tunes α over
#: {0.01, 0.03, 0.1, 0.3, 1} and reports 0.1–0.3 as optimal; γ ≈ |S_t| + 2).
_ALG_DEFAULTS = {
    "fedavg": {},
    "topk": {},
    "eftopk": {},
    "bcrs": {"alpha": 0.3},
    "bcrs_opwa": {"alpha": 0.3, "gamma": 7.0},
}


def paper_config(
    dataset: str,
    algorithm: str,
    *,
    beta: float = 0.5,
    compression_ratio: float = 0.1,
    seed: int = 0,
    **overrides,
) -> ExperimentConfig:
    """The Sec. 5.1 setting: N=10, C=0.5, bs=64, E=1, 200 rounds.

    Args:
        dataset: The paper's dataset names ("cifar10", "svhn", "cifar100")
            or a synthetic name ("synth-*") directly — paper names map
            through :data:`DATASET_NAME_MAP`.
        algorithm: A :data:`repro.fl.config.ALGORITHMS` name; its tuned
            hyperparameters (α, γ) are filled in automatically.
        beta: Dirichlet heterogeneity (lower = more label skew).
        compression_ratio: Target CR*; forced to 1.0 (dense) for
            ``fedavg``.
        seed: Root seed for data/model/links/sampling.
        **overrides: Any further :class:`~repro.fl.config.ExperimentConfig`
            fields, applied last (they win over the tuned defaults).

    Returns:
        A validated :class:`~repro.fl.config.ExperimentConfig`.
    """
    ds = DATASET_NAME_MAP.get(dataset, dataset)
    kwargs: dict = dict(
        dataset=ds,
        model="mlp",
        num_train=2000,
        num_test=500,
        num_clients=10,
        participation=0.5,
        beta=beta,
        rounds=200,
        local_epochs=1,
        batch_size=64,
        lr=0.1,
        algorithm=algorithm,
        compression_ratio=compression_ratio if algorithm != "fedavg" else 1.0,
        seed=seed,
    )
    kwargs.update(_ALG_DEFAULTS.get(algorithm, {}))
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def bench_scale() -> float:
    """Benchmark budget multiplier from ``REPRO_BENCH_SCALE``.

    Returns:
        The environment value as a float (default 1.0); rounds and sample
        counts in :func:`bench_config` scale linearly with it.
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def bench_config(dataset: str, algorithm: str, **overrides) -> ExperimentConfig:
    """A CPU-budget version of :func:`paper_config` for the bench suite.

    Keeps the federation shape (N=10, C=0.5, Dirichlet β, per-algorithm
    hyperparameters) but shortens the run; the *relative ordering* of
    algorithms — what the paper's tables establish — is preserved.

    Args:
        dataset: As in :func:`paper_config`.
        algorithm: As in :func:`paper_config`.
        **overrides: Passed through to :func:`paper_config` after the
            bench-budget defaults (rounds, sample counts, ``eval_every``),
            so explicit values win.

    Returns:
        A validated :class:`~repro.fl.config.ExperimentConfig` sized by
        :func:`bench_scale`.
    """
    scale = bench_scale()
    defaults = dict(
        rounds=max(10, int(40 * scale)),
        num_train=max(400, int(1200 * scale)),
        num_test=max(200, int(400 * scale)),
        eval_every=2,
    )
    defaults.update(overrides)
    return paper_config(dataset, algorithm, **defaults)
