"""Experiment harness: paper presets, runners, reporting, reference numbers."""

from repro.experiments.presets import DATASET_NAME_MAP, bench_config, bench_scale, paper_config
from repro.experiments.reporting import (
    accuracy_row,
    format_table,
    paired_row,
    series_text,
    summarize_comparison,
    summarize_hier,
    summarize_modes,
    summarize_sweep,
    time_to_accuracy_row,
)
from repro.experiments.metrics import accuracy_auc, rounds_speedup, speedup_to_target
from repro.experiments.runner import (
    run_comparison,
    run_grid,
    run_hier,
    run_modes,
    run_scenario,
    sweep,
)
from repro.experiments import paper_reference

__all__ = [
    "paper_config",
    "bench_config",
    "bench_scale",
    "DATASET_NAME_MAP",
    "run_comparison",
    "run_modes",
    "run_hier",
    "run_scenario",
    "run_grid",
    "sweep",
    "summarize_modes",
    "summarize_hier",
    "summarize_sweep",
    "accuracy_auc",
    "speedup_to_target",
    "rounds_speedup",
    "format_table",
    "accuracy_row",
    "time_to_accuracy_row",
    "paired_row",
    "series_text",
    "summarize_comparison",
    "paper_reference",
]
