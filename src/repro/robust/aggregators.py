"""Robust aggregation rules beside the paper's weighted mean.

Three defenses, in increasing exactness:

- :func:`coordinate_median` — per-coordinate median over the cohort's
  densified updates; breakdown point 1/2.
- :func:`trimmed_mean` — per-coordinate mean after discarding the ``⌊β·n⌋``
  largest and smallest entries; breakdown point β, and exactly the plain
  (unweighted) mean when β trims nothing.
- :func:`norm_clip_weights` — scales each update's aggregation weight by
  ``min(1, τ/‖u‖₂)``; bounds any single client's influence at ``τ·w_i``
  while staying *bit-identical* to the weighted mean whenever no update
  exceeds the radius (unclipped weights are never touched).

The order-statistic rules are unweighted by construction (a weighted median
would re-open the door to weight-inflation attacks); they densify the
cohort into an :meth:`AggregationArena.rows <repro.core.arena.
AggregationArena.rows>` matrix — the dense fallback the issue requires for
non-fixed-k compressors comes for free, since densification never assumes a
uniform nnz. The OPWA mask applies to the aggregated pseudo-gradient
(``m ⊙ agg(u)``); for the linear mean that is algebraically the historical
per-update masking, for the order statistics it is the only well-defined
choice (masking before the median would let zeroed coordinates vote).

All rules produce a pseudo-gradient consumed by the unchanged
:func:`repro.core.aggregation.apply_server_update` / server-optimizer step.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedUpdate, SparseUpdate
from repro.core.aggregation import weighted_sparse_sum
from repro.core.arena import AggregationArena

__all__ = [
    "densify_updates",
    "coordinate_median",
    "trimmed_mean",
    "norm_clip_weights",
    "robust_aggregate",
]


def _check_updates(updates: list[CompressedUpdate]) -> int:
    if not updates:
        raise ValueError("need at least one update")
    d = updates[0].dense_size
    for u in updates:
        if u.dense_size != d:
            raise ValueError("updates disagree on dense_size")
    return d


def densify_updates(
    updates: list[CompressedUpdate],
    *,
    arena: AggregationArena | None = None,
) -> np.ndarray:
    """Scatter the cohort into an ``(n, d)`` float64 row matrix.

    Row ``i`` is ``dense(updates[i])`` upcast to float64 (exact for the
    float32 wire formats). With an ``arena`` the rows live in its reusable
    matrix — zeroed per call, so the scatter is correct for any sparsity
    pattern, fixed-k or not.
    """
    d = _check_updates(updates)
    n = len(updates)
    if arena is not None:
        if arena.dense_size != d:
            raise ValueError(f"arena dense_size {arena.dense_size} != updates' {d}")
        rows = arena.rows(n)
    else:
        rows = np.zeros((n, d), dtype=np.float64)
    for i, u in enumerate(updates):
        if isinstance(u, SparseUpdate):
            rows[i, u.indices] = u.values
        else:
            rows[i, :] = u.to_dense()
    return rows


def _masked(out: np.ndarray, mask: np.ndarray | None) -> np.ndarray:
    if mask is not None:
        out *= mask
    return out


def coordinate_median(
    updates: list[CompressedUpdate],
    *,
    mask: np.ndarray | None = None,
    out: np.ndarray | None = None,
    arena: AggregationArena | None = None,
) -> np.ndarray:
    """Per-coordinate median of the densified cohort (breakdown point 1/2)."""
    d = _check_updates(updates)
    rows = densify_updates(updates, arena=arena)
    if out is None:
        out = arena.accumulator() if arena is not None else np.empty(d, dtype=np.float64)
    elif out.shape != (d,):
        raise ValueError(f"out shape {out.shape} != ({d},)")
    np.median(rows, axis=0, out=out, overwrite_input=True)
    return _masked(out, mask)


def trimmed_mean(
    updates: list[CompressedUpdate],
    beta: float,
    *,
    mask: np.ndarray | None = None,
    out: np.ndarray | None = None,
    arena: AggregationArena | None = None,
) -> np.ndarray:
    """Per-coordinate β-trimmed mean: drop ``⌊β·n⌋`` per tail, average the rest.

    ``β < 0.5`` guarantees at least one surviving row. ``β`` small enough to
    trim nothing degrades to the exact unweighted mean.
    """
    if not 0.0 <= beta < 0.5:
        raise ValueError(f"beta must be in [0, 0.5), got {beta}")
    d = _check_updates(updates)
    n = len(updates)
    k = int(beta * n)
    rows = densify_updates(updates, arena=arena)
    if out is None:
        out = arena.accumulator() if arena is not None else np.empty(d, dtype=np.float64)
    elif out.shape != (d,):
        raise ValueError(f"out shape {out.shape} != ({d},)")
    rows.sort(axis=0)
    np.mean(rows[k : n - k], axis=0, out=out)
    return _masked(out, mask)


def norm_clip_weights(
    updates: list[CompressedUpdate],
    weights: np.ndarray,
    tau: float,
) -> np.ndarray:
    """Aggregation weights with each update's L2 influence capped at ``τ``.

    ``w_i ← w_i · min(1, τ/‖uᵢ‖₂)``. Updates inside the radius keep their
    weight *untouched* (no multiply by a computed 1.0), so routing the
    result through :func:`~repro.core.aggregation.weighted_sparse_sum` is
    bit-identical to the plain mean whenever nothing clips.
    """
    if tau <= 0:
        raise ValueError(f"tau must be > 0, got {tau}")
    _check_updates(updates)
    w = np.array(weights, dtype=np.float64, copy=True)
    if w.shape != (len(updates),):
        raise ValueError(f"weights shape {w.shape} != ({len(updates)},)")
    for i, u in enumerate(updates):
        vals = u.values if isinstance(u, SparseUpdate) else u.to_dense()
        norm = float(np.linalg.norm(vals.astype(np.float64)))
        if norm > tau:
            w[i] *= tau / norm
    return w


def robust_aggregate(
    updates: list[CompressedUpdate],
    weights: np.ndarray,
    *,
    aggregator: str = "mean",
    trim_beta: float = 0.1,
    clip_tau: float | None = None,
    mask: np.ndarray | None = None,
    out: np.ndarray | None = None,
    arena: AggregationArena | None = None,
) -> np.ndarray:
    """The pseudo-gradient under one named aggregation rule.

    The single branch point every simulation calls: ``"mean"`` is the
    historical :func:`~repro.core.aggregation.weighted_sparse_sum` (same
    call, same buffers, bit-identical), the rest are this module's
    defenses. ``weights`` feed the mean and norm-clip rules; the
    order-statistic rules ignore them by design.
    """
    if aggregator == "mean":
        return weighted_sparse_sum(updates, weights, mask=mask, out=out, arena=arena)
    if aggregator == "norm_clip":
        if clip_tau is None:
            raise ValueError("aggregator='norm_clip' needs clip_tau")
        clipped = norm_clip_weights(updates, weights, clip_tau)
        return weighted_sparse_sum(updates, clipped, mask=mask, out=out, arena=arena)
    if aggregator == "median":
        return coordinate_median(updates, mask=mask, out=out, arena=arena)
    if aggregator == "trimmed_mean":
        return trimmed_mean(updates, trim_beta, mask=mask, out=out, arena=arena)
    raise ValueError(f"unknown aggregator {aggregator!r}")
