"""Adversarial robustness: byzantine behaviors and robust aggregation.

The threat model is the classic byzantine-FL one: an unknown subset of
clients (chosen seed-purely, fleet-scale — see :func:`attacks.is_adversary`)
corrupts what it sends the server, and the server defends by replacing the
weighted mean with an order-statistic or clipping rule
(:mod:`~repro.robust.aggregators`). Transport-level corruption (dropped and
truncated uploads, crashing edge aggregators) lives with the transport in
:class:`repro.network.transport.FaultInjector` and :mod:`repro.hier`.

Everything here is strictly gated: ``adversary=None``,
``aggregator="mean"`` and zero fault probabilities — the defaults — perform
no extra RNG draws and no arithmetic changes, so every pre-existing seeded
history replays byte-for-byte.
"""

from repro.robust.aggregators import (
    coordinate_median,
    densify_updates,
    norm_clip_weights,
    robust_aggregate,
    trimmed_mean,
)
from repro.robust.attacks import (
    apply_delta_attack,
    flip_labels,
    is_adversary,
)

__all__ = [
    "is_adversary",
    "apply_delta_attack",
    "flip_labels",
    "densify_updates",
    "coordinate_median",
    "trimmed_mean",
    "norm_clip_weights",
    "robust_aggregate",
]
