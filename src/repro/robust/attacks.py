"""Byzantine client behaviors.

Membership is a pure O(1) function of ``(seed, cid)`` through the
``"adversary"`` counter stream — no table of adversarial ids, no hydration
in the parent process, no draw order to preserve. Any worker on any backend
asks :func:`is_adversary` for the clients it executes and reads the same
answer, which is what keeps adversarial runs bit-identical across
serial/thread/process and lets a million-client fleet carry adversaries
without O(fleet) state.

Two corruption sites:

- **delta attacks** (:func:`apply_delta_attack`) mutate the trained update
  in the worker, after local training and before compression — the
  compressor then faithfully transmits the poisoned vector, exactly like a
  real byzantine client would;
- **data poisoning** (:func:`flip_labels`) rewrites the client's shard at
  hydration (:class:`repro.population.hydration.ClientPool`), so the
  label-flip adversary trains honestly on dishonest data and virtual-shard
  fleets stay O(active cohort).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngFactory

__all__ = ["ADVERSARY_STREAM", "is_adversary", "apply_delta_attack", "flip_labels"]

#: The counter-stream name adversarial membership draws from.
ADVERSARY_STREAM = "adversary"


def is_adversary(seed: int, cid: int, fraction: float) -> bool:
    """Whether client ``cid`` is adversarial under ``(seed, fraction)``.

    Each client flips its own independent coin from the ``"adversary"``
    counter stream, so the expected adversarial fraction is ``fraction``
    and membership never depends on fleet size, sampling order, or which
    process asks. ``fraction=0`` short-circuits without constructing a
    generator — the honest path stays draw-free.
    """
    if fraction <= 0.0:
        return False
    if fraction >= 1.0:
        return True
    rng = RngFactory(seed).counter(ADVERSARY_STREAM, cid)
    return float(rng.random()) < fraction


def apply_delta_attack(
    delta: np.ndarray, adversary: str, *, scale: float = 10.0
) -> np.ndarray:
    """Corrupt a trained update in place; returns ``delta``.

    ``sign_flip`` negates the update (the classic gradient-ascent
    byzantine), ``scaled`` inflates it by ``scale`` (model-replacement
    style). ``label_flip`` is a data-poisoning adversary — its delta is the
    honest output of training on flipped labels, so here it is a no-op.
    """
    if adversary == "sign_flip":
        np.negative(delta, out=delta)
    elif adversary == "scaled":
        delta *= float(scale)
    elif adversary != "label_flip":
        raise ValueError(f"unknown adversary {adversary!r}")
    return delta


def flip_labels(y: np.ndarray, num_classes: int) -> np.ndarray:
    """Deterministic label flip ``y ↦ (C−1) − y``, in place; returns ``y``.

    The fixed permutation (not a random relabeling) keeps poisoning a pure
    function of the shard — no RNG, no order sensitivity — and maximally
    displaces every class under the usual ordered label sets.
    """
    if num_classes < 2:
        raise ValueError(f"num_classes must be >= 2, got {num_classes}")
    np.subtract(num_classes - 1, y, out=y)
    return y
