"""Command-line interface.

::

    python -m repro run --dataset cifar10 --algorithm bcrs_opwa --cr 0.1 --beta 0.1
    python -m repro run --dataset cifar10 --mode async --buffer-size 3
    python -m repro run --dataset cifar10 --mode hier --num-edges 4 --edge-rounds 2
    python -m repro run --dataset cifar10 --contention fair --ingress-mbps 2
    python -m repro compare --dataset svhn --cr 0.01 --beta 0.5 --rounds 40
    python -m repro modes --dataset cifar10 --algorithm topk --target-acc 0.3
    python -m repro hier --edges 1,2,5 --algorithm bcrs_opwa --backhaul-mbps 100
    python -m repro comm --dataset cifar10 --algorithm topk --cr 0.1
    python -m repro sweep --param gamma --values 3,5,7 --algorithm bcrs_opwa --cr 0.01
    python -m repro info

``run``/``compare``/``sweep`` accept ``--save-history out.json`` and
``--export-csv out.csv`` for downstream plotting.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.compression.registry import available_compressors
from repro.experiments.presets import bench_config, paper_config
from repro.experiments.reporting import (
    series_text,
    summarize_comm,
    summarize_comparison,
    summarize_hier,
    summarize_modes,
)
from repro.experiments.runner import (
    run_comparison,
    run_hier,
    run_modes,
    sweep as run_sweep,
)
from repro.fl.config import ALGORITHMS, BACKENDS, MODES
from repro.io.history_io import export_curves_csv, save_history
from repro.simtime import make_simulation

__all__ = ["main", "build_parser"]


def _add_common(p: argparse.ArgumentParser, *, mode_flag: bool = True) -> None:
    p.add_argument("--dataset", default="cifar10", help="cifar10 | svhn | cifar100 | synth-*")
    p.add_argument("--beta", type=float, default=0.5, help="Dirichlet heterogeneity")
    p.add_argument("--cr", type=float, default=0.1, help="compression ratio CR*")
    p.add_argument("--rounds", type=int, default=None, help="communication rounds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--paper-scale", action="store_true", help="use the full Sec. 5.1 budget")
    p.add_argument(
        "--backend", default="serial", choices=BACKENDS,
        help="execution backend for the round's client work",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="parallel worker count for thread/process backends (default: auto)",
    )
    if mode_flag:  # the `modes` subcommand races every protocol instead
        p.add_argument(
            "--mode", default="sync", choices=MODES,
            help="round protocol: lock-step sync, deadline semisync, FedBuff async",
        )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="semisync: fixed round deadline on the virtual clock "
             "(default: per-round quantile of predicted finish times)",
    )
    p.add_argument(
        "--buffer-size", type=int, default=None, metavar="K",
        help="async: aggregate every K arrivals (default: half the concurrency)",
    )
    p.add_argument(
        "--num-edges", type=int, default=None, metavar="E",
        help="hier: edge aggregators between cloud and clients (default: 1)",
    )
    p.add_argument(
        "--edge-rounds", type=int, default=None, metavar="K1",
        help="hier: client↔edge sub-rounds per cloud round (default: 1)",
    )
    p.add_argument(
        "--edge-assignment", default=None, metavar="MODE",
        choices=("contiguous", "random", "bandwidth"),
        help="hier: client→edge placement (default: contiguous)",
    )
    p.add_argument(
        "--backhaul-mbps", type=float, default=None, metavar="MBPS",
        help="hier: mean edge↔cloud bandwidth (default: free backhaul)",
    )
    p.add_argument(
        "--backhaul-latency", type=float, default=None, metavar="SECONDS",
        help="hier: mean edge↔cloud latency (default: 0)",
    )
    p.add_argument(
        "--contention", default=None, choices=("none", "fair"),
        help="server-ingress contention: exclusive links, or fair-shared "
             "capacity (needs --ingress-mbps)",
    )
    p.add_argument(
        "--ingress-mbps", type=float, default=None, metavar="MBPS",
        help="shared server-ingress capacity fair-shared among concurrent "
             "uploads (per edge under --mode hier)",
    )
    p.add_argument("--save-history", metavar="PATH", default=None)
    p.add_argument("--export-csv", metavar="PATH", default=None)


def _config(args: argparse.Namespace, algorithm: str):
    maker = paper_config if args.paper_scale else bench_config
    overrides = {
        "seed": args.seed,
        "backend": args.backend,
        "workers": args.workers,
        "mode": getattr(args, "mode", "sync"),
        "deadline_s": args.deadline,
        "buffer_size": args.buffer_size,
    }
    if args.rounds is not None:
        overrides["rounds"] = args.rounds
    for flag, field in (
        ("num_edges", "num_edges"),
        ("edge_rounds", "edge_rounds"),
        ("edge_assignment", "edge_assignment"),
        ("backhaul_mbps", "backhaul_bandwidth_mbps"),
        ("backhaul_latency", "backhaul_latency_s"),
        ("contention", "contention"),
        ("ingress_mbps", "server_ingress_mbps"),
    ):
        value = getattr(args, flag, None)
        if value is not None:
            overrides[field] = value
    return maker(
        args.dataset, algorithm, beta=args.beta, compression_ratio=args.cr, **overrides
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BCRS + OPWA federated-learning reproduction (ICPP 2024)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one algorithm and print its curve")
    p_run.add_argument("--algorithm", default="bcrs_opwa", choices=ALGORITHMS)
    _add_common(p_run)

    p_cmp = sub.add_parser("compare", help="run all five Table 2 algorithms")
    p_cmp.add_argument(
        "--algorithms", default=",".join(ALGORITHMS), help="comma-separated subset"
    )
    _add_common(p_cmp)

    p_sweep = sub.add_parser("sweep", help="sweep one config field")
    p_sweep.add_argument("--algorithm", default="bcrs_opwa", choices=ALGORITHMS)
    p_sweep.add_argument("--param", required=True, help="config field, e.g. gamma, alpha")
    p_sweep.add_argument("--values", required=True, help="comma-separated values")
    _add_common(p_sweep)

    p_modes = sub.add_parser(
        "modes", help="race sync vs semisync vs async on one config"
    )
    p_modes.add_argument("--algorithm", default="topk", choices=ALGORITHMS)
    p_modes.add_argument(
        "--target-acc", type=float, default=None,
        help="also report virtual time-to-target accuracy per mode",
    )
    _add_common(p_modes, mode_flag=False)

    p_hier = sub.add_parser(
        "hier", help="sweep the edge-tier width (flat baseline = 1 edge)"
    )
    p_hier.add_argument("--algorithm", default="bcrs_opwa", choices=ALGORITHMS)
    p_hier.add_argument(
        "--edges", default="1,2,5",
        help="comma-separated num_edges values to race (each <= num_clients)",
    )
    p_hier.add_argument(
        "--target-acc", type=float, default=None,
        help="also report virtual time-to-target accuracy per edge count",
    )
    _add_common(p_hier, mode_flag=False)

    p_comm = sub.add_parser(
        "comm", help="run one config and print its end-to-end flow ledger"
    )
    p_comm.add_argument("--algorithm", default="bcrs_opwa", choices=ALGORITHMS)
    p_comm.add_argument(
        "--top", type=int, default=5,
        help="how many top-uplink clients to list (default: 5)",
    )
    _add_common(p_comm)

    sub.add_parser("info", help="print registered algorithms and compressors")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "info":
        print(f"repro {__version__}")
        print("algorithms: " + ", ".join(ALGORITHMS))
        print("compressors: " + ", ".join(available_compressors()))
        return 0

    if args.command == "run":
        cfg = _config(args, args.algorithm)
        with make_simulation(cfg) as sim:
            history = sim.run()
        print(series_text(history, every=max(1, cfg.rounds // 10)))
        virt = history.records[-1].sim_end if history.records else 0.0
        print(f"\nfinal accuracy {history.final_accuracy():.4f}  "
              f"comm time {history.time.actual_total:.1f}s  "
              f"virtual time {virt:.1f}s  mode {cfg.mode}")
        if args.save_history:
            save_history(history, args.save_history)
        if args.export_csv:
            export_curves_csv(history, args.export_csv)
        return 0

    if args.command == "compare":
        algs = [a.strip() for a in args.algorithms.split(",") if a.strip()]
        unknown = [a for a in algs if a not in ALGORITHMS]
        if unknown:
            print(f"unknown algorithms: {unknown}", file=sys.stderr)
            return 2
        base = _config(args, "fedavg")
        results = run_comparison(base, algs, compression_ratio=args.cr)
        print(summarize_comparison(results))
        if args.save_history:
            for alg, h in results.items():
                save_history(h, f"{args.save_history}.{alg}.json")
        return 0

    if args.command == "modes":
        base = _config(args, args.algorithm)
        results = run_modes(base)
        print(summarize_modes(results, target=args.target_acc))
        if args.save_history:
            for mode, h in results.items():
                save_history(h, f"{args.save_history}.{mode}.json")
        if args.export_csv:
            for mode, h in results.items():
                export_curves_csv(h, f"{args.export_csv}.{mode}.csv")
        return 0

    if args.command == "hier":
        base = _config(args, args.algorithm)
        edge_counts = [int(v) for v in args.edges.split(",") if v.strip()]
        bad = [e for e in edge_counts if not 1 <= e <= base.num_clients]
        if bad:
            print(
                f"--edges values must be in [1, num_clients={base.num_clients}], "
                f"got {bad}",
                file=sys.stderr,
            )
            return 2
        results = run_hier(base, edge_counts)
        print(summarize_hier(results, target=args.target_acc))
        if args.save_history:
            for e, h in results.items():
                save_history(h, f"{args.save_history}.edges{e}.json")
        if args.export_csv:
            for e, h in results.items():
                export_curves_csv(h, f"{args.export_csv}.edges{e}.csv")
        return 0

    if args.command == "comm":
        cfg = _config(args, args.algorithm)
        with make_simulation(cfg) as sim:
            history = sim.run()
        print(summarize_comm(history, top=args.top))
        print(f"\nmode {cfg.mode}  contention {cfg.contention}  "
              f"final accuracy {history.final_accuracy():.4f}")
        if args.save_history:
            save_history(history, args.save_history)
        if args.export_csv:
            export_curves_csv(history, args.export_csv)
        return 0

    if args.command == "sweep":
        base = _config(args, args.algorithm)
        raw = [v.strip() for v in args.values.split(",") if v.strip()]
        field_type = type(getattr(base, args.param))
        values = [field_type(v) for v in raw]
        results = run_sweep(base, args.param, values)
        for v in values:
            h = results[v]
            print(f"{args.param}={v}: final {h.final_accuracy():.4f}  "
                  f"best {h.best_accuracy():.4f}")
        return 0

    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
