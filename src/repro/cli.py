"""Command-line interface.

::

    python -m repro run --dataset cifar10 --algorithm bcrs_opwa --cr 0.1 --beta 0.1
    python -m repro run --dataset cifar10 --mode async --buffer-size 3
    python -m repro run --dataset cifar10 --mode hier --num-edges 4 --edge-rounds 2
    python -m repro run --dataset cifar10 --contention fair --ingress-mbps 2
    python -m repro compare --dataset svhn --cr 0.01 --beta 0.5 --rounds 40
    python -m repro modes --dataset cifar10 --algorithm topk --target-acc 0.3
    python -m repro hier --edges 1,2,5 --algorithm bcrs_opwa --backhaul-mbps 100
    python -m repro comm --dataset cifar10 --algorithm topk --cr 0.1
    python -m repro sweep --param gamma --values 3,5,7 --algorithm bcrs_opwa --cr 0.01
    python -m repro sweep --grid gamma=3,5,7 --grid alpha=0.1,0.3 --seeds 2 --parallel 4
    python -m repro scenario list
    python -m repro scenario run straggler-storm
    python -m repro report --store runs/ --trace trace.json --out report.html
    python -m repro info

``run``/``compare``/``sweep`` accept ``--save-history out.json`` and
``--export-csv out.csv`` for downstream plotting. ``sweep --store DIR``
persists one JSON per grid cell and resumes interrupted sweeps (completed
cells are skipped on rerun). ``--html PATH`` on ``run``/``comm``/``sweep``/
``scenario run`` renders a self-contained HTML report of the run's
artifacts; the ``report`` verb rebuilds one post-hoc from stored files.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro import __version__
from repro.compression.registry import available_compressors
from repro.experiments.presets import bench_config, paper_config
from repro.experiments.reporting import (
    series_text,
    summarize_comm,
    summarize_comparison,
    summarize_hier,
    summarize_modes,
    summarize_sweep,
)
from repro.experiments.runner import (
    run_comparison,
    run_hier,
    run_modes,
)
from repro.fl.config import ALGORITHMS, BACKENDS, MODES
from repro.io.history_io import export_curves_csv, load_history, save_history
from repro.obs import SweepProgress, format_profile, load_trace, make_obs
from repro.report import write_report
from repro.scenarios import (
    REGISTRY,
    RunStore,
    ScenarioSpec,
    SWEEP_EXECUTORS,
    SweepReport,
    SweepRunner,
    coerce_field,
    expand_grid,
    get_scenario,
    parse_axis,
)
from repro.simtime import make_simulation

__all__ = ["main", "build_parser"]


def _add_common(p: argparse.ArgumentParser, *, mode_flag: bool = True) -> None:
    p.add_argument("--dataset", default="cifar10", help="cifar10 | svhn | cifar100 | synth-*")
    p.add_argument("--beta", type=float, default=0.5, help="Dirichlet heterogeneity")
    p.add_argument("--cr", type=float, default=0.1, help="compression ratio CR*")
    p.add_argument("--rounds", type=int, default=None, help="communication rounds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--paper-scale", action="store_true", help="use the full Sec. 5.1 budget")
    p.add_argument(
        "--backend", default="serial", choices=BACKENDS,
        help="execution backend for the round's client work",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="parallel worker count for thread/process backends (default: auto)",
    )
    if mode_flag:  # the `modes` subcommand races every protocol instead
        p.add_argument(
            "--mode", default="sync", choices=MODES,
            help="round protocol: lock-step sync, deadline semisync, FedBuff async",
        )
    p.add_argument(
        "--num-clients", type=int, default=None, metavar="N",
        help="fleet size (population columns scale to millions; see "
             "--virtual-shards for fleets larger than the corpus)",
    )
    p.add_argument(
        "--participation", type=float, default=None, metavar="C",
        help="fraction of the fleet sampled per round",
    )
    p.add_argument(
        "--virtual-shards", action="store_true",
        help="fleet-scale data regime: client shards are counter-seeded "
             "draws from the shared corpus instead of a partition of it",
    )
    p.add_argument(
        "--hydration-cache", type=int, default=None, metavar="K",
        help="LRU capacity for hydrated Client objects (default: cohort size)",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="semisync: fixed round deadline on the virtual clock "
             "(default: per-round quantile of predicted finish times)",
    )
    p.add_argument(
        "--buffer-size", type=int, default=None, metavar="K",
        help="async: aggregate every K arrivals (default: half the concurrency)",
    )
    p.add_argument(
        "--num-edges", type=int, default=None, metavar="E",
        help="hier: edge aggregators between cloud and clients (default: 1)",
    )
    p.add_argument(
        "--edge-rounds", type=int, default=None, metavar="K1",
        help="hier: client↔edge sub-rounds per cloud round (default: 1)",
    )
    p.add_argument(
        "--edge-assignment", default=None, metavar="MODE",
        choices=("contiguous", "random", "bandwidth"),
        help="hier: client→edge placement (default: contiguous)",
    )
    p.add_argument(
        "--backhaul-mbps", type=float, default=None, metavar="MBPS",
        help="hier: mean edge↔cloud bandwidth (default: free backhaul)",
    )
    p.add_argument(
        "--backhaul-latency", type=float, default=None, metavar="SECONDS",
        help="hier: mean edge↔cloud latency (default: 0)",
    )
    p.add_argument(
        "--contention", default=None, choices=("none", "fair"),
        help="server-ingress contention: exclusive links, or fair-shared "
             "capacity (needs --ingress-mbps)",
    )
    p.add_argument(
        "--ingress-mbps", type=float, default=None, metavar="MBPS",
        help="shared server-ingress capacity fair-shared among concurrent "
             "uploads (per edge under --mode hier)",
    )
    p.add_argument(
        "--adversary", default=None, choices=("sign_flip", "scaled", "label_flip"),
        help="byzantine client behavior (members drawn per client from a "
             "seed-pure counter stream; see --adversary-fraction)",
    )
    p.add_argument(
        "--adversary-fraction", type=float, default=None, metavar="F",
        help="expected fraction of adversarial clients (default: 0)",
    )
    p.add_argument(
        "--adversary-scale", type=float, default=None, metavar="LAMBDA",
        help="update magnification for --adversary scaled (default: 10)",
    )
    p.add_argument(
        "--aggregator", default=None,
        choices=("mean", "median", "trimmed_mean", "norm_clip"),
        help="server aggregation rule (default: weighted mean)",
    )
    p.add_argument(
        "--trim-beta", type=float, default=None, metavar="BETA",
        help="trimmed_mean: trim ⌊β·n⌋ updates per coordinate tail",
    )
    p.add_argument(
        "--clip-tau", type=float, default=None, metavar="TAU",
        help="norm_clip: L2 radius updates are scaled into",
    )
    p.add_argument(
        "--drop-prob", type=float, default=None, metavar="P",
        help="per-upload probability the payload is lost in flight",
    )
    p.add_argument(
        "--truncate-prob", type=float, default=None, metavar="P",
        help="per-upload probability the payload arrives truncated "
             "(re-priced at its delivered bits)",
    )
    p.add_argument(
        "--edge-crash-prob", type=float, default=None, metavar="P",
        help="hier: per-(round, edge) aggregator crash probability",
    )
    p.add_argument("--save-history", metavar="PATH", default=None)
    p.add_argument("--export-csv", metavar="PATH", default=None)


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome-trace JSON (open in Perfetto) plus a sibling "
             ".jsonl event stream; tracing off = zero-overhead null path",
    )
    p.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write a metrics-registry JSON plus a sibling .prom "
             "(Prometheus text) snapshot",
    )
    p.add_argument(
        "--html", metavar="PATH", default=None,
        help="render a self-contained HTML report (inline SVG/CSS, no "
             "external URLs) of this run's artifacts; sections for the "
             "trace and metrics appear when those flags are also set",
    )


def _git_describe() -> str | None:
    """``git describe`` of the source tree, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _run_manifest(cfg, *, spec: ScenarioSpec | None = None) -> dict:
    """Provenance header for a single-run report page."""
    manifest: dict[str, str] = {}
    if spec is not None:
        manifest["scenario"] = spec.name
        manifest["spec hash"] = spec.spec_hash()
    manifest.update({
        "dataset": cfg.dataset,
        "algorithm": cfg.algorithm,
        "mode": cfg.mode,
        "backend": cfg.backend,
        "rounds": str(cfg.rounds),
        "clients": str(cfg.num_clients),
        "seed": str(cfg.seed),
        "version": __version__,
    })
    describe = _git_describe()
    if describe:
        manifest["git"] = describe
    return manifest


def _write_html(
    args: argparse.Namespace,
    *,
    history=None,
    sweep=None,
    obs=None,
    manifest: dict | None = None,
    title: str,
    target_acc: float | None = None,
) -> None:
    """Render the ``--html`` page for a run that just finished (if asked)."""
    if getattr(args, "html", None) is None:
        return
    trace = metrics = None
    if obs is not None and obs.tracer.enabled and obs.tracer.spans:
        trace = list(obs.tracer.spans)
    if obs is not None and getattr(obs.metrics, "enabled", False):
        metrics = obs.metrics
    write_report(
        args.html,
        history=history,
        sweep=sweep,
        trace=trace,
        metrics=metrics,
        manifest=manifest,
        title=title,
        target_acc=target_acc,
    )
    print(f"wrote {args.html}")


def _finish_obs(obs, sim=None) -> None:
    """Export the run's observability artifacts (virtual spans included)."""
    if not obs.enabled:
        return
    if sim is not None and obs.tracer.enabled and getattr(sim, "spans", None):
        # Mirror the virtual-clock timeline next to the wall-clock one;
        # capped so a mega-fleet trace stays Perfetto-sized.
        obs.tracer.add_virtual_spans(sim.spans, limit=20_000)
    for path in obs.export():
        print(f"wrote {path}")


def _config(args: argparse.Namespace, algorithm: str):
    maker = paper_config if args.paper_scale else bench_config
    overrides = {
        "workers": args.workers,
        "mode": getattr(args, "mode", "sync"),
        "deadline_s": args.deadline,
        "buffer_size": args.buffer_size,
    }
    # `sweep` nulls these defaults so "explicitly passed" is detectable
    # (a --scenario base must not be silently clobbered by defaults).
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.rounds is not None:
        overrides["rounds"] = args.rounds
    if getattr(args, "virtual_shards", False):
        overrides["virtual_shards"] = True
    for flag, field in (
        ("num_clients", "num_clients"),
        ("participation", "participation"),
        ("hydration_cache", "hydration_cache"),
        ("num_edges", "num_edges"),
        ("edge_rounds", "edge_rounds"),
        ("edge_assignment", "edge_assignment"),
        ("backhaul_mbps", "backhaul_bandwidth_mbps"),
        ("backhaul_latency", "backhaul_latency_s"),
        ("contention", "contention"),
        ("ingress_mbps", "server_ingress_mbps"),
        ("adversary", "adversary"),
        ("adversary_fraction", "adversary_fraction"),
        ("adversary_scale", "adversary_scale"),
        ("aggregator", "aggregator"),
        ("trim_beta", "trim_beta"),
        ("clip_tau", "clip_tau"),
        ("drop_prob", "drop_prob"),
        ("truncate_prob", "truncate_prob"),
        ("edge_crash_prob", "edge_crash_prob"),
    ):
        value = getattr(args, flag, None)
        if value is not None:
            overrides[field] = value
    return maker(
        args.dataset, algorithm, beta=args.beta, compression_ratio=args.cr, **overrides
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BCRS + OPWA federated-learning reproduction (ICPP 2024)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one algorithm and print its curve")
    p_run.add_argument("--algorithm", default="bcrs_opwa", choices=ALGORITHMS)
    _add_common(p_run)
    _add_obs_flags(p_run)

    p_cmp = sub.add_parser("compare", help="run all five Table 2 algorithms")
    p_cmp.add_argument(
        "--algorithms", default=",".join(ALGORITHMS), help="comma-separated subset"
    )
    _add_common(p_cmp)

    p_sweep = sub.add_parser(
        "sweep", help="sweep config fields (single --param axis or multi --grid)"
    )
    p_sweep.add_argument("--algorithm", default="bcrs_opwa", choices=ALGORITHMS)
    p_sweep.add_argument("--param", default=None, help="config field, e.g. gamma, alpha")
    p_sweep.add_argument("--values", default=None, help="comma-separated values for --param")
    p_sweep.add_argument(
        "--grid", action="append", default=None, metavar="FIELD=V1,V2,...",
        help="one grid axis (repeatable); values are typed through the "
             "config field's declared type, so booleans and 'none' work",
    )
    p_sweep.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="use a registered scenario as the grid base instead of the "
             "preset flags",
    )
    p_sweep.add_argument(
        "--seeds", type=int, default=None, metavar="K",
        help="replicate every cell over K seeds (base seed .. base seed+K-1)",
    )
    p_sweep.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="max cells in flight at once (default: 1, sequential)",
    )
    p_sweep.add_argument(
        "--executor", default=None, choices=SWEEP_EXECUTORS,
        help="cell pool (default: process when --parallel > 1)",
    )
    p_sweep.add_argument(
        "--store", default=None, metavar="DIR",
        help="resumable run store: one JSON per cell; rerunning skips "
             "completed cells",
    )
    p_sweep.add_argument(
        "--target-acc", type=float, default=None,
        help="also report the virtual time-to-target frontier",
    )
    p_sweep.add_argument(
        "--progress", action="store_true",
        help="live one-line status: cells done/running/failed + ETA",
    )
    _add_common(p_sweep)
    _add_obs_flags(p_sweep)
    # Null the defaults so a --scenario base is only overridden by flags
    # the user actually typed (see _config / _cmd_sweep).
    p_sweep.set_defaults(seed=None, backend=None)

    p_scn = sub.add_parser(
        "scenario", help="list, show, or run registered cross-feature scenarios"
    )
    p_scn.add_argument("action", choices=("list", "show", "run"))
    p_scn.add_argument("name", nargs="?", help="scenario name (for show/run)")
    p_scn.add_argument("--rounds", type=int, default=None, help="override the budget")
    p_scn.add_argument("--seed", type=int, default=None, help="override the seed")
    p_scn.add_argument(
        "--backend", default=None, choices=BACKENDS,
        help="override the execution backend",
    )
    p_scn.add_argument("--workers", type=int, default=None)
    p_scn.add_argument("--save-history", metavar="PATH", default=None)
    p_scn.add_argument("--export-csv", metavar="PATH", default=None)
    _add_obs_flags(p_scn)

    p_modes = sub.add_parser(
        "modes", help="race sync vs semisync vs async on one config"
    )
    p_modes.add_argument("--algorithm", default="topk", choices=ALGORITHMS)
    p_modes.add_argument(
        "--target-acc", type=float, default=None,
        help="also report virtual time-to-target accuracy per mode",
    )
    _add_common(p_modes, mode_flag=False)

    p_hier = sub.add_parser(
        "hier", help="sweep the edge-tier width (flat baseline = 1 edge)"
    )
    p_hier.add_argument("--algorithm", default="bcrs_opwa", choices=ALGORITHMS)
    p_hier.add_argument(
        "--edges", default="1,2,5",
        help="comma-separated num_edges values to race (each <= num_clients)",
    )
    p_hier.add_argument(
        "--target-acc", type=float, default=None,
        help="also report virtual time-to-target accuracy per edge count",
    )
    _add_common(p_hier, mode_flag=False)

    p_comm = sub.add_parser(
        "comm", help="run one config and print its end-to-end flow ledger"
    )
    p_comm.add_argument("--algorithm", default="bcrs_opwa", choices=ALGORITHMS)
    p_comm.add_argument(
        "--top", type=int, default=5,
        help="how many top-uplink clients to list (default: 5)",
    )
    _add_common(p_comm)
    _add_obs_flags(p_comm)

    p_rep = sub.add_parser(
        "report",
        help="render a self-contained HTML report from stored artifacts",
    )
    p_rep.add_argument(
        "--out", required=True, metavar="PATH", help="where to write the page"
    )
    p_rep.add_argument(
        "--history", default=None, metavar="PATH",
        help="a saved history JSON (from --save-history)",
    )
    p_rep.add_argument(
        "--store", default=None, metavar="DIR",
        help="a sweep run store (from sweep --store); renders the sweep "
             "section over every completed cell",
    )
    p_rep.add_argument(
        "--trace", default=None, metavar="PATH",
        help="an exported trace: Chrome JSON or .jsonl stream",
    )
    p_rep.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="an exported metrics-registry JSON",
    )
    p_rep.add_argument(
        "--target-acc", type=float, default=None,
        help="add the virtual time-to-target frontier to the sweep section",
    )
    p_rep.add_argument(
        "--title", default="Experiment report", help="page title"
    )

    p_prof = sub.add_parser(
        "profile", help="rank the top hot spots from an exported trace"
    )
    p_prof.add_argument("trace", help="trace file: Chrome JSON or .jsonl stream")
    p_prof.add_argument(
        "--top", type=int, default=10, help="hot spots to list (default: 10)"
    )

    sub.add_parser("info", help="print registered algorithms and compressors")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "info":
        print(f"repro {__version__}")
        print("algorithms: " + ", ".join(ALGORITHMS))
        print("compressors: " + ", ".join(available_compressors()))
        return 0

    if args.command == "profile":
        try:
            spans = load_trace(args.trace)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
            return 2
        print(format_profile(spans, top=args.top))
        return 0

    if args.command == "report":
        return _cmd_report(args)

    if args.command == "run":
        cfg = _config(args, args.algorithm)
        obs = make_obs(args.trace, args.metrics)
        with make_simulation(cfg, obs=obs) as sim:
            history = sim.run()
            _finish_obs(obs, sim)
        print(series_text(history, every=max(1, cfg.rounds // 10)))
        virt = history.records[-1].sim_end if history.records else 0.0
        print(f"\nfinal accuracy {history.final_accuracy():.4f}  "
              f"comm time {history.time.actual_total:.1f}s  "
              f"virtual time {virt:.1f}s  mode {cfg.mode}")
        if args.save_history:
            save_history(history, args.save_history)
        if args.export_csv:
            export_curves_csv(history, args.export_csv)
        _write_html(
            args, history=history, obs=obs, manifest=_run_manifest(cfg),
            title=f"run: {args.algorithm} on {cfg.dataset}",
        )
        return 0

    if args.command == "compare":
        algs = [a.strip() for a in args.algorithms.split(",") if a.strip()]
        unknown = [a for a in algs if a not in ALGORITHMS]
        if unknown:
            print(f"unknown algorithms: {unknown}", file=sys.stderr)
            return 2
        base = _config(args, "fedavg")
        results = run_comparison(base, algs, compression_ratio=args.cr)
        print(summarize_comparison(results))
        if args.save_history:
            for alg, h in results.items():
                save_history(h, f"{args.save_history}.{alg}.json")
        return 0

    if args.command == "modes":
        base = _config(args, args.algorithm)
        results = run_modes(base)
        print(summarize_modes(results, target=args.target_acc))
        if args.save_history:
            for mode, h in results.items():
                save_history(h, f"{args.save_history}.{mode}.json")
        if args.export_csv:
            for mode, h in results.items():
                export_curves_csv(h, f"{args.export_csv}.{mode}.csv")
        return 0

    if args.command == "hier":
        base = _config(args, args.algorithm)
        edge_counts = [int(v) for v in args.edges.split(",") if v.strip()]
        bad = [e for e in edge_counts if not 1 <= e <= base.num_clients]
        if bad:
            print(
                f"--edges values must be in [1, num_clients={base.num_clients}], "
                f"got {bad}",
                file=sys.stderr,
            )
            return 2
        results = run_hier(base, edge_counts)
        print(summarize_hier(results, target=args.target_acc))
        if args.save_history:
            for e, h in results.items():
                save_history(h, f"{args.save_history}.edges{e}.json")
        if args.export_csv:
            for e, h in results.items():
                export_curves_csv(h, f"{args.export_csv}.edges{e}.csv")
        return 0

    if args.command == "comm":
        cfg = _config(args, args.algorithm)
        obs = make_obs(args.trace, args.metrics)
        with make_simulation(cfg, obs=obs) as sim:
            history = sim.run()
            _finish_obs(obs, sim)
        print(summarize_comm(history, top=args.top))
        print(f"\nmode {cfg.mode}  contention {cfg.contention}  "
              f"final accuracy {history.final_accuracy():.4f}")
        if args.save_history:
            save_history(history, args.save_history)
        if args.export_csv:
            export_curves_csv(history, args.export_csv)
        _write_html(
            args, history=history, obs=obs, manifest=_run_manifest(cfg),
            title=f"comm: {args.algorithm} on {cfg.dataset}",
        )
        return 0

    if args.command == "sweep":
        return _cmd_sweep(args)

    if args.command == "scenario":
        return _cmd_scenario(args)

    raise AssertionError("unreachable")


def _errmsg(exc: BaseException) -> str:
    """The exception's message, unwrapped (KeyError str-quotes its arg)."""
    return str(exc.args[0]) if exc.args else str(exc)


def _layered_overrides(args: argparse.Namespace) -> dict:
    """Engine/budget flags the user explicitly typed, as config overrides.

    Shared by ``scenario run`` and ``sweep --scenario`` so a registered
    scenario reacts to the same flags either way.
    """
    return {
        field: value
        for field, value in (
            ("rounds", args.rounds),
            ("seed", args.seed),
            ("backend", args.backend),
            ("workers", args.workers),
        )
        if value is not None
    }


def _cmd_sweep(args: argparse.Namespace) -> int:
    """The generalized sweep: typed axes, grids, parallelism, resume."""
    axes: dict[str, list] = {}
    try:
        if (args.param is None) != (args.values is None):
            raise ValueError("--param and --values go together")
        if args.param is not None:
            # The single-axis legacy spelling; values are typed through the
            # dataclass field type (booleans and 'none' included) instead
            # of the old stringify-then-cast, which mangled both.
            axes[args.param] = [
                coerce_field(args.param, v.strip())
                for v in args.values.split(",")
                if v.strip()
            ]
            if not axes[args.param]:
                raise ValueError("--values is empty")
        for text in args.grid or []:
            name, values = parse_axis(text)
            if name in axes:
                raise ValueError(f"axis {name!r} given twice")
            axes[name] = values
        if not axes:
            raise ValueError("nothing to sweep: give --param/--values or --grid")
        if args.scenario is not None:
            # The scenario is the base; explicitly-typed engine/budget flags
            # layer on top (like `scenario run`); the preset flags
            # (--dataset, --cr, ...) don't apply — vary those as grid axes.
            base = get_scenario(args.scenario)
            layered = _layered_overrides(args)
            if layered:
                base = base.with_overrides(**layered)
        else:
            base = ScenarioSpec.from_config(_config(args, args.algorithm), name="sweep")
        cells = expand_grid(base, axes, seeds=args.seeds)
        for cell in cells:
            cell.to_config()  # surface cross-field errors before running
        store = RunStore(args.store) if args.store else None
        obs = make_obs(args.trace, args.metrics)
        live = (
            SweepProgress(len(cells), parallel=args.parallel)
            if args.progress
            else None
        )
        runner = SweepRunner(
            cells,
            parallel=args.parallel,
            executor=args.executor,
            store=store,
            obs=obs,
            on_start=(lambda s: live.on_start(s.name)) if live else None,
            progress=(
                (lambda s, c: live.on_result(s.name, {"ok": True}, cached=c))
                if live
                else None
            ),
        )
    except (KeyError, ValueError) as exc:
        print(_errmsg(exc), file=sys.stderr)
        return 2

    try:
        report = runner.run()
    finally:
        if live is not None:
            live.close()
    _finish_obs(obs)
    for spec, h in report.cells:
        print(f"{report.label(spec)}: final {h.final_accuracy():.4f}  "
              f"best {h.best_accuracy():.4f}")
    print()
    print(summarize_sweep(report, target=args.target_acc))
    if args.save_history:
        for spec, h in report.cells:
            save_history(h, f"{args.save_history}.{spec.spec_hash()}.json")
    if args.export_csv:
        for spec, h in report.cells:
            export_curves_csv(h, f"{args.export_csv}.{spec.spec_hash()}.csv")
    manifest = {
        "base": base.name,
        "base hash": base.spec_hash(),
        "axes": ", ".join(f"{k}={len(v)}" for k, v in axes.items()),
        "cells": str(len(cells)),
        "version": __version__,
    }
    describe = _git_describe()
    if describe:
        manifest["git"] = describe
    _write_html(
        args, sweep=report, obs=obs, manifest=manifest,
        title=f"sweep: {base.name}", target_acc=args.target_acc,
    )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    """``scenario list | show NAME | run NAME``."""
    if args.action == "list":
        rows = []
        for spec in REGISTRY:
            cfg = spec.to_config()
            extras = []
            if cfg.compressor:
                extras.append(cfg.compressor)
            if cfg.contention != "none":
                extras.append("contended")
            rows.append(
                f"{spec.name:<18} {cfg.mode:<9} {cfg.algorithm:<10} "
                f"{','.join(spec.tags):<28} {' '.join(extras)}"
            )
        print(f"{'name':<18} {'mode':<9} {'algorithm':<10} {'tags':<28}")
        print("-" * 70)
        print("\n".join(rows))
        print("\nrun one with:  python -m repro scenario run <name>")
        return 0

    if args.name is None:
        print(f"scenario {args.action} needs a name; try 'scenario list'",
              file=sys.stderr)
        return 2
    try:
        spec = get_scenario(args.name)
    except KeyError as exc:
        print(_errmsg(exc), file=sys.stderr)
        return 2

    if args.action == "show":
        print(spec.summary())
        print(f"\n{spec.description}\n")
        print(f"expected: {spec.expected}\n")
        print("overrides (vs ExperimentConfig defaults):")
        for k, v in spec.overrides.items():
            print(f"  {k} = {v!r}")
        print(f"\nspec hash: {spec.spec_hash()}")
        return 0

    spec = spec.with_overrides(**_layered_overrides(args))
    cfg = spec.to_config()
    obs = make_obs(args.trace, args.metrics)
    with make_simulation(cfg, obs=obs) as sim:
        history = sim.run()
        _finish_obs(obs, sim)
    print(series_text(history, every=max(1, cfg.rounds // 10)))
    virt = history.records[-1].sim_end if history.records else 0.0
    print(f"\nscenario {spec.name}  mode {cfg.mode}  "
          f"final accuracy {history.final_accuracy():.4f}  "
          f"virtual time {virt:.1f}s")
    if args.save_history:
        save_history(history, args.save_history)
    if args.export_csv:
        export_curves_csv(history, args.export_csv)
    _write_html(
        args, history=history, obs=obs, manifest=_run_manifest(cfg, spec=spec),
        title=f"scenario: {spec.name}",
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """``report``: rebuild an HTML page post-hoc from stored artifacts."""
    sources = [s for s in (args.history, args.store, args.trace, args.metrics) if s]
    if not sources:
        print(
            "report needs at least one artifact: "
            "--history / --store / --trace / --metrics",
            file=sys.stderr,
        )
        return 2
    try:
        history = load_history(args.history) if args.history else None
        sweep = None
        if args.store:
            cells = RunStore(args.store).load_all()
            if not cells:
                raise ValueError(f"no completed cells in store {args.store!r}")
            sweep = SweepReport(cells=cells, executed=0, reused=len(cells))
        trace = load_trace(args.trace) if args.trace else None
        metrics = None
        if args.metrics:
            with open(args.metrics) as fh:
                metrics = json.load(fh)
    except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
        print(f"cannot load artifacts: {_errmsg(exc)}", file=sys.stderr)
        return 2
    manifest = {"sources": ", ".join(sources), "version": __version__}
    describe = _git_describe()
    if describe:
        manifest["git"] = describe
    write_report(
        args.out,
        history=history,
        sweep=sweep,
        trace=trace,
        metrics=metrics,
        manifest=manifest,
        title=args.title,
        target_acc=args.target_acc,
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
