"""Seeded mini-batch iteration over in-memory datasets."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.data.datasets import Dataset
from repro.utils.rng import as_generator

__all__ = ["BatchLoader"]


class BatchLoader:
    """Iterate a dataset in shuffled mini-batches.

    Re-iterating yields a fresh shuffle from the same generator, so a client's
    epoch order is reproducible given its RNG stream.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        rng: int | np.random.Generator = 0,
        *,
        shuffle: bool = True,
        drop_last: bool = False,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.rng = as_generator(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset.x[idx], self.dataset.y[idx]
