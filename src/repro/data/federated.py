"""Natural (feature-skew) federated datasets.

Dirichlet partitioning skews *labels*; real cross-device federations also
skew *features* — every device sees the world through its own camera,
microphone, or sensor calibration. This module generates per-client datasets
whose class templates are client-specific perturbations of shared global
templates, so clients agree on the task but disagree on its appearance
(LEAF-style natural heterogeneity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import DATASET_SPECS, Dataset, SyntheticSpec, _class_templates
from repro.utils.rng import as_generator

__all__ = ["FederatedDataset", "make_feature_skew_federation"]


@dataclass
class FederatedDataset:
    """Per-client train shards plus a shared (global-distribution) test set."""

    client_datasets: list[Dataset]
    test_set: Dataset

    @property
    def num_clients(self) -> int:
        return len(self.client_datasets)

    def sizes(self) -> np.ndarray:
        """Per-client sample counts."""
        return np.array([len(d) for d in self.client_datasets], dtype=np.int64)


def make_feature_skew_federation(
    spec: SyntheticSpec | str,
    num_clients: int,
    samples_per_client: int,
    num_test: int,
    *,
    skew_strength: float = 0.5,
    seed: int | np.random.Generator = 0,
) -> FederatedDataset:
    """Build a federation with client-specific feature shift.

    Each client ``i`` draws from templates ``T + skew_strength · P_i`` where
    ``T`` are the shared class templates and ``P_i`` is a client-specific
    smooth perturbation (same for all classes of that client — a device
    signature, not a label change). The test set uses the unperturbed
    templates, measuring generalization to the global distribution.
    """
    if isinstance(spec, str):
        spec = DATASET_SPECS[spec]
    if num_clients < 1 or samples_per_client < 1 or num_test < 1:
        raise ValueError("num_clients, samples_per_client, num_test must be >= 1")
    if skew_strength < 0:
        raise ValueError(f"skew_strength must be >= 0, got {skew_strength}")
    rng = as_generator(seed)
    template_rng = np.random.default_rng(rng.integers(0, 2**63))
    templates = _class_templates(spec, template_rng)  # (K, C, H, W)
    k, c, h, w = templates.shape

    def sample_from(tpl: np.ndarray, n: int, sample_rng: np.random.Generator) -> Dataset:
        y = sample_rng.integers(0, spec.num_classes, size=n).astype(np.int64)
        x = tpl[y] + sample_rng.normal(0, spec.noise_std, size=(n, c, h, w))
        return Dataset(spec.name, x.astype(np.float32), y, spec.num_classes)

    clients = []
    for i in range(num_clients):
        # A smooth per-client signature: low-frequency random field shared
        # across that client's classes and channels.
        yy, xx = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
        fy, fx = rng.uniform(0.5, 1.5, size=2)
        py, px = rng.uniform(0, 2 * np.pi, size=2)
        signature = np.cos(2 * np.pi * fy * yy / h + py) * np.cos(2 * np.pi * fx * xx / w + px)
        client_templates = templates + skew_strength * signature[None, None, :, :]
        clients.append(sample_from(client_templates, samples_per_client, rng))

    test = sample_from(templates, num_test, rng)
    return FederatedDataset(client_datasets=clients, test_set=test)
