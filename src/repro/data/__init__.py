"""Data substrate: synthetic datasets, non-IID partitioning, batching, stats."""

from repro.data.datasets import DATASET_SPECS, Dataset, SyntheticSpec, make_dataset, train_test_split
from repro.data.federated import FederatedDataset, make_feature_skew_federation
from repro.data.loader import BatchLoader
from repro.data.partition import (
    Partition,
    dirichlet_partition,
    iid_partition,
    quantity_skew_partition,
    shard_partition,
)
from repro.data.stats import (
    earth_movers_distance,
    heatmap_text,
    label_entropy,
    mean_emd_to_global,
    mean_label_entropy,
)

__all__ = [
    "Dataset",
    "SyntheticSpec",
    "make_dataset",
    "train_test_split",
    "DATASET_SPECS",
    "BatchLoader",
    "Partition",
    "dirichlet_partition",
    "iid_partition",
    "shard_partition",
    "quantity_skew_partition",
    "FederatedDataset",
    "make_feature_skew_federation",
    "label_entropy",
    "mean_label_entropy",
    "earth_movers_distance",
    "mean_emd_to_global",
    "heatmap_text",
]
