"""Synthetic federated image-classification datasets.

The paper evaluates on CIFAR-10, CIFAR-100 and SVHN; this environment has no
network access, so we generate *synthetic stand-ins* with the same tensor
geometry (``C×H×W`` float images, integer labels) and learnable class
structure (DESIGN.md §2). Each class is a smooth spatial template plus
class-conditional color statistics; samples are template + noise + random
shift, so models must learn spatially structured features (not just means),
and harder datasets overlap their templates more.

- ``synth-cifar10``: 10 balanced classes, moderate difficulty.
- ``synth-cifar100``: 100 balanced classes, crowded label space (low accuracy
  ceiling, like real CIFAR-100).
- ``synth-svhn``: 10 classes with imbalanced priors (real SVHN digit
  frequencies are skewed) and easier separation (real SVHN reaches higher
  accuracy than CIFAR-10 at equal budget).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["Dataset", "SyntheticSpec", "make_dataset", "DATASET_SPECS", "train_test_split"]


@dataclass
class Dataset:
    """An in-memory split: images ``x`` (N, C, H, W) float32, labels ``y`` (N,) int64."""

    name: str
    x: np.ndarray
    y: np.ndarray
    num_classes: int

    def __post_init__(self):
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError(f"x/y length mismatch: {self.x.shape[0]} vs {self.y.shape[0]}")
        if self.x.ndim != 4:
            raise ValueError(f"x must be (N, C, H, W), got shape {self.x.shape}")

    def __len__(self) -> int:
        return int(self.x.shape[0])

    @property
    def in_channels(self) -> int:
        return int(self.x.shape[1])

    @property
    def image_size(self) -> int:
        return int(self.x.shape[2])

    def subset(self, indices: np.ndarray) -> "Dataset":
        """View of the dataset restricted to ``indices`` (copies the arrays)."""
        indices = np.asarray(indices)
        return Dataset(self.name, self.x[indices], self.y[indices], self.num_classes)


@dataclass(frozen=True)
class SyntheticSpec:
    """Generator recipe for one synthetic dataset."""

    name: str
    num_classes: int
    image_size: int = 8
    channels: int = 3
    noise_std: float = 0.8
    template_scale: float = 1.0
    class_priors: tuple[float, ...] | None = None  # None = balanced
    max_shift: int = 1

    def __post_init__(self):
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.class_priors is not None and len(self.class_priors) != self.num_classes:
            raise ValueError("class_priors length must equal num_classes")


def _class_templates(spec: SyntheticSpec, rng: np.random.Generator) -> np.ndarray:
    """Smooth per-class spatial templates of shape (K, C, H, W).

    Templates are low-frequency 2-D cosine mixtures with class-specific phases
    and channel gains, so nearby pixels correlate (image-like) and classes are
    distinguishable but overlapping.
    """
    k, c, s = spec.num_classes, spec.channels, spec.image_size
    yy, xx = np.meshgrid(np.arange(s), np.arange(s), indexing="ij")
    templates = np.zeros((k, c, s, s), dtype=np.float64)
    n_waves = 3
    for cls in range(k):
        freqs = rng.uniform(0.5, 2.0, size=(n_waves, 2))
        phases = rng.uniform(0, 2 * np.pi, size=(n_waves, 2))
        amps = rng.normal(0, 1, size=n_waves)
        gains = rng.normal(1.0, 0.3, size=c)
        plane = np.zeros((s, s))
        for w in range(n_waves):
            plane += amps[w] * np.cos(
                2 * np.pi * freqs[w, 0] * yy / s + phases[w, 0]
            ) * np.cos(2 * np.pi * freqs[w, 1] * xx / s + phases[w, 1])
        for ch in range(c):
            templates[cls, ch] = gains[ch] * plane
    # Normalize template energy so noise_std sets a consistent SNR.
    norms = np.sqrt((templates**2).mean(axis=(1, 2, 3), keepdims=True))
    templates = spec.template_scale * templates / np.maximum(norms, 1e-12)
    return templates


def make_dataset(
    spec: SyntheticSpec | str,
    num_samples: int,
    seed: int | np.random.Generator = 0,
) -> Dataset:
    """Sample ``num_samples`` labelled images from ``spec``.

    The same seed always yields the same dataset (templates are derived from a
    sub-stream so train/test splits drawn with different seeds share classes
    only if generated in one call — use :func:`train_test_split`).
    """
    if isinstance(spec, str):
        spec = DATASET_SPECS[spec]
    if num_samples <= 0:
        raise ValueError(f"num_samples must be > 0, got {num_samples}")
    rng = as_generator(seed)
    template_rng = np.random.default_rng(rng.integers(0, 2**63))
    templates = _class_templates(spec, template_rng)

    if spec.class_priors is None:
        priors = np.full(spec.num_classes, 1.0 / spec.num_classes)
    else:
        priors = np.asarray(spec.class_priors, dtype=np.float64)
        priors = priors / priors.sum()
    y = rng.choice(spec.num_classes, size=num_samples, p=priors).astype(np.int64)

    x = templates[y].copy()
    if spec.max_shift > 0:
        # Random circular shifts make the task translation-robust, not
        # solvable by a single pixel.
        shifts = rng.integers(-spec.max_shift, spec.max_shift + 1, size=(num_samples, 2))
        for axis in (0, 1):
            for shift in range(-spec.max_shift, spec.max_shift + 1):
                if shift == 0:
                    continue
                sel = shifts[:, axis] == shift
                if sel.any():
                    x[sel] = np.roll(x[sel], shift, axis=axis + 2)
    x += rng.normal(0, spec.noise_std, size=x.shape)
    return Dataset(spec.name, x.astype(np.float32), y, spec.num_classes)


def train_test_split(
    spec: SyntheticSpec | str,
    num_train: int,
    num_test: int,
    seed: int | np.random.Generator = 0,
) -> tuple[Dataset, Dataset]:
    """Generate train and test splits sharing the same class templates."""
    full = make_dataset(spec, num_train + num_test, seed)
    rng = as_generator(seed if not isinstance(seed, np.random.Generator) else seed)
    perm = np.random.default_rng(12345).permutation(len(full))
    return full.subset(perm[:num_train]), full.subset(perm[num_train:])


# Imbalanced priors loosely matching real SVHN digit frequencies ('1' is most common).
_SVHN_PRIORS = (0.07, 0.19, 0.15, 0.12, 0.10, 0.09, 0.08, 0.08, 0.07, 0.05)

DATASET_SPECS: dict[str, SyntheticSpec] = {
    "synth-cifar10": SyntheticSpec(name="synth-cifar10", num_classes=10, noise_std=0.9),
    "synth-cifar100": SyntheticSpec(name="synth-cifar100", num_classes=100, noise_std=1.0),
    "synth-svhn": SyntheticSpec(
        name="synth-svhn", num_classes=10, noise_std=0.6, class_priors=_SVHN_PRIORS
    ),
}
