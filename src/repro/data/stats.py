"""Heterogeneity statistics over partitions (quantifies Fig. 5)."""

from __future__ import annotations

import numpy as np

from repro.data.partition import Partition

__all__ = [
    "label_entropy",
    "mean_label_entropy",
    "earth_movers_distance",
    "mean_emd_to_global",
    "heatmap_text",
]


def _client_distributions(partition: Partition) -> np.ndarray:
    """(num_clients, num_classes) row-normalized label distributions."""
    mat = partition.counts_matrix().T.astype(np.float64)  # clients × classes
    totals = mat.sum(axis=1, keepdims=True)
    totals[totals == 0] = 1.0
    return mat / totals


def label_entropy(partition: Partition) -> np.ndarray:
    """Per-client Shannon entropy (nats) of the local label distribution.

    IID clients approach ``log(num_classes)``; severe skew approaches 0.
    """
    dists = _client_distributions(partition)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(dists > 0, dists * np.log(dists), 0.0)
    return -terms.sum(axis=1)


def mean_label_entropy(partition: Partition) -> float:
    """Average of :func:`label_entropy` over clients."""
    return float(label_entropy(partition).mean())


def earth_movers_distance(p: np.ndarray, q: np.ndarray) -> float:
    """1-D EMD (total variation on categorical support via L1/2)."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch {p.shape} vs {q.shape}")
    return float(0.5 * np.abs(p - q).sum())


def mean_emd_to_global(partition: Partition) -> float:
    """Mean distance of client label distributions from the global one.

    The standard scalar summary of label-skew severity: ~0 for IID, →1 for
    single-class clients.
    """
    dists = _client_distributions(partition)
    counts = partition.counts_matrix().sum(axis=1).astype(np.float64)
    global_dist = counts / counts.sum()
    return float(np.mean([earth_movers_distance(d, global_dist) for d in dists]))


def heatmap_text(partition: Partition, *, max_classes: int = 10) -> str:
    """ASCII rendition of the Fig. 5 class×client count heatmap."""
    mat = partition.counts_matrix()[:max_classes]
    lines = ["class\\client " + " ".join(f"{c:>6d}" for c in range(partition.num_clients))]
    for k, row in enumerate(mat):
        lines.append(f"{k:>12d} " + " ".join(f"{v:>6d}" for v in row))
    return "\n".join(lines)
