"""Client data partitioning strategies.

Implements the paper's federated setting (Sec. 5.1): distribution-based
label-skew via a Dirichlet prior — client ``i`` receives a ``p_{k,i}``
fraction of class ``k``'s samples where ``p_k ~ Dir(beta)`` — plus IID and
shard partitioners for comparison. Lower ``beta`` means more severe
heterogeneity (Fig. 5 uses beta = 0.5 and 0.1).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = [
    "Partition",
    "dirichlet_partition",
    "iid_partition",
    "shard_partition",
    "quantity_skew_partition",
]


class Partition:
    """Assignment of dataset indices to clients."""

    def __init__(self, client_indices: list[np.ndarray], labels: np.ndarray, num_classes: int):
        self.client_indices = [np.asarray(ix, dtype=np.int64) for ix in client_indices]
        self.labels = np.asarray(labels)
        self.num_classes = int(num_classes)
        seen = np.concatenate(self.client_indices) if self.client_indices else np.empty(0, np.int64)
        if len(seen) != len(np.unique(seen)):
            raise ValueError("partition assigns some sample to multiple clients")

    @property
    def num_clients(self) -> int:
        return len(self.client_indices)

    def sizes(self) -> np.ndarray:
        """Per-client sample counts ``n_k``."""
        return np.array([len(ix) for ix in self.client_indices], dtype=np.int64)

    def counts_matrix(self) -> np.ndarray:
        """(num_classes, num_clients) class-count matrix — the Fig. 5 heatmap."""
        mat = np.zeros((self.num_classes, self.num_clients), dtype=np.int64)
        for c, ix in enumerate(self.client_indices):
            binc = np.bincount(self.labels[ix], minlength=self.num_classes)
            mat[:, c] = binc
        return mat

    def data_frequencies(self) -> np.ndarray:
        """FedAvg averaging coefficients ``f_i = n_i / n`` (Alg. 1 line 13)."""
        sizes = self.sizes().astype(np.float64)
        total = sizes.sum()
        if total == 0:
            raise ValueError("empty partition")
        return sizes / total


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    beta: float,
    seed: int | np.random.Generator = 0,
    *,
    min_size: int = 1,
    max_retries: int = 100,
) -> Partition:
    """Label-skew partition with per-class Dirichlet(beta) client proportions.

    Resamples until every client holds at least ``min_size`` samples (the
    standard practice in the non-IID FL literature the paper follows).
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be 1-D")
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if beta <= 0:
        raise ValueError(f"beta must be > 0, got {beta}")
    rng = as_generator(seed)
    num_classes = int(labels.max()) + 1 if labels.size else 0

    for _ in range(max_retries):
        buckets: list[list[np.ndarray]] = [[] for _ in range(num_clients)]
        for k in range(num_classes):
            idx_k = np.flatnonzero(labels == k)
            if idx_k.size == 0:
                continue
            rng.shuffle(idx_k)
            proportions = rng.dirichlet(np.full(num_clients, beta))
            # Convert proportions to contiguous split points over the class.
            cuts = (np.cumsum(proportions)[:-1] * idx_k.size).astype(int)
            for client, chunk in enumerate(np.split(idx_k, cuts)):
                buckets[client].append(chunk)
        client_indices = [
            np.sort(np.concatenate(b)) if b else np.empty(0, dtype=np.int64) for b in buckets
        ]
        if min(len(ix) for ix in client_indices) >= min_size:
            return Partition(client_indices, labels, num_classes)
    raise RuntimeError(
        f"could not satisfy min_size={min_size} after {max_retries} retries "
        f"(beta={beta}, num_clients={num_clients}, n={labels.size})"
    )


def iid_partition(
    labels: np.ndarray, num_clients: int, seed: int | np.random.Generator = 0
) -> Partition:
    """Uniform random split — the homogeneous-data control."""
    labels = np.asarray(labels)
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    rng = as_generator(seed)
    perm = rng.permutation(labels.size)
    chunks = np.array_split(perm, num_clients)
    num_classes = int(labels.max()) + 1 if labels.size else 0
    return Partition([np.sort(c) for c in chunks], labels, num_classes)


def quantity_skew_partition(
    labels: np.ndarray,
    num_clients: int,
    skew: float = 1.0,
    seed: int | np.random.Generator = 0,
    *,
    min_size: int = 1,
) -> Partition:
    """Label-balanced but *size*-imbalanced split.

    Client sizes follow ``Dir(skew)`` over the sample pool (lower ``skew`` =
    more imbalanced), while each client's label distribution stays close to
    global. Isolates the effect of heterogeneous ``f_i = n_i/n`` on the
    Eq. 6 coefficients without confounding label skew.
    """
    labels = np.asarray(labels)
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if skew <= 0:
        raise ValueError(f"skew must be > 0, got {skew}")
    rng = as_generator(seed)
    n = labels.size
    proportions = rng.dirichlet(np.full(num_clients, skew))
    # Floor each client at min_size, re-normalize the remainder.
    base = np.full(num_clients, min_size, dtype=np.int64)
    remainder = n - base.sum()
    if remainder < 0:
        raise ValueError(f"min_size {min_size} infeasible for {n} samples, {num_clients} clients")
    extra = np.floor(proportions * remainder).astype(np.int64)
    # Distribute the rounding slack to the largest shares.
    slack = remainder - extra.sum()
    order = np.argsort(proportions)[::-1]
    extra[order[:slack]] += 1
    sizes = base + extra
    perm = rng.permutation(n)  # label-balanced in expectation
    cuts = np.cumsum(sizes)[:-1]
    chunks = np.split(perm, cuts)
    num_classes = int(labels.max()) + 1 if labels.size else 0
    return Partition([np.sort(c) for c in chunks], labels, num_classes)


def shard_partition(
    labels: np.ndarray,
    num_clients: int,
    shards_per_client: int = 2,
    seed: int | np.random.Generator = 0,
) -> Partition:
    """McMahan-style shard partition: sort by label, deal shards to clients.

    The original FedAvg paper's pathological non-IID split; included as an
    alternative heterogeneity model to Dirichlet.
    """
    labels = np.asarray(labels)
    if num_clients < 1 or shards_per_client < 1:
        raise ValueError("num_clients and shards_per_client must be >= 1")
    rng = as_generator(seed)
    order = np.argsort(labels, kind="stable")
    num_shards = num_clients * shards_per_client
    shards = np.array_split(order, num_shards)
    assignment = rng.permutation(num_shards)
    client_indices = []
    for c in range(num_clients):
        mine = assignment[c * shards_per_client : (c + 1) * shards_per_client]
        client_indices.append(np.sort(np.concatenate([shards[s] for s in mine])))
    num_classes = int(labels.max()) + 1 if labels.size else 0
    return Partition(client_indices, labels, num_classes)
