"""Persistence: run histories (JSON/CSV) and model checkpoints (npz)."""

from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.io.history_io import (
    export_curves_csv,
    history_from_dict,
    history_to_dict,
    load_history,
    save_history,
)

__all__ = [
    "history_to_dict",
    "history_from_dict",
    "save_history",
    "load_history",
    "export_curves_csv",
    "save_checkpoint",
    "load_checkpoint",
]
