"""Persist run histories: JSON round records and CSV curve exports."""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.fl.history import EdgeRecord, History, RoundComm, RoundRecord
from repro.network.metrics import RoundTimes

__all__ = ["history_to_dict", "history_from_dict", "save_history", "load_history", "export_curves_csv"]


def history_to_dict(history: History) -> dict:
    """JSON-serializable representation of a run history.

    ``num_participants`` is emitted only when set (fault-injected runs):
    fault-free histories keep the exact serialization every frozen golden
    was recorded under.
    """
    return {
        "records": [
            {
                **(
                    {}
                    if r.num_participants is None
                    else {"num_participants": int(r.num_participants)}
                ),
                "round_index": r.round_index,
                "selected": list(r.selected),
                "train_loss": r.train_loss,
                "test_accuracy": r.test_accuracy,
                "times": {
                    "actual": r.times.actual,
                    "maximum": r.times.maximum,
                    "minimum": r.times.minimum,
                    "downlink": r.times.downlink,
                },
                "ratios": list(r.ratios),
                "weights": list(r.weights),
                "singleton_fraction": r.singleton_fraction,
                "train_seconds": r.train_seconds,
                "compress_seconds": r.compress_seconds,
                "sim_start": r.sim_start,
                "sim_end": r.sim_end,
                "mean_staleness": r.mean_staleness,
                "edge_breakdown": None
                if r.edge_breakdown is None
                else [
                    {
                        "edge": e.edge,
                        "selected": list(e.selected),
                        "sub_spans": list(e.sub_spans),
                        "backhaul_s": e.backhaul_s,
                        "start": e.start,
                        "end": e.end,
                    }
                    for e in r.edge_breakdown
                ],
                "comm": None
                if r.comm is None
                else {
                    "uplink": [[cid, bits] for cid, bits in r.comm.uplink],
                    "downlink": [[cid, bits] for cid, bits in r.comm.downlink],
                    "backhaul": [[eid, bits] for eid, bits in r.comm.backhaul],
                },
            }
            for r in history.records
        ]
    }


def history_from_dict(data: dict) -> History:
    """Rebuild a :class:`History` from :func:`history_to_dict` output."""
    h = History()
    for rec in data["records"]:
        h.append(
            RoundRecord(
                round_index=int(rec["round_index"]),
                selected=tuple(rec["selected"]),
                train_loss=float(rec["train_loss"]),
                test_accuracy=rec["test_accuracy"],
                times=RoundTimes(
                    actual=rec["times"]["actual"],
                    maximum=rec["times"]["maximum"],
                    minimum=rec["times"]["minimum"],
                    # Pre-scheduler files lack the split fields; default them.
                    downlink=rec["times"].get("downlink", 0.0),
                ),
                ratios=tuple(rec["ratios"]),
                weights=tuple(rec["weights"]),
                singleton_fraction=rec["singleton_fraction"],
                train_seconds=float(rec["train_seconds"]),
                compress_seconds=float(rec["compress_seconds"]),
                sim_start=rec.get("sim_start"),
                sim_end=rec.get("sim_end"),
                mean_staleness=rec.get("mean_staleness"),
                # Pre-hierarchy files lack the per-tier breakdown entirely.
                edge_breakdown=None
                if rec.get("edge_breakdown") is None
                else tuple(
                    EdgeRecord(
                        edge=int(e["edge"]),
                        selected=tuple(e["selected"]),
                        sub_spans=tuple(e["sub_spans"]),
                        backhaul_s=float(e["backhaul_s"]),
                        start=float(e["start"]),
                        end=float(e["end"]),
                    )
                    for e in rec["edge_breakdown"]
                ),
                # Pre-transport files carry no flow ledger at all.
                comm=None
                if rec.get("comm") is None
                else RoundComm(
                    uplink=tuple((int(c), float(b)) for c, b in rec["comm"]["uplink"]),
                    downlink=tuple((int(c), float(b)) for c, b in rec["comm"]["downlink"]),
                    backhaul=tuple((int(c), float(b)) for c, b in rec["comm"]["backhaul"]),
                ),
                # Pre-fault-injection files (and fault-free runs) omit it.
                num_participants=rec.get("num_participants"),
            )
        )
    return h


def save_history(history: History, path: str | Path) -> None:
    """Write a history to ``path`` as JSON."""
    Path(path).write_text(json.dumps(history_to_dict(history)))


def load_history(path: str | Path) -> History:
    """Read a history written by :func:`save_history`."""
    return history_from_dict(json.loads(Path(path).read_text()))


def export_curves_csv(history: History, path: str | Path) -> None:
    """Write (round, cumulative_time, virtual_time, accuracy) rows — the
    figure series; ``virtual_time_s`` is empty on pre-scheduler histories."""
    cum = history.time.actual_series
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["round", "cumulative_actual_time_s", "virtual_time_s", "test_accuracy"])
        for i, r in enumerate(history.records):
            writer.writerow([
                r.round_index,
                f"{cum[i]:.6f}",
                "" if r.sim_end is None else f"{r.sim_end:.6f}",
                "" if r.test_accuracy is None else f"{r.test_accuracy:.6f}",
            ])
