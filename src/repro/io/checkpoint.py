"""Global-model checkpointing (npz: flat params + persistent buffers)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.fl.simulation import Simulation

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(sim: Simulation, path: str | Path) -> None:
    """Save the simulation's global model (params + BN buffers + round index)."""
    arrays = {
        "global_params": sim.global_params,
        "round_index": np.array(sim.round_index),
        "sim_clock": np.array(sim.sim_clock),
    }
    for i, state in enumerate(sim.global_states):
        arrays[f"state_{i}"] = state
    np.savez(path, **arrays)


def load_checkpoint(sim: Simulation, path: str | Path) -> None:
    """Restore a checkpoint into a simulation built from the same config."""
    data = np.load(path)
    params = data["global_params"]
    if params.shape != sim.global_params.shape:
        raise ValueError(
            f"checkpoint has {params.shape[0]} params, simulation expects "
            f"{sim.global_params.shape[0]} — config mismatch"
        )
    sim.global_params = params.astype(np.float32)
    n_states = sum(1 for k in data.files if k.startswith("state_"))
    if n_states != len(sim.global_states):
        raise ValueError(f"checkpoint has {n_states} buffers, simulation has {len(sim.global_states)}")
    for i in range(n_states):
        sim.global_states[i] = data[f"state_{i}"].copy()
    sim.round_index = int(data["round_index"])
    if "sim_clock" in data.files:  # absent in pre-scheduler checkpoints
        sim.sim_clock = float(data["sim_clock"])
        # Event-driven protocols keep their own clock cursors; resume them
        # at the restored time so virtual timestamps continue, not restart.
        if hasattr(sim, "now"):
            sim.now = sim.sim_clock
        if hasattr(sim, "_last_agg"):
            sim._last_agg = sim.sim_clock
