"""Algorithm presets: what each Table 2 row does in a round.

An :class:`Algorithm` decides, given the round's selected links and data
frequencies, (a) the per-client compression ratios (``None`` = dense
FedAvg), (b) the client-averaging coefficients, (c) whether the OPWA mask
applies, and (d) the round's synchronization time semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bcrs import schedule_ratios
from repro.core.coefficients import adjusted_coefficients, fedavg_coefficients
from repro.fl.config import ExperimentConfig
from repro.network.cost import LinkSpec, downlink_time, sparse_uplink_time, uplink_time
from repro.network.metrics import RoundTimes

__all__ = ["RoundPlan", "Algorithm", "make_algorithm"]


@dataclass(frozen=True)
class RoundPlan:
    """One round's communication decisions for the selected clients."""

    ratios: np.ndarray | None  # per-client CR_i; None = dense upload
    weights: np.ndarray  # averaging coefficients (f_i or Eq. 6 p'_i)
    use_opwa: bool
    times: RoundTimes  # actual/max/min per Sec. 5.2 semantics


def _downlink_times(
    links: list[LinkSpec], volume_bits: float, factor: float
) -> np.ndarray:
    """Broadcast time of the dense global model at ``factor``× the uplink
    bandwidth (downlink is uncompressed — Sec. 3.3's uplink-only rationale)."""
    return np.array(
        [downlink_time(l, volume_bits, bandwidth_factor=factor) for l in links]
    )


def _round_times(
    links: list[LinkSpec],
    volume_bits: float,
    ratios: np.ndarray | None,
    *,
    downlink: np.ndarray | None = None,
) -> RoundTimes:
    """Sec. 5.2 metrics: *maximum* is always the uncompressed straggler time
    (the FedAvg cost of the same round); *actual*/*minimum* are the
    algorithm's own slowest/fastest client under its ratios. ``downlink``
    (optional per-client broadcast times) adds to every metric."""
    dense = np.array([uplink_time(l, volume_bits) for l in links])
    if ratios is None:
        compressed = dense
    else:
        compressed = np.array(
            [sparse_uplink_time(l, volume_bits, r) for l, r in zip(links, ratios)]
        )
    if downlink is not None:
        dense = dense + downlink
        compressed = compressed + downlink
    # ``maximum`` is the worst per-client time of the round. For CR <= 0.5
    # that is always the dense straggler (sparse volume = 2·V·CR <= V), but
    # the config permits CR > 0.5 where the (index, value) encoding
    # *inflates* the upload — take the elementwise worst so the
    # minimum <= maximum invariant survives anti-compression too.
    return RoundTimes(
        actual=float(compressed.max()),
        maximum=float(np.maximum(dense, compressed).max()),
        minimum=float(compressed.min()),
        downlink=0.0 if downlink is None else float(downlink.max()),
    )


class Algorithm:
    """Base: dense FedAvg behaviour; subclasses override pieces."""

    name = "fedavg"
    compressor_name: str | None = None  # registry name for client compressors

    def __init__(self, config: ExperimentConfig):
        self.config = config

    def _downlink(self, links: list[LinkSpec], volume_bits: float) -> np.ndarray | None:
        if not self.config.include_downlink:
            return None
        return _downlink_times(links, volume_bits, self.config.downlink_factor)

    def plan(
        self,
        links: list[LinkSpec],
        data_frequencies: np.ndarray,
        volume_bits: float,
    ) -> RoundPlan:
        weights = fedavg_coefficients(data_frequencies)
        return RoundPlan(
            ratios=None,
            weights=weights,
            use_opwa=False,
            times=_round_times(links, volume_bits, None, downlink=self._downlink(links, volume_bits)),
        )


class TopKAlgorithm(Algorithm):
    """Uniform-ratio Top-K FedAvg (the TOPK baseline)."""

    name = "topk"
    compressor_name = "topk"

    def plan(self, links, data_frequencies, volume_bits) -> RoundPlan:
        ratios = np.full(len(links), self.config.compression_ratio)
        return RoundPlan(
            ratios=ratios,
            weights=fedavg_coefficients(data_frequencies),
            use_opwa=False,
            times=_round_times(links, volume_bits, ratios, downlink=self._downlink(links, volume_bits)),
        )


class EFTopKAlgorithm(TopKAlgorithm):
    """Top-K with per-client error feedback (the EFTOPK baseline)."""

    name = "eftopk"
    compressor_name = "ef_topk"


class DeadlineTopKAlgorithm(TopKAlgorithm):
    """Uniform Top-K with a round deadline that *drops* stragglers.

    The classic alternative to BCRS for straggler mitigation: the round ends
    at the ``deadline_quantile`` of the clients' compressed upload times;
    clients that cannot finish are excluded from aggregation (their weight is
    renormalized over the survivors). Drops information instead of adapting
    ratios — the ablation BCRS is designed to beat.
    """

    name = "deadline_topk"

    def plan(self, links, data_frequencies, volume_bits) -> RoundPlan:
        cfg = self.config
        ratios = np.full(len(links), cfg.compression_ratio)
        compressed = np.array(
            [sparse_uplink_time(l, volume_bits, cfg.compression_ratio) for l in links]
        )
        deadline = float(np.quantile(compressed, cfg.deadline_quantile))
        included = compressed <= deadline + 1e-12
        weights = fedavg_coefficients(data_frequencies).copy()
        weights[~included] = 0.0
        total = weights.sum()
        if total == 0.0:  # degenerate: keep the fastest client
            fastest = int(np.argmin(compressed))
            weights[fastest] = 1.0
            included[fastest] = True
        else:
            weights /= total
        dense = np.array([uplink_time(l, volume_bits) for l in links])
        down = self._downlink(links, volume_bits)
        actual = deadline
        minimum = float(compressed.min())
        # Worst per-client time: the dense straggler for real compression,
        # the compressed straggler when CR > 0.5 inflates uploads.
        maximum = float(np.maximum(dense, compressed).max())
        down_part = 0.0
        if down is not None:
            down_part = float(down.max())
            actual += down_part
            minimum += float(down.min())
            maximum += down_part
        times = RoundTimes(actual=actual, maximum=maximum, minimum=minimum, downlink=down_part)
        return RoundPlan(ratios=ratios, weights=weights, use_opwa=False, times=times)


class BCRSAlgorithm(Algorithm):
    """The paper's BCRS: scheduled ratios + Eq. 6 coefficients.

    The round's *actual* time is the benchmark ``T_bench`` — BCRS equalizes
    client finish times at the slowest default-ratio client.
    """

    name = "bcrs"
    compressor_name = "topk"
    use_opwa = False

    def plan(self, links, data_frequencies, volume_bits) -> RoundPlan:
        cfg = self.config
        sched = schedule_ratios(
            links,
            volume_bits,
            cfg.compression_ratio,
            benchmark=cfg.benchmark,
        )
        weights = adjusted_coefficients(
            data_frequencies, sched.ratios, cfg.alpha, norm=cfg.norm_mode
        )
        dense = np.array([uplink_time(l, volume_bits) for l in links])
        scheduled = sched.scheduled_times
        down = self._downlink(links, volume_bits)
        if down is not None:
            dense = dense + down
            scheduled = scheduled + down
        times = RoundTimes(
            actual=float(scheduled.max()),
            # Scheduled times can exceed the dense straggler at CR* > 0.5
            # (sparse factor 2); keep maximum the worst per-client time.
            maximum=float(np.maximum(dense, scheduled).max()),
            minimum=float(scheduled.min()),
            downlink=0.0 if down is None else float(down.max()),
        )
        return RoundPlan(ratios=sched.ratios, weights=weights, use_opwa=self.use_opwa, times=times)


class BCRSOPWAAlgorithm(BCRSAlgorithm):
    """BCRS + the OPWA parameter mask (the paper's full method)."""

    name = "bcrs_opwa"
    use_opwa = True


_ALGORITHMS = {
    cls.name: cls
    for cls in (
        Algorithm,
        TopKAlgorithm,
        EFTopKAlgorithm,
        DeadlineTopKAlgorithm,
        BCRSAlgorithm,
        BCRSOPWAAlgorithm,
    )
}


def make_algorithm(config: ExperimentConfig) -> Algorithm:
    """Instantiate the algorithm named by ``config.algorithm``."""
    try:
        cls = _ALGORITHMS[config.algorithm]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {config.algorithm!r}; available: {sorted(_ALGORITHMS)}"
        ) from None
    return cls(config)
