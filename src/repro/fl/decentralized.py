"""Decentralized (server-free) FL with sparsified gossip averaging.

The paper's related work includes decentralized sparsified learning
([47] Tang et al. ICDCS'20, [49] GossipFL): no central server — clients sit
on a communication graph, train locally, and exchange *compressed* model
updates with neighbors, mixing via a doubly-stochastic matrix (D-PSGD with
Top-K gossip). This module provides that substrate so BCRS-style ideas can
be studied without a star topology.

Simulation simplification (documented): clients mix using neighbors'
previous-round parameters minus their *compressed* updates. A real protocol
maintains per-neighbor estimates; the single-process simulation reads the
true previous parameters, which is exactly what those estimates converge to
when every exchange succeeds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.registry import make_compressor
from repro.data.datasets import DATASET_SPECS, train_test_split
from repro.data.partition import dirichlet_partition
from repro.exec import ClientTask, TrainSpec
from repro.fl.client import Client
from repro.fl.config import ExperimentConfig
from repro.fl.engine import EngineMixin, build_config_model
from repro.network.cost import model_bits, sparse_uplink_time
from repro.network.links import PAPER_LINK_MODEL, sample_links
from repro.nn.params import get_flat_params, num_parameters, set_flat_params
from repro.utils.rng import RngFactory

__all__ = ["mixing_matrix", "ring_edges", "random_regular_edges", "DecentralizedSimulation"]


def ring_edges(n: int) -> list[tuple[int, int]]:
    """Ring topology edges."""
    if n < 2:
        raise ValueError(f"need >= 2 nodes, got {n}")
    return [(i, (i + 1) % n) for i in range(n)]


def random_regular_edges(n: int, degree: int, seed: int = 0) -> list[tuple[int, int]]:
    """Random d-regular graph edges (via networkx)."""
    import networkx as nx

    if degree >= n:
        raise ValueError(f"degree {degree} must be < n {n}")
    g = nx.random_regular_graph(degree, n, seed=seed)
    return [(int(a), int(b)) for a, b in g.edges()]


def mixing_matrix(n: int, edges: list[tuple[int, int]]) -> np.ndarray:
    """Metropolis–Hastings weights: symmetric, doubly stochastic, with
    self-loops absorbing the remainder — the standard D-PSGD mixer."""
    adj = np.zeros((n, n), dtype=bool)
    for a, b in edges:
        if a == b or not (0 <= a < n and 0 <= b < n):
            raise ValueError(f"bad edge ({a}, {b})")
        adj[a, b] = adj[b, a] = True
    deg = adj.sum(axis=1)
    w = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            if adj[i, j]:
                w[i, j] = w[j, i] = 1.0 / (1 + max(deg[i], deg[j]))
    np.fill_diagonal(w, 1.0 - w.sum(axis=1))
    return w


@dataclass
class GossipRound:
    """Per-round record of the decentralized run."""

    round_index: int
    mean_accuracy: float | None
    consensus_distance: float
    comm_time: float


class DecentralizedSimulation(EngineMixin):
    """D-PSGD with Top-K gossip over an explicit topology.

    Reuses the centralized engine's config for the task/optimizer knobs;
    ``participation`` is ignored (everyone trains every round, as in
    decentralized SGD), and ``compression_ratio`` sets the gossip Top-K.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        edges: list[tuple[int, int]] | None = None,
    ):
        self.config = config
        n = config.num_clients
        self.edges = ring_edges(n) if edges is None else edges
        self.mixing = mixing_matrix(n, self.edges)
        rngs = RngFactory(config.seed)

        spec = DATASET_SPECS[config.dataset]
        self.train_set, self.test_set = train_test_split(
            spec, config.num_train, config.num_test, seed=config.seed
        )
        partition = dirichlet_partition(
            self.train_set.y, n, config.beta, seed=rngs.stream("partition")
        )
        flatten = config.model == "mlp"
        self.clients = [
            Client(cid, self.train_set.subset(ix), config.batch_size,
                   rngs.child("client", cid), flatten_inputs=flatten)
            for cid, ix in enumerate(partition.client_indices)
        ]
        self.model = build_config_model(config, seed=rngs.stream("model"))
        init = get_flat_params(self.model)
        self.params = np.tile(init, (n, 1))  # one row per client
        self.volume_bits = model_bits(num_parameters(self.model))
        self.links = sample_links(n, PAPER_LINK_MODEL, seed=rngs.stream("links"))
        self.compressors = [
            make_compressor("topk", seed=rngs.child("compressor", cid)) for cid in range(n)
        ]
        self.history: list[GossipRound] = []
        self.round_index = 0

        # Every client trains every round, so gossip rounds parallelize the
        # same way as centralized ones. Persistent model state (BN stats) is
        # deliberately NOT synchronized between clients here — matching the
        # pre-backend behaviour — so only the serial backend is exactly
        # order-reproducing for models with persistent buffers. Rather than
        # silently break the cross-backend bit-identity contract, refuse the
        # combination outright; the stock decentralized models (MLP/GN)
        # carry no buffers and parallelize freely.
        if config.backend != "serial" and self.model.state_arrays():
            raise ValueError(
                f"model {config.model!r} carries persistent buffers (BN stats), "
                "which the decentralized engine does not synchronize across "
                "parallel workers — use backend='serial' or a buffer-free "
                "model (e.g. 'mlp', 'gn_cnn')"
            )
        # Deliberately NOT TrainSpec.from_config: D-PSGD local steps have
        # always used plain SGD with no proximal term, whatever the config's
        # FedProx/Adam knobs say (they parameterize the *centralized* engine).
        self._train_spec = TrainSpec(
            lr=config.lr,
            epochs=config.local_epochs,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
            return_delta=True,
        )

    # ------------------------------------------------------------------

    def consensus_distance(self) -> float:
        """Mean distance of client models from their average (disagreement)."""
        center = self.params.mean(axis=0)
        return float(np.linalg.norm(self.params - center, axis=1).mean())

    def _degree(self, i: int) -> int:
        return sum(1 for a, b in self.edges if a == i or b == i)

    def run_round(self, *, train: bool = True) -> GossipRound:
        """One gossip round: local step, compressed exchange, mixing."""
        cfg = self.config
        n = cfg.num_clients

        # Local training from each client's own parameters, plus per-client
        # compression of the round update — one backend task per client.
        if train:
            # The whole per-client parameter matrix is the round's global
            # input (one shared-memory broadcast on the process backend);
            # each task indexes its own row.
            new_params = np.empty_like(self.params)
            compressed_new = np.empty_like(self.params)
            tasks = [
                ClientTask(position=i, cid=i, ratio=cfg.compression_ratio, params_row=i)
                for i in range(n)
            ]
            results = self._run_tasks(tasks, self.params, None, self._train_spec)
            for i, res in enumerate(results):
                new_params[i] = self.params[i] - res.delta
                compressed_new[i] = self.params[i] - res.update.to_dense()
        else:
            # No training: the round update is exactly zero, and TopK of a
            # zero vector reconstructs to zero — neighbors mix the previous
            # parameters unchanged. Both views alias self.params (read-only
            # below).
            new_params = self.params
            compressed_new = self.params

        # Mixing: own params exactly, neighbors' through the compressed view.
        mixed = np.empty_like(new_params)
        for i in range(n):
            acc = self.mixing[i, i] * new_params[i].astype(np.float64)
            for j in range(n):
                if j != i and self.mixing[i, j] > 0:
                    acc += self.mixing[i, j] * compressed_new[j].astype(np.float64)
            mixed[i] = acc.astype(np.float32)
        self.params = mixed

        # Communication time: every client sequentially uploads its
        # compressed update once per neighbor; the round waits for the
        # busiest uplink.
        times = [
            self._degree(i)
            * sparse_uplink_time(self.links[i], self.volume_bits, cfg.compression_ratio)
            for i in range(n)
        ]
        comm_time = float(max(times))

        evaluate = (self.round_index % cfg.eval_every == 0) or (
            self.round_index == cfg.rounds - 1
        )
        rec = GossipRound(
            round_index=self.round_index,
            mean_accuracy=self.mean_accuracy() if evaluate else None,
            consensus_distance=self.consensus_distance(),
            comm_time=comm_time,
        )
        self.history.append(rec)
        self.round_index += 1
        return rec

    def run(self, rounds: int | None = None, *, train: bool = True) -> list[GossipRound]:
        total = self.config.rounds if rounds is None else rounds
        for _ in range(total):
            self.run_round(train=train)
        return self.history

    def mean_accuracy(self, batch_size: int = 256) -> float:
        """Average test accuracy over all client models."""
        accs = []
        flatten = self.config.model == "mlp"
        for i in range(self.config.num_clients):
            set_flat_params(self.model, self.params[i])
            correct = 0
            ntest = len(self.test_set)
            for start in range(0, ntest, batch_size):
                x = self.test_set.x[start : start + batch_size]
                y = self.test_set.y[start : start + batch_size]
                if flatten:
                    x = x.reshape(x.shape[0], -1)
                logits = self.model(x, training=False)
                correct += int((logits.argmax(axis=1) == y).sum())
            accs.append(correct / ntest)
        return float(np.mean(accs))
